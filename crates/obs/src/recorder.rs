//! The flight recorder: a bounded ring-buffer [`Sink`].
//!
//! Attach a [`FlightRecorder`] (via [`SharedSink`](crate::SharedSink)) to
//! any traced run and it retains the **last** `capacity` events at a flat
//! cost — one clone and one slot write per event, no growth, no export
//! work — so it can ride along on every run and only pay off when
//! something goes wrong. On an oracle violation, panic, or nonzero exit,
//! [`FlightRecorder::dump_jsonl`] writes the retained tail as ordinary
//! JSONL (the same encoding as [`crate::export::to_jsonl`]), ready for
//! `nbc trace` analysis next to the counterexample that produced it.

use crate::event::Event;
use crate::export::event_json;
use crate::sink::Sink;

/// A fixed-capacity, overwrite-oldest event buffer.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    cap: usize,
    buf: Vec<Event>,
    /// Next slot to overwrite once the buffer is full (oldest event).
    next: usize,
    total: u64,
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` events (`capacity >= 1`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "flight recorder needs capacity >= 1");
        Self { cap: capacity, buf: Vec::with_capacity(capacity.min(1024)), next: 0, total: 0 }
    }

    /// Total events observed (including overwritten ones).
    pub fn total_seen(&self) -> u64 {
        self.total
    }

    /// Number of events currently retained (`min(total_seen, capacity)`).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The retained events, oldest first.
    pub fn events_in_order(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.buf.len());
        // Once full, `next` points at the oldest slot.
        out.extend_from_slice(&self.buf[self.next..]);
        out.extend_from_slice(&self.buf[..self.next]);
        out
    }

    /// Encode the retained tail as JSONL, preceded by one `note` line
    /// stating how many earlier events the ring dropped — so a reader of
    /// the dump knows whether it is looking at the whole run.
    pub fn dump_jsonl(&self) -> String {
        let events = self.events_in_order();
        let dropped = self.total - events.len() as u64;
        let header = Event::new(
            events.first().map_or(0, |e| e.time),
            crate::event::EventKind::Note {
                text: format!(
                    "flight recorder: last {} of {} events ({} overwritten)",
                    events.len(),
                    self.total,
                    dropped
                ),
            },
        );
        let mut out = String::new();
        out.push_str(&event_json(&header));
        out.push('\n');
        for e in &events {
            out.push_str(&event_json(e));
            out.push('\n');
        }
        out
    }
}

impl Sink for FlightRecorder {
    fn record(&mut self, event: &Event) {
        self.total += 1;
        if self.buf.len() < self.cap {
            self.buf.push(event.clone());
        } else {
            self.buf[self.next] = event.clone();
            self.next = (self.next + 1) % self.cap;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn note(t: u64, text: &str) -> Event {
        Event::new(t, EventKind::Note { text: text.into() })
    }

    #[test]
    fn retains_everything_under_capacity() {
        let mut r = FlightRecorder::new(8);
        assert!(r.is_empty());
        for i in 0..5 {
            r.record(&note(i, &format!("e{i}")));
        }
        assert_eq!(r.len(), 5);
        assert_eq!(r.total_seen(), 5);
        let times: Vec<u64> = r.events_in_order().iter().map(|e| e.time).collect();
        assert_eq!(times, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn overwrites_oldest_when_full() {
        let mut r = FlightRecorder::new(3);
        for i in 0..10 {
            r.record(&note(i, &format!("e{i}")));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.total_seen(), 10);
        let times: Vec<u64> = r.events_in_order().iter().map(|e| e.time).collect();
        assert_eq!(times, vec![7, 8, 9], "last three survive, oldest first");
    }

    #[test]
    fn dump_reports_overwritten_count() {
        let mut r = FlightRecorder::new(2);
        for i in 0..5 {
            r.record(&note(i, &format!("e{i}")));
        }
        let dump = r.dump_jsonl();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 3, "header note + 2 retained events");
        assert!(lines[0].contains("last 2 of 5 events (3 overwritten)"), "{}", lines[0]);
        for line in &lines {
            crate::json::validate(line).unwrap();
        }
    }

    #[test]
    fn capacity_one_keeps_the_latest() {
        let mut r = FlightRecorder::new(1);
        r.record(&note(1, "a"));
        r.record(&note(2, "b"));
        assert_eq!(r.events_in_order()[0].time, 2);
    }
}
