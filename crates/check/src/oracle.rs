//! The four cross-validation oracles.
//!
//! Each oracle states one way the *operational* engine and the paper's
//! *analytic* state-graph machinery must agree:
//!
//! 1. **Consistency** — no execution mixes commit and abort. A site's
//!    `outcome` field is set if and only if a decision record is durable
//!    in its WAL (the engine logs with `append_sync` before setting it,
//!    and a crash preserves it), so scanning outcomes covers durable
//!    decisions of down sites too.
//! 2. **Prediction soundness** — every local state a site *ever occupies*
//!    (the `visited` monitors, which catch states passed through inside a
//!    single pump) is occupied in the reachable state graph. Site states
//!    change only through genuine FSA transitions or WAL restore, so an
//!    operational state outside the analytic occupancy bitset means the
//!    engine and the analysis disagree about the protocol.
//! 3. **Nonblocking** — evaluated by the explorer from quiescent states:
//!    an operational (up, undecided, not mid-recovery) site at network
//!    quiescence is blocked — nothing will ever arrive to unblock it.
//!    The paper's theorem promises this never happens for certified
//!    protocols within their resilience bound; for blocking protocols the
//!    explorer must *find* such a witness.
//! 4. **Recovery** — at every recovery point, the WAL must replay cleanly
//!    and the summarized local position must be compatible with the
//!    globally decided outcome (see [`Oracles::check_recovery`]).
//!
//! The recovery compatibility conditions are deliberately class-level,
//! not concurrency-set-level: a commit decision requires the recovered
//! state to be *yes-voted* (commit implies all sites voted yes —
//! §"Committable States"), **not** that its concurrency set contains a
//! commit state. The central-site 3PC coordinator can crash in its
//! prepared state, whose concurrency set contains no commit state, and
//! still correctly learn "committed" from the termination protocol that
//! finished without it.

use nbc_core::{Analysis, Protocol, SiteId, StateId};
use nbc_engine::site::Mode;
use nbc_engine::Runner;
use nbc_storage::recovery::{class_codes, summarize, TxnOutcome};
use nbc_storage::Wal;

/// A witnessed-state bitmap: `0[i][s]` means site `i` occupied local
/// state `s` in some explored execution (union of the runners' visited
/// monitors). Kept separate from [`Oracles`] so the parallel explorer can
/// accumulate one bitmap *per vote plan* and replace a state-cap-truncated
/// plan's bitmap wholesale with the canonical redo's — the merged union
/// stays deterministic even when the sweep's coverage was not.
#[derive(Default, Clone)]
pub struct Witnessed(Vec<Vec<bool>>);

impl Witnessed {
    /// An all-false bitmap sized for `protocol`.
    pub fn for_protocol(protocol: &Protocol) -> Self {
        Self(protocol.fsas().iter().map(|f| vec![false; f.state_count()]).collect())
    }

    /// OR `other` into this bitmap (commutative, associative, idempotent —
    /// merge order cannot change the result).
    pub fn merge(&mut self, other: &Witnessed) {
        for (mine, theirs) in self.0.iter_mut().zip(&other.0) {
            for (m, &t) in mine.iter_mut().zip(theirs) {
                *m |= t;
            }
        }
    }
}

/// Accumulated oracle state across one whole exploration (all vote plans).
pub struct Oracles<'a> {
    protocol: &'a Protocol,
    analysis: &'a Analysis,
    txn: u64,
    /// Union of every explored execution's visited monitors.
    witnessed: Witnessed,
}

impl<'a> Oracles<'a> {
    /// Fresh oracle accumulators for `protocol` / `analysis`.
    pub fn new(protocol: &'a Protocol, analysis: &'a Analysis, txn: u64) -> Self {
        Self { protocol, analysis, txn, witnessed: Witnessed::for_protocol(protocol) }
    }

    /// Fold one explored global state into the accumulators and check the
    /// per-state oracles (consistency, prediction soundness). Returns the
    /// first violation found, as `(oracle, detail)`.
    pub fn observe_state(&mut self, runner: &Runner<'_>) -> Result<(), (&'static str, String)> {
        let mut w = std::mem::take(&mut self.witnessed);
        let r = self.observe_state_in(&mut w, runner);
        self.witnessed = w;
        r
    }

    /// [`Oracles::observe_state`], but recording the visited monitors into
    /// a caller-held bitmap instead of this accumulator's own — the
    /// per-vote-plan path of the parallel explorer.
    pub fn observe_state_in(
        &self,
        witnessed: &mut Witnessed,
        runner: &Runner<'_>,
    ) -> Result<(), (&'static str, String)> {
        let mut commit: Option<usize> = None;
        let mut abort: Option<usize> = None;
        for (i, s) in runner.sites().iter().enumerate() {
            match s.outcome {
                Some(true) => commit = commit.or(Some(i)),
                Some(false) => abort = abort.or(Some(i)),
                None => {}
            }
            for (state, &seen) in s.visited.iter().enumerate() {
                if seen {
                    witnessed.0[i][state] = true;
                    if !self.analysis.occupied(SiteId(i as u32), StateId(state as u32)) {
                        let name =
                            &self.protocol.fsa(SiteId(i as u32)).state(StateId(state as u32)).name;
                        return Err((
                            "prediction",
                            format!(
                                "site{i} occupied local state {name:?} which is unreachable in \
                                 the analytic state graph"
                            ),
                        ));
                    }
                }
            }
        }
        if let (Some(c), Some(a)) = (commit, abort) {
            return Err((
                "consistency",
                format!("site{c} decided commit while site{a} decided abort"),
            ));
        }
        Ok(())
    }

    /// Operational sites that are *blocked* in `runner`, assuming network
    /// quiescence: up, undecided, and not mid-recovery. A site still in
    /// [`Mode::Recovering`] at quiescence is waiting on information only a
    /// peer's recovery can supply — the paper's nonblocking property
    /// covers operational sites, not recovering ones, so it is exempt.
    /// The exemption is scoped to sites that actually went down: a live
    /// site that was merely (falsely) suspected never lost state, is fully
    /// operational in the paper's sense, and stays accountable.
    pub fn blocked_sites(runner: &Runner<'_>) -> Vec<usize> {
        runner
            .sites()
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                s.is_up() && s.outcome.is_none() && (s.mode != Mode::Recovering || !s.ever_down)
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// The globally decided outcome, if any site has durably decided.
    /// (The consistency oracle guarantees all decisions agree.)
    pub fn global_decision(runner: &Runner<'_>) -> Option<bool> {
        runner.sites().iter().find_map(|s| s.outcome)
    }

    /// The recovery oracle, evaluated *at the moment* `site` is about to
    /// restart: its durable WAL must replay without error, and the
    /// summarized position must not contradict the already-taken global
    /// decision `d`:
    ///
    /// * durable `Committed` forbids `d = abort`; durable `Aborted` and
    ///   never-voted positions (`AbortOnRecovery`, empty log) forbid
    ///   `d = commit`;
    /// * `MustAsk { state, .. }` with `d = commit` requires `state` to be
    ///   yes-voted in the analysis (commit implies all sites voted yes);
    ///   with `d = abort` it requires `state` not to be of the committed
    ///   class;
    /// * a durable termination alignment to the committed (aborted) class
    ///   forbids `d = abort` (`d = commit`).
    ///
    /// Acceptors of a quorum-based protocol are exempt from the
    /// never-voted conditions: a commit is justified by the surviving
    /// quorum, not by this acceptor's (nonexistent) vote, so an acceptor
    /// may recover with an empty or pre-relay log after the transaction
    /// committed through the other acceptors. Its durable *decisions*
    /// still must not contradict the global one.
    pub fn check_recovery(&self, runner: &Runner<'_>, site: usize) -> Result<(), String> {
        let s = &runner.sites()[site];
        let records = Wal::recover(&s.wal.full_image())
            .map_err(|e| format!("site{site} WAL replay failed on recovery: {e:?}"))?;
        let d = Self::global_decision(runner);
        let acceptor = self.protocol.is_acceptor(site);
        let Some(txn) = summarize(&records).into_iter().find(|t| t.txn == self.txn) else {
            // Nothing durable: the site never began, so it never voted
            // yes, so a global commit would be unjustified.
            if d == Some(true) && !acceptor {
                return Err(format!(
                    "site{site} recovers with an empty log while the transaction committed"
                ));
            }
            return Ok(());
        };
        match txn.outcome {
            TxnOutcome::Committed => {
                if d == Some(false) {
                    return Err(format!(
                        "site{site} recovers with a durable commit while the transaction aborted"
                    ));
                }
            }
            TxnOutcome::Aborted => {
                if d == Some(true) {
                    return Err(format!(
                        "site{site} recovers with a durable abort while the transaction committed"
                    ));
                }
            }
            TxnOutcome::AbortOnRecovery => {
                if d == Some(true) && !acceptor {
                    return Err(format!(
                        "site{site} recovers not having voted yes while the transaction committed"
                    ));
                }
            }
            TxnOutcome::MustAsk { state, class, aligned_class } => {
                if d == Some(true)
                    && !acceptor
                    && !self.analysis.yes_voted(SiteId(site as u32), StateId(state))
                {
                    return Err(format!(
                        "site{site} recovers in a non-yes-voted state (id {state}) while the \
                         transaction committed"
                    ));
                }
                if d == Some(false) && class == class_codes::COMMITTED {
                    return Err(format!(
                        "site{site} recovers in a committed-class state while the transaction \
                         aborted"
                    ));
                }
                match aligned_class {
                    Some(c) if c == class_codes::COMMITTED && d == Some(false) => {
                        return Err(format!(
                            "site{site} durably aligned to the committed class while the \
                             transaction aborted"
                        ));
                    }
                    Some(c) if c == class_codes::ABORTED && d == Some(true) => {
                        return Err(format!(
                            "site{site} durably aligned to the aborted class while the \
                             transaction committed"
                        ));
                    }
                    _ => {}
                }
            }
        }
        Ok(())
    }

    /// OR another walker's witnessed-state bitmap into this one. The
    /// union is order-independent, so the merged bitmap is identical at
    /// any thread count.
    pub fn merge(&mut self, other: &Oracles<'_>) {
        self.witnessed.merge(&other.witnessed);
    }

    /// OR a standalone [`Witnessed`] bitmap (a per-plan accumulator from
    /// the parallel sweep or the canonical redo) into this one.
    pub fn absorb(&mut self, witnessed: &Witnessed) {
        self.witnessed.merge(witnessed);
    }

    /// Analytically occupied `(site, state)` slots never witnessed by any
    /// explored execution — empty exactly when the operational engine
    /// covered the full reachable state graph (prediction completeness,
    /// meaningful only after an untruncated exploration of all vote
    /// plans).
    pub fn unwitnessed(&self) -> Vec<(SiteId, StateId)> {
        let mut out = Vec::new();
        for (i, fsa) in self.protocol.fsas().iter().enumerate() {
            for s in 0..fsa.state_count() {
                let (site, state) = (SiteId(i as u32), StateId(s as u32));
                if self.analysis.occupied(site, state) && !self.witnessed.0[i][s] {
                    out.push((site, state));
                }
            }
        }
        out
    }

    /// Human-readable name of a slot, for reports.
    pub fn slot_name(&self, site: SiteId, state: StateId) -> String {
        format!("site{}:{}", site.index(), self.protocol.fsa(site).state(state).name)
    }
}
