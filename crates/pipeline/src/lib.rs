//! # nbc-pipeline — a concurrent multi-transaction commit scheduler
//!
//! The rest of the repository studies one commit round at a time. This
//! crate asks the throughput question: what happens when a cluster keeps
//! *many* distributed transactions in flight, each running its own
//! 2PC/3PC round over shared sites, logs, and lock tables?
//!
//! Three mechanisms interact:
//!
//! * **Multiplexing** — every round is an independent [`nbc_engine`]
//!   simulation tagged with its transaction id and started mid-timeline;
//!   the scheduler interleaves all pending events in global time order,
//!   so the merged execution is one deterministic discrete-event history.
//! * **Group commit** — per-site WALs batch sync requests inside a
//!   configurable window ([`nbc_storage::Wal::sync_batched`]); the report
//!   counts how many physical forces the overlap saved.
//! * **Admission control** — wait-die locking at admission, with parked
//!   (waiting) transactions, classic die-and-retry restarts, and
//!   termination-protocol reaping of blocked 2PC rounds so strand-locks
//!   are a measurable cost instead of a wedge.
//!
//! Everything is deterministic: the same seed produces the same
//! interleaving and a bit-identical [`ThroughputReport`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod report;
pub mod scheduler;
pub mod txn;

pub use report::ThroughputReport;
pub use scheduler::{Pipeline, PipelineConfig};
pub use txn::{bank_transfer_txns, PipeOp, PipelineTxn};
