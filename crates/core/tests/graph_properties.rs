//! Structural properties of reachable state graphs, checked across the
//! catalog and the synthesized/k-phase families.

use nbc_core::kpc::k_phase_central;
use nbc_core::protocols::catalog;
use nbc_core::{Analysis, ReachGraph, SiteId, StateClass, StateId};

/// Every catalog graph is a DAG: commit protocols are acyclic, so a global
/// state can never recur.
#[test]
fn reachable_graphs_are_acyclic() {
    for n in 2..=4 {
        for p in catalog(n) {
            let g = ReachGraph::build(&p).unwrap();
            // Kahn's algorithm must consume every node.
            let mut indeg = vec![0usize; g.node_count()];
            for u in 0..g.node_count() as u32 {
                for e in g.edges(u) {
                    indeg[e.to as usize] += 1;
                }
            }
            let mut queue: Vec<u32> =
                (0..g.node_count() as u32).filter(|&i| indeg[i as usize] == 0).collect();
            let mut removed = 0;
            while let Some(u) = queue.pop() {
                removed += 1;
                for e in g.edges(u) {
                    indeg[e.to as usize] -= 1;
                    if indeg[e.to as usize] == 0 {
                        queue.push(e.to);
                    }
                }
            }
            assert_eq!(removed, g.node_count(), "{}: cycle in reachable graph", p.name);
        }
    }
}

/// Edges advance exactly one site, and never out of a final local state.
#[test]
fn edges_advance_one_site_monotonically() {
    for p in catalog(3) {
        let g = ReachGraph::build(&p).unwrap();
        for u in 0..g.node_count() as u32 {
            let from = g.node(u);
            for e in g.edges(u) {
                let to = g.node(e.to);
                let mut changed = 0;
                for i in 0..from.locals.len() {
                    if from.locals[i] != to.locals[i] {
                        changed += 1;
                        assert_eq!(i, e.site.index(), "{}: edge site mismatch", p.name);
                        assert!(
                            !g.class_of(e.site, from.locals[i]).is_final(),
                            "{}: transition out of a final state",
                            p.name
                        );
                    }
                }
                assert_eq!(changed, 1, "{}: edge changed {changed} sites", p.name);
            }
        }
    }
}

/// Every state the analysis calls occupied is reachable in the local FSA,
/// and every locally reachable state is occupied (the catalog has no dead
/// states).
#[test]
fn occupied_equals_locally_reachable_for_catalog() {
    for p in catalog(3) {
        let a = Analysis::build(&p).unwrap();
        for site in p.sites() {
            let local = p.fsa(site).reachable_states();
            for (i, &local_reach) in local.iter().enumerate() {
                assert_eq!(
                    a.occupied(site, StateId(i as u32)),
                    local_reach,
                    "{} {site} state {i}",
                    p.name
                );
            }
        }
    }
}

/// Decentralized protocols are site-symmetric: every site sees identical
/// concurrency-class sets and committability for same-named states.
#[test]
fn decentralized_analyses_are_site_symmetric() {
    for p in catalog(3).into_iter().filter(|p| p.paradigm == nbc_core::Paradigm::Decentralized) {
        let a = Analysis::build(&p).unwrap();
        let reference = SiteId(0);
        for site in p.sites().skip(1) {
            for idx in 0..p.fsa(site).state_count() {
                let s = StateId(idx as u32);
                assert_eq!(
                    a.concurrency_classes(reference, s),
                    a.concurrency_classes(site, s),
                    "{}: CS asymmetry at state {idx}",
                    p.name
                );
                assert_eq!(
                    a.committable(reference, s),
                    a.committable(site, s),
                    "{}: committability asymmetry at state {idx}",
                    p.name
                );
            }
        }
    }
}

/// The committable set is upward-closed along the commit path: every
/// successor of a committable state on the way to commit is committable.
#[test]
fn committable_closed_toward_commit() {
    for p in catalog(3).into_iter().chain([k_phase_central(3, 4).unwrap()]) {
        let a = Analysis::build(&p).unwrap();
        for site in p.sites() {
            let fsa = p.fsa(site);
            for t in fsa.transitions() {
                let from_committable = a.occupied(site, t.from) && a.committable(site, t.from);
                let to_abort = fsa.state(t.to).class == StateClass::Aborted;
                if from_committable && !to_abort && a.occupied(site, t.to) {
                    assert!(
                        a.committable(site, t.to),
                        "{} {site}: committable {:?} leads to noncommittable {:?}",
                        p.name,
                        fsa.state(t.from).name,
                        fsa.state(t.to).name
                    );
                }
            }
        }
    }
}

/// Graph construction is deterministic: two builds give identical node and
/// edge sequences.
#[test]
fn graph_build_is_deterministic() {
    for p in catalog(3) {
        let g1 = ReachGraph::build(&p).unwrap();
        let g2 = ReachGraph::build(&p).unwrap();
        assert_eq!(g1.node_count(), g2.node_count());
        assert_eq!(g1.edge_count(), g2.edge_count());
        for u in 0..g1.node_count() as u32 {
            assert_eq!(g1.node(u), g2.node(u), "{}: node {u}", p.name);
            assert_eq!(g1.edges(u), g2.edges(u), "{}: edges of {u}", p.name);
        }
    }
}

/// In every reachable global state the number of outstanding messages is
/// bounded by what the protocol could ever have emitted.
#[test]
fn outstanding_messages_bounded() {
    for p in catalog(3) {
        let g = ReachGraph::build(&p).unwrap();
        let max_emit: usize = p
            .fsas()
            .iter()
            .map(|f| f.transitions().iter().map(|t| t.emit.len()).sum::<usize>())
            .sum();
        let initial = p.initial_msgs().len();
        for u in 0..g.node_count() as u32 {
            assert!(
                g.node(u).msgs.len() <= max_emit + initial,
                "{}: node {u} holds impossible message count",
                p.name
            );
        }
    }
}
