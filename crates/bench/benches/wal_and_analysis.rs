//! Substrate microbenchmarks: WAL append/recover throughput, CRC-32, and
//! the KV store's transactional operations.

use nbc_bench::BenchGroup;
use nbc_storage::crc32::crc32;
use nbc_storage::{KvStore, LogRecord, Wal};
use std::hint::black_box;

fn bench_wal_append() {
    let mut g = BenchGroup::new("wal_append");
    for &batch in &[100usize, 1000] {
        g.bench(&format!("progress_records/{batch}"), || {
            let mut wal = Wal::new();
            for i in 0..batch as u64 {
                wal.append(&LogRecord::Progress { txn: i, state: 1, class: 1 })
                    .expect("wal record fits");
            }
            wal.sync();
            wal.len()
        });
        let value = vec![0xAAu8; 64];
        g.bench(&format!("put_records_64b/{batch}"), || {
            let mut wal = Wal::new();
            for i in 0..batch as u64 {
                wal.append(&LogRecord::Put {
                    txn: i,
                    key: format!("key{i:08}").into_bytes(),
                    value: value.clone(),
                })
                .expect("wal record fits");
            }
            wal.sync();
            wal.len()
        });
    }
}

fn bench_wal_recover() {
    let mut wal = Wal::new();
    for i in 0..5_000u64 {
        wal.append(&LogRecord::Put {
            txn: i % 50,
            key: format!("key{i:08}").into_bytes(),
            value: vec![0x55u8; 64],
        })
        .expect("wal record fits");
        if i % 50 == 49 {
            wal.append(&LogRecord::Decision { txn: i % 50, commit: i % 2 == 0 })
                .expect("wal record fits");
        }
    }
    wal.sync();
    let image = wal.crash_image();
    let mut g = BenchGroup::new("wal_recover");
    g.bench("decode_5k_records", || Wal::recover(black_box(&image)).unwrap().len());
    let records = Wal::recover(&image).unwrap();
    g.bench("redo_5k_records", || KvStore::redo_from_log(black_box(&records)).len());
}

fn bench_crc32() {
    let mut g = BenchGroup::new("crc32");
    for &size in &[64usize, 4096] {
        let data = vec![0xC3u8; size];
        g.bench(&format!("{size}"), || crc32(black_box(&data)));
    }
}

fn bench_kv_txn() {
    let mut g = BenchGroup::new("kv_txn");
    g.bench("stage_commit_100", || {
        let mut kv = KvStore::new();
        for i in 0..100u64 {
            kv.stage_put(1, format!("k{i}").into_bytes(), vec![0; 16]);
        }
        kv.commit(1);
        kv.len()
    });
}

fn main() {
    bench_wal_append();
    bench_wal_recover();
    bench_crc32();
    bench_kv_txn();
}
