//! The Fundamental Nonblocking Theorem.
//!
//! Paper (§"The fundamental nonblocking theorem"): *a protocol is
//! nonblocking if and only if, in every participating site, it satisfies
//! both of the following conditions:*
//!
//! 1. *there exists no local state such that its concurrency set contains
//!    both an abort and a commit state;*
//! 2. *there exists no noncommittable state whose concurrency set contains
//!    a commit state.*
//!
//! Necessity follows from the single-operational-site case: such a site
//! must infer the progress of all others solely from its local state. A
//! site can safely abort iff its concurrency set contains no commit state,
//! and can safely commit iff its state is committable and the concurrency
//! set contains no abort state. A state violating either condition can do
//! neither — it *blocks*.

use std::fmt;

use crate::analysis::Analysis;
use crate::error::ProtocolError;
use crate::ids::{SiteId, StateId};
use crate::protocol::Protocol;

/// A concrete witness of a theorem-condition violation.
///
/// `site`/`state` locate the violating local state; the witnesses are
/// concurrency-set members proving the condition.
#[derive(Clone, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum Violation {
    /// Condition 1: the concurrency set of `state` contains both a commit
    /// state and an abort state.
    MixedConcurrency {
        site: SiteId,
        state: StateId,
        commit_witness: (SiteId, StateId),
        abort_witness: (SiteId, StateId),
    },
    /// Condition 2: `state` is noncommittable and its concurrency set
    /// contains a commit state.
    NoncommittableSeesCommit { site: SiteId, state: StateId, commit_witness: (SiteId, StateId) },
}

impl Violation {
    /// The site whose state violates a condition.
    pub fn site(&self) -> SiteId {
        match self {
            Self::MixedConcurrency { site, .. } | Self::NoncommittableSeesCommit { site, .. } => {
                *site
            }
        }
    }

    /// The violating local state.
    pub fn state(&self) -> StateId {
        match self {
            Self::MixedConcurrency { state, .. } | Self::NoncommittableSeesCommit { state, .. } => {
                *state
            }
        }
    }
}

/// Result of checking the theorem against a protocol.
#[derive(Clone, Debug)]
pub struct TheoremReport {
    /// Protocol name the report refers to.
    pub protocol: String,
    /// All violations found (empty iff nonblocking).
    pub violations: Vec<Violation>,
    /// Per-site cleanliness: `clean[i]` iff site `i` has no violating
    /// state. The k-resiliency corollary is computed from this.
    pub clean: Vec<bool>,
}

impl TheoremReport {
    /// True iff the protocol satisfies both conditions at every site —
    /// i.e. it is nonblocking (tolerates failure of all but one site).
    pub fn nonblocking(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violations of condition 1 only.
    pub fn mixed_concurrency(&self) -> impl Iterator<Item = &Violation> {
        self.violations.iter().filter(|v| matches!(v, Violation::MixedConcurrency { .. }))
    }

    /// Violations of condition 2 only.
    pub fn noncommittable_sees_commit(&self) -> impl Iterator<Item = &Violation> {
        self.violations.iter().filter(|v| matches!(v, Violation::NoncommittableSeesCommit { .. }))
    }
}

impl fmt::Display for TheoremReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.nonblocking() {
            writeln!(f, "{}: NONBLOCKING (both theorem conditions hold)", self.protocol)?;
        } else {
            writeln!(f, "{}: BLOCKING ({} violation(s))", self.protocol, self.violations.len())?;
            for v in &self.violations {
                match v {
                    Violation::MixedConcurrency { site, state, .. } => writeln!(
                        f,
                        "  cond.1 violated: {site} state {state:?} is concurrent with \
                         both a commit and an abort state"
                    )?,
                    Violation::NoncommittableSeesCommit { site, state, .. } => writeln!(
                        f,
                        "  cond.2 violated: {site} state {state:?} is noncommittable \
                         yet concurrent with a commit state"
                    )?,
                }
            }
        }
        Ok(())
    }
}

/// Check the fundamental nonblocking theorem, building the analysis.
pub fn check(protocol: &Protocol) -> Result<TheoremReport, ProtocolError> {
    let analysis = Analysis::build(protocol)?;
    Ok(check_with(protocol, &analysis))
}

/// Check against a precomputed [`Analysis`] (reusable across checks).
pub fn check_with(protocol: &Protocol, analysis: &Analysis) -> TheoremReport {
    let mut violations = Vec::new();
    let mut clean = vec![true; protocol.n_sites()];

    for site in protocol.sites() {
        let fsa = protocol.fsa(site);
        for idx in 0..fsa.state_count() {
            let s = StateId(idx as u32);
            if !analysis.occupied(site, s) {
                continue;
            }
            // Both witnesses in one pass over the bitset row (minimum
            // commit-class and abort-class members — the same elements the
            // old two linear scans of the BTreeSet found).
            let (commit_witness, abort_witness) = analysis.cs_witnesses(site, s);

            if let (Some(cw), Some(aw)) = (commit_witness, abort_witness) {
                violations.push(Violation::MixedConcurrency {
                    site,
                    state: s,
                    commit_witness: cw,
                    abort_witness: aw,
                });
                clean[site.index()] = false;
            }
            if let Some(cw) = commit_witness {
                if !analysis.committable(site, s) {
                    violations.push(Violation::NoncommittableSeesCommit {
                        site,
                        state: s,
                        commit_witness: cw,
                    });
                    clean[site.index()] = false;
                }
            }
        }
    }

    TheoremReport { protocol: protocol.name.clone(), violations, clean }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::{central_2pc, central_3pc, decentralized_2pc, decentralized_3pc};

    #[test]
    fn both_2pc_protocols_block_for_either_reason() {
        // "Notice that both 2PC protocols can block for either reason."
        for p in [central_2pc(3), decentralized_2pc(3)] {
            let r = check(&p).unwrap();
            assert!(!r.nonblocking(), "{}", p.name);
            assert!(r.mixed_concurrency().count() > 0, "{}: cond.1", p.name);
            assert!(r.noncommittable_sees_commit().count() > 0, "{}: cond.2", p.name);
        }
    }

    #[test]
    fn both_3pc_protocols_are_nonblocking() {
        for n in 2..=4 {
            for p in [central_3pc(n), decentralized_3pc(n)] {
                let r = check(&p).unwrap();
                assert!(r.nonblocking(), "{}: {r}", p.name);
                assert!(r.clean.iter().all(|&c| c));
            }
        }
    }

    #[test]
    fn central_2pc_violations_are_at_slave_wait_states() {
        let p = central_2pc(3);
        let r = check(&p).unwrap();
        for v in &r.violations {
            let site = v.site();
            assert_ne!(site, SiteId(0), "coordinator states are clean in central 2PC");
            let fsa = p.fsa(site);
            assert_eq!(fsa.state(v.state()).name, "w");
        }
        // Coordinator clean, every slave dirty.
        assert_eq!(r.clean, vec![true, false, false]);
    }

    #[test]
    fn decentralized_2pc_every_site_dirty() {
        let p = decentralized_2pc(4);
        let r = check(&p).unwrap();
        assert!(r.clean.iter().all(|&c| !c));
    }

    #[test]
    fn report_display_mentions_conditions() {
        let r = check(&central_2pc(2)).unwrap();
        let s = r.to_string();
        assert!(s.contains("BLOCKING"));
        assert!(s.contains("cond.1") || s.contains("cond.2"));
        let r = check(&central_3pc(2)).unwrap();
        assert!(r.to_string().contains("NONBLOCKING"));
    }

    #[test]
    fn violation_accessors() {
        let r = check(&central_2pc(2)).unwrap();
        let v = &r.violations[0];
        assert_eq!(v.site(), SiteId(1));
        let _ = v.state();
    }
}
