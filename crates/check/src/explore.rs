//! The schedule explorer: bounded, deterministic DFS over every
//! interleaving of message delivery, message loss, site crash and site
//! recovery that the budgets allow.
//!
//! ## State space
//!
//! Exploration runs the real engine [`Runner`] in **lockstep**
//! configuration (zero latency, zero detection delay): every scheduled
//! event sits at the same instant, so *which event fires next* is pure
//! scheduler choice and logical time vanishes from the state. The explored
//! actions are:
//!
//! * **deliver** the head of one FIFO channel (per-link message order and
//!   per-observer detector order are preserved; only heads are legal);
//! * **crash** an up site, losing a *suffix* of its undelivered sends —
//!   one branch per suffix length, which is the explorer-granularity form
//!   of the paper's non-atomic transition failure (crash after sending
//!   only a prefix of a transition's messages);
//! * **recover** a down site (budgeted separately), which replays its WAL
//!   and runs the paper's recovery protocol;
//! * **drop** the most recently sent in-flight message of a link — a
//!   deliberate *assumption violation* (the paper assumes a reliable
//!   network), budgeted separately and off by default.
//!
//! ## Deduplication and pruning
//!
//! States are deduplicated by the engine's behavioral
//! [`digest`](Runner::digest) (a 128-bit fingerprint via the same
//! double-hash construction as [`nbc_core::fingerprint128`]) mixed with
//! the remaining budgets. The map stores the best remaining depth a state
//! was reached with; a revisit with less remaining depth is pruned, a
//! revisit with more is re-expanded (so the depth bound never hides states
//! a shallower path could reach).
//!
//! When every fault budget is exhausted and every pending event targets a
//! distinct site, all pending heads are **fused** into one macro-step:
//! handlers of distinct destination sites commute as state transformers,
//! nothing can interleave between them, and decisions are monotone (an
//! oracle violation visible in a skipped intermediate state is still
//! visible in the fused successor — outcomes never unset and the visited
//! monitors are cumulative). Two further sound reductions: events
//! addressed to a permanently-down site (no recovery budget left) are
//! pure no-ops and are drained eagerly rather than branched over, and the
//! behavioral digest canonicalizes arrival-order collections whose
//! consumers are order-independent. Together these make full-plan-set
//! exhaustive checking sub-second at n=3 and a few seconds at n=4; at
//! n=5 a single vote plan takes tens of seconds (fault-free n=5 is
//! milliseconds — the crash-point × interleaving product is what grows).

use std::collections::HashMap;

use nbc_core::{fingerprint128, Analysis, Protocol};
use nbc_engine::{channel_of, Channel, RunConfig, Runner, TerminationRule, Wire};
use nbc_simnet::NetEvent;

use crate::oracle::Oracles;
use crate::schedule::{channel_head, channel_tail, Step};

/// Knobs of one check run.
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// Maximum scheduler actions per execution.
    pub depth: u32,
    /// Crash budget per execution.
    pub faults: u32,
    /// Recovery budget per execution.
    pub recoveries: u32,
    /// Lossy-network drop budget per execution (assumption violation;
    /// default 0).
    pub drops: u32,
    /// Termination rule the engine runs under.
    pub rule: TerminationRule,
    /// Seed permuting the exploration order (the verdict is order
    /// independent; the seed varies which witness is found first).
    pub seed: u64,
    /// Check only this vote plan instead of all `2^n`.
    pub vote_plan: Option<Vec<bool>>,
    /// Safety valve: stop (and report truncation) past this many distinct
    /// states per vote plan.
    pub max_states: usize,
}

impl Default for CheckOptions {
    fn default() -> Self {
        Self {
            depth: 64,
            faults: 1,
            recoveries: 0,
            drops: 0,
            rule: TerminationRule::Skeen,
            seed: 0,
            vote_plan: None,
            max_states: 1 << 21,
        }
    }
}

/// Remaining fault budgets along one path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Budgets {
    faults: u32,
    recoveries: u32,
    drops: u32,
}

/// One branchable scheduler action.
#[derive(Debug, Clone)]
enum Action {
    /// Deliver the head of this channel.
    Fire(Channel),
    /// Deliver the heads of all these channels as one commuting
    /// macro-step.
    Fuse(Vec<Channel>),
    /// Crash `site` and lose the last `lose` of its undelivered sends.
    CrashSuffix { site: usize, lose: usize },
    /// Restart a down site.
    Recover { site: usize },
    /// Lose the most recently sent in-flight message of this link.
    DropTail { src: usize, dst: usize },
}

impl Action {
    /// Depth cost: the number of schedule steps the action expands to.
    fn cost(&self) -> u32 {
        match self {
            Action::Fire(_) | Action::Recover { .. } | Action::DropTail { .. } => 1,
            Action::Fuse(chs) => chs.len() as u32,
            Action::CrashSuffix { lose, .. } => 1 + *lose as u32,
        }
    }
}

/// Exploration counters.
#[derive(Debug, Clone, Default)]
pub struct ExploreStats {
    /// Distinct `(behavioral digest, budgets)` states, summed over plans.
    pub distinct_states: usize,
    /// Scheduler actions applied (branch executions, not schedule steps).
    pub actions: u64,
    /// Commuting macro-steps taken.
    pub fused: u64,
    /// Vote plans explored.
    pub plans: usize,
    /// True if the depth bound or state cap cut any branch short — the
    /// exploration was *not* exhaustive.
    pub truncated: bool,
}

/// Result of exploring one protocol under one option set.
pub struct Exploration<'a> {
    /// Accumulated oracle state (witness bitmap and recovery checks).
    pub oracles: Oracles<'a>,
    /// Counters.
    pub stats: ExploreStats,
    /// The path to the first blocked quiescent state found, with the vote
    /// plan it occurred under. Unshrunk.
    pub blocking_witness: Option<(Vec<bool>, Vec<Step>)>,
    /// First hard oracle violation: `(oracle, detail, vote plan, path)`.
    /// Unshrunk.
    pub violation: Option<(&'static str, String, Vec<bool>, Vec<Step>)>,
}

/// The transaction id every checked execution runs under.
pub const CHECK_TXN: u64 = 1;

/// Destination site of a pending event — the only site its handler
/// mutates.
fn dest_of(ev: &NetEvent<Wire>) -> usize {
    match ev {
        NetEvent::Deliver { dst, .. } => *dst,
        NetEvent::FailureNotice { observer, .. } | NetEvent::RecoveryNotice { observer, .. } => {
            *observer
        }
    }
}

/// The schedule step that delivers `ev`.
fn step_for(ev: &NetEvent<Wire>) -> Step {
    match ev {
        NetEvent::Deliver { src, dst, .. } => Step::Deliver { src: *src, dst: *dst },
        NetEvent::FailureNotice { observer, crashed } => {
            Step::FailNotice { observer: *observer, crashed: *crashed }
        }
        NetEvent::RecoveryNotice { observer, recovered } => {
            Step::RecoveryNotice { observer: *observer, recovered: *recovered }
        }
    }
}

struct Explorer<'a> {
    protocol: &'a Protocol,
    analysis: &'a Analysis,
    opts: CheckOptions,
    /// Fingerprint → best remaining depth it was expanded with.
    seen: HashMap<u128, u32>,
    votes: Vec<bool>,
    path: Vec<Step>,
    oracles: Oracles<'a>,
    stats: ExploreStats,
    blocking_witness: Option<(Vec<bool>, Vec<Step>)>,
    violation: Option<(&'static str, String, Vec<bool>, Vec<Step>)>,
}

/// Explore every schedule of `protocol` within `opts`' budgets, for every
/// vote plan (or the one plan `opts.vote_plan` fixes).
pub fn explore<'a>(
    protocol: &'a Protocol,
    analysis: &'a Analysis,
    opts: &CheckOptions,
) -> Exploration<'a> {
    let n = protocol.n_sites();
    let mut ex = Explorer {
        protocol,
        analysis,
        opts: opts.clone(),
        seen: HashMap::new(),
        votes: Vec::new(),
        path: Vec::new(),
        oracles: Oracles::new(protocol, analysis, CHECK_TXN),
        stats: ExploreStats::default(),
        blocking_witness: None,
        violation: None,
    };
    let plans: Vec<Vec<bool>> = match &opts.vote_plan {
        Some(p) => vec![p.clone()],
        // All 2^n plans, all-yes first (the plan where commit — and hence
        // commit-blocking — lives). Quorum-based protocols enumerate over
        // participants only: acceptor transitions are untagged (acceptors
        // hold no vote), so acceptor plan bits would only replicate each
        // execution 2^(2f+1) times.
        None => {
            let np = protocol.n_participants();
            (0..1u32 << np)
                .map(|bits| (0..n).map(|i| i >= np || bits & (1 << i) == 0).collect())
                .collect()
        }
    };
    for votes in plans {
        ex.explore_plan(votes);
        if ex.violation.is_some() {
            break;
        }
    }
    Exploration {
        oracles: ex.oracles,
        stats: ex.stats,
        blocking_witness: ex.blocking_witness,
        violation: ex.violation,
    }
}

/// Build the lockstep engine configuration for one vote plan.
pub fn plan_config(n: usize, votes: &[bool], rule: TerminationRule) -> RunConfig {
    let mut config = RunConfig::lockstep(n);
    config.votes = votes.to_vec();
    config.rule = rule;
    config.txn_id = CHECK_TXN;
    config
}

impl<'a> Explorer<'a> {
    fn explore_plan(&mut self, votes: Vec<bool>) {
        // The behavioral digest deliberately excludes the vote plan (votes
        // drive behavior but are config, not state), so the seen-set must
        // be per plan: identical digests under different plans are
        // different futures.
        self.seen.clear();
        self.votes = votes;
        self.stats.plans += 1;
        let config = plan_config(self.protocol.n_sites(), &self.votes, self.opts.rule);
        let runner = Runner::new(self.protocol, self.analysis, config);
        let budgets = Budgets {
            faults: self.opts.faults,
            recoveries: self.opts.recoveries,
            drops: self.opts.drops,
        };
        self.dfs(&runner, self.opts.depth, budgets);
    }

    fn dfs(&mut self, runner: &Runner<'a>, depth_left: u32, b: Budgets) {
        if self.violation.is_some() {
            return;
        }
        if let Err((oracle, detail)) = self.oracles.observe_state(runner) {
            self.violation = Some((oracle, detail, self.votes.clone(), self.path.clone()));
            return;
        }
        if runner.net_quiescent()
            && self.blocking_witness.is_none()
            && !Oracles::blocked_sites(runner).is_empty()
        {
            self.blocking_witness = Some((self.votes.clone(), self.path.clone()));
        }

        let fp = fingerprint128(&(runner.digest(), b.faults, b.recoveries, b.drops));
        match self.seen.get(&fp) {
            Some(&best) if best >= depth_left => return,
            _ => {}
        }
        if self.seen.len() >= self.opts.max_states {
            self.stats.truncated = true;
            return;
        }
        if self.seen.insert(fp, depth_left).is_none() {
            self.stats.distinct_states += 1;
        }

        let mut actions = self.enumerate(runner, b);
        if actions.is_empty() {
            return;
        }
        if depth_left == 0 {
            self.stats.truncated = true;
            return;
        }
        if self.opts.seed != 0 && actions.len() > 1 {
            let rot = fingerprint128(&(self.opts.seed, runner.digest(), depth_left)) as usize;
            let len = actions.len();
            actions.rotate_left(rot % len);
        }
        let mark = self.path.len();
        for action in actions {
            let cost = action.cost();
            if cost > depth_left {
                self.stats.truncated = true;
                continue;
            }
            let mut next = runner.clone();
            let Some(b2) = self.apply(&mut next, &action, b) else {
                self.path.truncate(mark);
                return; // recovery-oracle violation recorded
            };
            self.stats.actions += 1;
            self.dfs(&next, depth_left - cost, b2);
            self.path.truncate(mark);
            if self.violation.is_some() {
                return;
            }
        }
    }

    /// All branchable actions in `runner` under remaining budgets `b`, in
    /// deterministic order.
    fn enumerate(&self, runner: &Runner<'a>, b: Budgets) -> Vec<Action> {
        let pending = runner.pending_events();
        // First (head) and last (tail) pending event per channel, in
        // ascending send order.
        let mut channels: Vec<Channel> = Vec::new();
        for (_, ev) in &pending {
            let ch = channel_of(ev);
            if !channels.contains(&ch) {
                channels.push(ch);
            }
        }
        channels.sort_unstable();

        let no_faults = b.faults == 0 && b.recoveries == 0 && b.drops == 0;
        if no_faults && !pending.is_empty() {
            let mut dests: Vec<usize> = pending.iter().map(|(_, ev)| dest_of(ev)).collect();
            dests.sort_unstable();
            let distinct = dests.windows(2).all(|w| w[0] != w[1]);
            if distinct {
                // Every pending event is its channel's head and targets
                // its own site: all interleavings commute, and no fault
                // can intervene — fire them all as one macro-step.
                return vec![Action::Fuse(channels)];
            }
        }

        // Events to a down site are still fired (the dead site simply
        // never reads them) — leaving them pending would stall quiescence
        // detection forever.
        let mut actions: Vec<Action> = channels.iter().map(|&ch| Action::Fire(ch)).collect();
        if b.drops > 0 {
            for &ch in &channels {
                if let Channel::Link(src, dst) = ch {
                    actions.push(Action::DropTail { src, dst });
                }
            }
        }
        if b.faults > 0 {
            for (site, s) in runner.sites().iter().enumerate() {
                if !s.is_up() {
                    continue;
                }
                // Quorum-based protocols promise nonblocking only against
                // acceptor crashes; participant crashes are outside the
                // verified fault model, so the budget is spent on the
                // crashes the quorum must absorb.
                if self.protocol.quorum().is_some() && !self.protocol.is_acceptor(site) {
                    continue;
                }
                let in_flight = pending
                    .iter()
                    .filter(|(_, ev)| matches!(ev, NetEvent::Deliver { src, .. } if *src == site))
                    .count();
                for lose in 0..=in_flight {
                    actions.push(Action::CrashSuffix { site, lose });
                }
            }
        }
        if b.recoveries > 0 {
            for (site, s) in runner.sites().iter().enumerate() {
                if !s.is_up() {
                    actions.push(Action::Recover { site });
                }
            }
        }
        actions
    }

    /// Apply one action, appending its schedule steps to the path and
    /// returning the remaining budgets. Returns `None` when the recovery
    /// oracle rejected a `Recover` (the violation has been recorded).
    fn apply(&mut self, runner: &mut Runner<'a>, action: &Action, b: Budgets) -> Option<Budgets> {
        let b2 = self.apply_inner(runner, action, b)?;
        // Events addressed to a down site are pure no-ops (the engine
        // discards them before touching any state), and once the recovery
        // budget is spent the site stays down forever — so fire them
        // eagerly instead of branching over every position they could
        // occupy in the schedule. Recovering sites are *not* drained:
        // their protocol traffic is live.
        if b2.recoveries == 0 {
            loop {
                let dead = runner.pending_events().into_iter().find_map(|(seq, ev)| {
                    (!runner.sites()[dest_of(&ev)].is_up()).then(|| (seq, step_for(&ev)))
                });
                let Some((seq, step)) = dead else { break };
                self.path.push(step);
                runner.fire_scheduled(seq);
            }
        }
        Some(b2)
    }

    fn apply_inner(
        &mut self,
        runner: &mut Runner<'a>,
        action: &Action,
        b: Budgets,
    ) -> Option<Budgets> {
        match action {
            Action::Fire(ch) => {
                let (seq, ev) = channel_head(runner, *ch).expect("enumerated channel has a head");
                self.path.push(step_for(&ev));
                runner.fire_scheduled(seq);
                Some(b)
            }
            Action::Fuse(chs) => {
                self.stats.fused += 1;
                // Snapshot the heads first: a fired handler's new sends
                // must not join this macro-step.
                let heads: Vec<(u64, NetEvent<Wire>)> =
                    chs.iter().map(|&ch| channel_head(runner, ch).expect("head")).collect();
                for (seq, ev) in heads {
                    self.path.push(step_for(&ev));
                    runner.fire_scheduled(seq);
                }
                Some(b)
            }
            Action::CrashSuffix { site, lose } => {
                self.path.push(Step::Crash { site: *site });
                // Identify the suffix before crashing: the notices the
                // crash schedules are not deliveries and never match, but
                // snapshotting first keeps the intent obvious.
                let mut sends: Vec<(u64, usize)> = runner
                    .pending_events()
                    .iter()
                    .filter_map(|(seq, ev)| match ev {
                        NetEvent::Deliver { src, dst, .. } if src == site => Some((*seq, *dst)),
                        _ => None,
                    })
                    .collect();
                runner.crash_now(*site);
                // Lose the `lose` most recent sends, newest first — each
                // is the current tail of its link, which is what the
                // `Drop` step replays.
                sends.sort_unstable_by_key(|&(seq, _)| std::cmp::Reverse(seq));
                for &(seq, dst) in sends.iter().take(*lose) {
                    self.path.push(Step::Drop { src: *site, dst });
                    runner.drop_scheduled(seq);
                }
                Some(Budgets { faults: b.faults - 1, ..b })
            }
            Action::Recover { site } => {
                self.path.push(Step::Recover { site: *site });
                if let Err(detail) = self.oracles.check_recovery(runner, *site) {
                    self.violation =
                        Some(("recovery", detail, self.votes.clone(), self.path.clone()));
                    return None;
                }
                runner.recover_now(*site);
                Some(Budgets { recoveries: b.recoveries - 1, ..b })
            }
            Action::DropTail { src, dst } => {
                self.path.push(Step::Drop { src: *src, dst: *dst });
                let (seq, _) =
                    channel_tail(runner, Channel::Link(*src, *dst)).expect("link has tail");
                runner.drop_scheduled(seq);
                Some(Budgets { drops: b.drops - 1, ..b })
            }
        }
    }
}
