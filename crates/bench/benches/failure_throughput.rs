//! B4 (timing face): cluster transaction throughput under coordinator
//! crashes, 2PC vs 3PC over the bank workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nbc_engine::{CrashPoint, CrashSpec, TransitionProgress};
use nbc_txn::{BankWorkload, Cluster, ClusterConfig, ProtocolKind, TxnResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn run_batch(kind: ProtocolKind, crash_pct: u32, txns: u32) -> u64 {
    let mut rng = StdRng::seed_from_u64(7);
    let w0 = BankWorkload::new(3, 12, 1_000, 31);
    let mut c = Cluster::new(ClusterConfig::new(3, kind));
    assert_eq!(c.execute(&w0.setup_ops()), TxnResult::Committed);
    let mut w = w0;
    for _ in 0..txns {
        let (f, t, amt) = w.random_transfer();
        let crashes = if rng.gen_ratio(crash_pct, 100) {
            vec![CrashSpec {
                site: 0,
                point: CrashPoint::OnTransition {
                    ordinal: 2,
                    progress: TransitionProgress::AfterMsgs(rng.gen_range(0..=2)),
                },
                recover_at: None,
            }]
        } else {
            vec![]
        };
        let _ = c.transfer_with_crashes(&w, f, t, amt, &crashes);
    }
    c.stats.committed
}

fn bench_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster_throughput");
    g.sample_size(20);
    const TXNS: u32 = 50;
    g.throughput(Throughput::Elements(TXNS as u64));
    for kind in [ProtocolKind::Central2pc, ProtocolKind::Central3pc] {
        for crash_pct in [0u32, 25] {
            g.bench_with_input(
                BenchmarkId::new(kind.name().replace(' ', "_"), format!("crash{crash_pct}pct")),
                &(kind, crash_pct),
                |b, &(kind, pct)| b.iter(|| run_batch(kind, pct, TXNS)),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
