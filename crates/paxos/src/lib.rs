//! Paxos Commit (Gray & Lamport, "Consensus on Transaction Commit") as a
//! Skeen-style FSA commit protocol.
//!
//! The protocol runs one consensus instance per resource manager's vote.
//! A *leader* (site 0, playing the transaction manager colocated with the
//! first resource manager) distributes the transaction, the remaining
//! resource managers broadcast their votes to a bank of `2f + 1`
//! *acceptors*, and each acceptor relays the outcome of its vote instances
//! to the leader. The leader commits once any `f + 1` acceptors report
//! unanimous yes votes — a majority quorum — so up to `f` acceptor
//! crashes cannot block the decision.
//!
//! With `f = 0` there is a single acceptor and the quorum is 1-of-1: the
//! message flow degenerates to central-site two-phase commit with the
//! acceptor interposed between the slaves and the coordinator (Gray &
//! Lamport obtain exact 2PC by colocating that acceptor with the leader;
//! our model keeps it a distinct site, which costs the two relay messages
//! accounted for in [`paxos_cost`]).
//!
//! Site layout for [`paxos_commit`]`(n, f)`:
//!
//! | sites            | role                                   |
//! |------------------|----------------------------------------|
//! | `0`              | leader (TM + first RM)                 |
//! | `1 .. n`         | resource managers                      |
//! | `n .. n + 2f+1`  | acceptors                              |
//!
//! By Skeen's fundamental nonblocking theorem the protocol is formally
//! *blocking* — the leader's wait state is adjacent to both its commit
//! and abort states, exactly like 2PC — but the theorem's adversary may
//! crash any site. Paxos Commit's guarantee is conditional: it does not
//! block as long as at most `f` *acceptors* crash (and the participants
//! stay up). `nbc check` verifies that conditional guarantee against the
//! protocol's [`QuorumSpec`] instead of the unconditional theorem verdict.

use nbc_core::fsa::{Consume, Envelope, FsaBuilder, StateClass, Vote};
use nbc_core::ids::{MsgKind, SiteId};
use nbc_core::protocol::{InitialMsg, Paradigm, Protocol, QuorumSpec};

/// Acceptor-to-leader relay: "all my vote instances chose Prepared".
pub const ACK_COMMIT: MsgKind = MsgKind::FIRST_CUSTOM;
/// Acceptor-to-leader relay: "some vote instance chose Aborted".
pub const ACK_ABORT: MsgKind = MsgKind(MsgKind::FIRST_CUSTOM.0 + 1);

/// Acceptor state class: every vote instance decided yes, outcome relayed.
pub const ACC_COMMITTABLE: StateClass = StateClass::Custom(0);
/// Acceptor state class: some vote instance decided no, outcome relayed.
pub const ACC_ABORTING: StateClass = StateClass::Custom(1);

/// Build Paxos Commit for `n >= 2` participants (1 leader + `n-1`
/// resource managers) and `2f + 1` acceptors, `n + 2f + 1` sites total.
///
/// # Panics
/// Panics if `n < 2`.
pub fn paxos_commit(n: usize, f: usize) -> Protocol {
    assert!(n >= 2, "paxos commit needs a leader and >=1 resource manager");
    let leader = SiteId(0);
    let rms: Vec<SiteId> = (1..n as u32).map(SiteId).collect();
    let acceptors: Vec<SiteId> = (n as u32..(n + 2 * f + 1) as u32).map(SiteId).collect();

    // Leader (site 0): 2PC coordinator whose commit trigger is a majority
    // of acceptor relays instead of direct slave votes.
    let mut lb = FsaBuilder::new("leader");
    let q1 = lb.state("q1", StateClass::Initial);
    let w1 = lb.state("w1", StateClass::Wait);
    let a1 = lb.state("a1", StateClass::Aborted);
    let c1 = lb.state("c1", StateClass::Committed);

    let to_all = |kind: MsgKind| -> Vec<Envelope> {
        rms.iter().chain(acceptors.iter()).map(|&s| Envelope::new(s, kind)).collect()
    };
    lb.transition(
        q1,
        w1,
        Consume::one(SiteId::CLIENT, MsgKind::REQUEST),
        rms.iter().map(|&s| Envelope::new(s, MsgKind::XACT)).collect(),
        None,
        "request / xact_2..xact_n",
    );
    lb.transition(
        w1,
        c1,
        Consume::Quorum {
            k: (f + 1) as u32,
            srcs: acceptors.iter().map(|&s| (s, ACK_COMMIT)).collect(),
        },
        to_all(MsgKind::COMMIT),
        Some(Vote::Yes),
        "(yes_1) f+1 x ack-commit / commit_*",
    );
    lb.transition(
        w1,
        a1,
        Consume::Any(acceptors.iter().map(|&s| (s, ACK_ABORT)).collect()),
        to_all(MsgKind::ABORT),
        None,
        "ack-abort_j / abort_*",
    );
    lb.transition(
        w1,
        a1,
        Consume::Spontaneous,
        to_all(MsgKind::ABORT),
        Some(Vote::No),
        "(no_1) / abort_*",
    );

    let mut fsas = vec![lb.build()];

    // Resource managers (sites 1..n): 2PC slaves that vote to the acceptor
    // bank instead of the coordinator.
    for _ in &rms {
        let mut rb = FsaBuilder::new("rm");
        let qi = rb.state("q", StateClass::Initial);
        let wi = rb.state("w", StateClass::Wait);
        let ai = rb.state("a", StateClass::Aborted);
        let ci = rb.state("c", StateClass::Committed);
        rb.transition(
            qi,
            wi,
            Consume::one(leader, MsgKind::XACT),
            acceptors.iter().map(|&s| Envelope::new(s, MsgKind::YES)).collect(),
            Some(Vote::Yes),
            "xact / yes_to_acceptors",
        );
        rb.transition(
            qi,
            ai,
            Consume::one(leader, MsgKind::XACT),
            acceptors.iter().map(|&s| Envelope::new(s, MsgKind::NO)).collect(),
            Some(Vote::No),
            "xact / no_to_acceptors",
        );
        rb.transition(wi, ci, Consume::one(leader, MsgKind::COMMIT), vec![], None, "commit /");
        rb.transition(wi, ai, Consume::one(leader, MsgKind::ABORT), vec![], None, "abort /");
        fsas.push(rb.build());
    }

    // Acceptors (sites n..n+2f+1): each runs all n-1 vote instances,
    // collapsed into one FSA move — unanimous yes relays ack-commit, any
    // no relays ack-abort. The acceptor then learns the decision from the
    // leader so its log records the final outcome.
    for _ in &acceptors {
        let mut ab = FsaBuilder::new("acceptor");
        let qj = ab.state("q", StateClass::Initial);
        let caj = ab.state("ca", ACC_COMMITTABLE);
        let aaj = ab.state("aa", ACC_ABORTING);
        let aj = ab.state("a", StateClass::Aborted);
        let cj = ab.state("c", StateClass::Committed);
        ab.transition(
            qj,
            caj,
            Consume::All(rms.iter().map(|&s| (s, MsgKind::YES)).collect()),
            vec![Envelope::new(leader, ACK_COMMIT)],
            None,
            "yes_2..yes_n / ack-commit",
        );
        ab.transition(
            qj,
            aaj,
            Consume::Any(rms.iter().map(|&s| (s, MsgKind::NO)).collect()),
            vec![Envelope::new(leader, ACK_ABORT)],
            None,
            "no_i / ack-abort",
        );
        ab.transition(caj, cj, Consume::one(leader, MsgKind::COMMIT), vec![], None, "commit /");
        ab.transition(caj, aj, Consume::one(leader, MsgKind::ABORT), vec![], None, "abort /");
        ab.transition(aaj, aj, Consume::one(leader, MsgKind::ABORT), vec![], None, "abort /");
        fsas.push(ab.build());
    }

    let mut p = Protocol::new(
        format!("paxos-commit (n={n}, f={f})"),
        Paradigm::Custom,
        fsas,
        vec![InitialMsg { src: SiteId::CLIENT, dst: leader, kind: MsgKind::REQUEST }],
    )
    .with_quorum(QuorumSpec { f, acceptors_from: n });
    p.name_msg(ACK_COMMIT, "ack-commit");
    p.name_msg(ACK_ABORT, "ack-abort");
    p
}

/// Happy-path (all-yes, no-failure) cost of committing one transaction.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct CostRow {
    /// Network messages sent (the injected client request is not counted).
    pub messages: usize,
    /// Forced log writes: in this repo's engine, one per FSA transition
    /// plus one decision record per site.
    pub stable_writes: usize,
    /// Sequential message delays until the last site learns the decision.
    pub delays: usize,
}

/// Measured-model cost of [`paxos_commit`]`(n, f)` as this repo's engine
/// executes it: `(n-1)` xacts + `(n-1)(2f+1)` votes + `2f+1` relays +
/// `(n-1) + (2f+1)` decision broadcasts; 3 stable writes per site
/// (2 transitions + 1 decision record); critical path
/// xact → yes → ack-commit → commit.
pub fn paxos_cost(n: usize, f: usize) -> CostRow {
    let a = 2 * f + 1;
    CostRow {
        messages: (n - 1) + (n - 1) * a + a + (n - 1) + a,
        stable_writes: 3 * (n + a),
        delays: 4,
    }
}

/// Measured-model cost of this repo's `central_2pc(n)`: `3(n-1)`
/// messages, 3 stable writes per site, xact → yes → commit.
pub fn central_2pc_cost(n: usize) -> CostRow {
    CostRow { messages: 3 * (n - 1), stable_writes: 3 * n, delays: 3 }
}

/// Measured-model cost of this repo's `central_3pc(n)`: five rounds of
/// `n - 1` messages each, 4 stable writes per site (3 transitions + 1
/// decision record), xact → yes → prepare → ack → commit. Skeen's 3PC is
/// not in Gray & Lamport's table; this row anchors the comparison.
pub fn central_3pc_cost(n: usize) -> CostRow {
    CostRow { messages: 5 * (n - 1), stable_writes: 4 * n, delays: 5 }
}

/// Gray & Lamport's analytic prediction for Paxos Commit with `n_rms`
/// resource managers (their section 6: `n(f+3) + f` messages counting
/// the co-location optimizations, `n + f + 1` stable writes, 5 message
/// delays dropping to 4 at `f = 0`).
pub fn gl_paxos_cost(n_rms: usize, f: usize) -> CostRow {
    CostRow {
        messages: n_rms * (f + 3) + f,
        stable_writes: n_rms + f + 1,
        delays: if f == 0 { 4 } else { 5 },
    }
}

/// Gray & Lamport's analytic prediction for 2PC with `n_rms` resource
/// managers: `3n - 1` messages, `n + 1` stable writes, 4 delays.
pub fn gl_2pc_cost(n_rms: usize) -> CostRow {
    CostRow { messages: 3 * n_rms - 1, stable_writes: n_rms + 1, delays: 4 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_strictly_across_f() {
        for (n, f) in [(2, 0), (3, 0), (3, 1), (3, 2), (5, 1)] {
            let p = paxos_commit(n, f);
            p.validate_strict().unwrap_or_else(|e| panic!("paxos_commit({n}, {f}) invalid: {e}"));
            assert_eq!(p.n_sites(), n + 2 * f + 1);
            assert_eq!(p.n_participants(), n);
            assert_eq!(p.quorum(), Some(QuorumSpec { f, acceptors_from: n }));
        }
    }

    #[test]
    fn two_phases_like_2pc() {
        assert_eq!(paxos_commit(3, 1).phase_count(), 2);
    }

    #[test]
    fn acceptor_partition() {
        let p = paxos_commit(3, 1);
        assert!(!p.is_acceptor(0) && !p.is_acceptor(2));
        assert!(p.is_acceptor(3) && p.is_acceptor(5));
    }

    #[test]
    fn leader_commits_on_majority_quorum() {
        let p = paxos_commit(4, 2);
        let leader = p.fsa(SiteId(0));
        let commit = leader
            .transitions()
            .iter()
            .find(|t| leader.is_commit(t.to))
            .expect("leader has a commit transition");
        match &commit.consume {
            Consume::Quorum { k, srcs } => {
                assert_eq!(*k, 3); // f + 1 of 2f + 1
                assert_eq!(srcs.len(), 5);
                assert!(srcs.iter().all(|&(s, k)| s.index() >= 4 && k == ACK_COMMIT));
            }
            other => panic!("expected quorum trigger, got {other:?}"),
        }
    }

    #[test]
    fn f0_is_a_one_of_one_quorum() {
        let p = paxos_commit(3, 0);
        let leader = p.fsa(SiteId(0));
        let quorums: Vec<_> = leader
            .transitions()
            .iter()
            .filter_map(|t| match &t.consume {
                Consume::Quorum { k, srcs } => Some((*k, srcs.len())),
                _ => None,
            })
            .collect();
        assert_eq!(quorums, vec![(1, 1)]);
    }

    #[test]
    fn custom_msg_kinds_are_named() {
        let p = paxos_commit(2, 0);
        assert_eq!(p.msg_name(ACK_COMMIT), "ack-commit");
        assert_eq!(p.msg_name(ACK_ABORT), "ack-abort");
    }

    #[test]
    fn cost_model_n3() {
        // n=3 participants, f=0: 2 xacts + 2 votes + 1 relay + 3
        // decisions = 8 messages; 4 sites x 3 writes = 12.
        assert_eq!(paxos_cost(3, 0), CostRow { messages: 8, stable_writes: 12, delays: 4 });
        assert_eq!(central_2pc_cost(3), CostRow { messages: 6, stable_writes: 9, delays: 3 });
        assert_eq!(central_3pc_cost(3), CostRow { messages: 10, stable_writes: 12, delays: 5 });
        // Each extra pair of acceptors costs n-1 vote fan-outs plus a
        // relay plus a decision broadcast.
        assert_eq!(paxos_cost(3, 1).messages, 8 + 2 * (2 + 1 + 1));
    }

    #[test]
    fn gl_predictions_match_the_paper_table() {
        // Gray & Lamport, n = 5 RMs: 2PC 14 msgs / 6 writes; Paxos
        // Commit f=1: 5*4 + 1 = 21 msgs / 7 writes / 5 delays.
        assert_eq!(gl_2pc_cost(5), CostRow { messages: 14, stable_writes: 6, delays: 4 });
        assert_eq!(gl_paxos_cost(5, 1), CostRow { messages: 21, stable_writes: 7, delays: 5 });
        assert_eq!(gl_paxos_cost(5, 0).delays, 4);
    }

    #[test]
    #[should_panic(expected = "leader and >=1 resource manager")]
    fn rejects_single_site() {
        paxos_commit(1, 0);
    }
}
