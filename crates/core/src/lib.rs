//! # nbc-core — the formal model of *Nonblocking Commit Protocols*
//!
//! This crate is a faithful implementation of the formal machinery of Dale
//! Skeen's *"Nonblocking Commit Protocols"* (SIGMOD 1981):
//!
//! * commit protocols as communicating **finite state automata**
//!   ([`fsa`], [`protocol`]), with the paper's complete **protocol
//!   catalog** ([`protocols`]: 1PC, central-site and decentralized 2PC and
//!   3PC) and the **canonical** single-automaton forms ([`canonical`]);
//! * **global transaction states** and the **reachable state graph**
//!   ([`reach`]);
//! * **concurrency sets** and **committable states** ([`analysis`]);
//! * the **fundamental nonblocking theorem** ([`theorem`]), its
//!   **k-resiliency corollary** ([`resilience`]), and the
//!   synchronous-protocol **Lemma** ([`canonical`], [`sync_check`]);
//! * the paper's design method — **buffer-state synthesis** that turns
//!   blocking protocols into nonblocking ones ([`synthesis`]);
//! * **termination decision rules** for backup coordinators
//!   ([`termination`]);
//! * DOT rendering of every figure ([`dot`]).
//!
//! The *execution* side — a discrete-event engine with crash injection,
//! elections, the full termination and recovery protocols — lives in the
//! companion crate `nbc-engine`.
//!
//! ## Quick example
//!
//! ```
//! use nbc_core::protocols::{central_2pc, central_3pc};
//! use nbc_core::theorem;
//!
//! // 2PC violates the fundamental nonblocking theorem...
//! let r2 = theorem::check(&central_2pc(3)).unwrap();
//! assert!(!r2.nonblocking());
//!
//! // ...and 3PC satisfies it.
//! let r3 = theorem::check(&central_3pc(3)).unwrap();
//! assert!(r3.nonblocking());
//! ```
//!
//! ## Synthesizing a nonblocking protocol
//!
//! ```
//! use nbc_core::protocols::central_2pc;
//! use nbc_core::{synthesis, theorem};
//!
//! let blocking = central_2pc(4);
//! let nonblocking = synthesis::make_nonblocking(&blocking).unwrap();
//! assert!(theorem::check(&nonblocking).unwrap().nonblocking());
//! assert_eq!(nonblocking.phase_count(), 3); // 2PC + buffer round = 3PC
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
pub mod canonical;
pub mod codec;
pub mod dot;
pub mod error;
pub mod extmem;
mod facts;
pub mod fsa;
pub mod ids;
pub mod kpc;
pub mod protocol;
pub mod protocols;
pub mod reach;
pub mod recovery_analysis;
pub mod resilience;
pub mod sync_check;
pub mod synthesis;
pub mod termination;
pub mod theorem;
pub mod verify;

pub use analysis::Analysis;
pub use codec::{PackedArena, StateCodec};
pub use error::ProtocolError;
pub use extmem::{RunSet, SpillStats};
pub use fsa::{Consume, Envelope, Fsa, FsaBuilder, StateClass, StateInfo, Transition, Vote};
pub use ids::{MsgKind, SiteId, StateId};
pub use protocol::{InitialMsg, Paradigm, Protocol};
pub use reach::{
    fingerprint128, GlobalState, GraphStats, LevelProgress, ReachGraph, ReachOptions, StreamStats,
};
pub use termination::Decision;
pub use theorem::{TheoremReport, Violation};
