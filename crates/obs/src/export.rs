//! Exporters: JSONL (one event per line) and Chrome trace-event format.
//!
//! Both are deterministic functions of the event sequence — no wall-clock
//! time, no map iteration order — so equal runs export byte-identical
//! files.

use std::collections::{BTreeMap, BTreeSet};

use crate::event::{Event, EventKind};
use crate::json::{array, Obj};

/// Encode one event as a single-line JSON object with a fixed key order:
/// `t`, then `site`/`txn` when present, then `kind`, then the kind's own
/// fields.
pub fn event_json(event: &Event) -> String {
    let mut o = Obj::new().num("t", event.time);
    if let Some(site) = event.site {
        o = o.num("site", u64::from(site));
    }
    if let Some(txn) = event.txn {
        o = o.num("txn", txn);
    }
    o = o.str("kind", event.kind.name());
    o = match &event.kind {
        EventKind::Transition { from, to } => o.str("from", from).str("to", to),
        EventKind::Vote { yes } => o.bool("yes", *yes),
        EventKind::MsgSend { dst, label } => o.num("dst", u64::from(*dst)).str("label", label),
        EventKind::MsgDeliver { src, label } => o.num("src", u64::from(*src)).str("label", label),
        EventKind::MsgDrop { dst, label } => o.num("dst", u64::from(*dst)).str("label", label),
        EventKind::Decision { commit } => o.bool("commit", *commit),
        EventKind::Crash | EventKind::Recover => o,
        EventKind::FailureNotice { crashed } => o.num("crashed", u64::from(*crashed)),
        EventKind::RecoveryNotice { recovered } => o.num("recovered", u64::from(*recovered)),
        EventKind::Suspect { suspected } | EventKind::Unsuspect { suspected } => {
            o.num("suspected", u64::from(*suspected))
        }
        EventKind::Election { backup } => o.num("backup", u64::from(*backup)),
        EventKind::Aligned { class } => o.str("class", class),
        EventKind::Blocked { backup } => o.num("backup", u64::from(*backup)),
        EventKind::WalAppend { bytes, record } => o.num("bytes", *bytes).str("record", record),
        EventKind::WalFsync { physical } => o.bool("physical", *physical),
        EventKind::WalCompact { before, after } => o.num("before", *before).num("after", *after),
        EventKind::Admit | EventKind::Park | EventKind::Die => o,
        EventKind::Reap { commit } => o.bool("commit", *commit),
        EventKind::Partition { groups } => o.str("groups", groups),
        EventKind::Snapshot { committed, in_flight, blocked, wal_bytes } => o
            .num("committed", *committed)
            .num("in_flight", *in_flight)
            .num("blocked", *blocked)
            .num("wal_bytes", *wal_bytes),
        EventKind::Note { text } => o.str("text", text),
    };
    o.build()
}

/// Encode the events as JSONL: one [`event_json`] object per line, each
/// line newline-terminated.
pub fn to_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&event_json(e));
        out.push('\n');
    }
    out
}

/// Chrome trace-event key for a timeline track: pid = transaction (0 when
/// unattributed), tid = site.
fn track(event: &Event) -> (u64, u64) {
    (event.txn.unwrap_or(0), u64::from(event.site.unwrap_or(0)))
}

/// Encode the events in Chrome trace-event JSON (load in Perfetto or
/// `chrome://tracing`). Each (transaction, site) pair becomes a named
/// track; state residencies render as `"X"` duration spans and the
/// remaining site-local events as `"i"` instants. Simulation time units
/// map 1:1 onto trace microseconds.
pub fn to_chrome(events: &[Event]) -> String {
    let mut records: Vec<String> = Vec::new();
    let mut tracks: BTreeSet<(u64, u64)> = BTreeSet::new();
    // Open state-residency span per (pid, tid): (start time, state name).
    let mut open: BTreeMap<(u64, u64), (u64, String)> = BTreeMap::new();
    let mut max_time = 0u64;

    let span = |pid: u64, tid: u64, name: &str, start: u64, end: u64| {
        Obj::new()
            .str("name", name)
            .str("ph", "X")
            .num("ts", start)
            .num("dur", end.saturating_sub(start))
            .num("pid", pid)
            .num("tid", tid)
            .build()
    };

    for e in events {
        max_time = max_time.max(e.time);
        let (pid, tid) = track(e);
        tracks.insert((pid, tid));
        match &e.kind {
            EventKind::Transition { from, to } => {
                let start = match open.remove(&(pid, tid)) {
                    Some((start, state)) => {
                        debug_assert_eq!(&state, from);
                        start
                    }
                    // First transition on this track: the site sat in
                    // `from` since t=0.
                    None => {
                        records.push(span(pid, tid, from, 0, e.time));
                        e.time
                    }
                };
                if start < e.time {
                    records.push(span(pid, tid, from, start, e.time));
                }
                open.insert((pid, tid), (e.time, to.clone()));
            }
            EventKind::Crash
            | EventKind::Recover
            | EventKind::Decision { .. }
            | EventKind::Blocked { .. }
            | EventKind::Election { .. }
            | EventKind::Suspect { .. }
            | EventKind::Unsuspect { .. }
            | EventKind::Aligned { .. }
            | EventKind::Admit
            | EventKind::Park
            | EventKind::Die
            | EventKind::Reap { .. }
            | EventKind::Partition { .. }
            | EventKind::MsgDrop { .. } => {
                records.push(
                    Obj::new()
                        .str("name", e.kind.name())
                        .str("ph", "i")
                        .str("s", "t")
                        .num("ts", e.time)
                        .num("pid", pid)
                        .num("tid", tid)
                        .build(),
                );
            }
            // Send/deliver/votes/WAL traffic are high-volume; they stay in
            // the JSONL export and the metrics table rather than cluttering
            // the timeline.
            _ => {}
        }
    }

    // Close the spans still open at the end of the run.
    for ((pid, tid), (start, state)) in open {
        records.push(span(pid, tid, &state, start, max_time + 1));
    }

    // Name each track after its site (and process after its transaction).
    for (pid, tid) in tracks {
        records.push(
            Obj::new()
                .str("name", "thread_name")
                .str("ph", "M")
                .num("pid", pid)
                .num("tid", tid)
                .raw("args", &Obj::new().str("name", &format!("site{tid}")).build())
                .build(),
        );
        records.push(
            Obj::new()
                .str("name", "process_name")
                .str("ph", "M")
                .num("pid", pid)
                .num("tid", tid)
                .raw("args", &Obj::new().str("name", &format!("txn{pid}")).build())
                .build(),
        );
    }

    Obj::new().raw("traceEvents", &array(records)).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;

    fn sample() -> Vec<Event> {
        vec![
            Event::new(0, EventKind::Transition { from: "q1".into(), to: "w1".into() })
                .at_site(1)
                .for_txn(1),
            Event::new(2, EventKind::MsgSend { dst: 0, label: "yes".into() }).at_site(1).for_txn(1),
            Event::new(4, EventKind::Transition { from: "w1".into(), to: "c1".into() })
                .at_site(1)
                .for_txn(1),
            Event::new(4, EventKind::Decision { commit: true }).at_site(1).for_txn(1),
            Event::new(5, EventKind::Crash).at_site(0),
        ]
    }

    #[test]
    fn jsonl_lines_are_valid_and_ordered() {
        let text = to_jsonl(&sample());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        for line in &lines {
            validate(line).unwrap();
        }
        assert_eq!(
            lines[0],
            "{\"t\":0,\"site\":1,\"txn\":1,\"kind\":\"transition\",\"from\":\"q1\",\"to\":\"w1\"}"
        );
        assert_eq!(lines[4], "{\"t\":5,\"site\":0,\"kind\":\"crash\"}");
    }

    #[test]
    fn chrome_export_is_valid_json_with_spans() {
        let chrome = to_chrome(&sample());
        validate(&chrome).unwrap();
        assert!(chrome.starts_with("{\"traceEvents\":["));
        // w1 residency: entered at t=0 transition, left at t=4.
        assert!(chrome.contains("\"name\":\"w1\",\"ph\":\"X\",\"ts\":0,\"dur\":4"));
        // c1 still open at end (max time 5) → closed at 6.
        assert!(chrome.contains("\"name\":\"c1\",\"ph\":\"X\",\"ts\":4,\"dur\":2"));
        assert!(chrome.contains("\"name\":\"decision\",\"ph\":\"i\""));
        assert!(chrome.contains("\"name\":\"site1\""));
    }

    #[test]
    fn exports_are_deterministic() {
        let a = sample();
        let b = sample();
        assert_eq!(to_jsonl(&a), to_jsonl(&b));
        assert_eq!(to_chrome(&a), to_chrome(&b));
    }
}
