//! The typed event taxonomy.
//!
//! Each variant of [`EventKind`] corresponds to a concept from the paper
//! (or from the throughput machinery built on top of it):
//!
//! | event | paper concept |
//! |---|---|
//! | [`Transition`](EventKind::Transition) | a site's FSA makes a local state transition (`q_i → w_i`), persisted write-ahead |
//! | [`Vote`](EventKind::Vote) | the transition embodies the site's yes/no vote |
//! | [`MsgSend`](EventKind::MsgSend) / [`MsgDeliver`](EventKind::MsgDeliver) | point-to-point messages of the commit/termination/recovery protocols |
//! | [`MsgDrop`](EventKind::MsgDrop) | a partition swallowed a message (deliberate assumption violation) |
//! | [`Decision`](EventKind::Decision) | a site reaches/adopts commit or abort |
//! | [`Crash`](EventKind::Crash) / [`Recover`](EventKind::Recover) | site failure and restart |
//! | [`FailureNotice`](EventKind::FailureNotice) / [`RecoveryNotice`](EventKind::RecoveryNotice) | the perfect failure detector reporting |
//! | [`Suspect`](EventKind::Suspect) / [`Unsuspect`](EventKind::Unsuspect) | timeout-based (imperfect) detection: silence suspected, evidence of life revoking it — the assumption the paper does *not* make |
//! | [`Election`](EventKind::Election) | a site (re-)elects a backup coordinator (termination protocol) |
//! | [`Aligned`](EventKind::Aligned) | termination phase 1: durable alignment to the backup's state class |
//! | [`Blocked`](EventKind::Blocked) | the backup cannot decide — the protocol blocks |
//! | [`WalAppend`](EventKind::WalAppend) / [`WalFsync`](EventKind::WalFsync) / [`WalCompact`](EventKind::WalCompact) | the DT log: stable writes and forces |
//! | [`Admit`](EventKind::Admit) / [`Park`](EventKind::Park) / [`Die`](EventKind::Die) / [`Reap`](EventKind::Reap) | pipeline scheduler: wait-die admission and blocked-round reaping |
//! | [`Partition`](EventKind::Partition) | scheduled network partition |
//! | [`Snapshot`](EventKind::Snapshot) | periodic pipeline metrics row (time-series, not a paper concept) |
//! | [`Note`](EventKind::Note) | free-form diagnostic routed through the sink layer |

/// What happened (see the module table for the paper mapping).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A site's FSA moved `from` → `to` (logged write-ahead).
    Transition {
        /// State name left.
        from: String,
        /// State name entered.
        to: String,
    },
    /// The firing transition embodied the site's vote.
    Vote {
        /// `true` = yes vote.
        yes: bool,
    },
    /// A message was handed to the network.
    MsgSend {
        /// Destination site.
        dst: u32,
        /// Human-readable payload label (wire format rendering).
        label: String,
    },
    /// A message arrived at its destination.
    MsgDeliver {
        /// Source site.
        src: u32,
        /// Human-readable payload label.
        label: String,
    },
    /// A partition swallowed a message (at send time or in flight).
    MsgDrop {
        /// Intended destination site.
        dst: u32,
        /// Human-readable payload label of the dropped message.
        label: String,
    },
    /// A site reached or adopted a final decision.
    Decision {
        /// `true` = commit.
        commit: bool,
    },
    /// The site crashed; volatile state lost, synced WAL prefix survives.
    Crash,
    /// The site restarted and entered the recovery protocol.
    Recover,
    /// The failure detector told this site that `crashed` failed.
    FailureNotice {
        /// The site reported as failed.
        crashed: u32,
    },
    /// The failure detector told this site that `recovered` is back.
    RecoveryNotice {
        /// The site reported as recovered.
        recovered: u32,
    },
    /// Timeout-based detection: this site now suspects `suspected` has
    /// failed (possibly falsely — silence is the only evidence).
    Suspect {
        /// The peer being suspected.
        suspected: u32,
    },
    /// Timeout-based detection: this site cleared its suspicion of
    /// `suspected` (a heartbeat or message proved it alive).
    Unsuspect {
        /// The peer no longer suspected.
        suspected: u32,
    },
    /// The site (re-)entered the termination protocol recognizing `backup`.
    Election {
        /// The elected backup coordinator.
        backup: u32,
    },
    /// Termination phase 1: this site durably aligned to the backup's
    /// state class.
    Aligned {
        /// Class letter aligned to (q/w/p/a/c).
        class: String,
    },
    /// The backup coordinator could not decide: the round is blocked.
    Blocked {
        /// The blocked backup.
        backup: u32,
    },
    /// A record was appended to the write-ahead log.
    WalAppend {
        /// Full frame size in bytes (header + tag + payload).
        bytes: u64,
        /// Record kind (`progress`, `decision`, `aligned-to`, ...).
        record: String,
    },
    /// A durability request on the WAL.
    WalFsync {
        /// `true` if the request paid a physical force; `false` if it rode
        /// an open group-commit batch.
        physical: bool,
    },
    /// The WAL was checkpoint-compacted.
    WalCompact {
        /// Log bytes before compaction.
        before: u64,
        /// Log bytes after compaction.
        after: u64,
    },
    /// Pipeline scheduler admitted this transaction's commit round.
    Admit,
    /// Pipeline scheduler parked this transaction (older than a
    /// conflicting lock holder; wait-die "wait").
    Park,
    /// Pipeline scheduler killed this transaction's admission attempt
    /// (younger than a conflicting holder; wait-die "die", will retry).
    Die,
    /// Pipeline scheduler reaped a blocked round via the recovery
    /// decision, freeing its strand-locks.
    Reap {
        /// `true` if the reap adopted a durable commit.
        commit: bool,
    },
    /// The network partitioned into the given groups.
    Partition {
        /// Debug rendering of the group assignment.
        groups: String,
    },
    /// Periodic pipeline metrics snapshot (the time-series row).
    Snapshot {
        /// Transactions decided committed so far.
        committed: u64,
        /// Transactions currently in flight.
        in_flight: u64,
        /// Rounds currently blocked awaiting reap.
        blocked: u64,
        /// Total WAL bytes appended so far across all sites.
        wal_bytes: u64,
    },
    /// Free-form diagnostic text.
    Note {
        /// The message.
        text: String,
    },
}

impl EventKind {
    /// Stable kebab-case name of the kind (the `kind` field of the JSONL
    /// encoding).
    pub fn name(&self) -> &'static str {
        match self {
            Self::Transition { .. } => "transition",
            Self::Vote { .. } => "vote",
            Self::MsgSend { .. } => "msg-send",
            Self::MsgDeliver { .. } => "msg-deliver",
            Self::MsgDrop { .. } => "msg-drop",
            Self::Decision { .. } => "decision",
            Self::Crash => "crash",
            Self::Recover => "recover",
            Self::FailureNotice { .. } => "failure-notice",
            Self::RecoveryNotice { .. } => "recovery-notice",
            Self::Suspect { .. } => "suspect",
            Self::Unsuspect { .. } => "unsuspect",
            Self::Election { .. } => "election",
            Self::Aligned { .. } => "aligned",
            Self::Blocked { .. } => "blocked",
            Self::WalAppend { .. } => "wal-append",
            Self::WalFsync { .. } => "wal-fsync",
            Self::WalCompact { .. } => "wal-compact",
            Self::Admit => "admit",
            Self::Park => "park",
            Self::Die => "die",
            Self::Reap { .. } => "reap",
            Self::Partition { .. } => "partition",
            Self::Snapshot { .. } => "snapshot",
            Self::Note { .. } => "note",
        }
    }
}

/// One traced occurrence: a kind stamped with simulation time and, where
/// meaningful, the acting site and the transaction id.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Simulation time (never wall-clock — traces must be deterministic).
    pub time: u64,
    /// The acting site, if the event is site-local.
    pub site: Option<u32>,
    /// The distributed transaction the event belongs to, if any.
    pub txn: Option<u64>,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// An event at `time` with no site/txn attribution.
    pub fn new(time: u64, kind: EventKind) -> Self {
        Self { time, site: None, txn: None, kind }
    }

    /// Attribute the event to a site.
    pub fn at_site(mut self, site: usize) -> Self {
        self.site = Some(site as u32);
        self
    }

    /// Attribute the event to a transaction.
    pub fn for_txn(mut self, txn: u64) -> Self {
        self.txn = Some(txn);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_attributes() {
        let e = Event::new(7, EventKind::Crash).at_site(2).for_txn(5);
        assert_eq!(e.time, 7);
        assert_eq!(e.site, Some(2));
        assert_eq!(e.txn, Some(5));
        assert_eq!(e.kind.name(), "crash");
    }

    #[test]
    fn kind_names_are_kebab() {
        let kinds = [
            EventKind::Transition { from: "q".into(), to: "w".into() },
            EventKind::MsgSend { dst: 0, label: "yes".into() },
            EventKind::WalFsync { physical: true },
            EventKind::Reap { commit: false },
        ];
        for k in kinds {
            let n = k.name();
            assert!(n.chars().all(|c| c.is_ascii_lowercase() || c == '-'), "{n}");
        }
    }
}
