//! Replayable schedules: the serialized form of one explored execution.
//!
//! A schedule is a header (protocol, site count, vote plan, termination
//! rule) plus an ordered list of [`Step`]s — exactly the nondeterministic
//! choices the explorer made. Replaying the steps against a fresh
//! [`Runner`] in lockstep mode reproduces the execution bit-for-bit, which
//! is what makes shrunk counterexamples checkable artifacts instead of
//! prose: the corpus under `tests/corpus/` is replayed byte-for-byte in CI,
//! and `nbc simulate --schedule FILE` re-executes one interactively.
//!
//! The on-disk format is JSONL: the first line is the header object, every
//! following line one step object. Writing is deterministic (fixed field
//! order); parsing accepts any field order.

use std::fmt;

use nbc_engine::{channel_of, Channel, Runner};
use nbc_simnet::NetEvent;

/// One scheduler choice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// Deliver the head message of the `(src, dst)` link.
    Deliver {
        /// Sender.
        src: usize,
        /// Receiver.
        dst: usize,
    },
    /// Lose the most recently sent in-flight message of the `(src, dst)`
    /// link. Dropping tails keeps every surviving message sequence a
    /// prefix of what was sent — the shape of the paper's non-atomic
    /// transition failure, where a crashing site sends only a prefix of a
    /// transition's messages.
    Drop {
        /// Sender.
        src: usize,
        /// Receiver.
        dst: usize,
    },
    /// Deliver the failure detector's next notice to `observer`, which
    /// must report `crashed`.
    FailNotice {
        /// The site being informed.
        observer: usize,
        /// The site it learns has crashed.
        crashed: usize,
    },
    /// Deliver the detector's next notice to `observer`, which must
    /// report that `recovered` is back.
    RecoveryNotice {
        /// The site being informed.
        observer: usize,
        /// The site it learns has recovered.
        recovered: usize,
    },
    /// `observer` starts suspecting `peer` — the imperfect (timeout-based)
    /// detector's choice point, injected by the scheduler rather than by
    /// silence. The suspicion may be *false*: `peer` can be alive.
    Suspect {
        /// The suspecting site.
        observer: usize,
        /// The suspected site (possibly live — that is the point).
        peer: usize,
    },
    /// `observer` clears its suspicion of `peer` (evidence of life
    /// arrived). The revocation that perfect failure detection never has.
    Unsuspect {
        /// The site clearing its suspicion.
        observer: usize,
        /// The peer trusted again.
        peer: usize,
    },
    /// Crash a site (volatile state lost, synced WAL prefix survives).
    Crash {
        /// The crashing site.
        site: usize,
    },
    /// Restart a crashed site (WAL replay + recovery protocol).
    Recover {
        /// The restarting site.
        site: usize,
    },
    /// Partition the network into groups (`groups[i]` = site `i`'s group).
    Partition {
        /// Group assignment per site.
        groups: Vec<usize>,
    },
    /// Heal a partition.
    Heal,
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Step::Deliver { src, dst } => write!(f, "deliver {src}->{dst}"),
            Step::Drop { src, dst } => write!(f, "drop {src}->{dst}"),
            Step::FailNotice { observer, crashed } => {
                write!(f, "site{observer} learns site{crashed} crashed")
            }
            Step::RecoveryNotice { observer, recovered } => {
                write!(f, "site{observer} learns site{recovered} recovered")
            }
            Step::Suspect { observer, peer } => {
                write!(f, "site{observer} suspects site{peer}")
            }
            Step::Unsuspect { observer, peer } => {
                write!(f, "site{observer} unsuspects site{peer}")
            }
            Step::Crash { site } => write!(f, "crash site{site}"),
            Step::Recover { site } => write!(f, "recover site{site}"),
            Step::Partition { groups } => write!(f, "partition {groups:?}"),
            Step::Heal => write!(f, "heal"),
        }
    }
}

/// A complete replayable execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Protocol name (a catalog name or spec path, as the CLI resolves it).
    pub protocol: String,
    /// Site count.
    pub n: usize,
    /// Vote plan (`votes[i]` = site `i` votes yes).
    pub votes: Vec<bool>,
    /// Termination rule name (`skeen` | `cooperative` | `naive` | `quorum`).
    pub rule: String,
    /// The choices, in order.
    pub steps: Vec<Step>,
}

/// Why a step could not be applied during strict replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayError {
    /// Index of the failing step.
    pub step: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "step {}: {}", self.step, self.reason)
    }
}

/// Head (earliest-sent pending) event of one FIFO channel, if any.
pub fn channel_head(runner: &Runner<'_>, ch: Channel) -> Option<(u64, NetEvent<nbc_engine::Wire>)> {
    runner.pending_events().into_iter().find(|(_, ev)| channel_of(ev) == ch)
}

/// Tail (most recently sent pending) event of one FIFO channel, if any.
pub fn channel_tail(runner: &Runner<'_>, ch: Channel) -> Option<(u64, NetEvent<nbc_engine::Wire>)> {
    runner.pending_events().into_iter().rfind(|(_, ev)| channel_of(ev) == ch)
}

/// Apply one step to a runner. Returns `Err` with the reason when the step
/// is not applicable in the current state (nothing pending on the channel,
/// site already down, head event mismatch, ...). The runner is unchanged
/// on error.
pub fn apply_step(runner: &mut Runner<'_>, step: &Step) -> Result<(), String> {
    match step {
        Step::Deliver { src, dst } => {
            let (seq, _) = channel_head(runner, Channel::Link(*src, *dst))
                .ok_or_else(|| format!("nothing in flight on link {src}->{dst}"))?;
            runner.fire_scheduled(seq);
            Ok(())
        }
        Step::Drop { src, dst } => {
            let (seq, _) = channel_tail(runner, Channel::Link(*src, *dst))
                .ok_or_else(|| format!("nothing in flight on link {src}->{dst}"))?;
            runner.drop_scheduled(seq);
            Ok(())
        }
        Step::FailNotice { observer, crashed } => {
            let (seq, ev) = channel_head(runner, Channel::Detector(*observer))
                .ok_or_else(|| format!("no detector notice pending for site{observer}"))?;
            match ev {
                NetEvent::FailureNotice { crashed: c, .. } if c == *crashed => {
                    runner.fire_scheduled(seq);
                    Ok(())
                }
                other => Err(format!(
                    "detector head for site{observer} is {other:?}, not failure of site{crashed}"
                )),
            }
        }
        Step::RecoveryNotice { observer, recovered } => {
            let (seq, ev) = channel_head(runner, Channel::Detector(*observer))
                .ok_or_else(|| format!("no detector notice pending for site{observer}"))?;
            match ev {
                NetEvent::RecoveryNotice { recovered: r, .. } if r == *recovered => {
                    runner.fire_scheduled(seq);
                    Ok(())
                }
                other => Err(format!(
                    "detector head for site{observer} is {other:?}, not recovery of site{recovered}"
                )),
            }
        }
        Step::Suspect { observer, peer } => {
            if observer == peer {
                return Err(format!("site{observer} cannot suspect itself"));
            }
            if !runner.sites()[*observer].is_up() {
                return Err(format!("site{observer} is down and cannot suspect"));
            }
            if runner.sites()[*observer].suspects.contains(peer) {
                return Err(format!("site{observer} already suspects site{peer}"));
            }
            runner.suspect_now(*observer, *peer);
            Ok(())
        }
        Step::Unsuspect { observer, peer } => {
            if !runner.sites()[*observer].is_up() {
                return Err(format!("site{observer} is down and cannot unsuspect"));
            }
            if !runner.sites()[*observer].suspects.contains(peer) {
                return Err(format!("site{observer} does not suspect site{peer}"));
            }
            runner.unsuspect_now(*observer, *peer);
            Ok(())
        }
        Step::Crash { site } => {
            if !runner.sites()[*site].is_up() {
                return Err(format!("site{site} is already down"));
            }
            runner.crash_now(*site);
            Ok(())
        }
        Step::Recover { site } => {
            if runner.sites()[*site].is_up() {
                return Err(format!("site{site} is not down"));
            }
            runner.recover_now(*site);
            Ok(())
        }
        Step::Partition { groups } => {
            if groups.len() != runner.sites().len() {
                return Err(format!(
                    "partition groups must cover all {} sites",
                    runner.sites().len()
                ));
            }
            runner.partition_now(groups.clone());
            Ok(())
        }
        Step::Heal => {
            runner.heal_now();
            Ok(())
        }
    }
}

/// Replay `steps` strictly: every step must apply. Returns the index and
/// reason of the first inapplicable step.
pub fn replay_strict(runner: &mut Runner<'_>, steps: &[Step]) -> Result<(), ReplayError> {
    for (i, step) in steps.iter().enumerate() {
        apply_step(runner, step).map_err(|reason| ReplayError { step: i, reason })?;
    }
    Ok(())
}

/// Replay `steps` leniently: inapplicable steps are skipped. Returns the
/// steps that actually applied (in order). The shrinker uses this to
/// evaluate candidate schedules whose removed steps invalidate later ones.
pub fn replay_lenient(runner: &mut Runner<'_>, steps: &[Step]) -> Vec<Step> {
    let mut applied = Vec::with_capacity(steps.len());
    for step in steps {
        if apply_step(runner, step).is_ok() {
            applied.push(step.clone());
        }
    }
    applied
}

// ----------------------------------------------------------------------
// JSONL encoding
// ----------------------------------------------------------------------

impl Schedule {
    /// Serialize to JSONL: header line + one line per step. Deterministic
    /// byte-for-byte (fixed field order, no whitespace variance).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let votes: Vec<&str> =
            self.votes.iter().map(|v| if *v { "true" } else { "false" }).collect();
        out.push_str(&format!(
            "{{\"schedule\":\"nbc-check/v1\",\"protocol\":\"{}\",\"n\":{},\"votes\":[{}],\"rule\":\"{}\"}}\n",
            escape(&self.protocol),
            self.n,
            votes.join(","),
            escape(&self.rule),
        ));
        for s in &self.steps {
            out.push_str(&step_json(s));
            out.push('\n');
        }
        out
    }

    /// Parse the JSONL form. Accepts any object-field order; rejects
    /// unknown step kinds and missing fields with a line-numbered error.
    pub fn from_jsonl(text: &str) -> Result<Self, String> {
        let mut lines = text.lines().enumerate().filter(|(_, l)| !l.trim().is_empty());
        let (_, header) = lines.next().ok_or("empty schedule")?;
        let h = JsonObj::parse(header).map_err(|e| format!("line 1: {e}"))?;
        if h.str_field("schedule") != Some("nbc-check/v1") {
            return Err("line 1: not an nbc-check/v1 schedule header".into());
        }
        let protocol = h.str_field("protocol").ok_or("line 1: missing protocol")?.to_string();
        let n = h.num_field("n").ok_or("line 1: missing n")? as usize;
        let votes = h.bool_array("votes").ok_or("line 1: missing votes")?;
        let rule = h.str_field("rule").ok_or("line 1: missing rule")?.to_string();
        let mut steps = Vec::new();
        for (ix, line) in lines {
            let o = JsonObj::parse(line).map_err(|e| format!("line {}: {e}", ix + 1))?;
            steps.push(parse_step(&o).map_err(|e| format!("line {}: {e}", ix + 1))?);
        }
        Ok(Self { protocol, n, votes, rule, steps })
    }
}

fn step_json(s: &Step) -> String {
    match s {
        Step::Deliver { src, dst } => {
            format!("{{\"step\":\"deliver\",\"src\":{src},\"dst\":{dst}}}")
        }
        Step::Drop { src, dst } => format!("{{\"step\":\"drop\",\"src\":{src},\"dst\":{dst}}}"),
        Step::FailNotice { observer, crashed } => {
            format!("{{\"step\":\"fail-notice\",\"observer\":{observer},\"crashed\":{crashed}}}")
        }
        Step::RecoveryNotice { observer, recovered } => {
            format!("{{\"step\":\"recovery-notice\",\"observer\":{observer},\"recovered\":{recovered}}}")
        }
        Step::Suspect { observer, peer } => {
            format!("{{\"step\":\"suspect\",\"observer\":{observer},\"peer\":{peer}}}")
        }
        Step::Unsuspect { observer, peer } => {
            format!("{{\"step\":\"unsuspect\",\"observer\":{observer},\"peer\":{peer}}}")
        }
        Step::Crash { site } => format!("{{\"step\":\"crash\",\"site\":{site}}}"),
        Step::Recover { site } => format!("{{\"step\":\"recover\",\"site\":{site}}}"),
        Step::Partition { groups } => {
            let g: Vec<String> = groups.iter().map(|x| x.to_string()).collect();
            format!("{{\"step\":\"partition\",\"groups\":[{}]}}", g.join(","))
        }
        Step::Heal => "{\"step\":\"heal\"}".to_string(),
    }
}

fn parse_step(o: &JsonObj) -> Result<Step, String> {
    let kind = o.str_field("step").ok_or("missing step kind")?;
    let num = |f: &str| o.num_field(f).map(|v| v as usize).ok_or(format!("missing {f}"));
    match kind {
        "deliver" => Ok(Step::Deliver { src: num("src")?, dst: num("dst")? }),
        "drop" => Ok(Step::Drop { src: num("src")?, dst: num("dst")? }),
        "fail-notice" => {
            Ok(Step::FailNotice { observer: num("observer")?, crashed: num("crashed")? })
        }
        "recovery-notice" => {
            Ok(Step::RecoveryNotice { observer: num("observer")?, recovered: num("recovered")? })
        }
        "suspect" => Ok(Step::Suspect { observer: num("observer")?, peer: num("peer")? }),
        "unsuspect" => Ok(Step::Unsuspect { observer: num("observer")?, peer: num("peer")? }),
        "crash" => Ok(Step::Crash { site: num("site")? }),
        "recover" => Ok(Step::Recover { site: num("site")? }),
        "partition" => {
            Ok(Step::Partition { groups: o.num_array("groups").ok_or("missing groups")? })
        }
        "heal" => Ok(Step::Heal),
        other => Err(format!("unknown step kind {other:?}")),
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

// ----------------------------------------------------------------------
// A deliberately tiny JSON object reader: flat objects whose values are
// strings, integers, booleans, or arrays of integers/booleans — exactly
// the schedule grammar. No dependency, no recursion, positioned errors.
// ----------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum JsonVal {
    Str(String),
    Num(i64),
    Bool(bool),
    NumArr(Vec<i64>),
    BoolArr(Vec<bool>),
}

struct JsonObj {
    fields: Vec<(String, JsonVal)>,
}

impl JsonObj {
    fn parse(line: &str) -> Result<Self, String> {
        let mut p = Parser { bytes: line.trim().as_bytes(), pos: 0 };
        p.expect(b'{')?;
        let mut fields = Vec::new();
        p.skip_ws();
        if p.peek() == Some(b'}') {
            return Ok(Self { fields });
        }
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let val = p.value()?;
            fields.push((key, val));
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                _ => return Err(format!("expected ',' or '}}' at byte {}", p.pos)),
            }
        }
        Ok(Self { fields })
    }

    fn field(&self, name: &str) -> Option<&JsonVal> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    fn str_field(&self, name: &str) -> Option<&str> {
        match self.field(name) {
            Some(JsonVal::Str(s)) => Some(s),
            _ => None,
        }
    }

    fn num_field(&self, name: &str) -> Option<i64> {
        match self.field(name) {
            Some(JsonVal::Num(v)) => Some(*v),
            _ => None,
        }
    }

    fn num_array(&self, name: &str) -> Option<Vec<usize>> {
        match self.field(name) {
            Some(JsonVal::NumArr(v)) => Some(v.iter().map(|&x| x as usize).collect()),
            _ => None,
        }
    }

    fn bool_array(&self, name: &str) -> Option<Vec<bool>> {
        match self.field(name) {
            Some(JsonVal::BoolArr(v)) => Some(v.clone()),
            // [] parses as an empty numeric array; accept it as empty.
            Some(JsonVal::NumArr(v)) if v.is_empty() => Some(Vec::new()),
            _ => None,
        }
    }
}

struct Parser<'t> {
    bytes: &'t [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.next() == Some(b) {
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    other => return Err(format!("bad escape {other:?} at byte {}", self.pos)),
                },
                Some(b) => out.push(b as char),
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<i64, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or(format!("bad number at byte {start}"))
    }

    fn value(&mut self) -> Result<JsonVal, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonVal::Str(self.string()?)),
            Some(b't') if self.bytes[self.pos..].starts_with(b"true") => {
                self.pos += 4;
                Ok(JsonVal::Bool(true))
            }
            Some(b'f') if self.bytes[self.pos..].starts_with(b"false") => {
                self.pos += 5;
                Ok(JsonVal::Bool(false))
            }
            Some(b'[') => {
                self.pos += 1;
                let mut nums = Vec::new();
                let mut bools = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(JsonVal::NumArr(nums));
                }
                loop {
                    self.skip_ws();
                    match self.value()? {
                        JsonVal::Num(v) => nums.push(v),
                        JsonVal::Bool(b) => bools.push(b),
                        _ => return Err(format!("unsupported array element at byte {}", self.pos)),
                    }
                    self.skip_ws();
                    match self.next() {
                        Some(b',') => continue,
                        Some(b']') => break,
                        _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                    }
                }
                if !bools.is_empty() && nums.is_empty() {
                    Ok(JsonVal::BoolArr(bools))
                } else if bools.is_empty() {
                    Ok(JsonVal::NumArr(nums))
                } else {
                    Err("mixed array".into())
                }
            }
            Some(b'0'..=b'9' | b'-') => Ok(JsonVal::Num(self.number()?)),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schedule {
        Schedule {
            protocol: "central-2pc".into(),
            n: 3,
            votes: vec![true, true, false],
            rule: "skeen".into(),
            steps: vec![
                Step::Deliver { src: 0, dst: 1 },
                Step::Suspect { observer: 1, peer: 0 },
                Step::Unsuspect { observer: 1, peer: 0 },
                Step::Crash { site: 0 },
                Step::FailNotice { observer: 1, crashed: 0 },
                Step::Drop { src: 0, dst: 2 },
                Step::Recover { site: 0 },
                Step::RecoveryNotice { observer: 2, recovered: 0 },
                Step::Partition { groups: vec![0, 0, 1] },
                Step::Heal,
            ],
        }
    }

    #[test]
    fn jsonl_round_trips_byte_for_byte() {
        let s = sample();
        let text = s.to_jsonl();
        let parsed = Schedule::from_jsonl(&text).unwrap();
        assert_eq!(parsed, s);
        assert_eq!(parsed.to_jsonl(), text);
    }

    #[test]
    fn parser_rejects_junk() {
        assert!(Schedule::from_jsonl("").is_err());
        assert!(Schedule::from_jsonl("{\"schedule\":\"other\"}").is_err());
        let mut text = sample().to_jsonl();
        text.push_str("{\"step\":\"warp\"}\n");
        let err = Schedule::from_jsonl(&text).unwrap_err();
        assert!(err.contains("unknown step kind"), "{err}");
    }

    #[test]
    fn field_order_is_flexible() {
        let text = "{\"n\":2,\"votes\":[true,true],\"rule\":\"skeen\",\"protocol\":\"p\",\"schedule\":\"nbc-check/v1\"}\n{\"dst\":1,\"src\":0,\"step\":\"deliver\"}\n";
        let s = Schedule::from_jsonl(text).unwrap();
        assert_eq!(s.n, 2);
        assert_eq!(s.steps, vec![Step::Deliver { src: 0, dst: 1 }]);
    }
}
