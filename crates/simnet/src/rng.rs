//! A small deterministic PRNG for simulation use.
//!
//! Every randomized component of the reproduction (latency models,
//! workload generators, crash storms, property sweeps) draws from
//! [`SimRng`], a SplitMix64 generator. It is seeded explicitly, has no
//! global state, and its sequence is stable across platforms and
//! releases — the properties the determinism guarantees in DESIGN.md
//! rest on. It is *not* cryptographically secure and does not try to be.

use std::ops::{Range, RangeInclusive};

/// A seeded SplitMix64 pseudo-random number generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Construct a generator from a 64-bit seed. Identical seeds yield
    /// identical sequences forever.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, span)`. `span` must be nonzero.
    fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        // Lemire's multiply-shift: unbiased enough for simulation and
        // branch-free, so the sequence is trivially reproducible.
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform draw from a half-open or inclusive integer range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        // 53 high bits → a uniform f64 in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// `true` with probability `numerator / denominator`.
    ///
    /// # Panics
    /// Panics if `denominator` is zero or `numerator > denominator`.
    pub fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0 && numerator <= denominator);
        self.below(denominator as u64) < numerator as u64
    }
}

/// Integer ranges [`SimRng::gen_range`] can sample from.
pub trait SampleRange {
    /// The integer type produced.
    type Output;
    /// Draw one uniform sample.
    fn sample(self, rng: &mut SimRng) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut SimRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut SimRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span == 1 << 64 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, i64, i32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let va: Vec<_> = (0..10).map(|_| a.next_u64()).collect();
        let vb: Vec<_> = (0..10).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SimRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..9);
            assert!((3..9).contains(&v));
            let w = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let t = r.gen_range(0u64..=0);
            assert_eq!(t, 0);
        }
    }

    #[test]
    fn all_values_of_a_small_range_appear() {
        let mut r = SimRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SimRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_ratio_extremes_and_rough_frequency() {
        let mut r = SimRng::seed_from_u64(4);
        let mut hits = 0u32;
        for _ in 0..2000 {
            assert!(r.gen_ratio(10, 10));
            assert!(!r.gen_ratio(0, 10));
            if r.gen_ratio(1, 4) {
                hits += 1;
            }
        }
        // 25% ± generous slack.
        assert!((300..=700).contains(&hits), "hits = {hits}");
    }
}
