//! Paxos Commit under the model checker, and the Gray–Lamport degeneracy
//! claim: at f=0 the protocol decides exactly like central-site 2PC.

use nbc_check::{run_check, CheckOptions};
use nbc_core::protocols::central_2pc;
use nbc_engine::{run_one, RunConfig};
use nbc_paxos::paxos_commit;
use nbc_simnet::SimRng;

#[test]
fn f1_passes_all_oracles_with_one_acceptor_crash() {
    // n=3 participants + 3 acceptors; the default budget of one crash is
    // exactly the f=1 resilience bound, and the explorer spends it on
    // acceptors only. The six-site instance explodes in debug builds over
    // all eight vote plans; the all-yes plan (where commit and
    // commit-blocking live) keeps this suite fast. CI's release smoke job
    // runs it with the full plan set.
    let options = CheckOptions { vote_plan: Some(vec![true; 6]), ..CheckOptions::default() };
    let report = run_check(&paxos_commit(3, 1), options).unwrap();
    assert!(report.ok(), "{}", report.render());
    assert!(!report.certified_nonblocking, "theorem sees an unconditionally blocking protocol");
    assert_eq!(report.quorum_f, Some(1));
    assert!(report.within_resilience, "faults=1 <= f=1");
    assert!(!report.stats.truncated, "must be exhaustive");
    assert!(
        report.blocking_witness.is_none(),
        "one acceptor crash must never block a quorum of two:\n{}",
        report.render()
    );
}

#[test]
fn f1_full_plan_set_on_the_small_instance() {
    // Every vote plan, with the crash budget, fits in the four-plan
    // leader + one RM + three acceptors instance.
    let report = run_check(&paxos_commit(2, 1), CheckOptions::default()).unwrap();
    assert!(report.ok(), "{}", report.render());
    assert_eq!(report.quorum_f, Some(1));
    assert!(report.within_resilience);
    assert!(!report.stats.truncated, "must be exhaustive");
    assert!(report.prediction_complete, "{}", report.render());
    assert!(report.blocking_witness.is_none(), "{}", report.render());
}

#[test]
fn f0_blocks_once_its_single_acceptor_crashes() {
    // f=0 has a 1-of-1 quorum: crashing the lone acceptor before it
    // relays strands the leader — permitted, because faults=1 exceeds
    // f=0, and the report must say so without failing any oracle.
    let report = run_check(&paxos_commit(2, 0), CheckOptions::default()).unwrap();
    assert!(report.ok(), "{}", report.render());
    assert_eq!(report.quorum_f, Some(0));
    assert!(!report.within_resilience, "faults=1 > f=0");
    assert!(
        report.blocking_witness.is_some(),
        "losing the only acceptor must strand the leader:\n{}",
        report.render()
    );
}

#[test]
fn f0_never_blocks_fault_free() {
    let options = CheckOptions { faults: 0, ..CheckOptions::default() };
    let report = run_check(&paxos_commit(3, 0), options).unwrap();
    assert!(report.ok(), "{}", report.render());
    assert!(report.within_resilience, "faults=0 <= f=0");
    assert!(report.blocking_witness.is_none(), "{}", report.render());
    assert!(report.prediction_complete, "{}", report.render());
}

#[test]
fn acceptor_recovery_is_consistent() {
    // Crash + recover the lone f=0 acceptor around the decision: the
    // recovered acceptor must adopt the participants' outcome, never
    // unilaterally abort a committed transaction. (The recovered-acceptor
    // code path is f-independent; the f=0 instance keeps it exhaustive.)
    let options = CheckOptions { recoveries: 1, depth: 48, ..CheckOptions::default() };
    let report = run_check(&paxos_commit(2, 0), options).unwrap();
    assert!(report.ok(), "{}", report.render());
    assert!(!report.stats.truncated, "must be exhaustive");
}

/// Seeded random-workload equivalence (the PR 5 harness style): at f=0
/// Paxos Commit must reach exactly the decision central 2PC reaches for
/// the same participant votes — commit iff everyone votes yes — and
/// every site of both protocols must agree with it.
#[test]
fn f0_decides_like_central_2pc_on_random_workloads() {
    let mut rng = SimRng::seed_from_u64(0x9a05_c0de);
    for draw in 0..24 {
        let n = rng.gen_range(2..=4usize);
        let votes: Vec<bool> = (0..n).map(|_| rng.gen_range(0..4usize) != 0).collect();
        let expect_commit = votes.iter().all(|&v| v);

        let two_pc = central_2pc(n);
        let mut cfg = RunConfig::lockstep(n);
        cfg.votes = votes.clone();
        let r2 = run_one(&two_pc, cfg);

        let paxos = paxos_commit(n, 0);
        let mut cfg = RunConfig::lockstep(n + 1);
        cfg.votes = votes.iter().copied().chain([true]).collect();
        let rp = run_one(&paxos, cfg);

        for (name, report) in [("central-2pc", &r2), ("paxos f=0", &rp)] {
            assert!(report.consistent, "draw {draw} {name}: inconsistent outcomes");
            assert!(!report.truncated, "draw {draw} {name}: truncated");
            for (i, o) in report.outcomes.iter().enumerate() {
                assert_eq!(
                    o.decision(),
                    Some(expect_commit),
                    "draw {draw} {name} (votes {votes:?}): site{i} ended {o}"
                );
            }
        }
    }
}
