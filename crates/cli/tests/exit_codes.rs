//! `nbc check` exit-status contract, tested against the real binary:
//! 0 = every oracle passed, 1 = an oracle reported a violation, 2 = usage
//! or protocol error. CI gates on these codes, so they are part of the
//! tool's interface, not a rendering detail.

use std::process::Command;

fn nbc(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_nbc")).args(args).output().expect("run nbc binary")
}

#[test]
fn check_pass_exits_zero() {
    let out = nbc(&["check", "central-3pc", "-n", "2"]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("verdict: OK"), "{stdout}");
}

#[test]
fn check_blocking_confirmation_is_a_pass() {
    // A blocking protocol whose exploration *confirms* the theorem's
    // BLOCKING classification passes all oracles — the witness is the
    // expected answer, not a failure.
    let out = nbc(&["check", "central-2pc", "-n", "2"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("blocking confirmed"), "{stdout}");
}

#[test]
fn check_oracle_violation_exits_one() {
    // The deliberately unsafe naive concurrency-set rule loses atomicity
    // under two crashes: a known-FAIL spec.
    let out = nbc(&["check", "central-3pc", "-n", "3", "--rule", "naive", "--faults", "2"]);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("verdict: FAIL"), "{stdout}");
    assert!(stdout.contains("FAILURE [consistency]"), "{stdout}");
}

#[test]
fn check_json_failure_also_exits_one() {
    let out =
        nbc(&["check", "central-3pc", "-n", "3", "--rule", "naive", "--faults", "2", "--json"]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"ok\":false"), "{stdout}");
}

#[test]
fn check_usage_error_exits_two() {
    for args in [
        &["check", "no-such-protocol"][..],
        &["check", "central-2pc", "--bogus-flag"][..],
        &["check"][..],
    ] {
        let out = nbc(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
    }
}

#[test]
fn non_check_commands_keep_their_exit_codes() {
    assert_eq!(nbc(&["list"]).status.code(), Some(0));
    assert_eq!(nbc(&["frobnicate"]).status.code(), Some(2));
}

#[test]
fn trace_verify_passes_on_every_catalog_protocol() {
    // Record a crashy simulation trace per catalog protocol and re-check
    // it offline: the trace oracles must agree with the live run.
    let dir = std::env::temp_dir();
    for (proto, extra) in [
        ("central-2pc", &["--crash", "0:2:1", "--recover", "300"][..]),
        ("central-3pc", &["--crash", "0:2:1"][..]),
        ("decentralized-2pc", &[][..]),
        ("decentralized-3pc", &["--crash", "1:1:log"][..]),
        ("1pc", &[][..]),
        ("kpc:4", &[][..]),
        ("paxos:1", &["--crash", "1:1:1"][..]),
    ] {
        let path = dir.join(format!("nbc-exit-trace-{}.jsonl", proto.replace(':', "-")));
        let mut args = vec!["simulate", proto, "--trace", path.to_str().unwrap()];
        args.extend_from_slice(extra);
        let out = nbc(&args);
        assert_eq!(out.status.code(), Some(0), "{proto} simulate failed");
        let out = nbc(&["trace", "verify", path.to_str().unwrap()]);
        assert_eq!(out.status.code(), Some(0), "{proto}: {}", String::from_utf8_lossy(&out.stdout));
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("result: PASS"), "{proto}: {stdout}");
        // Determinism: a second pass renders byte-identically.
        let again = nbc(&["trace", "verify", path.to_str().unwrap()]);
        assert_eq!(out.stdout, again.stdout, "{proto}");
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn trace_verify_corrupted_trace_exits_one() {
    let dir = std::env::temp_dir();
    let path = dir.join("nbc-exit-trace-corrupt.jsonl");
    let out = nbc(&["simulate", "central-3pc", "--trace", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
    // Remove one delivery line: conservation must flag the orphan send.
    let text = std::fs::read_to_string(&path).unwrap();
    let mut removed = false;
    let corrupted: String = text
        .lines()
        .filter(|l| {
            if !removed && l.contains("\"kind\":\"msg-deliver\"") {
                removed = true;
                false
            } else {
                true
            }
        })
        .map(|l| format!("{l}\n"))
        .collect();
    assert!(removed, "no delivery line found");
    std::fs::write(&path, corrupted).unwrap();
    let out = nbc(&["trace", "verify", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("conservation"), "{stdout}");
    assert!(stdout.contains("result: FAIL"), "{stdout}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn trace_usage_errors_exit_two() {
    for args in [
        &["trace"][..],
        &["trace", "frob", "x.jsonl"][..],
        &["trace", "verify"][..],
        &["trace", "verify", "/does/not/exist.jsonl"][..],
        &["trace", "stats", "--bogus"][..],
    ] {
        let out = nbc(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
    }
}

#[test]
fn trace_stats_reads_pipeline_series() {
    let dir = std::env::temp_dir();
    let path = dir.join("nbc-exit-trace-series.jsonl");
    let out = nbc(&[
        "pipeline",
        "central-3pc",
        "--txns",
        "24",
        "--seed",
        "9",
        "--series-every",
        "64",
        "--trace",
        path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let out = nbc(&["trace", "stats", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("decision latency: n="), "{stdout}");
    assert!(stdout.contains("time series ("), "{stdout}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn simulate_flight_dump_written_on_blocked_run() {
    let dir = std::env::temp_dir();
    let path = dir.join("nbc-exit-flight.jsonl");
    let _ = std::fs::remove_file(&path);
    // 2PC coordinator crash under the cooperative rule blocks: the run
    // exits 0 (simulate reports, it does not gate) but the flight
    // recorder must leave its tail behind.
    let out = nbc(&[
        "simulate",
        "central-2pc",
        "--crash",
        "0:2:0",
        "--rule",
        "cooperative",
        "--flight",
        path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("flight recorder: dumped"), "{stderr}");
    assert!(path.exists(), "flight dump missing");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn check_counterexample_writes_flight_dump() {
    let dir = std::env::temp_dir().join("nbc-exit-cx");
    let cx = dir.join("cx.jsonl");
    let out = nbc(&[
        "check",
        "central-3pc",
        "-n",
        "3",
        "--rule",
        "naive",
        "--faults",
        "2",
        "--counterexample",
        cx.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(cx.exists(), "counterexample schedule missing");
    let flight = dir.join("cx.jsonl.flight.jsonl");
    let data = std::fs::read_to_string(&flight).expect("flight dump next to counterexample");
    assert!(data.lines().next().unwrap().contains("flight recorder"), "{data}");
    // The dump must parse as a trace and re-verify offline: the replayed
    // failure shows up as a decision-consistency violation.
    let out = nbc(&["trace", "verify", flight.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stdout));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("result: FAIL"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}
