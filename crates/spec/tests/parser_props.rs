//! Property tests for the spec parser, driven by seeded random sweeps:
//! total on arbitrary input (errors, never panics), and semantically
//! faithful on the example specs at every site count.

use nbc_simnet::SimRng;
use nbc_spec::{examples, parse};

/// The parser must be total: any byte soup yields Ok or a positioned
/// error — never a panic.
#[test]
fn parser_never_panics() {
    let mut rng = SimRng::seed_from_u64(0x5bec);
    for _ in 0..256 {
        let len = rng.gen_range(0usize..400);
        let text: String = (0..len)
            .map(|_| {
                // Mostly printable ASCII with some newlines and a sprinkle
                // of arbitrary unicode.
                match rng.gen_range(0u32..10) {
                    0 => '\n',
                    1 => char::from_u32(rng.gen_range(0x20u32..0x2FFF)).unwrap_or('\u{FFFD}'),
                    _ => rng.gen_range(0x20u32..0x7F) as u8 as char,
                }
            })
            .collect();
        let n = rng.gen_range(2usize..6);
        let _ = parse(&text, n);
    }
}

/// Mutating random lines of a valid spec either still parses or fails
/// with a line number inside the document.
#[test]
fn mutated_spec_errors_are_positioned() {
    let mut rng = SimRng::seed_from_u64(0x5bed);
    for _ in 0..256 {
        let mut lines: Vec<String> = examples::CENTRAL_3PC.lines().map(str::to_string).collect();
        let i = rng.gen_range(0..lines.len());
        let junk_len = rng.gen_range(1usize..=12);
        lines[i] =
            (0..junk_len).map(|_| rng.gen_range(b'a' as u32..=b'z' as u32) as u8 as char).collect();
        let text = lines.join("\n");
        match parse(&text, 3) {
            Ok(_) => {}
            Err(e) => {
                assert!(e.line <= lines.len(), "line {} of {}", e.line, lines.len())
            }
        }
    }
}

/// Example specs instantiate at any site count and agree with the
/// hand-written catalog on the theorem verdict.
#[test]
fn examples_parse_at_every_n() {
    use nbc_core::protocols::{central_2pc, central_3pc, decentralized_2pc};
    use nbc_core::theorem;

    for n in 2usize..6 {
        for (text, hand) in [
            (examples::CENTRAL_2PC, central_2pc(n)),
            (examples::CENTRAL_3PC, central_3pc(n)),
            (examples::DECENTRALIZED_2PC, decentralized_2pc(n)),
        ] {
            let spec = parse(text, n).unwrap();
            spec.validate_strict().unwrap();
            let vs = theorem::check(&spec).unwrap();
            let vh = theorem::check(&hand).unwrap();
            assert_eq!(vs.nonblocking(), vh.nonblocking(), "{}", spec.name);
            assert_eq!(vs.clean, vh.clean, "{}", spec.name);
        }
    }
}

#[test]
fn truncated_specs_fail_gracefully() {
    // Every prefix of a valid spec parses or errors cleanly.
    let full = examples::CENTRAL_2PC;
    for cut in 0..full.len() {
        if !full.is_char_boundary(cut) {
            continue;
        }
        let _ = parse(&full[..cut], 3);
    }
}
