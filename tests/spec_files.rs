//! The shipped `.nbc` spec files must parse, validate, and analyze to the
//! same verdicts as their hand-written catalog counterparts.

use nonblocking_commit::nbc_core::{theorem, verify};

fn load(name: &str, n: usize) -> nonblocking_commit::nbc_core::Protocol {
    let path = format!("{}/specs/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    nbc_spec::parse(&text, n).unwrap_or_else(|e| panic!("{path}: {e}"))
}

#[test]
fn shipped_2pc_spec_is_blocking() {
    let p = load("central-2pc.nbc", 3);
    p.validate_strict().unwrap();
    assert!(!theorem::check(&p).unwrap().nonblocking());
}

#[test]
fn shipped_3pc_specs_are_nonblocking_and_verify() {
    for (file, n) in [("central-3pc.nbc", 4), ("decentralized-3pc.nbc", 3)] {
        let p = load(file, n);
        p.validate_strict().unwrap();
        assert!(theorem::check(&p).unwrap().nonblocking(), "{file}");
        let v = verify::verify_termination(&p).unwrap();
        assert!(v.nonblocking(), "{file}");
    }
}

#[test]
fn spec_protocols_run_in_the_engine() {
    use nonblocking_commit::nbc_core::Analysis;
    use nonblocking_commit::nbc_engine::{enumerate_crash_specs, sweep, RunConfig};
    let p = load("central-3pc.nbc", 3);
    let a = Analysis::build(&p).unwrap();
    let specs = enumerate_crash_specs(&p, None);
    let s = sweep(&p, &a, &RunConfig::happy(3), &specs);
    assert!(s.all_consistent(), "{:?}", s.inconsistent_runs);
    assert!(s.nonblocking());
}

#[test]
fn linear_2pc_is_a_custom_topology_and_blocking() {
    // A chained commit protocol outside the paper's two paradigms: the
    // theorem still applies and finds it blocking, and the engine agrees.
    use nonblocking_commit::nbc_core::Analysis;
    use nonblocking_commit::nbc_engine::{
        enumerate_crash_specs, run_with, sweep, RunConfig, TerminationRule,
    };

    let p = load("linear-2pc.nbc", 3);
    p.validate_strict().unwrap();
    assert_eq!(p.paradigm, nonblocking_commit::nbc_core::Paradigm::Custom);
    let verdict = theorem::check(&p).unwrap();
    assert!(!verdict.nonblocking(), "chained 2PC must block");

    let a = Analysis::build(&p).unwrap();
    // Happy path commits end to end.
    let r = run_with(&p, &a, RunConfig::happy(3));
    assert!(r.consistent, "{r}");
    assert_eq!(r.decision(), Some(true), "{r}");
    // A no vote anywhere aborts everywhere.
    for no_voter in 0..3 {
        let r = run_with(&p, &a, RunConfig::one_no(3, no_voter));
        assert!(r.consistent, "no@{no_voter}: {r}");
        assert_eq!(r.decision(), Some(false), "no@{no_voter}: {r}");
    }
    // Crash sweep: consistent (the cautious class rule never guesses),
    // with a blocking window as the theorem demands.
    let specs = enumerate_crash_specs(&p, None);
    let base = RunConfig::happy(3).with_rule(TerminationRule::Cooperative);
    let s = sweep(&p, &a, &base, &specs);
    assert!(s.all_consistent(), "{:?}", s.inconsistent_runs);
    assert!(s.blocked > 0, "the theorem promised a blocking window");
}

#[test]
fn linear_2pc_synthesis_is_out_of_scope_and_says_so() {
    use nonblocking_commit::nbc_core::synthesis;
    let p = load("linear-2pc.nbc", 3);
    // The paper's buffer-insertion rules are defined for its two
    // paradigms; a custom topology is rejected, not silently mangled.
    assert!(matches!(
        synthesis::make_nonblocking(&p),
        Err(synthesis::SynthesisError::UnsupportedParadigm)
    ));
}

#[test]
fn linear_irrevocable_is_nonblocking_without_buffer_states() {
    // A serendipitous find: a chained protocol whose votes are irrevocable
    // at entry satisfies the fundamental nonblocking theorem with ZERO
    // buffer states — the theorem's conditions, not the 3PC shape, are
    // what matters. The model checker and the engine both confirm it.
    use nonblocking_commit::nbc_core::Analysis;
    use nonblocking_commit::nbc_engine::{enumerate_crash_specs, sweep, RunConfig};

    let p = load("linear-irrevocable.nbc", 3);
    p.validate_strict().unwrap();
    let verdict = theorem::check(&p).unwrap();
    assert!(verdict.nonblocking(), "{verdict}");

    let v = verify::verify_termination(&p).unwrap();
    assert!(v.nonblocking(), "stuck: {}", v.stuck_witnesses.len());

    let a = Analysis::build(&p).unwrap();
    let specs = enumerate_crash_specs(&p, None);
    let s = sweep(&p, &a, &RunConfig::happy(3), &specs);
    assert!(s.all_consistent(), "{:?}", s.inconsistent_runs);
    assert!(s.nonblocking(), "blocked={} decided={}/{}", s.blocked, s.fully_decided, s.total);
}

#[test]
fn linear_irrevocable_no_votes_abort_cleanly() {
    use nonblocking_commit::nbc_core::Analysis;
    use nonblocking_commit::nbc_engine::{run_with, RunConfig};
    let p = load("linear-irrevocable.nbc", 3);
    let a = Analysis::build(&p).unwrap();
    for no_voter in 0..3 {
        let r = run_with(&p, &a, RunConfig::one_no(3, no_voter));
        assert!(r.consistent, "no@{no_voter}: {r}");
        assert_eq!(r.decision(), Some(false), "no@{no_voter}: {r}");
    }
}
