//! Design your own commit protocol and let the paper's machinery judge it.
//!
//! We build a custom "2.5PC" protocol with the public FSA API — a 2PC
//! whose *coordinator* gets a buffer state but whose slaves do not — check
//! it with the fundamental nonblocking theorem (it still blocks!), then
//! run the paper's synthesis on plain 2PC to obtain a correct 3PC, print
//! its termination decision table, and emit DOT for every figure.
//!
//! ```text
//! cargo run --example protocol_designer
//! ```

use nonblocking_commit::nbc_core::protocols::central_2pc;
use nonblocking_commit::nbc_core::{
    dot, synthesis, termination, theorem, Analysis, Consume, Envelope, FsaBuilder, InitialMsg,
    MsgKind, Paradigm, Protocol, SiteId, StateClass, Vote,
};

/// A half-measure: buffer the coordinator's commit, leave slaves as 2PC.
fn half_buffered_2pc(n: usize) -> Protocol {
    let slaves: Vec<SiteId> = (1..n as u32).map(SiteId).collect();

    let mut cb = FsaBuilder::new("coordinator");
    let q1 = cb.state("q1", StateClass::Initial);
    let w1 = cb.state("w1", StateClass::Wait);
    let a1 = cb.state("a1", StateClass::Aborted);
    let p1 = cb.state("p1", StateClass::Prepared);
    let c1 = cb.state("c1", StateClass::Committed);
    cb.transition(
        q1,
        w1,
        Consume::one(SiteId::CLIENT, MsgKind::REQUEST),
        slaves.iter().map(|&s| Envelope::new(s, MsgKind::XACT)).collect(),
        None,
        "request / xact*",
    );
    // The coordinator pauses in p1... but tells the slaves nothing new.
    cb.transition(
        w1,
        p1,
        Consume::All(slaves.iter().map(|&s| (s, MsgKind::YES)).collect()),
        vec![],
        Some(Vote::Yes),
        "yes* / (silence)",
    );
    cb.transition(
        p1,
        c1,
        Consume::Spontaneous,
        slaves.iter().map(|&s| Envelope::new(s, MsgKind::COMMIT)).collect(),
        None,
        "/ commit*",
    );
    cb.transition(
        w1,
        a1,
        Consume::Any(slaves.iter().map(|&s| (s, MsgKind::NO)).collect()),
        slaves.iter().map(|&s| Envelope::new(s, MsgKind::ABORT)).collect(),
        None,
        "no / abort*",
    );

    let mut fsas = vec![cb.build()];
    let coord = SiteId(0);
    for _ in &slaves {
        let mut sb = FsaBuilder::new("slave");
        let q = sb.state("q", StateClass::Initial);
        let w = sb.state("w", StateClass::Wait);
        let a = sb.state("a", StateClass::Aborted);
        let c = sb.state("c", StateClass::Committed);
        sb.transition(
            q,
            w,
            Consume::one(coord, MsgKind::XACT),
            vec![Envelope::new(coord, MsgKind::YES)],
            Some(Vote::Yes),
            "xact / yes",
        );
        sb.transition(
            q,
            a,
            Consume::one(coord, MsgKind::XACT),
            vec![Envelope::new(coord, MsgKind::NO)],
            Some(Vote::No),
            "xact / no",
        );
        sb.transition(w, c, Consume::one(coord, MsgKind::COMMIT), vec![], None, "commit /");
        sb.transition(w, a, Consume::one(coord, MsgKind::ABORT), vec![], None, "abort /");
        fsas.push(sb.build());
    }

    Protocol::new(
        format!("half-buffered 2PC (n={n})"),
        Paradigm::CentralSite,
        fsas,
        vec![InitialMsg { src: SiteId::CLIENT, dst: coord, kind: MsgKind::REQUEST }],
    )
}

fn main() {
    // ---------------------------------------------------------------
    // 1. A plausible-looking custom protocol that still blocks.
    // ---------------------------------------------------------------
    let custom = half_buffered_2pc(3);
    custom.validate_strict().expect("structurally fine");
    println!("== Judging a custom protocol ==\n");
    let verdict = theorem::check(&custom).unwrap();
    println!("{verdict}");
    println!(
        "Buffering only the coordinator is not enough: the *slaves'* wait \
         states still see both\noutcomes in their concurrency sets. The buffer \
         state must be announced (prepare/ack),\nnot silently occupied.\n"
    );
    assert!(!verdict.nonblocking());

    // ---------------------------------------------------------------
    // 2. The paper's synthesis does it right.
    // ---------------------------------------------------------------
    println!("== Synthesizing the fix from plain 2PC ==\n");
    let blocking = central_2pc(3);
    let fixed = synthesis::make_nonblocking(&blocking).unwrap();
    let verdict = theorem::check(&fixed).unwrap();
    println!("{verdict}");
    assert!(verdict.nonblocking());

    // ---------------------------------------------------------------
    // 3. Its termination decision table, as the paper tabulates it.
    // ---------------------------------------------------------------
    println!("== Termination decision table of the synthesized protocol ==\n");
    let analysis = Analysis::build(&fixed).unwrap();
    for row in termination::decision_table(&fixed, &analysis) {
        println!(
            "  {} in {:<3} ({}) -> backup rule: {}",
            row.site,
            row.state_name,
            row.class.letter(),
            row.backup
        );
    }

    // ---------------------------------------------------------------
    // 4. Figures.
    // ---------------------------------------------------------------
    println!("\n== DOT for the synthesized protocol (render with graphviz) ==\n");
    println!("{}", dot::protocol_to_dot(&fixed));
}
