//! Reachable-state-graph experiments: the 2-site 2PC figure and the
//! exponential-growth observation.

use nbc_core::protocols::{catalog, central_2pc};
use nbc_core::{dot, Analysis, ReachGraph, ReachOptions, SiteId};

use crate::table::Table;

/// E2 — "Reachable state graph for the 2-site 2PC protocol": build the
/// graph, list every global state with its classification, and emit DOT.
pub fn e2_two_site_2pc_graph() -> String {
    let p = central_2pc(2);
    let g = ReachGraph::build(&p).expect("tiny graph");
    let mut out = String::new();
    out.push_str(&format!("{}\n{}\n\n", p.name, g.stats()));

    let mut t = Table::new(["node", "coordinator", "slave", "outstanding", "class"]);
    for id in 0..g.node_count() as u32 {
        let node = g.node(id);
        let names: Vec<String> = node
            .locals
            .iter()
            .enumerate()
            .map(|(i, &s)| p.fsa(SiteId(i as u32)).state(s).name.clone())
            .collect();
        let msgs: Vec<String> = node
            .msgs
            .iter()
            .map(|(a, c)| {
                format!(
                    "{}→{}:{}{}",
                    a.src,
                    a.dst,
                    p.msg_name(a.kind),
                    if c > 1 { format!("×{c}") } else { String::new() }
                )
            })
            .collect();
        let class = if g.is_inconsistent(id) {
            "INCONSISTENT"
        } else if g.is_deadlocked(id) {
            "deadlocked"
        } else if g.is_final(id) {
            "final"
        } else if g.is_terminal(id) {
            "terminal"
        } else {
            ""
        };
        t.row([
            format!("g{id}"),
            names[0].clone(),
            names[1].clone(),
            msgs.join(", "),
            class.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nPaper property: the graph is acyclic, every terminal state is \
         final, and no state is inconsistent.\n\nDOT:\n",
    );
    out.push_str(&dot::reach_graph_to_dot(&g, &p, true));
    out
}

/// B5 — graph growth: "the reachable state graph grows exponentially with
/// the number of sites", plus the serial-vs-parallel construction race on
/// the large central 2PC instances the growth unlocks.
pub fn b5_graph_growth() -> String {
    b5_impl(6, &[6, 7, 8, 9])
}

fn b5_impl(max_n: usize, timing_ns: &[usize]) -> String {
    let mut t = Table::new(["protocol", "n", "global states", "edges", ""]);
    for n in 2..=max_n {
        for p in catalog(n) {
            let g = ReachGraph::build(&p).expect("bounded");
            t.row([
                p.name.clone(),
                n.to_string(),
                g.node_count().to_string(),
                g.edge_count().to_string(),
                String::new(),
            ]);
        }
    }
    // Per-protocol growth factors (nodes(n)/nodes(n-1)).
    let mut header = vec!["protocol".to_string()];
    header.extend((3..=max_n).map(|n| format!("n={n}/{}", n - 1)));
    let mut growth = Table::new(header);
    for idx in 0..4usize {
        let sizes: Vec<usize> = (2..=max_n)
            .map(|n| {
                let p = &catalog(n)[idx];
                ReachGraph::build(p).expect("bounded").node_count()
            })
            .collect();
        let name = catalog(2)[idx].name.replace(" (n=2)", "");
        let mut row = vec![name];
        row.extend(sizes.windows(2).map(|w| format!("{:.1}", w[1] as f64 / w[0] as f64)));
        growth.row(row);
    }

    // Serial vs. frontier-parallel construction on central 2PC, where the
    // growth actually bites. Parallel uses 4 worker threads; both builds
    // are verified to agree on the node count (full bit-identity is a
    // regression test in nbc-core).
    let mut race =
        Table::new(["central 2PC n", "global states", "serial", "parallel (4 threads)", "speedup"]);
    for &n in timing_ns {
        let p = central_2pc(n);
        let t0 = std::time::Instant::now();
        let gs = ReachGraph::build_serial(&p, ReachOptions::default()).expect("bounded");
        let serial = t0.elapsed();
        let t1 = std::time::Instant::now();
        let gp =
            ReachGraph::build_with(&p, ReachOptions::default().with_threads(4)).expect("bounded");
        let parallel = t1.elapsed();
        assert_eq!(gs.node_count(), gp.node_count(), "parallel must match serial");
        race.row([
            n.to_string(),
            gs.node_count().to_string(),
            format!("{:.1} ms", serial.as_secs_f64() * 1e3),
            format!("{:.1} ms", parallel.as_secs_f64() * 1e3),
            format!("{:.2}x", serial.as_secs_f64() / parallel.as_secs_f64()),
        ]);
    }
    // Fused (in-BFS bitset) analysis vs the post-hoc pass, and the
    // streaming memory proxy: peak resident states against the retained
    // node vector. All three columns are end-to-end (graph construction
    // included) at the auto thread count, so the analysis-pass delta is
    // not drowned by thread-oversubscription noise on small containers.
    let mut fused = Table::new([
        "central 2PC n",
        "global states",
        "post-hoc BTreeSet",
        "post-hoc bitset",
        "fused",
        "fused+stream",
        "peak resident",
    ]);
    let auto = ReachOptions::default();
    for &n in timing_ns {
        let p = central_2pc(n);
        // Fused and streaming first, while the process heap is smallest
        // (single-shot timings here are sensitive to allocator pressure
        // from a preceding multi-hundred-MB graph); then one shared build
        // whose cost both post-hoc columns add their pass to.
        let t1 = std::time::Instant::now();
        let fused_a = Analysis::build_with(&p, auto).expect("bounded");
        let fused_t = t1.elapsed();
        let nodes = fused_a.graph().expect("retained").node_count();
        drop(fused_a);
        let t2 = std::time::Instant::now();
        let streamed = Analysis::build_with(&p, auto.with_streaming(true)).expect("bounded");
        let stream_t = t2.elapsed();
        let peak = streamed.stream_stats().expect("streamed").peak_resident;
        let t0 = std::time::Instant::now();
        let g = ReachGraph::build_with(&p, auto).expect("bounded");
        let build_t = t0.elapsed();
        let tl = std::time::Instant::now();
        std::hint::black_box(crate::baseline::legacy_concurrency_pass(&p, &g));
        let legacy_t = build_t + tl.elapsed();
        let tp = std::time::Instant::now();
        let _post = Analysis::from_graph(&p, g);
        let posthoc = build_t + tp.elapsed();
        fused.row([
            n.to_string(),
            nodes.to_string(),
            format!("{:.1} ms", legacy_t.as_secs_f64() * 1e3),
            format!("{:.1} ms", posthoc.as_secs_f64() * 1e3),
            format!("{:.1} ms", fused_t.as_secs_f64() * 1e3),
            format!("{:.1} ms", stream_t.as_secs_f64() * 1e3),
            format!("{} ({:.1}%)", peak, 100.0 * peak as f64 / nodes as f64),
        ]);
    }
    format!(
        "{}\nGrowth factor per added site (≈ constant ⇒ exponential growth, \
         as the paper observes):\n{}\nConstruction wall-clock, serial vs. \
         frontier-parallel BFS:\n{}\nConcurrency-set analysis end to end: \
         the pre-bitset BTreeSet pass, the bitset post-hoc pass, and the \
         pass fused into the BFS (streaming retires node payloads per \
         level; peak resident = frontier + deduplicated successor \
         stream):\n{}",
        t.render(),
        growth.render(),
        race.render(),
        fused.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2_reports_clean_graph() {
        let s = e2_two_site_2pc_graph();
        assert!(s.contains("0 deadlocked"));
        assert!(s.contains("0 inconsistent"));
        assert!(!s.contains("INCONSISTENT"));
        assert!(s.contains("digraph"));
    }

    #[test]
    fn b5_shows_growth() {
        // Small instances only — the full n<=9 sweep is for release runs.
        let s = b5_impl(3, &[3]);
        assert!(s.contains("Growth factor"));
        assert!(s.contains("central-site 2PC"));
        assert!(s.contains("serial vs"));
        assert!(s.contains("speedup"));
        assert!(s.contains("post-hoc"));
        assert!(s.contains("peak resident"));
    }
}
