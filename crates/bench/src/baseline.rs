//! Frozen pre-fusion baselines, kept so benches and experiments can keep
//! measuring the old cost models after the production code moves on.

use std::collections::BTreeSet;

use nbc_core::{Protocol, ReachGraph, SiteId, StateId, Vote};

/// The pre-fusion concurrency-set analysis (PR 2 and earlier): a post-hoc
/// O(nodes·n²) re-traversal of the retained graph doing a
/// `BTreeSet::insert` per (site, state) pair, plus boolean occupancy and
/// committability tables. Returns a checksum over everything it computed
/// so the work cannot be optimized away.
pub fn legacy_concurrency_pass(p: &Protocol, g: &ReachGraph) -> usize {
    // Yes-voted states per FSA, by fixpoint over yes-free reachability.
    let yes_voted: Vec<Vec<bool>> = p
        .fsas()
        .iter()
        .map(|fsa| {
            let mut no_yes = vec![false; fsa.state_count()];
            no_yes[fsa.initial().index()] = true;
            let mut changed = true;
            while changed {
                changed = false;
                for t in fsa.transitions() {
                    if no_yes[t.from.index()] && t.vote != Some(Vote::Yes) && !no_yes[t.to.index()]
                    {
                        no_yes[t.to.index()] = true;
                        changed = true;
                    }
                }
            }
            no_yes.iter().map(|&r| !r).collect()
        })
        .collect();

    let counts: Vec<usize> = p.fsas().iter().map(|f| f.state_count()).collect();
    let mut cs: Vec<Vec<BTreeSet<(SiteId, StateId)>>> =
        counts.iter().map(|&c| vec![BTreeSet::new(); c]).collect();
    let mut occupied: Vec<Vec<bool>> = counts.iter().map(|&c| vec![false; c]).collect();
    let mut committable: Vec<Vec<bool>> = counts.iter().map(|&c| vec![true; c]).collect();

    for node in g.nodes() {
        let all_yes = node.locals.iter().enumerate().all(|(j, &t)| yes_voted[j][t.index()]);
        for (i, &s) in node.locals.iter().enumerate() {
            occupied[i][s.index()] = true;
            if !all_yes {
                committable[i][s.index()] = false;
            }
            for (j, &t) in node.locals.iter().enumerate() {
                if i != j {
                    cs[i][s.index()].insert((SiteId(j as u32), t));
                }
            }
        }
    }

    cs.iter().map(|site| site.iter().map(BTreeSet::len).sum::<usize>()).sum::<usize>()
        + occupied.iter().flatten().filter(|&&b| b).count()
        + committable.iter().flatten().filter(|&&b| b).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbc_core::protocols::central_2pc;

    #[test]
    fn legacy_pass_checksum_matches_fused_analysis() {
        let p = central_2pc(3);
        let g = ReachGraph::build(&p).unwrap();
        let checksum = legacy_concurrency_pass(&p, &g);
        let a = nbc_core::Analysis::from_graph(&p, g);
        let mut expect = 0usize;
        for site in p.sites() {
            for idx in 0..p.fsa(site).state_count() {
                let s = StateId(idx as u32);
                expect += a.concurrency_set(site, s).len();
                expect += usize::from(a.occupied(site, s));
                expect += usize::from(a.committable(site, s));
            }
        }
        assert_eq!(checksum, expect);
    }
}
