//! The nonblocking central-site three-phase commit protocol (paper figure
//! "A nonblocking central site 3PC protocol").
//!
//! 3PC is 2PC with a *buffer state* `p` ("prepare to commit") inserted
//! between the wait state and the commit state, which is exactly what the
//! paper's design method prescribes: after collecting unanimous yes votes
//! the coordinator broadcasts `prepare`, waits for acknowledgements, and
//! only then broadcasts `commit`. The buffer state ensures no local state
//! is adjacent to both a commit and an abort state, and no noncommittable
//! state is adjacent to a commit state — the two conditions of the
//! fundamental nonblocking theorem.

use crate::fsa::{Consume, Envelope, FsaBuilder, StateClass, Vote};
use crate::ids::{MsgKind, SiteId};
use crate::protocol::{InitialMsg, Paradigm, Protocol};

/// Build central-site 3PC for `n >= 2` sites (1 coordinator + `n-1` slaves).
///
/// # Panics
/// Panics if `n < 2`.
pub fn central_3pc(n: usize) -> Protocol {
    assert!(n >= 2, "central-site protocols need a coordinator and >=1 slave");
    let slaves: Vec<SiteId> = (1..n as u32).map(SiteId).collect();

    // Coordinator (site 0).
    let mut cb = FsaBuilder::new("coordinator");
    let q1 = cb.state("q1", StateClass::Initial);
    let w1 = cb.state("w1", StateClass::Wait);
    let a1 = cb.state("a1", StateClass::Aborted);
    let p1 = cb.state("p1", StateClass::Prepared);
    let c1 = cb.state("c1", StateClass::Committed);

    cb.transition(
        q1,
        w1,
        Consume::one(SiteId::CLIENT, MsgKind::REQUEST),
        slaves.iter().map(|&s| Envelope::new(s, MsgKind::XACT)).collect(),
        None,
        "request / xact_2..xact_n",
    );
    cb.transition(
        w1,
        p1,
        Consume::All(slaves.iter().map(|&s| (s, MsgKind::YES)).collect()),
        slaves.iter().map(|&s| Envelope::new(s, MsgKind::PREPARE)).collect(),
        Some(Vote::Yes),
        "(yes_1) yes_2..yes_n / prepare_2..prepare_n",
    );
    cb.transition(
        w1,
        a1,
        Consume::Any(slaves.iter().map(|&s| (s, MsgKind::NO)).collect()),
        slaves.iter().map(|&s| Envelope::new(s, MsgKind::ABORT)).collect(),
        None,
        "no_i / abort_2..abort_n",
    );
    cb.transition(
        w1,
        a1,
        Consume::Spontaneous,
        slaves.iter().map(|&s| Envelope::new(s, MsgKind::ABORT)).collect(),
        Some(Vote::No),
        "(no_1) / abort_2..abort_n",
    );
    cb.transition(
        p1,
        c1,
        Consume::All(slaves.iter().map(|&s| (s, MsgKind::ACK)).collect()),
        slaves.iter().map(|&s| Envelope::new(s, MsgKind::COMMIT)).collect(),
        None,
        "ack_2..ack_n / commit_2..commit_n",
    );

    let mut fsas = vec![cb.build()];

    // Slaves (sites 1..n).
    let coord = SiteId(0);
    for _ in &slaves {
        let mut sb = FsaBuilder::new("slave");
        let qi = sb.state("q", StateClass::Initial);
        let wi = sb.state("w", StateClass::Wait);
        let ai = sb.state("a", StateClass::Aborted);
        let pi = sb.state("p", StateClass::Prepared);
        let ci = sb.state("c", StateClass::Committed);
        sb.transition(
            qi,
            wi,
            Consume::one(coord, MsgKind::XACT),
            vec![Envelope::new(coord, MsgKind::YES)],
            Some(Vote::Yes),
            "xact / yes",
        );
        sb.transition(
            qi,
            ai,
            Consume::one(coord, MsgKind::XACT),
            vec![Envelope::new(coord, MsgKind::NO)],
            Some(Vote::No),
            "xact / no",
        );
        sb.transition(
            wi,
            pi,
            Consume::one(coord, MsgKind::PREPARE),
            vec![Envelope::new(coord, MsgKind::ACK)],
            None,
            "prepare / ack",
        );
        sb.transition(wi, ai, Consume::one(coord, MsgKind::ABORT), vec![], None, "abort /");
        sb.transition(pi, ci, Consume::one(coord, MsgKind::COMMIT), vec![], None, "commit /");
        fsas.push(sb.build());
    }

    Protocol::new(
        format!("central-site 3PC (n={n})"),
        Paradigm::CentralSite,
        fsas,
        vec![InitialMsg { src: SiteId::CLIENT, dst: coord, kind: MsgKind::REQUEST }],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper_figure() {
        let p = central_3pc(3);
        p.validate_strict().unwrap();
        let coord = p.fsa(SiteId(0));
        assert_eq!(coord.state_count(), 5);
        assert_eq!(coord.transitions().len(), 5);
        let slave = p.fsa(SiteId(1));
        assert_eq!(slave.state_count(), 5);
        assert_eq!(slave.transitions().len(), 5);
    }

    #[test]
    fn three_phases() {
        assert_eq!(central_3pc(4).phase_count(), 3);
    }

    #[test]
    fn buffer_state_sits_between_wait_and_commit() {
        let p = central_3pc(2);
        for site in p.sites() {
            let fsa = p.fsa(site);
            let pi = fsa.state_of_class(StateClass::Prepared).unwrap();
            let ci = fsa.state_of_class(StateClass::Committed).unwrap();
            let wi = fsa.state_of_class(StateClass::Wait).unwrap();
            // p's only successor is c, and its only predecessor is w.
            let succ: Vec<_> = fsa.outgoing(pi).map(|(_, t)| t.to).collect();
            assert_eq!(succ, vec![ci]);
            let preds: Vec<_> =
                fsa.transitions().iter().filter(|t| t.to == pi).map(|t| t.from).collect();
            assert_eq!(preds, vec![wi]);
        }
    }

    #[test]
    fn no_abort_exit_from_prepared() {
        // In the paper's 3PC figure the prepared state has no abort edge;
        // aborting from p is only done by the termination protocol.
        let p = central_3pc(3);
        for site in p.sites() {
            let fsa = p.fsa(site);
            let pi = fsa.state_of_class(StateClass::Prepared).unwrap();
            for (_, t) in fsa.outgoing(pi) {
                assert!(fsa.is_commit(t.to));
            }
        }
    }
}
