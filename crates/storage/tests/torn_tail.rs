//! Torn-tail and corruption robustness of WAL recovery.
//!
//! A crash can stop a write mid-frame at *any* byte boundary, and a bad
//! sector can flip *any* byte of the durable image. Recovery's contract
//! under both: never panic, return either a typed [`WalError`] or a clean
//! prefix of the original record stream, and never let corruption invert
//! a durable commit/abort decision (the per-frame CRC32 must catch every
//! single-byte flip — that is exactly the error class it guarantees).
//!
//! This exercises every truncation length and every single-byte flip of a
//! realistic multi-transaction image (progress records, a termination
//! alignment, both decision polarities, redo images).

use nbc_storage::recovery::summarize;
use nbc_storage::{KvStore, LogRecord, TxnOutcome, Wal};

/// A durable image with three transactions at distinct protocol stages:
/// txn 1 committed (with redo images and an `End`), txn 2 aborted after a
/// termination alignment, txn 3 voted-yes but undecided at the crash.
fn realistic_image() -> Vec<u8> {
    let mut wal = Wal::new();
    for rec in [
        LogRecord::Begin { txn: 1 },
        LogRecord::Put { txn: 1, key: b"k1".to_vec(), value: b"v1".to_vec() },
        LogRecord::Progress { txn: 1, state: 1, class: 1 },
        LogRecord::Progress { txn: 1, state: 3, class: 4 },
        LogRecord::Decision { txn: 1, commit: true },
        LogRecord::End { txn: 1 },
        LogRecord::Begin { txn: 2 },
        LogRecord::Progress { txn: 2, state: 1, class: 1 },
        LogRecord::AlignedTo { txn: 2, class: 3 },
        LogRecord::Decision { txn: 2, commit: false },
        LogRecord::Begin { txn: 3 },
        LogRecord::Delete { txn: 3, key: b"k0".to_vec() },
        LogRecord::Progress { txn: 3, state: 1, class: 1 },
    ] {
        wal.append_sync(&rec).unwrap();
    }
    wal.full_image()
}

/// The durable decision polarity per transaction, `None` when undecided.
fn decisions(recs: &[LogRecord]) -> Vec<(u64, Option<bool>)> {
    summarize(recs)
        .into_iter()
        .map(|t| {
            let d = match t.outcome {
                TxnOutcome::Committed => Some(true),
                TxnOutcome::Aborted => Some(false),
                TxnOutcome::AbortOnRecovery | TxnOutcome::MustAsk { .. } => None,
            };
            (t.txn, d)
        })
        .collect()
}

#[test]
fn every_truncation_length_recovers_a_clean_prefix() {
    let image = realistic_image();
    let baseline = Wal::recover(&image).expect("intact image recovers");
    assert_eq!(baseline.len(), 13);

    for cut in 0..=image.len() {
        let torn = &image[..cut];
        // Truncation is the normal crash shape: recovery must succeed and
        // yield a prefix of the full stream — never an error, never a
        // record the full image does not contain.
        let recs = Wal::recover(torn)
            .unwrap_or_else(|e| panic!("truncation at {cut} must recover cleanly, got {e}"));
        assert!(recs.len() <= baseline.len(), "truncation at {cut} grew the stream");
        assert_eq!(recs[..], baseline[..recs.len()], "truncation at {cut} is not a prefix");
        // The summary of a prefix must never invert a decision the full
        // log took — only lose not-yet-durable ones.
        for (txn, d) in decisions(&recs) {
            if let Some(d) = d {
                assert!(
                    decisions(&baseline).contains(&(txn, Some(d))),
                    "truncation at {cut} inverted txn {txn}'s decision"
                );
            }
        }
        // And the redo path accepts the prefix without panicking.
        let _ = KvStore::redo_from_log(&recs);
    }
}

#[test]
fn every_single_byte_flip_is_caught_or_harmless() {
    let image = realistic_image();
    let baseline = Wal::recover(&image).expect("intact image recovers");
    let base_dec = decisions(&baseline);

    for at in 0..image.len() {
        for flip in [0x01u8, 0xFF] {
            let mut bad = image.clone();
            bad[at] ^= flip;
            // Must never panic: either a typed error (checksum, length,
            // tag, payload decode) or a successful parse of whatever
            // frames survive.
            match Wal::recover(&bad) {
                Err(_) => {} // typed rejection is the expected common case
                Ok(recs) => {
                    // A flip in a length prefix can tear the tail early;
                    // what parses must still be a prefix of the original
                    // stream (the CRC catches every single-byte payload
                    // flip, so no altered record can slip through).
                    assert!(
                        recs.len() <= baseline.len(),
                        "flip {flip:#04x} at {at} grew the stream"
                    );
                    assert_eq!(
                        recs[..],
                        baseline[..recs.len()],
                        "flip {flip:#04x} at {at} smuggled in an altered record"
                    );
                    for (txn, d) in decisions(&recs) {
                        if let Some(d) = d {
                            assert!(
                                base_dec.contains(&(txn, Some(d))),
                                "flip {flip:#04x} at {at} inverted txn {txn}'s decision"
                            );
                        }
                    }
                    let _ = KvStore::redo_from_log(&recs);
                }
            }
        }
    }
}

#[test]
fn truncation_mid_final_frame_keeps_all_decided_transactions() {
    let image = realistic_image();
    let baseline = Wal::recover(&image).unwrap();
    // Tear one byte off the last frame: the final Progress record for
    // txn 3 is lost, the decided transactions 1 and 2 must survive with
    // their polarities intact.
    let recs = Wal::recover(&image[..image.len() - 1]).unwrap();
    assert_eq!(recs.len(), baseline.len() - 1);
    let dec = decisions(&recs);
    assert!(dec.contains(&(1, Some(true))));
    assert!(dec.contains(&(2, Some(false))));
}
