//! The fully decentralized two-phase commit protocol (paper figure "The
//! decentralized 2PC protocol").
//!
//! All sites run the same automaton. In the first phase each site receives
//! the `xact` message, decides whether to unilaterally abort, and sends its
//! vote to every peer (including itself, per the paper's simplifying
//! convention). In the second phase each site collects all the votes and
//! moves to a final state.

use crate::fsa::{Consume, Envelope, FsaBuilder, StateClass, Vote};
use crate::ids::{MsgKind, SiteId};
use crate::protocol::{InitialMsg, Paradigm, Protocol};

/// Build decentralized 2PC for `n >= 2` peer sites.
///
/// # Panics
/// Panics if `n < 2`.
pub fn decentralized_2pc(n: usize) -> Protocol {
    assert!(n >= 2, "a distributed commit protocol needs at least 2 sites");
    let everyone: Vec<SiteId> = (0..n as u32).map(SiteId).collect();

    let fsas = everyone
        .iter()
        .map(|_| {
            let mut b = FsaBuilder::new("peer");
            let qi = b.state("q", StateClass::Initial);
            let wi = b.state("w", StateClass::Wait);
            let ai = b.state("a", StateClass::Aborted);
            let ci = b.state("c", StateClass::Committed);
            b.transition(
                qi,
                wi,
                Consume::one(SiteId::CLIENT, MsgKind::XACT),
                everyone.iter().map(|&s| Envelope::new(s, MsgKind::YES)).collect(),
                Some(Vote::Yes),
                "xact / yes_i1..yes_in",
            );
            b.transition(
                qi,
                ai,
                Consume::one(SiteId::CLIENT, MsgKind::XACT),
                everyone.iter().map(|&s| Envelope::new(s, MsgKind::NO)).collect(),
                Some(Vote::No),
                "xact / no_i1..no_in",
            );
            b.transition(
                wi,
                ci,
                Consume::All(everyone.iter().map(|&s| (s, MsgKind::YES)).collect()),
                vec![],
                None,
                "yes_1i..yes_ni /",
            );
            b.transition(
                wi,
                ai,
                Consume::Any(everyone.iter().map(|&s| (s, MsgKind::NO)).collect()),
                vec![],
                None,
                "no_ji /",
            );
            b.build()
        })
        .collect();

    Protocol::new(
        format!("decentralized 2PC (n={n})"),
        Paradigm::Decentralized,
        fsas,
        everyone
            .iter()
            .map(|&s| InitialMsg { src: SiteId::CLIENT, dst: s, kind: MsgKind::XACT })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sites_run_the_same_protocol() {
        let p = decentralized_2pc(4);
        p.validate_strict().unwrap();
        for site in p.sites() {
            let fsa = p.fsa(site);
            assert_eq!(fsa.role, "peer");
            assert_eq!(fsa.state_count(), 4);
            assert_eq!(fsa.transitions().len(), 4);
        }
    }

    #[test]
    fn votes_are_broadcast_including_self() {
        let p = decentralized_2pc(3);
        let fsa = p.fsa(SiteId(1));
        let q = fsa.initial();
        for (_, t) in fsa.outgoing(q) {
            assert_eq!(t.emit.len(), 3, "vote to every site including self");
            assert!(t.emit.iter().any(|e| e.dst == SiteId(1)), "self-send");
        }
    }

    #[test]
    fn every_site_gets_the_xact_stimulus() {
        let p = decentralized_2pc(5);
        assert_eq!(p.initial_msgs().len(), 5);
        for m in p.initial_msgs() {
            assert_eq!(m.src, SiteId::CLIENT);
            assert_eq!(m.kind, MsgKind::XACT);
        }
    }

    #[test]
    fn commit_requires_unanimity() {
        let p = decentralized_2pc(4);
        let fsa = p.fsa(SiteId(0));
        let w = fsa.state_of_class(StateClass::Wait).unwrap();
        let commit_t = fsa.outgoing(w).map(|(_, t)| t).find(|t| fsa.is_commit(t.to)).unwrap();
        match &commit_t.consume {
            Consume::All(v) => assert_eq!(v.len(), 4),
            other => panic!("expected All, got {other:?}"),
        }
    }

    #[test]
    fn two_phases() {
        assert_eq!(decentralized_2pc(3).phase_count(), 2);
    }
}
