//! E6 — the paper's design method: buffer-state insertion turns blocking
//! protocols into nonblocking ones.

use nbc_core::canonical::{canonical_2pc, insert_buffer_states};
use nbc_core::protocols::{central_2pc, decentralized_2pc};
use nbc_core::{synthesis, theorem};

/// E6 — run the synthesis at all three levels: the canonical automaton
/// (figure "Making the canonical 2PC protocol nonblocking") and both
/// instantiated 2PC protocols, re-verifying each result with the theorem
/// checker.
pub fn e6_synthesis() -> String {
    let mut out = String::new();

    let can2 = canonical_2pc();
    out.push_str("Before (canonical 2PC):\n");
    out.push_str(&format!("{can2}"));
    out.push_str(&format!("  lemma violations: {}\n\n", can2.lemma_violations().len()));
    let can3 = insert_buffer_states(&can2);
    out.push_str("After buffer-state insertion:\n");
    out.push_str(&format!("{can3}"));
    out.push_str(&format!(
        "  lemma violations: {} (nonblocking: {})\n\n",
        can3.lemma_violations().len(),
        can3.is_nonblocking()
    ));

    for p in [central_2pc(3), decentralized_2pc(3)] {
        let before = theorem::check(&p).expect("analyzable");
        let synth = synthesis::make_nonblocking(&p).expect("catalog paradigms supported");
        let after = theorem::check(&synth).expect("analyzable");
        out.push_str(&format!(
            "{}: {} violations, {} phases  →  {}: {} violations, {} phases\n",
            p.name,
            before.violations.len(),
            p.phase_count(),
            synth.name,
            after.violations.len(),
            synth.phase_count(),
        ));
    }
    out.push_str(
        "\nShape: the synthesized protocols are structurally the hand-written \
         3PC protocols (one buffer state per automaton, one extra phase).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e6_shows_violations_going_to_zero() {
        let s = e6_synthesis();
        assert!(s.contains("nonblocking: true"));
        assert!(s.contains("0 violations, 3 phases"));
    }
}
