//! # nbc-engine — executing commit protocols under failures
//!
//! `nbc-core` *analyzes* commit protocols; this crate *runs* them. A
//! [`Runner`] executes one distributed transaction over the simulated
//! network of `nbc-simnet`, with each site persisting its progress through
//! the WAL of `nbc-storage`, under a configurable vote plan and crash
//! schedule — including the paper's **non-atomic transition** failures
//! (crash after sending only a prefix of a transition's messages).
//!
//! On top of normal execution it implements the protocols the paper builds
//! around commit processing:
//!
//! * the **termination protocol** (§"Termination Protocols"): backup
//!   coordinator election, the two-phase backup protocol (align + decide),
//!   the paper's decision rule in its canonical class-based form, cascaded
//!   re-election when backups crash, and a cooperative variant; plus the
//!   deliberately *unsafe* verbatim rule used to demonstrate why blocking
//!   protocols cannot be terminated safely;
//! * the **recovery protocol**: restart from the durable log, unilateral
//!   abort when the site crashed before voting, outcome queries, and
//!   cooperative total-failure recovery;
//! * an **invariant auditor** ([`RunReport`]): every run is checked for
//!   atomicity (no mixed commit/abort, durable logs of crashed sites
//!   included) and for the nonblocking verdict (did every operational site
//!   reach a decision?);
//! * **exhaustive crash sweeps** ([`mod@sweep`]): enumerate every crash point
//!   (every transition of every site, at every message boundary) and run
//!   them all — the experimental face of the fundamental nonblocking
//!   theorem.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod class_map;
pub mod config;
pub mod decide;
pub mod explore;
pub mod report;
pub mod run;
pub mod site;
pub mod sweep;
pub mod wire;

pub use config::{
    CrashPoint, CrashSpec, DetectorSpec, PartitionSpec, RunConfig, TerminationRule,
    TransitionProgress,
};
pub use decide::ClassDecisions;
pub use explore::{channel_of, Channel};
pub use report::{RunReport, SiteOutcome};
pub use run::{run_one, run_traced, run_with, Runner};
pub use sweep::{enumerate_crash_specs, sweep, sweep_traced, SweepSummary};
pub use wire::Wire;
