//! # nbc-simnet — the network substrate of the reproduction
//!
//! Skeen's model assumes an idealized network (paper §"Design
//! assumptions"): it *provides point-to-point communication and never
//! fails*, and it *can detect the failure of a site and reliably report it
//! to an operational site*. This crate implements exactly that substrate as
//! a deterministic discrete-event message fabric:
//!
//! * [`Network`] — reliable point-to-point delivery with per-link FIFO
//!   ordering and a pluggable [`LatencyModel`];
//! * a **perfect failure detector**: when a site crashes, every site that
//!   is operational at detection time receives a [`NetEvent::FailureNotice`]
//!   after a configurable detection delay;
//! * deterministic tie-breaking (a global sequence number) so that two runs
//!   with the same seed replay identically;
//! * per-link and aggregate [`NetStats`] used by the message-complexity
//!   experiments.
//!
//! The fabric is generic over the message type `M`; the protocol engine
//! instantiates it with its wire enum.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod detector;
pub mod latency;
pub mod net;
pub mod rng;
pub mod stats;

pub use detector::{DetectorEvent, Suspicion};
pub use latency::LatencyModel;
pub use net::{NetEvent, Network, SiteIx, Time};
pub use rng::SimRng;
pub use stats::NetStats;
