//! Exhaustive crash-point sweeps: the experimental face of the fundamental
//! nonblocking theorem.
//!
//! A sweep enumerates every crash point of a protocol — every site, every
//! transition ordinal, crashing before the write-ahead record or after each
//! possible prefix of the transition's outgoing messages — runs each
//! schedule, and audits every run for atomicity and blocking. For a
//! protocol satisfying the theorem (3PC with the Skeen rule) the sweep
//! must find **zero** inconsistent and **zero** blocked runs; for 2PC it
//! finds the blocking window, and under the deliberately naive rule it
//! finds actual atomicity violations.

use nbc_core::{Analysis, Protocol};
use nbc_obs::json::{array, string, Obj};
use nbc_obs::Tracer;
use nbc_simnet::Time;

use crate::config::{CrashPoint, CrashSpec, RunConfig, TransitionProgress};
use crate::run::{run_traced, run_with};

/// Every single-site crash point of the protocol, bounded by each site's
/// maximum transition count and maximum fan-out.
pub fn enumerate_crash_specs(protocol: &Protocol, recover_at: Option<Time>) -> Vec<CrashSpec> {
    let mut specs = Vec::new();
    for site in protocol.sites() {
        let fsa = protocol.fsa(site);
        let max_ordinal = fsa.max_depth();
        let max_emit = fsa.transitions().iter().map(|t| t.emit.len() as u32).max().unwrap_or(0);
        for ordinal in 1..=max_ordinal {
            specs.push(CrashSpec {
                site: site.index(),
                point: CrashPoint::OnTransition {
                    ordinal,
                    progress: TransitionProgress::BeforeLog,
                },
                recover_at,
            });
            for k in 0..=max_emit {
                specs.push(CrashSpec {
                    site: site.index(),
                    point: CrashPoint::OnTransition {
                        ordinal,
                        progress: TransitionProgress::AfterMsgs(k),
                    },
                    recover_at,
                });
            }
        }
    }
    specs
}

/// Aggregate result of a sweep.
#[derive(Clone, Debug, Default)]
pub struct SweepSummary {
    /// Runs executed.
    pub total: usize,
    /// Runs where the atomicity invariant held.
    pub consistent: usize,
    /// Runs where some operational site ended blocked.
    pub blocked: usize,
    /// Runs where every operational site decided.
    pub fully_decided: usize,
    /// Runs that hit the event limit.
    pub truncated: usize,
    /// Backup elections entered, summed over all runs. Sourced from the
    /// engine's election counter, so the fields are populated whether or
    /// not tracing is on (they used to exist only as trace-derived
    /// metrics).
    pub elections_total: u64,
    /// Most elections any single run entered.
    pub elections_max: u64,
    /// Runs that entered the termination protocol at least once.
    pub election_runs: usize,
    /// Human-readable descriptions of the inconsistent runs (empty for
    /// correct protocol/rule combinations).
    pub inconsistent_runs: Vec<String>,
}

impl SweepSummary {
    /// True iff every run preserved atomicity.
    pub fn all_consistent(&self) -> bool {
        self.consistent == self.total
    }

    /// True iff every run ended with all operational sites decided.
    pub fn nonblocking(&self) -> bool {
        self.blocked == 0 && self.fully_decided == self.total
    }

    /// Fraction of runs that blocked.
    pub fn blocking_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.blocked as f64 / self.total as f64
        }
    }

    fn absorb(&mut self, label: String, report: &crate::report::RunReport) {
        self.total += 1;
        if report.consistent {
            self.consistent += 1;
        } else {
            self.inconsistent_runs.push(format!("{label}: {report}"));
        }
        if report.any_blocked {
            self.blocked += 1;
        }
        if report.all_operational_decided {
            self.fully_decided += 1;
        }
        if report.truncated {
            self.truncated += 1;
        }
        self.elections_total += report.elections;
        self.elections_max = self.elections_max.max(report.elections);
        if report.elections > 0 {
            self.election_runs += 1;
        }
    }

    /// Encode the summary as a JSON object (for `--json` CLI output).
    pub fn to_json(&self) -> String {
        Obj::new()
            .num("total", self.total as u64)
            .num("consistent", self.consistent as u64)
            .num("blocked", self.blocked as u64)
            .num("fully_decided", self.fully_decided as u64)
            .num("truncated", self.truncated as u64)
            .num("elections_total", self.elections_total)
            .num("elections_max", self.elections_max)
            .num("election_runs", self.election_runs as u64)
            .bool("all_consistent", self.all_consistent())
            .bool("nonblocking", self.nonblocking())
            .float("blocking_rate", self.blocking_rate())
            .raw("inconsistent_runs", &array(self.inconsistent_runs.iter().map(|r| string(r))))
            .build()
    }

    /// Fold another partial summary in (chunk merge for parallel sweeps).
    fn merge(&mut self, other: SweepSummary) {
        self.total += other.total;
        self.consistent += other.consistent;
        self.blocked += other.blocked;
        self.fully_decided += other.fully_decided;
        self.truncated += other.truncated;
        self.elections_total += other.elections_total;
        self.elections_max = self.elections_max.max(other.elections_max);
        self.election_runs += other.election_runs;
        self.inconsistent_runs.extend(other.inconsistent_runs);
    }
}

/// Run every spec as a single-crash schedule against the base config.
///
/// Each crash spec is an independent run, so the sweep fans out over
/// scoped threads, chunking the spec list in order and merging the partial
/// summaries in chunk order — the result (including the order of
/// `inconsistent_runs`) is identical to the serial sweep.
pub fn sweep(
    protocol: &Protocol,
    analysis: &Analysis,
    base: &RunConfig,
    specs: &[CrashSpec],
) -> SweepSummary {
    let threads = std::thread::available_parallelism().map_or(1, |p| p.get()).min(8);
    if threads <= 1 || specs.len() < 2 * threads {
        return sweep_serial(protocol, analysis, base, specs);
    }
    let chunk_len = specs.len().div_ceil(threads);
    let partials: Vec<SweepSummary> = std::thread::scope(|scope| {
        let handles: Vec<_> = specs
            .chunks(chunk_len)
            .map(|chunk| scope.spawn(move || sweep_serial(protocol, analysis, base, chunk)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("sweep worker")).collect()
    });
    let mut summary = SweepSummary::default();
    for partial in partials {
        summary.merge(partial);
    }
    summary
}

/// Single-threaded sweep over `specs`, in order.
fn sweep_serial(
    protocol: &Protocol,
    analysis: &Analysis,
    base: &RunConfig,
    specs: &[CrashSpec],
) -> SweepSummary {
    let mut summary = SweepSummary::default();
    for spec in specs {
        let mut cfg = base.clone();
        cfg.crashes = vec![*spec];
        let report = run_with(protocol, analysis, cfg);
        summary.absorb(format!("{spec:?}"), &report);
    }
    summary
}

/// As [`sweep`], emitting every run's events through `tracer`. Runs
/// serially in spec order (a deterministic trace requires a deterministic
/// interleaving), stamping run `i` with transaction id `i + 1` so the
/// events of different crash schedules are distinguishable in the trace.
pub fn sweep_traced(
    protocol: &Protocol,
    analysis: &Analysis,
    base: &RunConfig,
    specs: &[CrashSpec],
    tracer: Tracer,
) -> SweepSummary {
    let mut summary = SweepSummary::default();
    for (i, spec) in specs.iter().enumerate() {
        let mut cfg = base.clone();
        cfg.crashes = vec![*spec];
        cfg.txn_id = i as u64 + 1;
        let report = run_traced(protocol, analysis, cfg, tracer.clone());
        summary.absorb(format!("{spec:?}"), &report);
    }
    summary
}

/// Double-failure sweep: each spec plus a timed crash of every other site
/// at each time in `times` — this is what exercises cascading backup
/// failures during the termination protocol.
pub fn sweep_double(
    protocol: &Protocol,
    analysis: &Analysis,
    base: &RunConfig,
    specs: &[CrashSpec],
    times: impl Iterator<Item = Time> + Clone,
) -> SweepSummary {
    let mut summary = SweepSummary::default();
    let n = protocol.n_sites();
    for spec in specs {
        for second in 0..n {
            if second == spec.site {
                continue;
            }
            for t in times.clone() {
                let mut cfg = base.clone();
                cfg.crashes = vec![
                    *spec,
                    CrashSpec { site: second, point: CrashPoint::AtTime(t), recover_at: None },
                ];
                let report = run_with(protocol, analysis, cfg);
                summary.absorb(format!("{spec:?} + site{second}@t={t}"), &report);
            }
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbc_core::protocols::central_3pc;

    #[test]
    fn enumeration_covers_all_sites_and_ordinals() {
        let p = central_3pc(3);
        let specs = enumerate_crash_specs(&p, None);
        // Coordinator: depth 3, max fan-out 2 -> 3 * (1 + 3) = 12.
        // Each slave: depth 3, max fan-out 1 -> 3 * (1 + 2) = 9.
        assert_eq!(specs.len(), 12 + 9 + 9);
        for site in 0..3 {
            assert!(specs.iter().any(|s| s.site == site));
        }
    }

    #[test]
    fn parallel_sweep_matches_serial() {
        let p = central_3pc(3);
        let a = Analysis::build(&p).unwrap();
        let base = RunConfig::happy(3);
        let specs = enumerate_crash_specs(&p, None);
        let par = sweep(&p, &a, &base, &specs);
        let ser = sweep_serial(&p, &a, &base, &specs);
        assert_eq!(par.total, ser.total);
        assert_eq!(par.consistent, ser.consistent);
        assert_eq!(par.blocked, ser.blocked);
        assert_eq!(par.fully_decided, ser.fully_decided);
        assert_eq!(par.truncated, ser.truncated);
        assert_eq!(par.inconsistent_runs, ser.inconsistent_runs);
    }

    #[test]
    fn traced_sweep_matches_untraced_summary() {
        use nbc_obs::{MemorySink, SharedSink};
        let p = central_3pc(3);
        let a = Analysis::build(&p).unwrap();
        let base = RunConfig::happy(3);
        let specs = enumerate_crash_specs(&p, None);
        let plain = sweep(&p, &a, &base, &specs);
        let sink = SharedSink::new(MemorySink::default());
        let traced = sweep_traced(&p, &a, &base, &specs, Tracer::to_sink(sink.clone()));
        assert_eq!(traced.total, plain.total);
        assert_eq!(traced.consistent, plain.consistent);
        assert_eq!(traced.blocked, plain.blocked);
        assert_eq!(traced.inconsistent_runs, plain.inconsistent_runs);
        // Every run is distinguishable by its txn id.
        let max_txn = sink.with(|s| s.events.iter().filter_map(|e| e.txn).max());
        assert_eq!(max_txn, Some(specs.len() as u64));
    }

    #[test]
    fn summary_json_is_valid() {
        let p = central_3pc(3);
        let a = Analysis::build(&p).unwrap();
        let base = RunConfig::happy(3);
        let specs = enumerate_crash_specs(&p, None);
        let j = sweep(&p, &a, &base, &specs).to_json();
        nbc_obs::json::validate(&j).unwrap();
        assert!(j.contains("\"all_consistent\":true"), "{j}");
        assert!(j.contains("\"nonblocking\":true"), "{j}");
    }

    #[test]
    fn election_fields_populated_without_tracing() {
        use nbc_obs::{MemorySink, SharedSink};
        let p = central_3pc(3);
        let a = Analysis::build(&p).unwrap();
        let base = RunConfig::happy(3);
        let specs = enumerate_crash_specs(&p, None);
        // Regression: these fields used to be derivable only from trace
        // metrics; they must now be populated by the engine counter with
        // tracing off.
        let s = sweep(&p, &a, &base, &specs);
        assert!(s.elections_total > 0, "coordinator crashes must trigger elections");
        assert!(s.election_runs > 0 && s.election_runs <= s.total);
        assert!(s.elections_max >= 1);
        let j = s.to_json();
        nbc_obs::json::validate(&j).unwrap();
        assert!(j.contains("\"elections_total\":"), "{j}");
        assert!(j.contains("\"elections_max\":"), "{j}");
        assert!(j.contains("\"election_runs\":"), "{j}");
        // The traced sweep agrees, and the counter matches the trace's
        // election events one for one.
        let sink = SharedSink::new(MemorySink::default());
        let traced = sweep_traced(&p, &a, &base, &specs, Tracer::to_sink(sink.clone()));
        assert_eq!(traced.elections_total, s.elections_total);
        assert_eq!(traced.elections_max, s.elections_max);
        assert_eq!(traced.election_runs, s.election_runs);
        let election_events = sink.with(|st| {
            st.events
                .iter()
                .filter(|e| matches!(e.kind, nbc_obs::EventKind::Election { .. }))
                .count()
        });
        assert_eq!(election_events as u64, s.elections_total);
    }

    #[test]
    fn summary_math() {
        let mut s = SweepSummary::default();
        let good = crate::report::RunReport::assemble(
            vec![crate::report::SiteOutcome::Committed],
            1,
            1,
            1,
            false,
        );
        s.absorb("g".into(), &good);
        assert!(s.all_consistent());
        assert!(s.nonblocking());
        assert_eq!(s.blocking_rate(), 0.0);
    }
}
