//! A compact bit-packed encoding of [`GlobalState`] for the streaming
//! reachability fold.
//!
//! A heap [`GlobalState`] costs two allocations per state (the locals box
//! and the `Msgs` vector) plus padding; at n≥10 the frontier alone holds
//! hundreds of thousands of them. [`StateCodec`] instead packs a state
//! into a shared `Vec<u64>` arena ([`PackedArena`]):
//!
//! * each site's local state in exactly `ceil(log2(state_count))` bits
//!   (0 bits for a single-state FSA);
//! * the message multiset against the protocol's **address universe** —
//!   the finite set of `(src, dst, kind)` triples any reachable state can
//!   hold, computed once from the initial messages plus every transition
//!   emission — as one presence bit per address, followed by a 16-bit
//!   count for each present address (counts are `u16` by the `Msgs`
//!   representation).
//!
//! Encoding is word-aligned per state so an arena slot is identified by a
//! word range; `decode(encode(s)) == s` structurally (round-trip tested
//! across the catalog), which is what lets the fold swap representations
//! without perturbing any deterministic output.

use std::collections::BTreeSet;

use crate::ids::StateId;
use crate::protocol::Protocol;
use crate::reach::{GlobalState, MsgAddr, Msgs};

/// Bits needed to store values `0..count`.
fn bits_for(count: usize) -> u32 {
    if count <= 1 {
        0
    } else {
        usize::BITS - (count - 1).leading_zeros()
    }
}

/// Append-only LSB-first bit writer over a `u64` vector.
struct BitWriter<'a> {
    out: &'a mut Vec<u64>,
    /// Bits used in the last word (0 means the next write opens one).
    used: u32,
}

impl<'a> BitWriter<'a> {
    fn new(out: &'a mut Vec<u64>) -> Self {
        Self { out, used: 64 }
    }

    fn write(&mut self, value: u64, bits: u32) {
        debug_assert!(bits <= 64);
        debug_assert!(bits == 64 || value < (1u64 << bits));
        if bits == 0 {
            return;
        }
        if self.used == 64 {
            self.out.push(0);
            self.used = 0;
        }
        let avail = 64 - self.used;
        let last = self.out.last_mut().expect("bit writer has a word");
        *last |= value << self.used;
        if bits <= avail {
            self.used += bits;
        } else {
            self.out.push(value >> avail);
            self.used = bits - avail;
        }
    }
}

/// LSB-first bit reader over an encoded word slice.
struct BitReader<'a> {
    words: &'a [u64],
    word: usize,
    used: u32,
}

impl<'a> BitReader<'a> {
    fn new(words: &'a [u64]) -> Self {
        Self { words, word: 0, used: 0 }
    }

    fn read(&mut self, bits: u32) -> u64 {
        debug_assert!(bits <= 64);
        if bits == 0 {
            return 0;
        }
        let avail = 64 - self.used;
        let cur = self.words[self.word] >> self.used;
        if bits <= avail {
            self.used += bits;
            if self.used == 64 {
                self.word += 1;
                self.used = 0;
            }
            cur & mask(bits)
        } else {
            self.word += 1;
            let hi = self.words[self.word] & mask(bits - avail);
            self.used = bits - avail;
            cur | (hi << avail)
        }
    }
}

fn mask(bits: u32) -> u64 {
    if bits == 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// The per-protocol bit layout of a packed [`GlobalState`]. Build once,
/// use for every encode/decode of states of that protocol.
pub struct StateCodec {
    /// Bits per site's local state index.
    local_bits: Vec<u32>,
    /// The sorted address universe: every `MsgAddr` a reachable state of
    /// this protocol can possibly hold.
    addrs: Vec<MsgAddr>,
}

impl StateCodec {
    /// Compute the layout for `protocol`.
    pub fn new(protocol: &Protocol) -> Self {
        let local_bits = protocol.fsas().iter().map(|f| bits_for(f.state_count())).collect();
        let mut addrs: BTreeSet<MsgAddr> = protocol
            .initial_msgs()
            .iter()
            .map(|m| MsgAddr { src: m.src, dst: m.dst, kind: m.kind })
            .collect();
        for (i, fsa) in protocol.fsas().iter().enumerate() {
            let src = crate::ids::SiteId(i as u32);
            for s in 0..fsa.state_count() {
                for (_, t) in fsa.outgoing(StateId(s as u32)) {
                    for e in &t.emit {
                        addrs.insert(MsgAddr { src, dst: e.dst, kind: e.kind });
                    }
                }
            }
        }
        Self { local_bits, addrs: addrs.into_iter().collect() }
    }

    /// Size of the address universe (one presence bit each).
    pub fn universe_len(&self) -> usize {
        self.addrs.len()
    }

    /// Append the packed form of `state` to `out`, starting at a fresh
    /// word. Panics if `state` does not belong to this codec's protocol
    /// (wrong site count, out-of-range local state, or a message outside
    /// the address universe) — all impossible for states produced by the
    /// reachability expansion the codec was built for.
    pub fn encode_into(&self, state: &GlobalState, out: &mut Vec<u64>) {
        assert_eq!(state.locals.len(), self.local_bits.len(), "site count mismatch");
        let mut w = BitWriter::new(out);
        for (i, &st) in state.locals.iter().enumerate() {
            w.write(u64::from(st.0), self.local_bits[i]);
        }
        let mut present = 0usize;
        for &addr in &self.addrs {
            let c = state.msgs.count(addr);
            if c > 0 {
                w.write(1, 1);
                w.write(u64::from(c), 16);
                present += 1;
            } else {
                w.write(0, 1);
            }
        }
        assert_eq!(
            present,
            state.msgs.distinct_addrs(),
            "state holds a message outside the codec's address universe"
        );
    }

    /// Decode one state from its packed words.
    pub fn decode(&self, words: &[u64]) -> GlobalState {
        let mut r = BitReader::new(words);
        let locals: Box<[StateId]> =
            self.local_bits.iter().map(|&bits| StateId(r.read(bits) as u32)).collect();
        let mut counts = Vec::new();
        for &addr in &self.addrs {
            if r.read(1) == 1 {
                counts.push((addr, r.read(16) as u16));
            }
        }
        GlobalState { locals, msgs: Msgs::from_sorted_counts(counts) }
    }
}

/// A word arena of packed states: push with a codec, read back by index.
/// Each state occupies a word-aligned range, so the whole frontier of a
/// BFS level lives in two flat vectors instead of per-state allocations.
#[derive(Default)]
pub struct PackedArena {
    words: Vec<u64>,
    /// `ends[i]` = one-past-the-end word offset of state `i`.
    ends: Vec<u32>,
}

impl PackedArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of packed states.
    pub fn len(&self) -> usize {
        self.ends.len()
    }

    /// True if no states are packed.
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// Words currently held (the arena's memory footprint in `u64`s).
    pub fn words_used(&self) -> usize {
        self.words.len()
    }

    /// Pack `state` at the end of the arena.
    pub fn push(&mut self, codec: &StateCodec, state: &GlobalState) {
        codec.encode_into(state, &mut self.words);
        self.ends.push(u32::try_from(self.words.len()).expect("arena exceeds 32 GiB"));
    }

    /// Decode state `i`.
    pub fn get(&self, codec: &StateCodec, i: usize) -> GlobalState {
        let start = if i == 0 { 0 } else { self.ends[i - 1] as usize };
        codec.decode(&self.words[start..self.ends[i] as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kpc::k_phase_central;
    use crate::protocols::{
        central_2pc, central_3pc, decentralized_2pc, decentralized_3pc, one_pc,
    };
    use crate::reach::ReachGraph;

    fn roundtrip_whole_graph(protocol: &Protocol) {
        let codec = StateCodec::new(protocol);
        let graph = ReachGraph::build(protocol).unwrap();
        let mut arena = PackedArena::new();
        for s in graph.nodes() {
            arena.push(&codec, s);
        }
        for (i, s) in graph.nodes().iter().enumerate() {
            assert_eq!(&arena.get(&codec, i), s, "round-trip diverged at node {i}");
        }
        // The packed form must actually be compact: every node fits well
        // under its heap representation (locals box + msgs vec).
        let per_state = arena.words_used() as f64 / graph.node_count() as f64;
        assert!(per_state < 8.0, "packed state unexpectedly large: {per_state} words");
    }

    #[test]
    fn catalog_roundtrips_exactly() {
        for n in 2..=4 {
            roundtrip_whole_graph(&central_2pc(n));
            roundtrip_whole_graph(&central_3pc(n));
            roundtrip_whole_graph(&one_pc(n));
        }
        roundtrip_whole_graph(&decentralized_2pc(3));
        roundtrip_whole_graph(&decentralized_3pc(3));
        roundtrip_whole_graph(&k_phase_central(3, 4).unwrap());
        roundtrip_whole_graph(&k_phase_central(3, 5).unwrap());
    }

    #[test]
    fn adversarial_multiplicities_near_the_u16_bound_roundtrip() {
        let protocol = central_2pc(3);
        let codec = StateCodec::new(&protocol);
        let graph = ReachGraph::build(&protocol).unwrap();
        // Take a real reachable state and inflate each message count to
        // the u16 edge values — the codec must carry full 16-bit counts.
        let base = graph
            .nodes()
            .iter()
            .find(|s| s.msgs.distinct_addrs() >= 2)
            .expect("2pc has states with two outstanding addresses");
        for count in [1u16, 2, 254, 255, 256, u16::MAX - 1, u16::MAX] {
            let inflated = GlobalState {
                locals: base.locals.clone(),
                msgs: Msgs::from_sorted_counts(base.msgs.iter().map(|(a, _)| (a, count)).collect()),
            };
            let mut words = Vec::new();
            codec.encode_into(&inflated, &mut words);
            assert_eq!(codec.decode(&words), inflated, "count {count} lost in round-trip");
        }
    }

    #[test]
    #[should_panic(expected = "outside the codec's address universe")]
    fn foreign_messages_are_rejected_not_silently_dropped() {
        use crate::ids::{MsgKind, SiteId};
        let protocol = central_2pc(3);
        let codec = StateCodec::new(&protocol);
        let graph = ReachGraph::build(&protocol).unwrap();
        let mut state = graph.nodes()[0].clone();
        // A message kind no 2PC transition ever emits.
        state.msgs = Msgs::from_sorted_counts(vec![(
            MsgAddr { src: SiteId(0), dst: SiteId(1), kind: MsgKind(9999) },
            1,
        )]);
        let mut words = Vec::new();
        codec.encode_into(&state, &mut words);
    }

    #[test]
    fn single_state_fsa_uses_zero_bits() {
        assert_eq!(bits_for(0), 0);
        assert_eq!(bits_for(1), 0);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(256), 8);
        assert_eq!(bits_for(257), 9);
    }
}
