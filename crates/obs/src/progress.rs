//! Wall-clock rate estimation for stderr progress reporting.
//!
//! Progress hooks across the workspace (`nbc analyze --progress`, `nbc
//! check --progress`) print one stderr line per reporting interval and
//! want an events/second figure for it. The estimate is intrinsically
//! wall-clock — the one place the observability layer touches a real
//! clock — which is why it lives behind this explicit, stderr-only
//! helper: simulation results and exported traces must never depend on
//! it, and every consumer keeps it out of stdout.

use std::time::Instant;

/// Events-per-second estimator over successive reporting ticks.
///
/// `Copy`, so a hook with no state of its own can park one in a
/// thread-local `Cell`:
///
/// ```
/// use std::cell::Cell;
/// use nbc_obs::progress::Rate;
///
/// thread_local! {
///     static RATE: Cell<Rate> = const { Cell::new(Rate::new()) };
/// }
/// let rate = RATE.with(|c| {
///     let mut r = c.get();
///     let rate = r.tick(4096);
///     c.set(r);
///     rate
/// });
/// assert!(rate.is_none()); // first tick has no interval yet
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Rate {
    last: Option<Instant>,
}

impl Rate {
    /// A fresh estimator; the first [`tick`](Rate::tick) establishes the
    /// baseline and yields `None`.
    pub const fn new() -> Self {
        Self { last: None }
    }

    /// Record that `events` events completed since the previous tick and
    /// return their rate per second. `None` on the first tick and
    /// whenever the clock did not advance measurably.
    pub fn tick(&mut self, events: u64) -> Option<f64> {
        let now = Instant::now();
        let prev = self.last.replace(now);
        let dt = now.duration_since(prev?).as_secs_f64();
        (dt > 0.0).then(|| events as f64 / dt)
    }
}

/// Render external-memory spill statistics as one stderr line:
/// `"<subject> spill: 3 runs, 1.5 MiB written, 1 merge pass"`. Shared by
/// every explorer front-end so budgeted runs report their disk activity
/// uniformly — and *only* on stderr, never inside a deterministic report.
pub fn spill_line(subject: &str, runs: u64, bytes: u64, merge_passes: u64) -> String {
    let mib = bytes as f64 / (1024.0 * 1024.0);
    format!(
        "{subject} spill: {runs} run{}, {mib:.1} MiB written, {merge_passes} merge pass{}",
        if runs == 1 { "" } else { "s" },
        if merge_passes == 1 { "" } else { "es" },
    )
}

/// Extract the peak-RSS value in bytes from the text of a Linux
/// `/proc/<pid>/status` file (`VmHWM:  1234 kB`). Pure parse — works on
/// every platform, so the non-Linux builds still compile and test it.
/// `None` when the line is missing or malformed.
pub fn parse_vm_hwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), for benchmark envelopes. `None` when the
/// platform does not expose it (non-Linux, or `/proc` unreadable).
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        parse_vm_hwm(&status)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spill_line_pluralizes() {
        assert_eq!(
            spill_line("check", 1, 1024 * 1024, 1),
            "check spill: 1 run, 1.0 MiB written, 1 merge pass"
        );
        assert_eq!(
            spill_line("reach", 3, 3 * 1024 * 1024 / 2, 0),
            "reach spill: 3 runs, 1.5 MiB written, 0 merge passes"
        );
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn peak_rss_is_positive_on_linux() {
        let rss = peak_rss_bytes().expect("VmHWM present on linux");
        assert!(rss > 0);
    }

    #[test]
    fn vm_hwm_parse_accepts_proc_format() {
        let status = "Name:\tnbc\nVmPeak:\t  999 kB\nVmHWM:\t   5124 kB\nThreads:\t1\n";
        assert_eq!(parse_vm_hwm(status), Some(5124 * 1024));
    }

    #[test]
    fn vm_hwm_parse_falls_back_to_none() {
        assert_eq!(parse_vm_hwm(""), None);
        assert_eq!(parse_vm_hwm("Name:\tnbc\nVmPeak:\t 1 kB\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\tnot-a-number kB\n"), None);
    }
}
