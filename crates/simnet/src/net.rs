//! The reliable point-to-point message fabric with a perfect failure
//! detector.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use nbc_obs::{Event, EventKind, Tracer};

use crate::latency::LatencyModel;
use crate::stats::NetStats;

/// Logical simulation time.
pub type Time = u64;

/// Site index within one network instance (`0..n`).
pub type SiteIx = usize;

/// An event surfaced by the network to the simulation driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetEvent<M> {
    /// A message arrives at `dst`.
    Deliver {
        /// Sender.
        src: SiteIx,
        /// Receiver.
        dst: SiteIx,
        /// The payload.
        msg: M,
    },
    /// The failure detector informs `observer` that `crashed` has failed.
    ///
    /// Per the paper's assumption the report is reliable: every site that
    /// is operational when the detection fires receives it.
    FailureNotice {
        /// The operational site being informed.
        observer: SiteIx,
        /// The site that crashed.
        crashed: SiteIx,
    },
    /// The failure detector informs `observer` that `recovered` is back.
    ///
    /// Recovery notices are the symmetric courtesy the recovery protocol
    /// relies on to re-integrate sites; the paper assumes sites can tell
    /// an operational site from a crashed one, which subsumes this.
    RecoveryNotice {
        /// The operational site being informed.
        observer: SiteIx,
        /// The site that recovered.
        recovered: SiteIx,
    },
}

/// Internal scheduled entry.
#[derive(Debug, Clone)]
struct Scheduled<M> {
    at: Time,
    seq: u64,
    event: NetEvent<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Deterministic reliable network for `n` sites.
///
/// * **Reliable**: every sent message is eventually delivered (even to a
///   crashed site — the dead site simply never reads it; the engine models
///   loss-on-crash at the *site*, not the network, matching the paper's
///   "the network never fails").
/// * **FIFO per link**: delivery times on one `(src, dst)` link are
///   non-decreasing in send order.
/// * **Perfect failure detection**: [`Network::crash`] schedules a
///   [`NetEvent::FailureNotice`] to every other site after
///   `detect_delay`; notices to sites that are themselves crashed at
///   delivery time are suppressed by the driver loop (see
///   [`Network::next_event`] — the network cannot know the future, so the
///   *driver* passes current liveness in).
#[derive(Clone)]
pub struct Network<M> {
    n: usize,
    latency: LatencyModel,
    detect_delay: Time,
    heap: BinaryHeap<Reverse<Scheduled<M>>>,
    seq: u64,
    /// `last_delivery[src * n + dst]` = latest delivery time scheduled on
    /// the link, for FIFO enforcement.
    last_delivery: Vec<Time>,
    /// Partition group per site, when partitioned. Messages across groups
    /// are silently dropped — this deliberately violates the paper's
    /// "network never fails" assumption and exists to demonstrate what
    /// that assumption buys (see the `x3` experiment).
    groups: Option<Vec<usize>>,
    stats: NetStats,
    /// Observability handle. The network reports only what it alone can
    /// see — messages swallowed by a partition ([`EventKind::MsgDrop`]);
    /// sends and deliveries are emitted by the driver, which knows the
    /// transaction and payload context.
    tracer: Tracer,
}

impl<M> Network<M> {
    /// Create a network for `n` sites.
    pub fn new(n: usize, latency: LatencyModel, detect_delay: Time) -> Self {
        Self {
            n,
            latency,
            detect_delay,
            heap: BinaryHeap::new(),
            seq: 0,
            last_delivery: vec![0; n * n],
            groups: None,
            stats: NetStats::new(n),
            tracer: Tracer::off(),
        }
    }

    /// Attach an observability tracer (drop events are emitted through it).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Number of sites.
    pub fn n_sites(&self) -> usize {
        self.n
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Send `msg` from `src` to `dst` at time `now`; returns the scheduled
    /// delivery time (`None` if a partition swallowed the message).
    pub fn send(&mut self, now: Time, src: SiteIx, dst: SiteIx, msg: M) -> Option<Time>
    where
        M: std::fmt::Display,
    {
        assert!(src < self.n && dst < self.n, "site index out of range");
        if let Some(groups) = &self.groups {
            if groups[src] != groups[dst] {
                self.stats.record_send(src, dst);
                self.stats.record_drop();
                self.tracer.emit(|| {
                    Event::new(now, EventKind::MsgDrop { dst: dst as u32, label: msg.to_string() })
                        .at_site(src)
                });
                return None;
            }
        }
        let lat = self.latency.sample();
        let link = src * self.n + dst;
        let at = (now + lat).max(self.last_delivery[link]);
        self.last_delivery[link] = at;
        self.stats.record_send(src, dst);
        self.push(at, NetEvent::Deliver { src, dst, msg });
        Some(at)
    }

    /// Partition the network at `now`: `assignment[i]` is site `i`'s group.
    /// Messages across groups are dropped from now on, and — because the
    /// failure detector cannot distinguish a dead site from an unreachable
    /// one — every site receives failure notices for every site outside
    /// its group. **This violates the paper's network assumptions on
    /// purpose** (demonstration only).
    pub fn partition(&mut self, now: Time, assignment: Vec<usize>)
    where
        M: std::fmt::Display,
    {
        assert_eq!(assignment.len(), self.n);
        // In-flight messages crossing the cut die with the link.
        let tracer = self.tracer.clone();
        let retained: Vec<Reverse<Scheduled<M>>> = std::mem::take(&mut self.heap)
            .into_iter()
            .filter(|Reverse(sch)| match &sch.event {
                NetEvent::Deliver { src, dst, msg } if assignment[*src] != assignment[*dst] => {
                    self.stats.record_drop();
                    tracer.emit(|| {
                        Event::new(
                            now,
                            EventKind::MsgDrop { dst: *dst as u32, label: msg.to_string() },
                        )
                        .at_site(*src)
                    });
                    false
                }
                _ => true,
            })
            .collect();
        self.heap = retained.into();
        for observer in 0..self.n {
            for other in 0..self.n {
                if observer != other && assignment[observer] != assignment[other] {
                    self.push(
                        now + self.detect_delay,
                        NetEvent::FailureNotice { observer, crashed: other },
                    );
                }
            }
        }
        self.groups = Some(assignment);
    }

    /// Partition the network at `now` *without* failure notices: the
    /// variant used when an imperfect detector ([`crate::Suspicion`]) is
    /// in charge — unreachable sites are then *suspected* by timeout, not
    /// reported by oracle. In-flight messages crossing the cut still die
    /// with the link.
    pub fn partition_silent(&mut self, now: Time, assignment: Vec<usize>)
    where
        M: std::fmt::Display,
    {
        assert_eq!(assignment.len(), self.n);
        let tracer = self.tracer.clone();
        let retained: Vec<Reverse<Scheduled<M>>> = std::mem::take(&mut self.heap)
            .into_iter()
            .filter(|Reverse(sch)| match &sch.event {
                NetEvent::Deliver { src, dst, msg } if assignment[*src] != assignment[*dst] => {
                    self.stats.record_drop();
                    tracer.emit(|| {
                        Event::new(
                            now,
                            EventKind::MsgDrop { dst: *dst as u32, label: msg.to_string() },
                        )
                        .at_site(*src)
                    });
                    false
                }
                _ => true,
            })
            .collect();
        self.heap = retained.into();
        self.groups = Some(assignment);
    }

    /// Heal a partition (messages flow again; no automatic notices).
    pub fn heal(&mut self) {
        self.groups = None;
    }

    /// True while partitioned.
    pub fn is_partitioned(&self) -> bool {
        self.groups.is_some()
    }

    /// Current partition assignment (`groups[i]` = site `i`'s group), if
    /// partitioned. Part of the network's behavioral state, so the model
    /// checker folds it into its global-state digest.
    pub fn partition_groups(&self) -> Option<&[usize]> {
        self.groups.as_deref()
    }

    /// Report that `site` crashed at `now`: schedules failure notices to
    /// every other site at `now + detect_delay`.
    pub fn crash(&mut self, now: Time, site: SiteIx) {
        for observer in 0..self.n {
            if observer != site {
                self.push(
                    now + self.detect_delay,
                    NetEvent::FailureNotice { observer, crashed: site },
                );
            }
        }
    }

    /// Report that `site` recovered at `now`: schedules recovery notices.
    pub fn recover(&mut self, now: Time, site: SiteIx) {
        for observer in 0..self.n {
            if observer != site {
                self.push(
                    now + self.detect_delay,
                    NetEvent::RecoveryNotice { observer, recovered: site },
                );
            }
        }
    }

    /// Time of the next pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse(s)| s.at)
    }

    /// Pop the next event in time order (ties broken by send order).
    pub fn next_event(&mut self) -> Option<(Time, NetEvent<M>)> {
        self.heap.pop().map(|Reverse(s)| {
            if matches!(s.event, NetEvent::Deliver { .. }) {
                self.stats.record_delivery();
            }
            (s.at, s.event)
        })
    }

    /// Number of undelivered events still scheduled.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Every scheduled event in deterministic `(at, seq)` order, with its
    /// sequence number. The sequence number is the handle for
    /// [`Network::take_seq`] / [`Network::drop_seq`]; a model checker uses
    /// this to enumerate the per-channel head events it may deliver next
    /// (FIFO order on one `(src, dst)` link is exactly ascending `(at,
    /// seq)` order among that link's entries).
    pub fn scheduled(&self) -> Vec<(Time, u64, &NetEvent<M>)> {
        let mut out: Vec<_> = self.heap.iter().map(|Reverse(s)| (s.at, s.seq, &s.event)).collect();
        out.sort_by_key(|&(at, seq, _)| (at, seq));
        out
    }

    /// Remove and return one specific scheduled event by sequence number,
    /// out of time order — the model checker's "deliver this one next"
    /// hook. Counts as a delivery for [`NetStats`] when it is a
    /// [`NetEvent::Deliver`]. Returns `None` if no such event is pending.
    pub fn take_seq(&mut self, seq: u64) -> Option<(Time, NetEvent<M>)> {
        let mut taken = None;
        let retained: Vec<Reverse<Scheduled<M>>> = std::mem::take(&mut self.heap)
            .into_iter()
            .filter_map(|Reverse(s)| {
                if s.seq == seq {
                    taken = Some((s.at, s.event));
                    None
                } else {
                    Some(Reverse(s))
                }
            })
            .collect();
        self.heap = retained.into();
        if let Some((_, ev)) = &taken {
            if matches!(ev, NetEvent::Deliver { .. }) {
                self.stats.record_delivery();
            }
        }
        taken
    }

    /// Remove one specific scheduled event by sequence number *as a loss*:
    /// the message never arrives. Counts as a drop for [`NetStats`] and is
    /// reported through the tracer. The model checker uses this to explore
    /// message-loss faults (in particular, in-flight messages of a crashed
    /// sender — the paper's non-atomic transition failure seen from the
    /// network side). Returns the dropped event, `None` if not pending.
    pub fn drop_seq(&mut self, now: Time, seq: u64) -> Option<NetEvent<M>>
    where
        M: std::fmt::Display,
    {
        let (_, ev) = self.take_seq(seq)?;
        if let NetEvent::Deliver { src, dst, msg } = &ev {
            // take_seq counted it as delivered; reclassify as dropped.
            self.stats.undo_delivery();
            self.stats.record_drop();
            let (src, dst) = (*src, *dst);
            self.tracer.emit(|| {
                Event::new(now, EventKind::MsgDrop { dst: dst as u32, label: msg.to_string() })
                    .at_site(src)
            });
        }
        Some(ev)
    }

    fn push(&mut self, at: Time, event: NetEvent<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Scheduled { at, seq, event }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(n: usize) -> Network<&'static str> {
        Network::new(n, LatencyModel::constant(5), 2)
    }

    #[test]
    fn delivers_in_time_order() {
        let mut n = net(3);
        n.send(0, 0, 1, "a");
        n.send(3, 1, 2, "b");
        n.send(1, 2, 0, "c");
        let mut order = Vec::new();
        while let Some((t, e)) = n.next_event() {
            if let NetEvent::Deliver { msg, .. } = e {
                order.push((t, msg));
            }
        }
        assert_eq!(order, vec![(5, "a"), (6, "c"), (8, "b")]);
    }

    #[test]
    fn fifo_per_link_under_variable_latency() {
        let mut n: Network<u32> = Network::new(2, LatencyModel::uniform(1, 50, 9), 0);
        for i in 0..100 {
            n.send(i as Time, 0, 1, i);
        }
        let mut seen = Vec::new();
        while let Some((_, e)) = n.next_event() {
            if let NetEvent::Deliver { msg, .. } = e {
                seen.push(msg);
            }
        }
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        assert_eq!(seen, sorted, "per-link FIFO order violated");
    }

    #[test]
    fn ties_break_by_send_order() {
        let mut n = net(3);
        n.send(0, 0, 1, "first");
        n.send(0, 0, 2, "second");
        let (t1, e1) = n.next_event().unwrap();
        let (t2, e2) = n.next_event().unwrap();
        assert_eq!(t1, t2);
        assert!(matches!(e1, NetEvent::Deliver { msg: "first", .. }));
        assert!(matches!(e2, NetEvent::Deliver { msg: "second", .. }));
    }

    #[test]
    fn crash_notifies_everyone_else() {
        let mut n = net(4);
        n.crash(10, 2);
        let mut observers = Vec::new();
        while let Some((t, e)) = n.next_event() {
            if let NetEvent::FailureNotice { observer, crashed } = e {
                assert_eq!(t, 12);
                assert_eq!(crashed, 2);
                observers.push(observer);
            }
        }
        observers.sort_unstable();
        assert_eq!(observers, vec![0, 1, 3]);
    }

    #[test]
    fn recovery_notices_mirror_failure_notices() {
        let mut n = net(3);
        n.recover(7, 0);
        let mut count = 0;
        while let Some((t, e)) = n.next_event() {
            if let NetEvent::RecoveryNotice { recovered, .. } = e {
                assert_eq!(t, 9);
                assert_eq!(recovered, 0);
                count += 1;
            }
        }
        assert_eq!(count, 2);
    }

    #[test]
    fn stats_count_sends_and_deliveries() {
        let mut n = net(2);
        n.send(0, 0, 1, "x");
        n.send(0, 1, 0, "y");
        assert_eq!(n.stats().sent(), 2);
        assert_eq!(n.stats().delivered(), 0);
        while n.next_event().is_some() {}
        assert_eq!(n.stats().delivered(), 2);
        assert_eq!(n.stats().link(0, 1), 1);
        assert_eq!(n.stats().link(1, 0), 1);
    }

    #[test]
    #[should_panic]
    fn out_of_range_site_rejected() {
        let mut n = net(2);
        n.send(0, 0, 5, "bad");
    }

    #[test]
    fn partition_drops_cross_group_messages() {
        let mut n = net(4);
        // Groups: {0,1} and {2,3}.
        n.partition(0, vec![0, 0, 1, 1]);
        assert!(n.is_partitioned());
        assert_eq!(n.send(5, 0, 1, "same side"), Some(10));
        assert_eq!(n.send(5, 0, 2, "cross"), None);
        assert_eq!(n.stats().dropped(), 1);
        // Every site got failure notices for the other side's sites.
        let mut notices = 0;
        while let Some((_, e)) = n.next_event() {
            if let NetEvent::FailureNotice { observer, crashed } = e {
                assert_ne!(observer, crashed);
                notices += 1;
            }
        }
        assert_eq!(notices, 8, "2 sites x 2 unreachable peers x 2 sides");
    }

    #[test]
    fn heal_restores_delivery() {
        let mut n = net(2);
        n.partition(0, vec![0, 1]);
        assert_eq!(n.send(0, 0, 1, "lost"), None);
        n.heal();
        assert!(!n.is_partitioned());
        assert!(n.send(1, 0, 1, "through").is_some());
    }

    #[test]
    fn partition_drops_are_traced() {
        use nbc_obs::{MemorySink, SharedSink};
        let sink = SharedSink::new(MemorySink::default());
        let mut n = net(3);
        n.set_tracer(Tracer::to_sink(sink.clone()));
        n.send(0, 0, 1, "in flight across the cut");
        n.partition(1, vec![0, 1, 1]);
        assert_eq!(n.send(2, 0, 2, "swallowed at send"), None);
        let drops = sink.with(|s| {
            s.events.iter().filter(|e| matches!(e.kind, EventKind::MsgDrop { .. })).count()
        });
        assert_eq!(drops, 2, "one in-flight cut + one swallowed send");
    }

    #[test]
    fn pending_counts_scheduled_events() {
        let mut n = net(2);
        assert_eq!(n.pending(), 0);
        n.send(0, 0, 1, "x");
        n.crash(0, 1);
        assert_eq!(n.pending(), 2); // one delivery + one notice (to site 0)
    }
}
