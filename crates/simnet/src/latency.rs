//! Message latency models.
//!
//! The paper abstracts away timing entirely; latencies here exist to give
//! the discrete-event engine a schedule to explore and the benchmarks a
//! time axis. All models are deterministic given their seed.

use crate::net::Time;
use crate::rng::SimRng;

/// How long a message takes from send to delivery.
#[derive(Debug, Clone)]
pub enum LatencyModel {
    /// Every message takes exactly this long.
    Constant(Time),
    /// Uniformly distributed in `[lo, hi]`, drawn from a seeded RNG.
    /// Boxed: the RNG state dwarfs the `Constant` variant.
    Uniform(Box<UniformLatency>),
}

/// State of the [`LatencyModel::Uniform`] variant.
#[derive(Debug, Clone)]
pub struct UniformLatency {
    /// Inclusive lower bound.
    pub lo: Time,
    /// Inclusive upper bound.
    pub hi: Time,
    /// RNG state (seeded at construction).
    rng: SimRng,
}

impl LatencyModel {
    /// A constant-latency model.
    pub fn constant(t: Time) -> Self {
        Self::Constant(t)
    }

    /// A uniform-latency model with its own deterministic RNG.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn uniform(lo: Time, hi: Time, seed: u64) -> Self {
        assert!(lo <= hi, "uniform latency requires lo <= hi");
        Self::Uniform(Box::new(UniformLatency { lo, hi, rng: SimRng::seed_from_u64(seed) }))
    }

    /// Draw the latency for the next message.
    pub fn sample(&mut self) -> Time {
        match self {
            Self::Constant(t) => *t,
            Self::Uniform(u) => u.rng.gen_range(u.lo..=u.hi),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let mut m = LatencyModel::constant(7);
        for _ in 0..10 {
            assert_eq!(m.sample(), 7);
        }
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let mut m = LatencyModel::uniform(3, 9, 42);
        for _ in 0..1000 {
            let v = m.sample();
            assert!((3..=9).contains(&v));
        }
    }

    #[test]
    fn uniform_is_deterministic_per_seed() {
        let mut a = LatencyModel::uniform(0, 100, 7);
        let mut b = LatencyModel::uniform(0, 100, 7);
        let va: Vec<_> = (0..50).map(|_| a.sample()).collect();
        let vb: Vec<_> = (0..50).map(|_| b.sample()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = LatencyModel::uniform(0, 1000, 1);
        let mut b = LatencyModel::uniform(0, 1000, 2);
        let va: Vec<_> = (0..20).map(|_| a.sample()).collect();
        let vb: Vec<_> = (0..20).map(|_| b.sample()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    #[should_panic]
    fn inverted_bounds_rejected() {
        let _ = LatencyModel::uniform(5, 4, 0);
    }

    #[test]
    fn degenerate_uniform_allowed() {
        let mut m = LatencyModel::uniform(4, 4, 0);
        assert_eq!(m.sample(), 4);
    }
}
