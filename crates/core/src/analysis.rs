//! Per-local-state analysis derived from the reachable state graph:
//! occupancy, concurrency sets, and committable states.
//!
//! * The **concurrency set** of local state `s` of site `i` is the set of
//!   local states that *other* sites may occupy concurrently with `i` being
//!   in `s` — i.e. all `(j, t)` with `j ≠ i` such that some reachable
//!   global state has site `i` in `s` and site `j` in `t` (paper
//!   §"Comments on reachable state graphs").
//!
//! * A local state is **committable** if occupancy of that state by any
//!   site implies that all sites have voted yes on committing the
//!   transaction; a state that is not committable is *noncommittable*
//!   (paper §"Committable States"). "To call noncommittable states
//!   abortable would be misleading": a transaction not yet in a final
//!   commit state at any site can still be aborted.
//!
//! Whether a site "has voted yes" in a global state is derived from the
//! [`Vote`] tags on transitions: a local state `t` is *yes-voted* iff every
//! FSA path from the initial state to `t` passes a `Vote::Yes` transition.
//! This is a per-state (path-insensitive) approximation: a site that voted
//! yes and later aborted is treated as not-yes-voted in its abort state.
//! The approximation is conservative for the nonblocking theorem — it can
//! only shrink the committable set, never grow it — and it is exact for
//! every protocol in the catalog.
//!
//! [`Vote`]: crate::fsa::Vote

use std::collections::BTreeSet;

use crate::error::ProtocolError;
use crate::fsa::{Fsa, StateClass, Vote};
use crate::ids::{SiteId, StateId};
use crate::protocol::Protocol;
use crate::reach::{NodeId, ReachGraph, ReachOptions};

/// All per-state facts the theorem and termination rules need, computed in
/// one pass over the reachable state graph.
pub struct Analysis {
    n_sites: usize,
    /// `cs[i][s]` = concurrency set of state `s` of site `i`.
    cs: Vec<Vec<BTreeSet<(SiteId, StateId)>>>,
    /// `occupied[i][s]` = `s` appears in some reachable global state.
    occupied: Vec<Vec<bool>>,
    /// `yes_voted[i][s]` = every path to `s` casts a yes vote.
    yes_voted: Vec<Vec<bool>>,
    /// `committable[i][s]` per the paper's definition (occupied states only;
    /// unoccupied states are vacuously committable but also irrelevant).
    committable: Vec<Vec<bool>>,
    /// `classes[i][s]` = state class, for commit/abort queries.
    classes: Vec<Vec<StateClass>>,
    graph: ReachGraph,
}

impl Analysis {
    /// Build the reachable state graph and run the full analysis.
    pub fn build(protocol: &Protocol) -> Result<Self, ProtocolError> {
        Self::build_with(protocol, ReachOptions::default())
    }

    /// As [`Analysis::build`] with explicit graph options.
    pub fn build_with(protocol: &Protocol, opts: ReachOptions) -> Result<Self, ProtocolError> {
        let graph = ReachGraph::build_with(protocol, opts)?;
        Ok(Self::from_graph(protocol, graph))
    }

    /// Run the analysis over an already-built graph.
    pub fn from_graph(protocol: &Protocol, graph: ReachGraph) -> Self {
        let n = protocol.n_sites();
        let state_counts: Vec<usize> = protocol.fsas().iter().map(Fsa::state_count).collect();

        let yes_voted: Vec<Vec<bool>> = protocol.fsas().iter().map(yes_voted_states).collect();

        let mut cs: Vec<Vec<BTreeSet<(SiteId, StateId)>>> =
            state_counts.iter().map(|&c| vec![BTreeSet::new(); c]).collect();
        let mut occupied: Vec<Vec<bool>> = state_counts.iter().map(|&c| vec![false; c]).collect();
        // Start from "all committable", knock out states seen in a
        // not-all-yes global state.
        let mut committable: Vec<Vec<bool>> = state_counts.iter().map(|&c| vec![true; c]).collect();

        for id in 0..graph.node_count() as NodeId {
            let g = graph.node(id);
            let all_yes = g.locals.iter().enumerate().all(|(j, &t)| yes_voted[j][t.index()]);
            for (i, &s) in g.locals.iter().enumerate() {
                occupied[i][s.index()] = true;
                if !all_yes {
                    committable[i][s.index()] = false;
                }
                for (j, &t) in g.locals.iter().enumerate() {
                    if i != j {
                        cs[i][s.index()].insert((SiteId(j as u32), t));
                    }
                }
            }
        }

        let classes =
            protocol.fsas().iter().map(|f| f.states().iter().map(|s| s.class).collect()).collect();

        Self { n_sites: n, cs, occupied, yes_voted, committable, classes, graph }
    }

    /// The underlying reachable state graph.
    pub fn graph(&self) -> &ReachGraph {
        &self.graph
    }

    /// Number of sites of the analyzed protocol.
    pub fn n_sites(&self) -> usize {
        self.n_sites
    }

    /// The concurrency set of `(site, state)` as `(other_site, state)` pairs.
    pub fn concurrency_set(&self, site: SiteId, s: StateId) -> &BTreeSet<(SiteId, StateId)> {
        &self.cs[site.index()][s.index()]
    }

    /// True if the state occurs in some reachable global state.
    pub fn occupied(&self, site: SiteId, s: StateId) -> bool {
        self.occupied[site.index()][s.index()]
    }

    /// True if every path to this state casts a yes vote.
    pub fn yes_voted(&self, site: SiteId, s: StateId) -> bool {
        self.yes_voted[site.index()][s.index()]
    }

    /// True if occupancy of this state implies all sites voted yes.
    ///
    /// Meaningful only for occupied states (unoccupied states return their
    /// vacuous default of `true`).
    pub fn committable(&self, site: SiteId, s: StateId) -> bool {
        self.committable[site.index()][s.index()]
    }

    /// Class of a local state.
    pub fn class_of(&self, site: SiteId, s: StateId) -> StateClass {
        self.classes[site.index()][s.index()]
    }

    /// Does the concurrency set of `(site, s)` contain a commit state?
    pub fn cs_has_commit(&self, site: SiteId, s: StateId) -> bool {
        self.concurrency_set(site, s)
            .iter()
            .any(|&(j, t)| self.class_of(j, t) == StateClass::Committed)
    }

    /// Does the concurrency set of `(site, s)` contain an abort state?
    pub fn cs_has_abort(&self, site: SiteId, s: StateId) -> bool {
        self.concurrency_set(site, s)
            .iter()
            .any(|&(j, t)| self.class_of(j, t) == StateClass::Aborted)
    }

    /// The concurrency set projected to state *classes* — the form the
    /// paper's tables use (e.g. `CS(w) = {q, w, a, c}`).
    pub fn concurrency_classes(&self, site: SiteId, s: StateId) -> BTreeSet<StateClass> {
        self.concurrency_set(site, s).iter().map(|&(j, t)| self.class_of(j, t)).collect()
    }
}

/// Compute, for one FSA, which states are yes-voted: state `t` is yes-voted
/// iff `t` is unreachable from the initial state using only transitions that
/// do not cast a yes vote.
fn yes_voted_states(fsa: &Fsa) -> Vec<bool> {
    let mut yes_free_reachable = vec![false; fsa.state_count()];
    let mut stack = vec![fsa.initial()];
    yes_free_reachable[fsa.initial().index()] = true;
    while let Some(s) = stack.pop() {
        for (_, t) in fsa.outgoing(s) {
            if t.vote != Some(Vote::Yes) && !yes_free_reachable[t.to.index()] {
                yes_free_reachable[t.to.index()] = true;
                stack.push(t.to);
            }
        }
    }
    yes_free_reachable.iter().map(|&r| !r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::{central_2pc, central_3pc, decentralized_2pc, decentralized_3pc};

    fn classes_of(
        a: &Analysis,
        site: u32,
        name_to_id: &dyn Fn(&str) -> StateId,
        name: &str,
    ) -> BTreeSet<StateClass> {
        a.concurrency_classes(SiteId(site), name_to_id(name))
    }

    #[test]
    fn decentralized_2pc_concurrency_sets_match_paper_table() {
        // Paper: CS(q)={q,w,a}, CS(w)={q,w,a,c}, CS(a)={q,w,a}, CS(c)={w,c}.
        let p = decentralized_2pc(2);
        let a = Analysis::build(&p).unwrap();
        let fsa = p.fsa(SiteId(0));
        let id = |n: &str| fsa.state_by_name(n).unwrap();
        use StateClass::*;
        assert_eq!(classes_of(&a, 0, &id, "q"), BTreeSet::from([Initial, Wait, Aborted]));
        assert_eq!(
            classes_of(&a, 0, &id, "w"),
            BTreeSet::from([Initial, Wait, Aborted, Committed])
        );
        assert_eq!(classes_of(&a, 0, &id, "a"), BTreeSet::from([Initial, Wait, Aborted]));
        assert_eq!(classes_of(&a, 0, &id, "c"), BTreeSet::from([Wait, Committed]));
    }

    #[test]
    fn central_2pc_slave_wait_sees_both_outcomes() {
        let p = central_2pc(2);
        let a = Analysis::build(&p).unwrap();
        let slave = SiteId(1);
        let w = p.fsa(slave).state_by_name("w").unwrap();
        assert!(a.cs_has_commit(slave, w));
        assert!(a.cs_has_abort(slave, w));
        assert!(!a.committable(slave, w));
    }

    #[test]
    fn central_2pc_coordinator_wait_is_safe() {
        // The coordinator's wait state never co-exists with a slave commit:
        // slaves commit only after the coordinator has left w1.
        let p = central_2pc(3);
        let a = Analysis::build(&p).unwrap();
        let w1 = p.fsa(SiteId(0)).state_by_name("w1").unwrap();
        assert!(!a.cs_has_commit(SiteId(0), w1));
        assert!(a.cs_has_abort(SiteId(0), w1), "slaves can unilaterally abort");
    }

    #[test]
    fn committable_states_2pc_vs_3pc() {
        // "A blocking protocol usually has only one committable state,
        // while nonblocking protocols always have more than one."
        let p2 = central_2pc(3);
        let a2 = Analysis::build(&p2).unwrap();
        for site in p2.sites() {
            let fsa = p2.fsa(site);
            let committable: Vec<_> = (0..fsa.state_count())
                .map(|i| StateId(i as u32))
                .filter(|&s| a2.occupied(site, s) && a2.committable(site, s))
                .collect();
            assert_eq!(committable.len(), 1, "2PC {site}: only c is committable");
            assert_eq!(fsa.state(committable[0]).class, StateClass::Committed);
        }

        let p3 = central_3pc(3);
        let a3 = Analysis::build(&p3).unwrap();
        for site in p3.sites() {
            let fsa = p3.fsa(site);
            let committable: BTreeSet<_> = (0..fsa.state_count())
                .map(|i| StateId(i as u32))
                .filter(|&s| a3.occupied(site, s) && a3.committable(site, s))
                .map(|s| fsa.state(s).class)
                .collect();
            assert_eq!(
                committable,
                BTreeSet::from([StateClass::Prepared, StateClass::Committed]),
                "3PC {site}: p and c are committable"
            );
        }
    }

    #[test]
    fn three_pc_prepared_never_concurrent_with_abort() {
        for p in [central_3pc(3), decentralized_3pc(3)] {
            let a = Analysis::build(&p).unwrap();
            for site in p.sites() {
                if let Some(ps) = p.fsa(site).state_of_class(StateClass::Prepared) {
                    assert!(
                        !a.cs_has_abort(site, ps),
                        "{}: CS(p) must not contain an abort state",
                        p.name
                    );
                }
            }
        }
    }

    #[test]
    fn three_pc_prepared_commit_concurrency_depends_on_role() {
        // A decentralized peer in p can co-exist with a committed peer
        // (the other peer may have collected all prepares first), and so
        // can a central-site *slave* in p (the coordinator may have
        // committed). The central-site *coordinator* in p1 cannot: slaves
        // commit only after the coordinator has entered c1.
        let pd = decentralized_3pc(3);
        let ad = Analysis::build(&pd).unwrap();
        let pd0 = pd.fsa(SiteId(0)).state_of_class(StateClass::Prepared).unwrap();
        assert!(ad.cs_has_commit(SiteId(0), pd0));

        let pc = central_3pc(3);
        let ac = Analysis::build(&pc).unwrap();
        let slave_p = pc.fsa(SiteId(1)).state_of_class(StateClass::Prepared).unwrap();
        assert!(ac.cs_has_commit(SiteId(1), slave_p));
        let coord_p = pc.fsa(SiteId(0)).state_of_class(StateClass::Prepared).unwrap();
        assert!(!ac.cs_has_commit(SiteId(0), coord_p));
    }

    #[test]
    fn three_pc_wait_never_concurrent_with_commit() {
        for p in [central_3pc(3), decentralized_3pc(3)] {
            let a = Analysis::build(&p).unwrap();
            for site in p.sites() {
                let ws = p.fsa(site).state_of_class(StateClass::Wait).unwrap();
                assert!(
                    !a.cs_has_commit(site, ws),
                    "{}: CS(w) must not contain a commit state",
                    p.name
                );
            }
        }
    }

    #[test]
    fn yes_voted_analysis() {
        let p = central_2pc(2);
        let a = Analysis::build(&p).unwrap();
        let slave = SiteId(1);
        let fsa = p.fsa(slave);
        let id = |n: &str| fsa.state_by_name(n).unwrap();
        assert!(!a.yes_voted(slave, id("q")));
        assert!(a.yes_voted(slave, id("w")));
        assert!(a.yes_voted(slave, id("c")));
        // a is reachable via the no-vote, so it is not yes-voted.
        assert!(!a.yes_voted(slave, id("a")));
    }

    #[test]
    fn all_states_occupied_in_catalog() {
        for p in crate::protocols::catalog(3) {
            let a = Analysis::build(&p).unwrap();
            for site in p.sites() {
                for i in 0..p.fsa(site).state_count() {
                    assert!(
                        a.occupied(site, StateId(i as u32)),
                        "{} {site} state {i} unoccupied",
                        p.name
                    );
                }
            }
        }
    }

    #[test]
    fn concurrency_set_excludes_own_site() {
        let p = decentralized_2pc(3);
        let a = Analysis::build(&p).unwrap();
        let s0 = SiteId(0);
        for i in 0..p.fsa(s0).state_count() {
            for &(j, _) in a.concurrency_set(s0, StateId(i as u32)) {
                assert_ne!(j, s0);
            }
        }
    }
}
