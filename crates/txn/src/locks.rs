//! A per-site lock manager with strict two-phase locking and wait-die
//! deadlock avoidance.
//!
//! Wait-die orders transactions by id (smaller id = older): an older
//! transaction may wait for a younger lock holder, but a younger requester
//! conflicting with an older holder *dies* immediately. Deadlock is
//! impossible (waits only go old → young), and a died transaction's site
//! votes no in the commit protocol — the paper's organic source of
//! unilateral aborts.
//!
//! This manager resolves requests eagerly: because the cluster executes
//! operations synchronously, "waiting" surfaces as [`LockOutcome::Wait`]
//! and the caller retries after the conflicting transaction finishes.

use std::collections::BTreeMap;

/// Lock modes.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum LockMode {
    /// Shared (read) lock.
    Shared,
    /// Exclusive (write) lock.
    Exclusive,
}

/// Result of a lock request.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum LockOutcome {
    /// Lock granted.
    Granted,
    /// The requester is older than every conflicting holder: it may wait.
    Wait,
    /// The requester is younger than some conflicting holder: wait-die
    /// kills it; its site votes no.
    Die,
}

#[derive(Debug, Default, Clone)]
struct Entry {
    /// `(txn, mode)` holders; multiple holders only when all shared.
    holders: Vec<(u64, LockMode)>,
}

/// One site's lock table.
#[derive(Debug, Default, Clone)]
pub struct LockManager {
    table: BTreeMap<Vec<u8>, Entry>,
}

impl LockManager {
    /// Empty lock table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request `mode` on `key` for `txn`.
    pub fn request(&mut self, txn: u64, key: &[u8], mode: LockMode) -> LockOutcome {
        let entry = self.table.entry(key.to_vec()).or_default();
        // Re-entrant / upgrade handling.
        if let Some(pos) = entry.holders.iter().position(|&(t, _)| t == txn) {
            let held = entry.holders[pos].1;
            if held == LockMode::Exclusive || mode == LockMode::Shared {
                return LockOutcome::Granted;
            }
            // Upgrade shared -> exclusive: conflicts with other holders.
            let others: Vec<u64> =
                entry.holders.iter().filter(|&&(t, _)| t != txn).map(|&(t, _)| t).collect();
            if others.is_empty() {
                entry.holders[pos].1 = LockMode::Exclusive;
                return LockOutcome::Granted;
            }
            return wait_die(txn, &others);
        }

        let conflicting: Vec<u64> = entry
            .holders
            .iter()
            .filter(|&&(_, held)| held == LockMode::Exclusive || mode == LockMode::Exclusive)
            .map(|&(t, _)| t)
            .collect();
        if conflicting.is_empty() {
            entry.holders.push((txn, mode));
            return LockOutcome::Granted;
        }
        wait_die(txn, &conflicting)
    }

    /// Release every lock held by `txn` (strict 2PL: at commit/abort).
    pub fn release_all(&mut self, txn: u64) {
        self.table.retain(|_, entry| {
            entry.holders.retain(|&(t, _)| t != txn);
            !entry.holders.is_empty()
        });
    }

    /// Locks currently held by `txn`.
    pub fn held_by(&self, txn: u64) -> usize {
        self.table.values().filter(|e| e.holders.iter().any(|&(t, _)| t == txn)).count()
    }

    /// Total number of locked keys.
    pub fn locked_keys(&self) -> usize {
        self.table.len()
    }
}

fn wait_die(requester: u64, conflicting: &[u64]) -> LockOutcome {
    // Older (smaller id) requester waits; younger dies.
    if conflicting.iter().all(|&holder| requester < holder) {
        LockOutcome::Wait
    } else {
        LockOutcome::Die
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_locks_coexist() {
        let mut lm = LockManager::new();
        assert_eq!(lm.request(1, b"k", LockMode::Shared), LockOutcome::Granted);
        assert_eq!(lm.request(2, b"k", LockMode::Shared), LockOutcome::Granted);
        assert_eq!(lm.locked_keys(), 1);
    }

    #[test]
    fn exclusive_conflicts_wait_die() {
        let mut lm = LockManager::new();
        assert_eq!(lm.request(2, b"k", LockMode::Exclusive), LockOutcome::Granted);
        // Older requester (1) waits.
        assert_eq!(lm.request(1, b"k", LockMode::Exclusive), LockOutcome::Wait);
        // Younger requester (3) dies.
        assert_eq!(lm.request(3, b"k", LockMode::Exclusive), LockOutcome::Die);
        // Shared request against exclusive also conflicts.
        assert_eq!(lm.request(3, b"k", LockMode::Shared), LockOutcome::Die);
    }

    #[test]
    fn release_unblocks() {
        let mut lm = LockManager::new();
        lm.request(2, b"k", LockMode::Exclusive);
        lm.release_all(2);
        assert_eq!(lm.request(3, b"k", LockMode::Exclusive), LockOutcome::Granted);
        assert_eq!(lm.locked_keys(), 1);
    }

    #[test]
    fn reentrant_and_upgrade() {
        let mut lm = LockManager::new();
        assert_eq!(lm.request(1, b"k", LockMode::Shared), LockOutcome::Granted);
        assert_eq!(lm.request(1, b"k", LockMode::Shared), LockOutcome::Granted);
        // Sole holder upgrades in place.
        assert_eq!(lm.request(1, b"k", LockMode::Exclusive), LockOutcome::Granted);
        // Exclusive holder asking for shared is a no-op.
        assert_eq!(lm.request(1, b"k", LockMode::Shared), LockOutcome::Granted);
    }

    #[test]
    fn upgrade_with_other_sharers_is_wait_die() {
        let mut lm = LockManager::new();
        lm.request(1, b"k", LockMode::Shared);
        lm.request(3, b"k", LockMode::Shared);
        // 1 is older than 3: it waits for the upgrade.
        assert_eq!(lm.request(1, b"k", LockMode::Exclusive), LockOutcome::Wait);
        // 3 is younger than 1: it dies trying to upgrade.
        assert_eq!(lm.request(3, b"k", LockMode::Exclusive), LockOutcome::Die);
    }

    #[test]
    fn held_by_counts() {
        let mut lm = LockManager::new();
        lm.request(1, b"a", LockMode::Shared);
        lm.request(1, b"b", LockMode::Exclusive);
        lm.request(2, b"c", LockMode::Exclusive);
        assert_eq!(lm.held_by(1), 2);
        assert_eq!(lm.held_by(2), 1);
        lm.release_all(1);
        assert_eq!(lm.held_by(1), 0);
        assert_eq!(lm.locked_keys(), 1);
    }
}
