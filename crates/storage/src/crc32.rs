//! CRC-32 (ISO-HDLC polynomial, the one used by zlib/PNG/Ethernet) for WAL
//! record integrity. Table-driven, no dependencies.

/// Lazily built 256-entry lookup table for polynomial `0xEDB88320`.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *entry = c;
        }
        t
    })
}

/// Compute the CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flip() {
        let a = crc32(b"hello world");
        let b = crc32(b"hello worle");
        assert_ne!(a, b);
    }

    #[test]
    fn is_pure() {
        assert_eq!(crc32(b"abc"), crc32(b"abc"));
    }
}
