//! B2/B3 (timing face): cost of one commit round per protocol and
//! paradigm — the engine's wall-clock reflection of message counts and
//! phase counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nbc_core::protocols::{central_2pc, central_3pc, decentralized_2pc, decentralized_3pc};
use nbc_core::Analysis;
use nbc_engine::{run_with, RunConfig};
use std::hint::black_box;

fn bench_commit_round(c: &mut Criterion) {
    let mut g = c.benchmark_group("commit_round");
    g.sample_size(50);
    for n in [3usize, 5, 8] {
        for (label, p) in [
            ("central_2pc", central_2pc(n)),
            ("central_3pc", central_3pc(n)),
        ] {
            let a = Analysis::build(&p).unwrap();
            g.bench_with_input(BenchmarkId::new(label, n), &(&p, &a), |b, (p, a)| {
                b.iter(|| run_with(black_box(p), a, RunConfig::happy(p.n_sites())).msgs_sent)
            });
        }
    }
    for n in [3usize, 5] {
        for (label, p) in [
            ("decentralized_2pc", decentralized_2pc(n)),
            ("decentralized_3pc", decentralized_3pc(n)),
        ] {
            let a = Analysis::build(&p).unwrap();
            g.bench_with_input(BenchmarkId::new(label, n), &(&p, &a), |b, (p, a)| {
                b.iter(|| run_with(black_box(p), a, RunConfig::happy(p.n_sites())).msgs_sent)
            });
        }
    }
    g.finish();
}

fn bench_termination_round(c: &mut Criterion) {
    // A commit round that goes through the full termination protocol:
    // coordinator dies after a partial prepare broadcast.
    use nbc_engine::{CrashPoint, CrashSpec, TransitionProgress};
    let mut g = c.benchmark_group("termination_round");
    g.sample_size(50);
    for n in [3usize, 5] {
        let p = central_3pc(n);
        let a = Analysis::build(&p).unwrap();
        let cfg = RunConfig::happy(n).with_crash(CrashSpec {
            site: 0,
            point: CrashPoint::OnTransition {
                ordinal: 2,
                progress: TransitionProgress::AfterMsgs(1),
            },
            recover_at: None,
        });
        g.bench_with_input(BenchmarkId::new("central_3pc", n), &(&p, &a), |b, (p, a)| {
            b.iter(|| {
                let r = run_with(black_box(p), a, cfg.clone());
                assert!(r.consistent);
                r.msgs_sent
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_commit_round, bench_termination_round);
criterion_main!(benches);
