//! Proptest-style randomized cross-validation, hand-rolled on the
//! deterministic `SimRng` (the workspace has no proptest dependency).
//!
//! A seeded generator emits random-but-valid central-site commit protocol
//! *specs* (the `nbc-spec` text grammar): a coordinator collects votes,
//! then drives `k` broadcast/ack rounds before the final commit, with the
//! site count, the round count and the message vocabulary all drawn from
//! the rng. `k = 1` is 2PC, `k = 2` is 3PC, `k = 3` is a 4PC; the paper's
//! theorem says exactly the `k = 1` family blocks (its wait state sees
//! both a commit and an abort in its concurrency set; the buffer rounds
//! of `k >= 2` separate them).
//!
//! For every generated spec the checker must *agree with the theorem* —
//! `report.ok()` carries that agreement (the nonblocking oracle fails on
//! any mismatch in either direction), and prediction completeness pins
//! the operational engine to the analytic state graph.

use nbc_check::{run_check, CheckOptions};
use nbc_simnet::SimRng;

/// Emit the spec text for a `k`-round central commit protocol. The site
/// count binds later, at parse time (`fsa slave sites 1..` is a template
/// over slaves). Message names are drawn from `rng` so the parser sees
/// fresh vocabulary every time; structure stays valid by construction.
fn gen_spec(rng: &mut SimRng, k: usize) -> String {
    let tag = |rng: &mut SimRng| -> String {
        let letters = b"abcdefghijklmnopqrstuvwxyz";
        (0..4).map(|_| letters[rng.gen_range(0..letters.len())] as char).collect()
    };
    let xact = format!("x{}", tag(rng));
    let yes = format!("y{}", tag(rng));
    let no = format!("n{}", tag(rng));
    let abort = format!("a{}", tag(rng));
    let commit = format!("c{}", tag(rng));
    let rounds: Vec<(String, String)> =
        (1..k).map(|j| (format!("p{j}{}", tag(rng)), format!("k{j}{}", tag(rng)))).collect();
    let class = |j: usize| if j == 1 { "prepared".to_string() } else { format!("custom {j}") };

    let mut out = String::new();
    out.push_str(&format!("protocol rand-{k}round-{}\n", tag(rng)));
    out.push_str("paradigm central\n\ninit request to site 0\n\n");

    // Coordinator: q -> w (broadcast vote request), then the round chain
    // w -> b1 -> ... -> b_{k-1} -> c, plus its own spontaneous no-vote
    // and an abort path on any slave's no.
    out.push_str("fsa coordinator site 0\n");
    out.push_str("  state q initial\n  state w wait\n");
    for j in 1..k {
        out.push_str(&format!("  state b{j} {}\n", class(j)));
    }
    out.push_str("  state a aborted\n  state c committed\n");
    out.push_str(&format!("  q -> w : recv request from client ; send {xact} to slaves\n"));
    let mut from = "w".to_string();
    for (j, (pre, _ack)) in rounds.iter().enumerate() {
        let consume = if j == 0 { &yes } else { &rounds[j - 1].1 };
        let vote = if j == 0 { " ; vote yes" } else { "" };
        out.push_str(&format!(
            "  {from} -> b{} : recv {consume} from all slaves ; send {pre} to slaves{vote}\n",
            j + 1
        ));
        from = format!("b{}", j + 1);
    }
    let last_consume = if k == 1 { &yes } else { &rounds[k - 2].1 };
    let last_vote = if k == 1 { " ; vote yes" } else { "" };
    out.push_str(&format!(
        "  {from} -> c : recv {last_consume} from all slaves ; send {commit} to slaves{last_vote}\n"
    ));
    out.push_str(&format!("  w -> a : spontaneous ; send {abort} to slaves ; vote no\n"));
    out.push_str(&format!("  w -> a : recv {no} from any slave ; send {abort} to slaves\n"));

    // Slaves: vote yes or no on the request, then mirror the round chain.
    out.push_str("\nfsa slave sites 1..\n");
    out.push_str("  state q initial\n  state w wait\n");
    for j in 1..k {
        out.push_str(&format!("  state b{j} {}\n", class(j)));
    }
    out.push_str("  state a aborted\n  state c committed\n");
    out.push_str(&format!(
        "  q -> w : recv {xact} from site 0 ; send {yes} to site 0 ; vote yes\n"
    ));
    out.push_str(&format!("  q -> a : recv {xact} from site 0 ; send {no} to site 0 ; vote no\n"));
    let mut from = "w".to_string();
    for (j, (pre, ack)) in rounds.iter().enumerate() {
        out.push_str(&format!(
            "  {from} -> b{} : recv {pre} from site 0 ; send {ack} to site 0\n",
            j + 1
        ));
        from = format!("b{}", j + 1);
    }
    out.push_str(&format!("  {from} -> c : recv {commit} from site 0\n"));
    out.push_str(&format!("  w -> a : recv {abort} from site 0\n"));
    out
}

#[test]
fn random_specs_agree_with_the_theorem() {
    let mut rng = SimRng::seed_from_u64(0x5eed_cafe);
    for draw in 0..6 {
        let n = rng.gen_range(2..=3usize);
        let k = rng.gen_range(1..=3usize);
        let text = gen_spec(&mut rng, k);
        let protocol = nbc_spec::parse(&text, n)
            .unwrap_or_else(|e| panic!("draw {draw}: generated spec invalid: {e}\n{text}"));

        let report = run_check(&protocol, CheckOptions::default())
            .unwrap_or_else(|e| panic!("draw {draw}: analysis failed: {e}"));
        assert!(
            report.ok(),
            "draw {draw} (n={n}, k={k}): checker disagrees with itself or the theorem:\n{}",
            report.render()
        );
        assert_eq!(
            report.certified_nonblocking,
            k >= 2,
            "draw {draw}: a {k}-round central protocol must be {} per the paper",
            if k >= 2 { "nonblocking" } else { "blocking" }
        );
        assert!(!report.stats.truncated, "draw {draw}: exploration must be exhaustive");
        assert!(report.prediction_complete, "draw {draw}:\n{}", report.render());
        assert_eq!(
            report.blocking_witness.is_some(),
            k == 1,
            "draw {draw}: witness existence must match the theorem"
        );
    }
}
