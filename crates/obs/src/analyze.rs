//! The read side of observability: parse JSONL traces back into typed
//! events, reconstruct causality, and audit invariants offline.
//!
//! The write side ([`crate::export`]) is a one-way street — this module
//! drives it backwards. [`parse_jsonl`] inverts [`crate::export::to_jsonl`]
//! exactly (every [`EventKind`] round-trips), [`CausalTrace`] assigns
//! Lamport clocks from send/deliver edges plus per-site program order and
//! exposes the happens-before structure (per-transaction spans, per-site
//! timelines, message-flow matrix), and [`verify`] re-checks the engine's
//! core invariants from the trace alone:
//!
//! * **conservation** — every message handed to the network is delivered
//!   or dropped, globally, per channel, and per payload label;
//! * **decision-consistency** — no transaction both commits and aborts
//!   (Skeen's consistency criterion, read off the `decision`/`reap`
//!   events);
//! * **wal-before-send** — a site never sends a protocol message before
//!   logging the transition that produced it (the paper's "transitions
//!   are persisted write-ahead");
//! * **stable-decision** — every decision event is preceded by a durable
//!   decision record at the same site (Gray–Lamport's stable-write
//!   accounting).
//!
//! Everything here is a pure function of the event sequence — no maps
//! with nondeterministic iteration, no wall clock — so verifying the same
//! trace twice produces byte-identical reports.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::event::{Event, EventKind};
use crate::json::{self, Obj, Value};

// ----------------------------------------------------------------------
// Parsing: the inverse of `export::event_json`
// ----------------------------------------------------------------------

fn need<'v>(v: &'v Value, key: &str) -> Result<&'v Value, String> {
    v.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn need_u64(v: &Value, key: &str) -> Result<u64, String> {
    need(v, key)?.as_u64().ok_or_else(|| format!("field {key:?} is not a u64"))
}

fn need_u32(v: &Value, key: &str) -> Result<u32, String> {
    u32::try_from(need_u64(v, key)?).map_err(|_| format!("field {key:?} exceeds u32"))
}

fn need_str(v: &Value, key: &str) -> Result<String, String> {
    Ok(need(v, key)?.as_str().ok_or_else(|| format!("field {key:?} is not a string"))?.to_string())
}

fn need_bool(v: &Value, key: &str) -> Result<bool, String> {
    need(v, key)?.as_bool().ok_or_else(|| format!("field {key:?} is not a bool"))
}

/// Parse one JSONL line back into a typed [`Event`] (the exact inverse of
/// [`crate::export::event_json`]). Unknown kinds are an error — the
/// taxonomy is closed.
pub fn parse_event(line: &str) -> Result<Event, String> {
    let v = json::parse(line)?;
    let time = need_u64(&v, "t")?;
    let site = match v.get("site") {
        Some(s) => Some(
            u32::try_from(s.as_u64().ok_or("field \"site\" is not a u64")?)
                .map_err(|_| "field \"site\" exceeds u32")?,
        ),
        None => None,
    };
    let txn = match v.get("txn") {
        Some(t) => Some(t.as_u64().ok_or("field \"txn\" is not a u64")?),
        None => None,
    };
    let kind_name = need_str(&v, "kind")?;
    let kind = match kind_name.as_str() {
        "transition" => {
            EventKind::Transition { from: need_str(&v, "from")?, to: need_str(&v, "to")? }
        }
        "vote" => EventKind::Vote { yes: need_bool(&v, "yes")? },
        "msg-send" => {
            EventKind::MsgSend { dst: need_u32(&v, "dst")?, label: need_str(&v, "label")? }
        }
        "msg-deliver" => {
            EventKind::MsgDeliver { src: need_u32(&v, "src")?, label: need_str(&v, "label")? }
        }
        "msg-drop" => {
            EventKind::MsgDrop { dst: need_u32(&v, "dst")?, label: need_str(&v, "label")? }
        }
        "decision" => EventKind::Decision { commit: need_bool(&v, "commit")? },
        "crash" => EventKind::Crash,
        "recover" => EventKind::Recover,
        "failure-notice" => EventKind::FailureNotice { crashed: need_u32(&v, "crashed")? },
        "recovery-notice" => EventKind::RecoveryNotice { recovered: need_u32(&v, "recovered")? },
        "suspect" => EventKind::Suspect { suspected: need_u32(&v, "suspected")? },
        "unsuspect" => EventKind::Unsuspect { suspected: need_u32(&v, "suspected")? },
        "election" => EventKind::Election { backup: need_u32(&v, "backup")? },
        "aligned" => EventKind::Aligned { class: need_str(&v, "class")? },
        "blocked" => EventKind::Blocked { backup: need_u32(&v, "backup")? },
        "wal-append" => {
            EventKind::WalAppend { bytes: need_u64(&v, "bytes")?, record: need_str(&v, "record")? }
        }
        "wal-fsync" => EventKind::WalFsync { physical: need_bool(&v, "physical")? },
        "wal-compact" => {
            EventKind::WalCompact { before: need_u64(&v, "before")?, after: need_u64(&v, "after")? }
        }
        "admit" => EventKind::Admit,
        "park" => EventKind::Park,
        "die" => EventKind::Die,
        "reap" => EventKind::Reap { commit: need_bool(&v, "commit")? },
        "partition" => EventKind::Partition { groups: need_str(&v, "groups")? },
        "snapshot" => EventKind::Snapshot {
            committed: need_u64(&v, "committed")?,
            in_flight: need_u64(&v, "in_flight")?,
            blocked: need_u64(&v, "blocked")?,
            wal_bytes: need_u64(&v, "wal_bytes")?,
        },
        "note" => EventKind::Note { text: need_str(&v, "text")? },
        other => return Err(format!("unknown event kind {other:?}")),
    };
    Ok(Event { time, site, txn, kind })
}

/// Parse a whole JSONL trace (the output of [`crate::export::to_jsonl`] or
/// a flight-recorder dump). Blank lines are skipped; errors carry the
/// 1-based line number.
pub fn parse_jsonl(text: &str) -> Result<Vec<Event>, String> {
    let mut events = Vec::new();
    for (ix, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        events.push(parse_event(line).map_err(|e| format!("line {}: {e}", ix + 1))?);
    }
    Ok(events)
}

/// True for the bare kebab-case payload labels of *protocol* messages
/// (`yes`, `commit`, `msg3`, ...). Control traffic — termination,
/// recovery, and decision distribution — renders with spaces and
/// punctuation (`align-to(p) from backup site1`), so the label shape
/// separates the two without the analyzer knowing any protocol.
pub fn is_protocol_label(label: &str) -> bool {
    !label.is_empty()
        && label.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
}

// ----------------------------------------------------------------------
// Causal reconstruction
// ----------------------------------------------------------------------

/// A trace with its happens-before structure reconstructed.
///
/// Lamport clocks are assigned in one pass: each chain (a site, or the
/// virtual chain for site-less events) ticks in program order, and a
/// delivery additionally dominates its matched send. Sends are matched to
/// deliveries/drops per `(src, dst, label)` channel in FIFO order — the
/// network's own delivery discipline.
pub struct CausalTrace {
    events: Vec<Event>,
    clock: Vec<u64>,
    /// For deliver/drop events: index of the matched send.
    matched_send: Vec<Option<usize>>,
    /// For send events: index of the matched deliver/drop.
    receipt: Vec<Option<usize>>,
    /// Next event on the same chain, for reachability walks.
    next_in_chain: Vec<Option<usize>>,
    /// Deliver/drop events whose channel had no pending send.
    pub orphan_receipts: u64,
}

impl CausalTrace {
    /// Reconstruct causality over `events` (kept in trace order).
    pub fn build(events: Vec<Event>) -> Self {
        let n = events.len();
        let mut clock = vec![0u64; n];
        let mut matched_send = vec![None; n];
        let mut receipt = vec![None; n];
        let mut next_in_chain = vec![None; n];
        let mut chain_clock: BTreeMap<Option<u32>, u64> = BTreeMap::new();
        let mut chain_last: BTreeMap<Option<u32>, usize> = BTreeMap::new();
        let mut queues: BTreeMap<(u32, u32, String), VecDeque<usize>> = BTreeMap::new();
        let mut orphan_receipts = 0u64;

        for (i, e) in events.iter().enumerate() {
            match &e.kind {
                EventKind::MsgSend { dst, label } => {
                    if let Some(src) = e.site {
                        queues.entry((src, *dst, label.clone())).or_default().push_back(i);
                    }
                }
                EventKind::MsgDeliver { src, label } => {
                    if let Some(dst) = e.site {
                        match queues
                            .get_mut(&(*src, dst, label.clone()))
                            .and_then(VecDeque::pop_front)
                        {
                            Some(j) => {
                                matched_send[i] = Some(j);
                                receipt[j] = Some(i);
                            }
                            None => orphan_receipts += 1,
                        }
                    }
                }
                EventKind::MsgDrop { dst, label } => {
                    if let Some(src) = e.site {
                        match queues
                            .get_mut(&(src, *dst, label.clone()))
                            .and_then(VecDeque::pop_front)
                        {
                            Some(j) => {
                                matched_send[i] = Some(j);
                                receipt[j] = Some(i);
                            }
                            None => orphan_receipts += 1,
                        }
                    }
                }
                _ => {}
            }
            let mut c = chain_clock.get(&e.site).copied().unwrap_or(0) + 1;
            if let Some(j) = matched_send[i] {
                c = c.max(clock[j] + 1);
            }
            clock[i] = c;
            chain_clock.insert(e.site, c);
            if let Some(&prev) = chain_last.get(&e.site) {
                next_in_chain[prev] = Some(i);
            }
            chain_last.insert(e.site, i);
        }

        Self { events, clock, matched_send, receipt, next_in_chain, orphan_receipts }
    }

    /// The events, in trace order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The Lamport clock of event `ix` (`a → b` implies
    /// `clock(a) < clock(b)`; the converse does not hold).
    pub fn clock(&self, ix: usize) -> u64 {
        self.clock[ix]
    }

    /// For a deliver/drop event, the index of the send it consumed.
    pub fn send_of(&self, ix: usize) -> Option<usize> {
        self.matched_send[ix]
    }

    /// For a send event, the index of its delivery or drop.
    pub fn receipt_of(&self, ix: usize) -> Option<usize> {
        self.receipt[ix]
    }

    /// Sends still unmatched at end of trace (messages in flight when the
    /// run stopped — zero at quiescence).
    pub fn unmatched_sends(&self) -> u64 {
        self.receipt
            .iter()
            .zip(&self.events)
            .filter(|(r, e)| r.is_none() && matches!(e.kind, EventKind::MsgSend { .. }))
            .count() as u64
    }

    /// True when event `a` happens-before event `b` in Lamport's sense:
    /// reachable along program order (same chain) and send→receipt edges.
    pub fn happens_before(&self, a: usize, b: usize) -> bool {
        if a == b {
            return false;
        }
        let mut frontier = vec![a];
        let mut seen = BTreeSet::new();
        while let Some(i) = frontier.pop() {
            if i == b {
                return true;
            }
            // The clock is monotone along every edge, so anything at or
            // past b's clock cannot lead back to b.
            if self.clock[i] >= self.clock[b] || !seen.insert(i) {
                continue;
            }
            if let Some(j) = self.next_in_chain[i] {
                frontier.push(j);
            }
            if let Some(j) = self.receipt[i] {
                frontier.push(j);
            }
        }
        false
    }

    /// Per-transaction spans: first/last event time, event count, and the
    /// first decision (time, verdict) if any.
    pub fn txn_spans(&self) -> BTreeMap<u64, TxnSpan> {
        let mut spans: BTreeMap<u64, TxnSpan> = BTreeMap::new();
        for e in &self.events {
            let Some(txn) = e.txn else { continue };
            let s = spans.entry(txn).or_insert(TxnSpan {
                first: e.time,
                last: e.time,
                events: 0,
                decided: None,
            });
            s.first = s.first.min(e.time);
            s.last = s.last.max(e.time);
            s.events += 1;
            if s.decided.is_none() {
                if let EventKind::Decision { commit } = e.kind {
                    s.decided = Some((e.time, commit));
                }
            }
        }
        spans
    }

    /// Per-site timelines: event indices in trace order, per site.
    pub fn site_timelines(&self) -> BTreeMap<u32, Vec<usize>> {
        let mut out: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
        for (i, e) in self.events.iter().enumerate() {
            if let Some(site) = e.site {
                out.entry(site).or_default().push(i);
            }
        }
        out
    }

    /// Message-flow matrix: sends per `(src, dst)` link.
    pub fn flow_matrix(&self) -> BTreeMap<(u32, u32), u64> {
        let mut out: BTreeMap<(u32, u32), u64> = BTreeMap::new();
        for e in &self.events {
            if let (Some(src), EventKind::MsgSend { dst, .. }) = (e.site, &e.kind) {
                *out.entry((src, *dst)).or_default() += 1;
            }
        }
        out
    }
}

/// One transaction's extent within a trace (see [`CausalTrace::txn_spans`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TxnSpan {
    /// Time of the transaction's first event.
    pub first: u64,
    /// Time of the transaction's last event.
    pub last: u64,
    /// Events attributed to the transaction.
    pub events: u64,
    /// First decision (time, commit) if any site decided.
    pub decided: Option<(u64, bool)>,
}

// ----------------------------------------------------------------------
// Trace-based oracles
// ----------------------------------------------------------------------

/// Cap on violation detail lines per check, so a corrupt trace renders a
/// readable report instead of one line per event.
const MAX_VIOLATIONS_SHOWN: usize = 8;

/// One offline oracle's outcome.
pub struct TraceCheck {
    /// Stable check name (`conservation`, `decision-consistency`, ...).
    pub name: &'static str,
    /// One-line summary of what was checked (shown even when clean).
    pub summary: String,
    /// Violation details; empty means the check passed.
    pub violations: Vec<String>,
}

impl TraceCheck {
    /// True when no violations were found.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Gray–Lamport cost counters read off the trace: the quantities their
/// *Consensus on Transaction Commit* uses to compare commit protocols.
#[derive(Clone, Copy, Debug, Default)]
pub struct GlCounters {
    /// Protocol messages sent (control traffic excluded).
    pub protocol_msgs: u64,
    /// Stable writes: physical WAL forces.
    pub stable_writes: u64,
    /// Transactions with at least one decision event.
    pub decided_txns: u64,
    /// Largest first-event → first-decision delay across transactions.
    pub max_decision_delay: Option<u64>,
}

/// The full offline audit produced by [`verify`].
pub struct TraceReport {
    /// Events analyzed.
    pub events: u64,
    /// Transactions seen.
    pub txns: u64,
    /// The oracle outcomes, in fixed order.
    pub checks: Vec<TraceCheck>,
    /// The Gray–Lamport accounting.
    pub gl: GlCounters,
}

impl TraceReport {
    /// True when every check passed.
    pub fn ok(&self) -> bool {
        self.checks.iter().all(TraceCheck::ok)
    }

    /// Render the deterministic human-readable report.
    pub fn render(&self) -> String {
        let mut out = format!("trace verify: {} events, {} txns\n", self.events, self.txns);
        for c in &self.checks {
            let verdict = if c.ok() { "ok" } else { "VIOLATION" };
            out.push_str(&format!("  {:<22} {verdict:<9} {}\n", c.name, c.summary));
            for v in &c.violations {
                out.push_str(&format!("    {v}\n"));
            }
        }
        let delay = self.gl.max_decision_delay.map_or_else(|| "-".to_string(), |d| d.to_string());
        out.push_str(&format!(
            "  gray-lamport: protocol-msgs={} stable-writes={} decided-txns={} max-decision-delay={}\n",
            self.gl.protocol_msgs, self.gl.stable_writes, self.gl.decided_txns, delay
        ));
        out.push_str(if self.ok() { "result: PASS\n" } else { "result: FAIL\n" });
        out
    }

    /// Encode the report as one JSON object (fixed key order).
    pub fn to_json(&self) -> String {
        let checks = json::array(self.checks.iter().map(|c| {
            Obj::new()
                .str("name", c.name)
                .bool("ok", c.ok())
                .str("summary", &c.summary)
                .raw("violations", &json::array(c.violations.iter().map(|v| json::string(v))))
                .build()
        }));
        let mut gl = Obj::new()
            .num("protocol_msgs", self.gl.protocol_msgs)
            .num("stable_writes", self.gl.stable_writes)
            .num("decided_txns", self.gl.decided_txns);
        gl = match self.gl.max_decision_delay {
            Some(d) => gl.num("max_decision_delay", d),
            None => gl.raw("max_decision_delay", "null"),
        };
        Obj::new()
            .num("events", self.events)
            .num("txns", self.txns)
            .bool("ok", self.ok())
            .raw("checks", &checks)
            .raw("gray_lamport", &gl.build())
            .build()
    }
}

fn clip(violations: &mut Vec<String>, total: usize) {
    if total > MAX_VIOLATIONS_SHOWN {
        violations.truncate(MAX_VIOLATIONS_SHOWN);
        violations.push(format!("... and {} more", total - MAX_VIOLATIONS_SHOWN));
    }
}

/// Run the four offline oracles over a trace. A pure function of the
/// event sequence: the same trace always yields a byte-identical report.
pub fn verify(events: &[Event]) -> TraceReport {
    let causal = CausalTrace::build(events.to_vec());

    // -- conservation ---------------------------------------------------
    let (mut sent, mut delivered, mut dropped) = (0u64, 0u64, 0u64);
    let mut channel: BTreeMap<(u32, u32), (i64, i64)> = BTreeMap::new(); // (sends, receipts)
    for e in events {
        match &e.kind {
            EventKind::MsgSend { dst, .. } => {
                sent += 1;
                if let Some(src) = e.site {
                    channel.entry((src, *dst)).or_default().0 += 1;
                }
            }
            EventKind::MsgDeliver { src, .. } => {
                delivered += 1;
                if let Some(dst) = e.site {
                    channel.entry((*src, dst)).or_default().1 += 1;
                }
            }
            EventKind::MsgDrop { dst, .. } => {
                dropped += 1;
                if let Some(src) = e.site {
                    channel.entry((src, *dst)).or_default().1 += 1;
                }
            }
            _ => {}
        }
    }
    let mut cons_violations = Vec::new();
    if sent != delivered + dropped {
        cons_violations
            .push(format!("global: {sent} sent != {delivered} delivered + {dropped} dropped"));
    }
    let mut chan_bad = 0usize;
    for ((src, dst), (s, r)) in &channel {
        if s != r {
            chan_bad += 1;
            if cons_violations.len() <= MAX_VIOLATIONS_SHOWN {
                cons_violations
                    .push(format!("channel site{src}->site{dst}: {s} sends vs {r} receipts"));
            }
        }
    }
    if causal.orphan_receipts > 0 {
        cons_violations.push(format!(
            "{} deliveries/drops with no matching send (label-level FIFO)",
            causal.orphan_receipts
        ));
    }
    let in_flight = causal.unmatched_sends();
    if in_flight > 0 && sent != delivered + dropped {
        cons_violations.push(format!("{in_flight} sends never delivered or dropped"));
    }
    let _ = chan_bad;
    let total = cons_violations.len();
    clip(&mut cons_violations, total);
    let conservation = TraceCheck {
        name: "conservation",
        summary: format!("{sent} sent = {delivered} delivered + {dropped} dropped"),
        violations: cons_violations,
    };

    // -- decision-consistency -------------------------------------------
    let mut verdicts: BTreeMap<u64, (bool, bool)> = BTreeMap::new(); // (saw commit, saw abort)
    for e in events {
        let outcome = match e.kind {
            EventKind::Decision { commit } | EventKind::Reap { commit } => commit,
            _ => continue,
        };
        let Some(txn) = e.txn else { continue };
        let v = verdicts.entry(txn).or_default();
        if outcome {
            v.0 = true;
        } else {
            v.1 = true;
        }
    }
    let mut dc_violations: Vec<String> = verdicts
        .iter()
        .filter(|(_, (c, a))| *c && *a)
        .map(|(txn, _)| format!("txn {txn}: both commit and abort observed"))
        .collect();
    let dc_total = dc_violations.len();
    clip(&mut dc_violations, dc_total);
    let decision_consistency = TraceCheck {
        name: "decision-consistency",
        summary: format!("{} decided txns", verdicts.len()),
        violations: dc_violations,
    };

    // -- wal-before-send ------------------------------------------------
    let mut logged: BTreeSet<(u32, u64)> = BTreeSet::new();
    let mut protocol_sends = 0u64;
    let mut wbs_violations = Vec::new();
    let mut wbs_total = 0usize;
    for e in events {
        match &e.kind {
            EventKind::WalAppend { .. } => {
                if let (Some(site), Some(txn)) = (e.site, e.txn) {
                    logged.insert((site, txn));
                }
            }
            EventKind::MsgSend { dst, label } if is_protocol_label(label) => {
                protocol_sends += 1;
                if let (Some(site), Some(txn)) = (e.site, e.txn) {
                    if !logged.contains(&(site, txn)) {
                        wbs_total += 1;
                        if wbs_violations.len() < MAX_VIOLATIONS_SHOWN {
                            wbs_violations.push(format!(
                                "t={} site{site} txn {txn}: sent {label:?} to site{dst} before any WAL append",
                                e.time
                            ));
                        }
                    }
                }
            }
            _ => {}
        }
    }
    if wbs_total > MAX_VIOLATIONS_SHOWN {
        wbs_violations.push(format!("... and {} more", wbs_total - MAX_VIOLATIONS_SHOWN));
    }
    let wal_before_send = TraceCheck {
        name: "wal-before-send",
        summary: format!("{protocol_sends} protocol sends"),
        violations: wbs_violations,
    };

    // -- stable-decision ------------------------------------------------
    let mut decision_logged: BTreeSet<(u32, u64)> = BTreeSet::new();
    let mut decisions = 0u64;
    let mut sd_violations = Vec::new();
    let mut sd_total = 0usize;
    for e in events {
        match &e.kind {
            EventKind::WalAppend { record, .. } if record == "decision" => {
                if let (Some(site), Some(txn)) = (e.site, e.txn) {
                    decision_logged.insert((site, txn));
                }
            }
            EventKind::Decision { commit } => {
                decisions += 1;
                if let (Some(site), Some(txn)) = (e.site, e.txn) {
                    if !decision_logged.contains(&(site, txn)) {
                        sd_total += 1;
                        if sd_violations.len() < MAX_VIOLATIONS_SHOWN {
                            let verdict = if *commit { "commit" } else { "abort" };
                            sd_violations.push(format!(
                                "t={} site{site} txn {txn}: decided {verdict} without a durable decision record",
                                e.time
                            ));
                        }
                    }
                }
            }
            _ => {}
        }
    }
    if sd_total > MAX_VIOLATIONS_SHOWN {
        sd_violations.push(format!("... and {} more", sd_total - MAX_VIOLATIONS_SHOWN));
    }
    let stable_decision = TraceCheck {
        name: "stable-decision",
        summary: format!("{decisions} decision events"),
        violations: sd_violations,
    };

    // -- Gray–Lamport counters ------------------------------------------
    let stable_writes =
        events.iter().filter(|e| matches!(e.kind, EventKind::WalFsync { physical: true })).count()
            as u64;
    let spans = causal.txn_spans();
    let mut decided_txns = 0u64;
    let mut max_delay = None;
    for span in spans.values() {
        if let Some((at, _)) = span.decided {
            decided_txns += 1;
            let delay = at.saturating_sub(span.first);
            max_delay = Some(max_delay.map_or(delay, |m: u64| m.max(delay)));
        }
    }

    TraceReport {
        events: events.len() as u64,
        txns: spans.len() as u64,
        checks: vec![conservation, decision_consistency, wal_before_send, stable_decision],
        gl: GlCounters {
            protocol_msgs: protocol_sends,
            stable_writes,
            decided_txns,
            max_decision_delay: max_delay,
        },
    }
}

// ----------------------------------------------------------------------
// Time-series statistics
// ----------------------------------------------------------------------

/// Decision-latency percentiles and the metrics-snapshot curve, produced
/// by [`stats`].
pub struct TraceStats {
    /// Events analyzed.
    pub events: u64,
    /// Transactions seen.
    pub txns: u64,
    /// Exact per-transaction decision latencies (first event → first
    /// decision), ascending.
    pub latencies: Vec<u64>,
    /// The `snapshot` rows, in trace order:
    /// `(t, committed, in_flight, blocked, wal_bytes)`.
    pub snapshots: Vec<(u64, u64, u64, u64, u64)>,
}

impl TraceStats {
    /// Exact nearest-rank percentile over the latencies (`p` in 1..=100).
    pub fn percentile(&self, p: u64) -> Option<u64> {
        if self.latencies.is_empty() {
            return None;
        }
        let rank = (self.latencies.len() as u64 * p).div_ceil(100).max(1) as usize;
        Some(self.latencies[rank.min(self.latencies.len()) - 1])
    }

    /// Render the deterministic human-readable summary.
    pub fn render(&self) -> String {
        let mut out = format!("trace stats: {} events, {} txns\n", self.events, self.txns);
        match self.percentile(50) {
            Some(p50) => {
                let (p95, p99) = (self.percentile(95).unwrap(), self.percentile(99).unwrap());
                let max = *self.latencies.last().unwrap();
                out.push_str(&format!(
                    "  decision latency: n={} p50={p50} p95={p95} p99={p99} max={max}\n",
                    self.latencies.len()
                ));
            }
            None => out.push_str("  decision latency: no decided transactions\n"),
        }
        if !self.snapshots.is_empty() {
            out.push_str(&format!(
                "  time series ({} snapshots):\n    {:>8} {:>9} {:>9} {:>8} {:>10} {:>8}\n",
                self.snapshots.len(),
                "t",
                "committed",
                "in-flight",
                "blocked",
                "wal-bytes",
                "goodput"
            ));
            let mut prev: Option<(u64, u64)> = None; // (t, committed)
            for &(t, committed, in_flight, blocked, wal_bytes) in &self.snapshots {
                // Goodput over the preceding interval, in decisions per
                // 1000 time units (integer, so the render is exact).
                let goodput = match prev {
                    Some((pt, pc)) if t > pt => (committed.saturating_sub(pc)) * 1000 / (t - pt),
                    _ => 0,
                };
                out.push_str(&format!(
                    "    {t:>8} {committed:>9} {in_flight:>9} {blocked:>8} {wal_bytes:>10} {goodput:>8}\n"
                ));
                prev = Some((t, committed));
            }
        }
        out
    }

    /// Encode the summary as one JSON object (fixed key order).
    pub fn to_json(&self) -> String {
        let mut latency = Obj::new().num("n", self.latencies.len() as u64);
        for (key, p) in [("p50", 50), ("p95", 95), ("p99", 99)] {
            latency = match self.percentile(p) {
                Some(v) => latency.num(key, v),
                None => latency.raw(key, "null"),
            };
        }
        latency = match self.latencies.last() {
            Some(max) => latency.num("max", *max),
            None => latency.raw("max", "null"),
        };
        let snapshots = json::array(self.snapshots.iter().map(
            |&(t, committed, in_flight, blocked, wal_bytes)| {
                Obj::new()
                    .num("t", t)
                    .num("committed", committed)
                    .num("in_flight", in_flight)
                    .num("blocked", blocked)
                    .num("wal_bytes", wal_bytes)
                    .build()
            },
        ));
        Obj::new()
            .num("events", self.events)
            .num("txns", self.txns)
            .raw("decision_latency", &latency.build())
            .raw("snapshots", &snapshots)
            .build()
    }
}

/// Compute decision-latency percentiles and collect the snapshot rows
/// from a trace.
pub fn stats(events: &[Event]) -> TraceStats {
    let causal = CausalTrace::build(events.to_vec());
    let spans = causal.txn_spans();
    let mut latencies: Vec<u64> = spans
        .values()
        .filter_map(|s| s.decided.map(|(at, _)| at.saturating_sub(s.first)))
        .collect();
    latencies.sort_unstable();
    let snapshots = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::Snapshot { committed, in_flight, blocked, wal_bytes } => {
                Some((e.time, committed, in_flight, blocked, wal_bytes))
            }
            _ => None,
        })
        .collect();
    TraceStats { events: events.len() as u64, txns: spans.len() as u64, latencies, snapshots }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::to_jsonl;

    fn all_kinds() -> Vec<Event> {
        vec![
            Event::new(0, EventKind::Transition { from: "q1".into(), to: "w1".into() })
                .at_site(1)
                .for_txn(1),
            Event::new(1, EventKind::Vote { yes: true }).at_site(1).for_txn(1),
            Event::new(2, EventKind::MsgSend { dst: 0, label: "yes".into() }).at_site(1).for_txn(1),
            Event::new(3, EventKind::MsgDeliver { src: 1, label: "yes".into() })
                .at_site(0)
                .for_txn(1),
            Event::new(4, EventKind::MsgDrop { dst: 2, label: "commit".into() }).at_site(0),
            Event::new(5, EventKind::Decision { commit: true }).at_site(0).for_txn(1),
            Event::new(6, EventKind::Crash).at_site(2),
            Event::new(7, EventKind::Recover).at_site(2),
            Event::new(8, EventKind::FailureNotice { crashed: 2 }).at_site(0),
            Event::new(9, EventKind::RecoveryNotice { recovered: 2 }).at_site(0),
            Event::new(10, EventKind::Suspect { suspected: 2 }).at_site(0),
            Event::new(10, EventKind::Unsuspect { suspected: 2 }).at_site(0),
            Event::new(10, EventKind::Election { backup: 1 }).at_site(1).for_txn(1),
            Event::new(11, EventKind::Aligned { class: "p".into() }).at_site(1).for_txn(1),
            Event::new(12, EventKind::Blocked { backup: 1 }).at_site(1).for_txn(1),
            Event::new(13, EventKind::WalAppend { bytes: 31, record: "progress".into() })
                .at_site(1)
                .for_txn(1),
            Event::new(14, EventKind::WalFsync { physical: true }).at_site(1).for_txn(1),
            Event::new(15, EventKind::WalCompact { before: 400, after: 60 }).at_site(1),
            Event::new(16, EventKind::Admit).for_txn(2),
            Event::new(17, EventKind::Park).for_txn(2),
            Event::new(18, EventKind::Die).for_txn(2),
            Event::new(19, EventKind::Reap { commit: false }).for_txn(2),
            Event::new(20, EventKind::Partition { groups: "[0, 0, 1]".into() }),
            Event::new(
                21,
                EventKind::Snapshot { committed: 5, in_flight: 2, blocked: 1, wal_bytes: 999 },
            ),
            Event::new(22, EventKind::Note { text: "free-form \"quoted\"".into() }),
        ]
    }

    #[test]
    fn every_kind_round_trips_through_jsonl() {
        let events = all_kinds();
        let text = to_jsonl(&events);
        let back = parse_jsonl(&text).unwrap();
        assert_eq!(back, events);
        // And re-exporting the parse is byte-identical.
        assert_eq!(to_jsonl(&back), text);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_event("{\"t\":0,\"kind\":\"no-such-kind\"}").is_err());
        assert!(parse_event("{\"kind\":\"crash\"}").is_err(), "missing t");
        assert!(parse_event("{\"t\":1,\"kind\":\"vote\"}").is_err(), "missing yes");
        assert!(parse_event("not json").is_err());
        let err = parse_jsonl("{\"t\":1,\"kind\":\"crash\"}\nbroken\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn protocol_labels_are_bare_words() {
        for yes in ["yes", "commit", "msg12", "pre-commit"] {
            assert!(is_protocol_label(yes), "{yes}");
        }
        for no in ["", "what-happened?", "align-to(p) from backup site1", "outcome: committed"] {
            assert!(!is_protocol_label(no), "{no}");
        }
    }

    fn msg_chain() -> Vec<Event> {
        vec![
            Event::new(0, EventKind::Note { text: "start".into() }).at_site(0),
            Event::new(1, EventKind::MsgSend { dst: 1, label: "m".into() }).at_site(0),
            Event::new(2, EventKind::Note { text: "independent".into() }).at_site(2),
            Event::new(5, EventKind::MsgDeliver { src: 0, label: "m".into() }).at_site(1),
            Event::new(6, EventKind::MsgSend { dst: 2, label: "n".into() }).at_site(1),
            Event::new(9, EventKind::MsgDeliver { src: 1, label: "n".into() }).at_site(2),
        ]
    }

    #[test]
    fn lamport_clocks_respect_message_edges() {
        let ct = CausalTrace::build(msg_chain());
        // Delivery dominates both its sender chain and its own site chain.
        assert!(ct.clock(3) > ct.clock(1));
        assert!(ct.clock(5) > ct.clock(4));
        assert!(ct.clock(5) > ct.clock(2), "site2's chain ticked");
        assert_eq!(ct.send_of(3), Some(1));
        assert_eq!(ct.receipt_of(1), Some(3));
        assert_eq!(ct.orphan_receipts, 0);
        assert_eq!(ct.unmatched_sends(), 0);
    }

    #[test]
    fn happens_before_follows_program_and_message_order() {
        let ct = CausalTrace::build(msg_chain());
        assert!(ct.happens_before(0, 1), "program order");
        assert!(ct.happens_before(1, 3), "send -> deliver");
        assert!(ct.happens_before(0, 5), "transitive across two hops");
        assert!(!ct.happens_before(2, 3), "site2's note is concurrent with the delivery");
        assert!(!ct.happens_before(5, 0), "no edge runs backwards");
    }

    #[test]
    fn spans_timelines_and_flow_matrix() {
        let mut events = msg_chain();
        for e in &mut events {
            e.txn = Some(7);
        }
        events.push(Event::new(11, EventKind::Decision { commit: true }).at_site(2).for_txn(7));
        let ct = CausalTrace::build(events);
        let spans = ct.txn_spans();
        assert_eq!(spans[&7], TxnSpan { first: 0, last: 11, events: 7, decided: Some((11, true)) });
        let timelines = ct.site_timelines();
        assert_eq!(timelines[&0], vec![0, 1]);
        assert_eq!(timelines[&2], vec![2, 5, 6]);
        let flow = ct.flow_matrix();
        assert_eq!(flow[&(0, 1)], 1);
        assert_eq!(flow[&(1, 2)], 1);
    }

    /// A minimal clean trace that satisfies all four oracles.
    fn clean_trace() -> Vec<Event> {
        vec![
            Event::new(0, EventKind::WalAppend { bytes: 20, record: "progress".into() })
                .at_site(0)
                .for_txn(1),
            Event::new(0, EventKind::WalFsync { physical: true }).at_site(0).for_txn(1),
            Event::new(1, EventKind::MsgSend { dst: 1, label: "msg1".into() })
                .at_site(0)
                .for_txn(1),
            Event::new(3, EventKind::MsgDeliver { src: 0, label: "msg1".into() })
                .at_site(1)
                .for_txn(1),
            Event::new(3, EventKind::WalAppend { bytes: 24, record: "decision".into() })
                .at_site(1)
                .for_txn(1),
            Event::new(3, EventKind::WalFsync { physical: true }).at_site(1).for_txn(1),
            Event::new(3, EventKind::Decision { commit: true }).at_site(1).for_txn(1),
        ]
    }

    #[test]
    fn verify_passes_a_clean_trace() {
        let report = verify(&clean_trace());
        assert!(report.ok(), "{}", report.render());
        assert_eq!(report.gl.protocol_msgs, 1);
        assert_eq!(report.gl.stable_writes, 2);
        assert_eq!(report.gl.decided_txns, 1);
        assert_eq!(report.gl.max_decision_delay, Some(3));
        let rendered = report.render();
        assert!(rendered.contains("result: PASS"), "{rendered}");
        crate::json::validate(&report.to_json()).unwrap();
    }

    #[test]
    fn verify_flags_a_dropped_deliver() {
        let mut events = clean_trace();
        events.retain(|e| !matches!(e.kind, EventKind::MsgDeliver { .. }));
        let report = verify(&events);
        assert!(!report.ok());
        let rendered = report.render();
        assert!(rendered.contains("conservation"), "{rendered}");
        assert!(rendered.contains("result: FAIL"), "{rendered}");
    }

    #[test]
    fn verify_flags_conflicting_decisions() {
        let mut events = clean_trace();
        events.push(
            Event::new(9, EventKind::WalAppend { bytes: 24, record: "decision".into() })
                .at_site(0)
                .for_txn(1),
        );
        events.push(Event::new(9, EventKind::Decision { commit: false }).at_site(0).for_txn(1));
        let report = verify(&events);
        let bad: Vec<_> = report.checks.iter().filter(|c| !c.ok()).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].name, "decision-consistency");
        assert!(bad[0].violations[0].contains("txn 1"), "{:?}", bad[0].violations);
    }

    #[test]
    fn verify_flags_send_before_wal() {
        let mut events = clean_trace();
        // Move the send in front of its WAL append.
        let send = events.remove(2);
        events.insert(0, send);
        let report = verify(&events);
        let bad: Vec<_> = report.checks.iter().filter(|c| !c.ok()).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].name, "wal-before-send");
    }

    #[test]
    fn verify_flags_unlogged_decision() {
        let mut events = clean_trace();
        events.retain(
            |e| !matches!(&e.kind, EventKind::WalAppend { record, .. } if record == "decision"),
        );
        let report = verify(&events);
        let bad: Vec<_> = report.checks.iter().filter(|c| !c.ok()).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].name, "stable-decision");
    }

    #[test]
    fn verify_is_deterministic() {
        let mut events = clean_trace();
        events.retain(|e| !matches!(e.kind, EventKind::MsgDeliver { .. }));
        let a = verify(&events);
        let b = verify(&events);
        assert_eq!(a.render(), b.render());
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn stats_percentiles_are_exact() {
        let mut events = Vec::new();
        for txn in 0..100u64 {
            events.push(Event::new(0, EventKind::Admit).for_txn(txn));
            events.push(
                Event::new(txn + 1, EventKind::Decision { commit: true }).at_site(0).for_txn(txn),
            );
        }
        let s = stats(&events);
        assert_eq!(s.txns, 100);
        assert_eq!(s.percentile(50), Some(50));
        assert_eq!(s.percentile(95), Some(95));
        assert_eq!(s.percentile(99), Some(99));
        assert_eq!(s.percentile(100), Some(100));
        let rendered = s.render();
        assert!(rendered.contains("p50=50 p95=95 p99=99 max=100"), "{rendered}");
        crate::json::validate(&s.to_json()).unwrap();
    }

    #[test]
    fn stats_render_the_snapshot_curve() {
        let events = vec![
            Event::new(
                100,
                EventKind::Snapshot { committed: 10, in_flight: 3, blocked: 0, wal_bytes: 500 },
            ),
            Event::new(
                200,
                EventKind::Snapshot { committed: 30, in_flight: 1, blocked: 1, wal_bytes: 900 },
            ),
        ];
        let s = stats(&events);
        assert_eq!(s.snapshots.len(), 2);
        let rendered = s.render();
        assert!(rendered.contains("time series (2 snapshots):"), "{rendered}");
        // Second interval: 20 decisions over 100 units = 200 per 1000.
        assert!(rendered.lines().last().unwrap().trim().ends_with("200"), "{rendered}");
    }
}
