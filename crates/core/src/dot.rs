//! Graphviz DOT rendering of site FSAs and reachable state graphs — the
//! machine-readable form of the paper's figures.

use std::fmt::Write as _;

use crate::fsa::Fsa;
use crate::ids::SiteId;
use crate::protocol::Protocol;
use crate::reach::{NodeId, ReachGraph};

/// Render one site FSA as a DOT digraph.
///
/// Commit states are drawn as double circles, abort states as double
/// octagons, matching the visual convention of distinguishing the two
/// final-state partitions.
pub fn fsa_to_dot(fsa: &Fsa, graph_name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", sanitize(graph_name));
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  label=\"{}\";", sanitize(&fsa.role));
    for (i, info) in fsa.states().iter().enumerate() {
        let shape = match info.class {
            crate::fsa::StateClass::Committed => "doublecircle",
            crate::fsa::StateClass::Aborted => "doubleoctagon",
            _ => "circle",
        };
        let style = if i as u32 == fsa.initial().0 { ", style=bold" } else { "" };
        let _ = writeln!(
            out,
            "  s{} [label=\"{}\", shape={}{}];",
            i,
            sanitize(&info.name),
            shape,
            style
        );
    }
    for t in fsa.transitions() {
        let _ = writeln!(out, "  s{} -> s{} [label=\"{}\"];", t.from.0, t.to.0, sanitize(&t.label));
    }
    out.push_str("}\n");
    out
}

/// Render every FSA of a protocol as one DOT file with a cluster per site.
pub fn protocol_to_dot(protocol: &Protocol) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", sanitize(&protocol.name));
    let _ = writeln!(out, "  rankdir=TB; compound=true;");
    for site in protocol.sites() {
        let fsa = protocol.fsa(site);
        let _ = writeln!(out, "  subgraph cluster_{} {{", site.0);
        let _ = writeln!(out, "    label=\"{} ({})\";", site, sanitize(&fsa.role));
        for (i, info) in fsa.states().iter().enumerate() {
            let shape = match info.class {
                crate::fsa::StateClass::Committed => "doublecircle",
                crate::fsa::StateClass::Aborted => "doubleoctagon",
                _ => "circle",
            };
            let _ = writeln!(
                out,
                "    n{}_{} [label=\"{}\", shape={}];",
                site.0,
                i,
                sanitize(&info.name),
                shape
            );
        }
        for t in fsa.transitions() {
            let _ = writeln!(
                out,
                "    n{}_{} -> n{}_{} [label=\"{}\"];",
                site.0,
                t.from.0,
                site.0,
                t.to.0,
                sanitize(&t.label)
            );
        }
        let _ = writeln!(out, "  }}");
    }
    out.push_str("}\n");
    out
}

/// Render a reachable state graph as DOT; nodes are labeled with the
/// local-state vector (paper figure "Reachable state graph for the 2-site
/// 2PC protocol").
///
/// `with_msgs` additionally prints the outstanding messages in each node.
pub fn reach_graph_to_dot(graph: &ReachGraph, protocol: &Protocol, with_msgs: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"reachable: {}\" {{", sanitize(&protocol.name));
    let _ = writeln!(out, "  rankdir=TB;");
    for id in 0..graph.node_count() as NodeId {
        let g = graph.node(id);
        let mut label = g
            .locals
            .iter()
            .enumerate()
            .map(|(i, &s)| protocol.fsa(SiteId(i as u32)).state(s).name.clone())
            .collect::<Vec<_>>()
            .join(" ");
        if with_msgs && !g.msgs.is_empty() {
            label.push_str("\\n");
            let mut parts = Vec::new();
            for (addr, count) in g.msgs.iter() {
                let rendered = format!(
                    "{}→{}:{}{}",
                    addr.src,
                    addr.dst,
                    protocol.msg_name(addr.kind),
                    if count > 1 { format!("×{count}") } else { String::new() }
                );
                parts.push(rendered);
            }
            label.push_str(&sanitize(&parts.join(", ")));
        }
        let shape = if graph.is_inconsistent(id) {
            "tripleoctagon"
        } else if graph.is_final(id) {
            "doublecircle"
        } else if graph.is_deadlocked(id) {
            "octagon"
        } else {
            "box"
        };
        let _ = writeln!(out, "  g{id} [label=\"{label}\", shape={shape}];");
    }
    for id in 0..graph.node_count() as NodeId {
        for e in graph.edges(id) {
            let _ = writeln!(out, "  g{} -> g{} [label=\"{}\"];", id, e.to, e.site);
        }
    }
    out.push_str("}\n");
    out
}

fn sanitize(s: &str) -> String {
    s.replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::central_2pc;

    #[test]
    fn fsa_dot_is_well_formed() {
        let p = central_2pc(2);
        let dot = fsa_to_dot(p.fsa(SiteId(0)), "coordinator");
        assert!(dot.starts_with("digraph"));
        assert!(dot.ends_with("}\n"));
        assert!(dot.contains("doublecircle"), "commit state rendered");
        assert!(dot.contains("doubleoctagon"), "abort state rendered");
        assert!(dot.contains("->"));
    }

    #[test]
    fn protocol_dot_has_cluster_per_site() {
        let p = central_2pc(3);
        let dot = protocol_to_dot(&p);
        assert_eq!(dot.matches("subgraph cluster_").count(), 3);
    }

    #[test]
    fn reach_dot_renders_every_node() {
        let p = central_2pc(2);
        let g = ReachGraph::build(&p).unwrap();
        let dot = reach_graph_to_dot(&g, &p, true);
        for id in 0..g.node_count() {
            assert!(dot.contains(&format!("g{id} [label=")), "node {id} missing");
        }
        // Message annotations present somewhere.
        assert!(dot.contains("xact") || dot.contains("request"));
    }

    #[test]
    fn quotes_are_escaped() {
        assert_eq!(sanitize("a\"b"), "a\\\"b");
    }
}
