//! A transactional key-value store with deferred updates.
//!
//! Writes are staged per transaction and applied to the base map only when
//! the commit decision arrives, after the redo images have been logged.
//! An abort simply discards the stage; a crash before the decision loses
//! nothing but the stage — which is the whole point of write-ahead logging.

use std::collections::BTreeMap;

use crate::wal::{LogRecord, Wal};

/// One staged operation of a transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnWrite {
    /// Insert or overwrite `key` with `value`.
    Put(Vec<u8>, Vec<u8>),
    /// Remove `key`.
    Delete(Vec<u8>),
}

/// The store: a base map plus per-transaction staging areas.
#[derive(Debug, Default, Clone)]
pub struct KvStore {
    base: BTreeMap<Vec<u8>, Vec<u8>>,
    staged: BTreeMap<u64, Vec<TxnWrite>>,
}

impl KvStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read a committed value.
    pub fn get(&self, key: &[u8]) -> Option<&[u8]> {
        self.base.get(key).map(Vec::as_slice)
    }

    /// Read through the stage of `txn` (its own writes win), falling back
    /// to the committed value.
    pub fn get_in_txn(&self, txn: u64, key: &[u8]) -> Option<Vec<u8>> {
        if let Some(writes) = self.staged.get(&txn) {
            for w in writes.iter().rev() {
                match w {
                    TxnWrite::Put(k, v) if k == key => return Some(v.clone()),
                    TxnWrite::Delete(k) if k == key => return None,
                    _ => {}
                }
            }
        }
        self.base.get(key).cloned()
    }

    /// Stage a put for `txn`.
    pub fn stage_put(&mut self, txn: u64, key: Vec<u8>, value: Vec<u8>) {
        self.staged.entry(txn).or_default().push(TxnWrite::Put(key, value));
    }

    /// Stage a delete for `txn`.
    pub fn stage_delete(&mut self, txn: u64, key: Vec<u8>) {
        self.staged.entry(txn).or_default().push(TxnWrite::Delete(key));
    }

    /// Number of staged writes for `txn`.
    pub fn staged_len(&self, txn: u64) -> usize {
        self.staged.get(&txn).map_or(0, Vec::len)
    }

    /// Log the redo images of `txn`'s staged writes into `wal` (without
    /// applying them). Called when the site votes yes: the paper's commit
    /// point requires the site to be able to finish the transaction even
    /// through failures, so the images must be durable before the vote.
    pub fn log_stage(&self, txn: u64, wal: &mut Wal) {
        if let Some(writes) = self.staged.get(&txn) {
            for w in writes {
                match w {
                    TxnWrite::Put(k, v) => {
                        wal.append(&LogRecord::Put { txn, key: k.clone(), value: v.clone() })
                            .expect("wal record fits");
                    }
                    TxnWrite::Delete(k) => {
                        wal.append(&LogRecord::Delete { txn, key: k.clone() })
                            .expect("wal record fits");
                    }
                }
            }
        }
    }

    /// Apply `txn`'s staged writes to the base map (the commit action).
    pub fn commit(&mut self, txn: u64) {
        if let Some(writes) = self.staged.remove(&txn) {
            for w in writes {
                match w {
                    TxnWrite::Put(k, v) => {
                        self.base.insert(k, v);
                    }
                    TxnWrite::Delete(k) => {
                        self.base.remove(&k);
                    }
                }
            }
        }
    }

    /// Discard `txn`'s staged writes (the abort action).
    pub fn abort(&mut self, txn: u64) {
        self.staged.remove(&txn);
    }

    /// Rebuild the committed state from a recovered record stream: redo
    /// the `Put`/`Delete` images of every transaction whose `Decision` is
    /// commit; everything else leaves no trace.
    pub fn redo_from_log(records: &[LogRecord]) -> Self {
        let mut committed: BTreeMap<u64, bool> = BTreeMap::new();
        for r in records {
            if let LogRecord::Decision { txn, commit } = r {
                committed.insert(*txn, *commit);
            }
        }
        let mut store = Self::new();
        for r in records {
            match r {
                LogRecord::Put { txn, key, value } if committed.get(txn) == Some(&true) => {
                    store.base.insert(key.clone(), value.clone());
                }
                LogRecord::Delete { txn, key } if committed.get(txn) == Some(&true) => {
                    store.base.remove(key);
                }
                LogRecord::Checkpoint { pairs } => {
                    // A checkpoint supersedes everything before it.
                    store.base = pairs.iter().cloned().collect::<BTreeMap<Vec<u8>, Vec<u8>>>();
                }
                _ => {}
            }
        }
        store
    }

    /// Snapshot the committed pairs (for [`Wal::checkpoint_compact`]).
    ///
    /// [`Wal::checkpoint_compact`]: crate::wal::Wal::checkpoint_compact
    pub fn snapshot(&self) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.base.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
    }

    /// Redo one committed transaction's images from a record stream into
    /// the base map — the catch-up path of a site that missed a decision
    /// and learns it during recovery.
    pub fn redo_one(&mut self, records: &[LogRecord], txn: u64) {
        for r in records {
            match r {
                LogRecord::Put { txn: t, key, value } if *t == txn => {
                    self.base.insert(key.clone(), value.clone());
                }
                LogRecord::Delete { txn: t, key } if *t == txn => {
                    self.base.remove(key);
                }
                _ => {}
            }
        }
    }

    /// Number of committed keys.
    pub fn len(&self) -> usize {
        self.base.len()
    }

    /// True if no committed keys exist.
    pub fn is_empty(&self) -> bool {
        self.base.is_empty()
    }

    /// Iterate over committed key-value pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], &[u8])> {
        self.base.iter().map(|(k, v)| (k.as_slice(), v.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staged_writes_invisible_until_commit() {
        let mut kv = KvStore::new();
        kv.stage_put(1, b"x".to_vec(), b"1".to_vec());
        assert_eq!(kv.get(b"x"), None);
        assert_eq!(kv.get_in_txn(1, b"x"), Some(b"1".to_vec()));
        kv.commit(1);
        assert_eq!(kv.get(b"x"), Some(b"1".as_slice()));
    }

    #[test]
    fn abort_leaves_no_trace() {
        let mut kv = KvStore::new();
        kv.stage_put(1, b"x".to_vec(), b"1".to_vec());
        kv.stage_delete(1, b"y".to_vec());
        kv.abort(1);
        assert!(kv.is_empty());
        assert_eq!(kv.staged_len(1), 0);
    }

    #[test]
    fn txn_reads_its_own_writes_last_wins() {
        let mut kv = KvStore::new();
        kv.stage_put(1, b"x".to_vec(), b"1".to_vec());
        kv.stage_put(1, b"x".to_vec(), b"2".to_vec());
        assert_eq!(kv.get_in_txn(1, b"x"), Some(b"2".to_vec()));
        kv.stage_delete(1, b"x".to_vec());
        assert_eq!(kv.get_in_txn(1, b"x"), None);
    }

    #[test]
    fn delete_applies_on_commit() {
        let mut kv = KvStore::new();
        kv.stage_put(1, b"x".to_vec(), b"1".to_vec());
        kv.commit(1);
        kv.stage_delete(2, b"x".to_vec());
        assert_eq!(kv.get(b"x"), Some(b"1".as_slice()));
        kv.commit(2);
        assert_eq!(kv.get(b"x"), None);
    }

    #[test]
    fn independent_transactions_do_not_interfere() {
        let mut kv = KvStore::new();
        kv.stage_put(1, b"a".to_vec(), b"1".to_vec());
        kv.stage_put(2, b"b".to_vec(), b"2".to_vec());
        kv.abort(1);
        kv.commit(2);
        assert_eq!(kv.get(b"a"), None);
        assert_eq!(kv.get(b"b"), Some(b"2".as_slice()));
    }

    #[test]
    fn redo_from_log_replays_only_committed() {
        let mut wal = Wal::new();
        let mut kv = KvStore::new();
        kv.stage_put(1, b"a".to_vec(), b"1".to_vec());
        kv.stage_put(2, b"b".to_vec(), b"2".to_vec());
        kv.log_stage(1, &mut wal);
        kv.log_stage(2, &mut wal);
        wal.append(&LogRecord::Decision { txn: 1, commit: true }).expect("wal record fits");
        wal.append(&LogRecord::Decision { txn: 2, commit: false }).expect("wal record fits");
        wal.sync();

        let recs = Wal::recover(&wal.crash_image()).unwrap();
        let rebuilt = KvStore::redo_from_log(&recs);
        assert_eq!(rebuilt.get(b"a"), Some(b"1".as_slice()));
        assert_eq!(rebuilt.get(b"b"), None);
    }

    #[test]
    fn redo_handles_deletes() {
        let recs = vec![
            LogRecord::Put { txn: 1, key: b"k".to_vec(), value: b"v".to_vec() },
            LogRecord::Decision { txn: 1, commit: true },
            LogRecord::Delete { txn: 2, key: b"k".to_vec() },
            LogRecord::Decision { txn: 2, commit: true },
        ];
        let rebuilt = KvStore::redo_from_log(&recs);
        assert_eq!(rebuilt.get(b"k"), None);
    }

    #[test]
    fn iter_yields_sorted_pairs() {
        let mut kv = KvStore::new();
        kv.stage_put(1, b"b".to_vec(), b"2".to_vec());
        kv.stage_put(1, b"a".to_vec(), b"1".to_vec());
        kv.commit(1);
        let pairs: Vec<_> = kv.iter().collect();
        assert_eq!(
            pairs,
            vec![(b"a".as_slice(), b"1".as_slice()), (b"b".as_slice(), b"2".as_slice())]
        );
        assert_eq!(kv.len(), 2);
    }
}
