//! Deterministic single-step hooks for schedule-exploring model checkers.
//!
//! The normal driver ([`Runner::step`]) pops events in simulation-time
//! order — one fixed interleaving per configuration. A model checker wants
//! the opposite: at every point, *enumerate* the events that could arrive
//! next and branch on each. This module exposes exactly that surface on
//! [`Runner`], without touching the time-ordered path:
//!
//! * [`Runner::pending_events`] — every scheduled network event with its
//!   stable sequence handle, in deterministic order;
//! * [`Runner::fire_scheduled`] / [`Runner::drop_scheduled`] — deliver or
//!   lose one chosen event, out of time order (per-link FIFO is the
//!   checker's responsibility: it should only fire a link's *head* event,
//!   which [`channel_of`] makes easy to compute);
//! * [`Runner::crash_now`] / [`Runner::recover_now`] /
//!   [`Runner::partition_now`] — inject a fault at the current instant
//!   instead of a pre-scheduled timer;
//! * [`Runner::digest`] — a canonical 128-bit fingerprint of the
//!   behavioral global state (sites, WALs, in-flight messages), the
//!   dedup key for explored-state sets. The digest deliberately excludes
//!   simulation time, event counts, and monitor-only data (the
//!   visited-state bitmaps), so two interleavings that converge to the
//!   same behavioral state merge.
//!
//! Exploration should run with zero latency and zero detection delay
//! (e.g. [`RunConfig::lockstep`](crate::RunConfig::lockstep)): then every
//! scheduled event sits at the same instant and *which one fires next* is
//! pure scheduler choice — logical time disappears from the state, which
//! is what makes the digest converge across interleavings.

use std::cmp::Reverse;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use nbc_simnet::NetEvent;

use crate::config::RunConfig;
use crate::run::Runner;
use crate::site::{Mode, SiteRt};
use crate::wire::Wire;

/// The FIFO channel an event belongs to. Protocol and control messages
/// travel ordered per `(src, dst)` link; failure/recovery notices form one
/// ordered feed from the (perfect) detector to each observer. A model
/// checker must deliver events of one channel in order — only each
/// channel's head is a legal next delivery — while events of different
/// channels commute freely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Channel {
    /// The `(src, dst)` message link.
    Link(usize, usize),
    /// The failure detector's feed to one observer.
    Detector(usize),
}

/// The channel of a scheduled event.
pub fn channel_of(ev: &NetEvent<Wire>) -> Channel {
    match ev {
        NetEvent::Deliver { src, dst, .. } => Channel::Link(*src, *dst),
        NetEvent::FailureNotice { observer, .. } | NetEvent::RecoveryNotice { observer, .. } => {
            Channel::Detector(*observer)
        }
    }
}

// The parallel model checker clones a `Runner` per explored branch and
// moves the clones across worker threads, so `Runner: Send` is part of
// the engine's public contract: no interior mutability anywhere in a
// runner's state, and any shared tracer sink sits behind `Arc<Mutex<_>>`.
// Keep it compile-time checked so an `Rc`/`RefCell` slipping into the
// engine fails here, not in the checker's thread spawn.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Runner<'static>>();
};

impl RunConfig {
    /// Zero-latency, zero-detection-delay configuration for model-checked
    /// exploration: every consequence of an action is scheduled at the
    /// current instant, so event *order* is entirely the explorer's
    /// choice and the behavioral digest carries no timing residue.
    pub fn lockstep(n: usize) -> Self {
        let mut c = Self::happy(n);
        c.latency = nbc_simnet::LatencyModel::constant(0);
        c.detect_delay = 0;
        c
    }
}

impl<'a> Runner<'a> {
    /// Read-only view of the per-site runtimes (states, inboxes, WALs,
    /// modes, visited-state monitors).
    pub fn sites(&self) -> &[SiteRt] {
        &self.sites
    }

    /// The protocol this run executes.
    pub fn protocol(&self) -> &'a nbc_core::Protocol {
        self.protocol
    }

    /// Every pending network event as `(sequence handle, event)`, in
    /// deterministic `(time, send order)` order.
    pub fn pending_events(&self) -> Vec<(u64, NetEvent<Wire>)> {
        self.net.scheduled().into_iter().map(|(_, seq, ev)| (seq, ev.clone())).collect()
    }

    /// Deliver one specific pending event now, identified by the sequence
    /// handle from [`Runner::pending_events`], and run every site reaction
    /// it triggers to quiescence. Returns `false` if no such event is
    /// pending.
    pub fn fire_scheduled(&mut self, seq: u64) -> bool {
        let Some((_, ev)) = self.net.take_seq(seq) else {
            return false;
        };
        self.events += 1;
        self.handle_net(ev);
        true
    }

    /// Lose one specific pending event: it is removed and never arrives
    /// (counted as a drop in the network stats). Returns `false` if no
    /// such event is pending.
    pub fn drop_scheduled(&mut self, seq: u64) -> bool {
        self.events += 1;
        self.net.drop_seq(self.now, seq).is_some()
    }

    /// Crash `site` at the current instant: volatile state is lost, the
    /// synced WAL prefix survives, and failure notices are scheduled to
    /// every other site (after the configured detection delay; zero under
    /// [`RunConfig::lockstep`]). No-op if the site is already down.
    pub fn crash_now(&mut self, site: usize) {
        self.events += 1;
        self.crash_site(site);
    }

    /// Restart `site` at the current instant: it replays its durable WAL
    /// and runs the paper's recovery protocol. No-op unless the site is
    /// down.
    pub fn recover_now(&mut self, site: usize) {
        self.events += 1;
        self.recover_site(site);
    }

    /// Partition the network at the current instant (`groups[i]` = site
    /// `i`'s group): in-flight cross-group messages are dropped, future
    /// ones too, and every site is told the other side "failed" — the
    /// deliberate assumption violation of experiment X3.
    pub fn partition_now(&mut self, groups: Vec<usize>) {
        self.events += 1;
        self.net.partition(self.now, groups);
    }

    /// Heal a partition at the current instant.
    pub fn heal_now(&mut self) {
        self.events += 1;
        self.net.heal();
    }

    /// Make `observer` suspect `peer` at the current instant — the
    /// checker's handle on imperfect failure detection. Unlike
    /// [`Runner::crash_now`], the peer keeps running: this explores
    /// *false* suspicion of a live site (and true suspicion orderings,
    /// when combined with crashes). The observer reacts exactly as it
    /// would to a failure notice, except the suspicion is revocable via
    /// [`Runner::unsuspect_now`]. No-op if the observer is down or
    /// already suspects the peer.
    pub fn suspect_now(&mut self, observer: usize, peer: usize) {
        self.events += 1;
        self.on_suspect(observer, peer);
    }

    /// Clear `observer`'s suspicion of `peer` at the current instant —
    /// evidence of life arrived. The peer rejoins the observer's view; a
    /// terminating or blocked observer re-elects over the restored view.
    /// No-op unless the suspicion is currently held.
    pub fn unsuspect_now(&mut self, observer: usize, peer: usize) {
        self.events += 1;
        self.on_unsuspect(observer, peer);
    }

    /// True when no network event is pending — with no fault injection
    /// forthcoming, the run can change state no further.
    pub fn net_quiescent(&self) -> bool {
        self.net.pending() == 0
    }

    /// Canonical 128-bit fingerprint of the behavioral global state: per
    /// site its mode, local FSA state, inbox (as a multiset), full WAL
    /// image with durable watermark, operational view, alignment, backup
    /// bookkeeping, outcome and recovery-protocol bookkeeping; plus the
    /// in-flight messages of every FIFO channel in order, pending timers,
    /// and the partition assignment. Excluded on purpose: simulation time,
    /// event counts, per-site transition-attempt counters (crash-point
    /// bookkeeping) and the visited-state monitors — none of them alter
    /// future behavior under exploration, and including them would stop
    /// converging interleavings from deduplicating.
    pub fn digest(&self) -> u128 {
        let mut h1 = DefaultHasher::new();
        self.digest_into(&mut h1);
        let mut h2 = DefaultHasher::new();
        h2.write_u64(0x9e37_79b9_7f4a_7c15);
        self.digest_into(&mut h2);
        ((h1.finish() as u128) << 64) | h2.finish() as u128
    }

    fn digest_into(&self, h: &mut impl Hasher) {
        for s in &self.sites {
            match &s.mode {
                Mode::Normal => h.write_u8(0),
                Mode::Terminating { backup } => {
                    h.write_u8(1);
                    h.write_usize(*backup);
                }
                Mode::Blocked => h.write_u8(2),
                Mode::Down => h.write_u8(3),
                Mode::Recovering => h.write_u8(4),
                Mode::Done => h.write_u8(5),
            }
            h.write_u32(s.state.0);
            let mut inbox = s.inbox.clone();
            inbox.sort_unstable_by_key(|&(src, kind)| (src, kind));
            inbox.hash(h);
            s.wal.full_image().hash(h);
            h.write_usize(s.wal.durable_len());
            s.view.hash(h);
            s.aligned_class.hash(h);
            s.outcome.hash(h);
            s.backup_state.phase1_sent.hash(h);
            s.backup_state.pending_acks.hash(h);
            // Arrival-order collections whose every consumer is
            // order-independent (set membership, counts, sends to
            // distinct sites): hash them canonically sorted so states
            // differing only in arrival order merge.
            let mut collected = s.backup_state.collected.clone();
            collected.sort_unstable();
            collected.hash(h);
            let mut queries = s.pending_queries.clone();
            queries.sort_unstable();
            queries.hash(h);
            let mut replies = s.recovery_replies.clone();
            replies.sort_unstable();
            replies.hash(h);
            s.recovered_peers.hash(h);
            // Suspicions are behavioral state: they gate which
            // suspect/unsuspect actions are enabled and what an
            // unsuspicion will restore. (`ever_down` stays out — it is
            // monitor-only, and today `Recovering` implies it.)
            s.suspects.hash(h);
        }
        // In-flight messages, canonicalized per FIFO channel: channel
        // order is irrelevant (sorted), order *within* a channel is the
        // delivery order and is preserved.
        let scheduled = self.net.scheduled();
        let mut channels: Vec<(Channel, Vec<&NetEvent<Wire>>)> = Vec::new();
        for (_, _, ev) in &scheduled {
            let ch = channel_of(ev);
            match channels.iter_mut().find(|(c, _)| *c == ch) {
                Some((_, q)) => q.push(ev),
                None => channels.push((ch, vec![ev])),
            }
        }
        channels.sort_by_key(|&(c, _)| c);
        for (ch, queue) in channels {
            ch.hash(h);
            for ev in queue {
                match ev {
                    NetEvent::Deliver { msg, .. } => {
                        h.write_u8(0);
                        msg.hash(h);
                    }
                    NetEvent::FailureNotice { crashed, .. } => {
                        h.write_u8(1);
                        h.write_usize(*crashed);
                    }
                    NetEvent::RecoveryNotice { recovered, .. } => {
                        h.write_u8(2);
                        h.write_usize(*recovered);
                    }
                }
            }
        }
        let mut timers: Vec<_> = self.timers.iter().map(|Reverse(t)| *t).collect();
        timers.sort_unstable();
        h.write_usize(timers.len());
        for (at, timer) in timers {
            h.write_u64(at);
            match timer {
                crate::run::Timer::Crash(s) => {
                    h.write_u8(0);
                    h.write_usize(s);
                }
                crate::run::Timer::Recover(s) => {
                    h.write_u8(1);
                    h.write_usize(s);
                }
                crate::run::Timer::Partition => h.write_u8(2),
            }
        }
        self.net.partition_groups().hash(h);
    }
}
