//! # nbc-cli — the `nbc` command-line tool
//!
//! Analyze, verify, synthesize, simulate, and sweep commit protocols from
//! the command line:
//!
//! ```text
//! nbc list
//! nbc analyze central-3pc -n 5
//! nbc verify decentralized-2pc
//! nbc graph central-2pc -n 2 --dot
//! nbc synthesize central-2pc
//! nbc simulate central-3pc --crash 0:3:1 --recover 200
//! nbc sweep central-2pc --rule cooperative
//! nbc termination central-3pc
//! nbc recovery central-3pc
//! nbc analyze path/to/custom.nbc -n 4      # spec files work everywhere
//! ```
//!
//! The command implementations live here (returning strings) so they are
//! unit-testable; `main.rs` is a thin shell.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt::Write as _;

use nbc_check::{CheckOptions, CheckProgress, Schedule};
use nbc_core::kpc::k_phase_central;
use nbc_core::protocols::{central_2pc, central_3pc, decentralized_2pc, decentralized_3pc, one_pc};
use nbc_core::{
    dot, recovery_analysis, resilience, sync_check, synthesis, termination, theorem, verify,
    Analysis, LevelProgress, Protocol, ReachGraph, ReachOptions,
};
use nbc_engine::{
    enumerate_crash_specs, run_traced, run_with, sweep, sweep_traced, CrashPoint, CrashSpec,
    DetectorSpec, RunConfig, RunReport, Runner, TerminationRule, TransitionProgress,
};
use nbc_obs::export::{to_chrome, to_jsonl};
use nbc_obs::{analyze, Event, EventKind, FlightRecorder, MemorySink, Metrics, SharedSink, Tracer};
use nbc_simnet::LatencyModel;

/// A CLI failure with a user-facing message.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

fn fail<T>(msg: impl Into<String>) -> Result<T, CliError> {
    Err(CliError(msg.into()))
}

/// Resolve a protocol argument: a catalog name, `kpc:K`, `paxos:F`, or a
/// spec file path (anything containing `/` or ending in `.nbc`).
///
/// For `paxos:F`, `n` counts the *participants* (leader + resource
/// managers); the protocol instance adds its `2F + 1` acceptor sites on
/// top, so `paxos:1 -n 3` is a 6-site protocol.
pub fn resolve_protocol(arg: &str, n: usize) -> Result<Protocol, CliError> {
    match arg {
        "central-2pc" | "2pc" => Ok(central_2pc(n)),
        "central-3pc" | "3pc" => Ok(central_3pc(n)),
        "decentralized-2pc" | "d2pc" => Ok(decentralized_2pc(n)),
        "decentralized-3pc" | "d3pc" => Ok(decentralized_3pc(n)),
        "1pc" | "central-1pc" => Ok(one_pc(n)),
        "paxos" | "paxos-commit" => build_paxos(n, 1),
        _ if arg.starts_with("paxos:") => {
            let f: usize = arg[6..]
                .parse()
                .map_err(|_| CliError(format!("bad acceptor-fault count in {arg:?}")))?;
            build_paxos(n, f)
        }
        _ if arg.starts_with("kpc:") => {
            let k: u32 =
                arg[4..].parse().map_err(|_| CliError(format!("bad phase count in {arg:?}")))?;
            if k < 2 {
                return fail("kpc:K needs K >= 2");
            }
            k_phase_central(n, k).map_err(|e| CliError(e.to_string()))
        }
        _ if arg.contains('/') || arg.ends_with(".nbc") => {
            let text = std::fs::read_to_string(arg)
                .map_err(|e| CliError(format!("cannot read {arg}: {e}")))?;
            nbc_spec::parse(&text, n).map_err(|e| CliError(format!("{arg}: {e}")))
        }
        _ => fail(format!("unknown protocol {arg:?}; try `nbc list` or a spec file path")),
    }
}

/// Build `paxos_commit(n, f)` with CLI-grade errors.
fn build_paxos(n: usize, f: usize) -> Result<Protocol, CliError> {
    if n < 2 {
        return fail("paxos needs -n >= 2 participants");
    }
    if f > 8 {
        return fail("paxos:F needs F <= 8 (2F+1 acceptor sites)");
    }
    Ok(nbc_paxos::paxos_commit(n, f))
}

/// `nbc list`
pub fn cmd_list() -> String {
    "catalog protocols (use with -n N, default 3):\n\
     \x20 central-2pc (alias 2pc)          blocking\n\
     \x20 central-3pc (alias 3pc)          nonblocking\n\
     \x20 decentralized-2pc (alias d2pc)   blocking\n\
     \x20 decentralized-3pc (alias d3pc)   nonblocking\n\
     \x20 central-1pc (alias 1pc)          no unilateral abort (degenerate)\n\
     \x20 kpc:K                            2PC with K-2 buffer rounds\n\
     \x20 paxos:F (alias paxos = paxos:1)  Paxos Commit, n participants + 2F+1 acceptors\n\
     \x20 <path to .nbc spec file>         your own protocol\n"
        .to_string()
}

/// Build the single [`Analysis`] an invocation shares across every
/// analysis-consuming subcommand (theorem, resilience, sync, termination,
/// recovery, simulation), honoring `--threads`, `--stream`, and
/// `--progress`.
///
/// With `stream` set the reachability fold retires node payloads level by
/// level and retains no graph — graph consumers ([`cmd_verify`],
/// `--dot`) need the default retaining mode.
pub fn build_analysis(
    protocol: &Protocol,
    threads: usize,
    stream: bool,
    progress: bool,
    mem_budget: usize,
) -> Result<Analysis, CliError> {
    let mut opts = ReachOptions::default()
        .with_threads(threads)
        .with_streaming(stream)
        .with_mem_budget(mem_budget);
    if progress {
        opts = opts.with_progress(print_progress);
    }
    let analysis = Analysis::build_with(protocol, opts).map_err(|e| CliError(e.to_string()))?;
    if mem_budget > 0 {
        if let Some(st) = analysis.stream_stats() {
            let s = st.spill;
            eprintln!(
                "{}",
                nbc_obs::progress::spill_line(
                    "reach",
                    s.runs_written,
                    s.bytes_written,
                    s.merge_passes
                )
            );
        }
    }
    Ok(analysis)
}

/// Parse a `--mem-budget` byte count: plain digits with an optional
/// case-insensitive `K`/`M`/`G` suffix (KiB/MiB/GiB multipliers).
pub fn parse_mem_budget(s: &str, flag: &str) -> Result<usize, CliError> {
    let (digits, mult) = match s.as_bytes().last() {
        Some(b'k') | Some(b'K') => (&s[..s.len() - 1], 1usize << 10),
        Some(b'm') | Some(b'M') => (&s[..s.len() - 1], 1usize << 20),
        Some(b'g') | Some(b'G') => (&s[..s.len() - 1], 1usize << 30),
        _ => (s, 1usize),
    };
    let value: usize = digits
        .parse()
        .map_err(|_| CliError(format!("bad {flag} value {s:?} (want BYTES, 64K, 16M, 1G)")))?;
    value
        .checked_mul(mult)
        .ok_or_else(|| CliError(format!("{flag} value {s:?} overflows a byte count")))
}

/// The `--progress` hook: one stderr line per completed BFS level, with a
/// nodes/sec rate derived from a thread-local clock (stderr only — stdout
/// and all results stay byte-identical with or without it).
fn print_progress(p: &LevelProgress) {
    let rate = match tick_rate(p.new_states as u64) {
        Some(r) => format!(" ({r:.0} states/s)"),
        None => String::new(),
    };
    eprintln!(
        "level {:>3}: frontier {:>7}  new {:>7}  dedup {:>8}  total {:>8}{rate}",
        p.level, p.frontier, p.new_states, p.dedup_hits, p.total
    );
}

/// The `nbc check --progress` hook: one stderr line per reporting
/// interval of the parallel exploration (stderr only — the report stays
/// byte-identical with or without it).
fn print_check_progress(p: &CheckProgress) {
    let rate = match tick_rate(1 << 16) {
        Some(r) => format!(" ({r:.0} expansions/s)"),
        None => String::new(),
    };
    let spill = if p.spill_runs > 0 {
        format!("  spilled {:>4} runs", p.spill_runs)
    } else {
        String::new()
    };
    eprintln!(
        "plans {:>3}/{:<3}  distinct {:>9}  expansions {:>10}{spill}{rate}",
        p.plans_done, p.plans_total, p.distinct_states, p.expansions
    );
}

/// Per-thread progress rate over successive calls (the hooks above are
/// plain `fn` pointers, so their estimator state lives here).
fn tick_rate(events: u64) -> Option<f64> {
    use std::cell::Cell;
    thread_local! {
        static RATE: Cell<nbc_obs::progress::Rate> =
            const { Cell::new(nbc_obs::progress::Rate::new()) };
    }
    RATE.with(|c| {
        let mut r = c.get();
        let rate = r.tick(events);
        c.set(r);
        rate
    })
}

/// `nbc analyze PROTO`
pub fn cmd_analyze(protocol: &Protocol, analysis: &Analysis) -> Result<String, CliError> {
    let report = theorem::check_with(protocol, analysis);
    let res = resilience::resilience_with(protocol, &report);
    let sync = sync_check::check_with(protocol, analysis, ReachOptions::default());

    let mut out = String::new();
    let _ = writeln!(out, "{protocol}");
    match analysis.graph() {
        Some(g) => {
            let _ = writeln!(out, "reachable state graph: {}", g.stats());
        }
        None => {
            let st = analysis.stream_stats().expect("streamed analysis carries stream stats");
            let _ = writeln!(out, "streamed analysis: {st}");
        }
    }
    let _ = writeln!(
        out,
        "synchronous within one state transition: {}",
        if sync.synchronous_within_one() { "yes" } else { "NO" }
    );
    let _ = writeln!(out, "\n{report}");
    let _ = writeln!(
        out,
        "resiliency: {} clean site(s) of {}; nonblocking w.r.t. {} failure(s)",
        res.clean_count(),
        res.n_sites,
        res.max_tolerated_failures
    );
    Ok(out)
}

/// `nbc verify PROTO`
pub fn cmd_verify(protocol: &Protocol, analysis: &Analysis) -> Result<String, CliError> {
    if analysis.graph().is_none() {
        return fail("verify model-checks the retained reachable graph; rerun without --stream");
    }
    let v = verify::verify_termination_with(protocol, analysis);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: model-checked {} (global state x survivor subset) cases",
        v.protocol, v.cases
    );
    let _ = writeln!(
        out,
        "safety (no decision contradicts a durable final): {}",
        if v.safe() { "HOLDS" } else { "VIOLATED" }
    );
    for w in v.unsafe_witnesses.iter().take(5) {
        let _ = writeln!(out, "  ! {w}");
    }
    let _ = writeln!(
        out,
        "liveness (every survivor subset can decide): {}",
        if v.stuck_witnesses.is_empty() {
            "HOLDS — nonblocking".to_string()
        } else {
            format!("{} stuck cases — blocking", v.stuck_witnesses.len())
        }
    );
    for w in v.stuck_witnesses.iter().take(3) {
        let _ = writeln!(out, "  . {w}");
    }
    Ok(out)
}

/// `nbc graph PROTO [--dot] [--progress]`
pub fn cmd_graph(
    protocol: &Protocol,
    dot_output: bool,
    threads: usize,
    progress: bool,
) -> Result<String, CliError> {
    let mut opts = ReachOptions::default().with_threads(threads);
    if progress {
        opts = opts.with_progress(print_progress);
    }
    let g = ReachGraph::build_with(protocol, opts).map_err(|e| CliError(e.to_string()))?;
    if dot_output {
        Ok(dot::reach_graph_to_dot(&g, protocol, true))
    } else {
        Ok(format!("{}\n{}\n", protocol.name, g.stats()))
    }
}

/// `nbc synthesize PROTO`
///
/// The "before" check reuses the invocation's shared analysis; the
/// synthesized protocol is new, so its "after" check builds its own.
pub fn cmd_synthesize(protocol: &Protocol, analysis: &Analysis) -> Result<String, CliError> {
    let before = theorem::check_with(protocol, analysis);
    let fixed = synthesis::make_nonblocking(protocol).map_err(|e| CliError(e.to_string()))?;
    let after = theorem::check(&fixed).map_err(|e| CliError(e.to_string()))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "before: {} violation(s), {} phase(s)",
        before.violations.len(),
        protocol.phase_count()
    );
    let _ = writeln!(
        out,
        "after:  {} violation(s), {} phase(s)\n",
        after.violations.len(),
        fixed.phase_count()
    );
    let _ = write!(out, "{fixed}");
    Ok(out)
}

/// Options for `nbc simulate` / `nbc sweep`.
#[derive(Debug, Clone)]
pub struct SimOpts {
    /// Crash spec as `site:ordinal:msgs` (msgs = `log` for before-log).
    pub crash: Option<(usize, u32, Option<u32>)>,
    /// Recovery time for the crash.
    pub recover: Option<u64>,
    /// Sites voting no.
    pub no_voters: Vec<usize>,
    /// Termination rule.
    pub rule: TerminationRule,
    /// Uniform latency bounds (`lo..hi`), else constant 1.
    pub latency: Option<(u64, u64)>,
    /// Timeout-based failure detection: suspect a peer after this many
    /// units of silence (`--detector-timeout`). `None` keeps the paper's
    /// perfect detector.
    pub detector_timeout: Option<u64>,
    /// Inclusive heartbeat-latency bounds for the detector
    /// (`--detector-jitter LO..HI`, default `1..12`).
    pub detector_jitter: Option<(u64, u64)>,
    /// RNG seed for the latency model.
    pub seed: u64,
    /// Record and print the human-readable execution story (`--story`).
    pub trace: bool,
    /// Write the structured event trace to this path (`--trace PATH`).
    pub trace_path: Option<String>,
    /// Export the trace as Chrome trace-event JSON instead of JSONL
    /// (`--trace-format chrome`).
    pub trace_chrome: bool,
    /// Print the metrics table after the run (`--metrics`).
    pub metrics: bool,
    /// Attach a flight recorder and dump its tail to this path when the
    /// run ends badly — atomicity violated or an operational site left
    /// undecided (`--flight PATH`).
    pub flight_path: Option<String>,
    /// Flight-recorder ring capacity in events (`--flight-cap N`).
    pub flight_cap: usize,
    /// Print the machine-readable JSON report instead of the human text
    /// (`--json`).
    pub json: bool,
    /// Replay a recorded `nbc-check` JSONL schedule instead of running the
    /// timed simulation (`--schedule PATH`). Overrides crash/latency/vote
    /// options — the schedule carries its own.
    pub schedule: Option<String>,
}

impl Default for SimOpts {
    fn default() -> Self {
        Self {
            crash: None,
            recover: None,
            no_voters: Vec::new(),
            rule: TerminationRule::Skeen,
            latency: None,
            detector_timeout: None,
            detector_jitter: None,
            seed: 0,
            trace: false,
            trace_path: None,
            trace_chrome: false,
            metrics: false,
            flight_path: None,
            flight_cap: 256,
            json: false,
            schedule: None,
        }
    }
}

impl SimOpts {
    fn to_config(&self, n: usize) -> RunConfig {
        let mut cfg = RunConfig::happy(n);
        for &v in &self.no_voters {
            if v < n {
                cfg.votes[v] = false;
            }
        }
        cfg.rule = self.rule;
        if let Some((lo, hi)) = self.latency {
            cfg.latency = LatencyModel::uniform(lo, hi, self.seed);
        }
        if let Some(timeout) = self.detector_timeout {
            cfg.detector = Some(DetectorSpec {
                timeout,
                jitter: self.detector_jitter.unwrap_or((1, 12)),
                seed: self.seed,
            });
        }
        cfg.record_trace = self.trace;
        if let Some((site, ordinal, msgs)) = self.crash {
            cfg.crashes.push(CrashSpec {
                site,
                point: CrashPoint::OnTransition {
                    ordinal,
                    progress: match msgs {
                        None => TransitionProgress::BeforeLog,
                        Some(k) => TransitionProgress::AfterMsgs(k),
                    },
                },
                recover_at: self.recover,
            });
        }
        cfg
    }
}

impl SimOpts {
    /// True when the run must be executed through a tracer (a structured
    /// trace, the metrics table, or a flight recorder was requested).
    fn wants_events(&self) -> bool {
        self.trace_path.is_some() || self.metrics || self.flight_path.is_some()
    }
}

/// Serialize `events` to `path` in the requested format (`--trace` /
/// `--trace-format`).
fn write_trace(path: &str, chrome: bool, events: &[Event]) -> Result<(), CliError> {
    let data = if chrome { to_chrome(events) } else { to_jsonl(events) };
    std::fs::write(path, data).map_err(|e| CliError(format!("cannot write {path}: {e}")))
}

/// Execute one run through a tracer, honoring the trace/metrics options:
/// writes the trace file (if requested) and returns the report together
/// with the rendered metrics table (if requested).
fn run_observed(
    protocol: &Protocol,
    analysis: &Analysis,
    cfg: RunConfig,
    opts: &SimOpts,
) -> Result<(RunReport, Option<Metrics>), CliError> {
    let events = SharedSink::new(MemorySink::default());
    let metrics = SharedSink::new(Metrics::default());
    let flight = opts
        .flight_path
        .as_ref()
        .map(|_| SharedSink::new(FlightRecorder::new(opts.flight_cap.max(1))));
    let mut tracer = Tracer::to_sink(events.clone());
    if opts.metrics {
        tracer.attach(metrics.clone());
    }
    if let Some(rec) = &flight {
        tracer.attach(rec.clone());
    }
    let report = run_traced(protocol, analysis, cfg, tracer);
    if let Some(path) = &opts.trace_path {
        events.with(|s| write_trace(path, opts.trace_chrome, &s.events))?;
    }
    // The flight dump is written only when the run ends badly: a clean
    // run leaves nothing behind, so the file's existence is itself a
    // signal scripts can gate on.
    if let (Some(path), Some(rec)) = (&opts.flight_path, &flight) {
        if !report.consistent || !report.all_operational_decided {
            let (dump, kept, total) = rec.with(|r| (r.dump_jsonl(), r.len(), r.total_seen()));
            std::fs::write(path, dump)
                .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
            eprintln!("flight recorder: dumped last {kept} of {total} events to {path}");
        }
    }
    let metrics = opts.metrics.then(|| metrics.with(|m| m.clone()));
    Ok((report, metrics))
}

/// `nbc simulate PROTO [opts]`
pub fn cmd_simulate(
    protocol: &Protocol,
    analysis: &Analysis,
    opts: &SimOpts,
) -> Result<String, CliError> {
    if let Some(path) = &opts.schedule {
        return cmd_replay(protocol, analysis, path, opts);
    }
    let cfg = opts.to_config(protocol.n_sites());
    let (report, metrics) = if opts.wants_events() {
        run_observed(protocol, analysis, cfg, opts)?
    } else {
        (run_with(protocol, analysis, cfg), None)
    };
    let mut out = String::new();
    if opts.json {
        // `--json --metrics` nests both documents under fixed keys so a
        // script gets the verdict and the counters in one parse.
        match &metrics {
            Some(m) => {
                let _ = writeln!(
                    out,
                    "{{\"report\":{},\"metrics\":{}}}",
                    report.to_json(),
                    m.to_json()
                );
            }
            None => {
                let _ = writeln!(out, "{}", report.to_json());
            }
        }
        return Ok(out);
    }
    for line in &report.trace {
        let _ = writeln!(out, "{line}");
    }
    let _ = writeln!(out, "{report}");
    let _ = writeln!(
        out,
        "atomicity: {}   all operational decided: {}",
        if report.consistent { "preserved" } else { "VIOLATED" },
        report.all_operational_decided
    );
    if let Some(m) = metrics {
        let _ = write!(out, "{m}");
    }
    Ok(out)
}

/// `nbc simulate PROTO --schedule FILE`: strictly replay a recorded
/// `nbc-check` JSONL schedule against the engine in lockstep mode. The
/// schedule header carries the vote plan and termination rule; the
/// protocol on the command line must match the one the schedule was
/// recorded against.
pub fn cmd_replay(
    protocol: &Protocol,
    analysis: &Analysis,
    path: &str,
    opts: &SimOpts,
) -> Result<String, CliError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
    let sched = Schedule::from_jsonl(&text).map_err(|e| CliError(format!("{path}: {e}")))?;
    if sched.n != protocol.n_sites() {
        return fail(format!(
            "{path}: schedule is for n={}, resolved protocol has n={}",
            sched.n,
            protocol.n_sites()
        ));
    }
    if sched.protocol != protocol.name {
        return fail(format!(
            "{path}: schedule was recorded against {:?}, not {:?}",
            sched.protocol, protocol.name
        ));
    }
    let rule = nbc_check::rule_from_name(&sched.rule)
        .ok_or_else(|| CliError(format!("{path}: unknown termination rule {:?}", sched.rule)))?;
    let mut cfg = nbc_check::explore::plan_config(sched.n, &sched.votes, rule);
    cfg.record_trace = opts.trace;
    let mut runner = Runner::new(protocol, analysis, cfg);
    nbc_check::replay_strict(&mut runner, &sched.steps)
        .map_err(|e| CliError(format!("{path}: replay failed at {e}")))?;
    let report = runner.report();
    if opts.json {
        return Ok(format!("{}\n", report.to_json()));
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "replayed {} steps from {path} (rule={}, votes={})",
        sched.steps.len(),
        sched.rule,
        sched.votes.iter().map(|&v| if v { 'y' } else { 'n' }).collect::<String>(),
    );
    for line in &report.trace {
        let _ = writeln!(out, "{line}");
    }
    let _ = writeln!(out, "{report}");
    let _ = writeln!(
        out,
        "atomicity: {}   all operational decided: {}",
        if report.consistent { "preserved" } else { "VIOLATED" },
        report.all_operational_decided
    );
    Ok(out)
}

/// Outcome of `nbc check`: the rendered report plus the verdict bit the
/// binary turns into its exit status (0 = every oracle passed, 1 = some
/// oracle failed; usage and protocol errors stay on the [`CliError`]
/// path and exit 2).
pub struct CheckRun {
    /// The rendered report (text or `--json`).
    pub output: String,
    /// True iff every oracle passed.
    pub ok: bool,
}

/// `nbc check PROTO [opts]` — run the schedule-exploring model checker.
pub fn cmd_check(args: &[String]) -> Result<CheckRun, CliError> {
    fn val(args: &[String], i: &mut usize) -> Result<String, CliError> {
        *i += 1;
        args.get(*i).cloned().ok_or_else(|| CliError(format!("{} needs a value", args[*i - 1])))
    }
    let Some(proto_arg) = args.first() else {
        return fail("check: missing protocol argument");
    };
    let mut n = 3usize;
    let mut opts = CheckOptions::default();
    let mut json = false;
    let mut trace = false;
    let mut cx_path: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "-n" => n = parse_num(&val(args, &mut i)?, "-n")?,
            "--depth" => opts.depth = parse_num(&val(args, &mut i)?, "--depth")?,
            "--faults" => opts.faults = parse_num(&val(args, &mut i)?, "--faults")?,
            "--recoveries" => opts.recoveries = parse_num(&val(args, &mut i)?, "--recoveries")?,
            "--drops" => opts.drops = parse_num(&val(args, &mut i)?, "--drops")?,
            "--suspicions" => opts.suspicions = parse_num(&val(args, &mut i)?, "--suspicions")?,
            "--seed" => opts.seed = Some(parse_num(&val(args, &mut i)?, "--seed")?),
            "--threads" => opts.threads = parse_num(&val(args, &mut i)?, "--threads")?,
            "--max-states" => opts.max_states = parse_num(&val(args, &mut i)?, "--max-states")?,
            "--mem-budget" => {
                opts.mem_budget = parse_mem_budget(&val(args, &mut i)?, "--mem-budget")?
            }
            "--rule" => opts.rule = parse_rule_arg(&val(args, &mut i)?)?,
            "--votes" => opts.vote_plan = Some(parse_votes_arg(&val(args, &mut i)?)?),
            "--json" => json = true,
            "--trace" => trace = true,
            "--progress" => opts.progress = Some(print_check_progress),
            "--counterexample" => cx_path = Some(val(args, &mut i)?),
            other => return fail(format!("check: unknown flag {other:?}")),
        }
        i += 1;
    }
    let protocol = resolve_protocol(proto_arg, n)?;
    if let Some(plan) = &opts.vote_plan {
        if plan.len() != protocol.n_sites() {
            return fail(format!(
                "--votes names {} sites, protocol has {}",
                plan.len(),
                protocol.n_sites()
            ));
        }
    }
    let budgeted = opts.mem_budget > 0;
    let report = nbc_check::run_check(&protocol, opts).map_err(|e| CliError(e.to_string()))?;
    // Spill stats go to stderr only: the rendered report and JSON stay
    // byte-identical with and without a budget.
    if budgeted {
        let s = report.spill;
        eprintln!(
            "{}",
            nbc_obs::progress::spill_line("check", s.runs_written, s.bytes_written, s.merge_passes)
        );
    }
    if let Some(path) = cx_path {
        let sched = report
            .failures
            .iter()
            .find_map(|f| f.counterexample.as_ref())
            .or(report.blocking_witness.as_ref());
        match sched {
            Some(s) => {
                if let Some(parent) = std::path::Path::new(&path).parent() {
                    if !parent.as_os_str().is_empty() {
                        std::fs::create_dir_all(parent).map_err(|e| {
                            CliError(format!("cannot create {}: {e}", parent.display()))
                        })?;
                    }
                }
                std::fs::write(&path, s.to_jsonl())
                    .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
                // Replay the shrunk schedule with a flight recorder
                // attached and drop its event tail next to the schedule:
                // the causal last moments of the failure, ready for
                // `nbc trace verify`.
                let flight_path = format!("{path}.flight.jsonl");
                match nbc_check::replay_flight_dump(&protocol, s, 256) {
                    Ok(dump) => std::fs::write(&flight_path, dump)
                        .map_err(|e| CliError(format!("cannot write {flight_path}: {e}")))?,
                    Err(e) => eprintln!("note: flight replay failed: {e}"),
                }
            }
            None => eprintln!("note: no counterexample or witness to write to {path}"),
        }
    }
    let ok = report.ok();
    if json {
        return Ok(CheckRun { output: format!("{}\n", report.to_json()), ok });
    }
    let mut out = report.render();
    if trace {
        let mut listing = |label: &str, sched: &Schedule| {
            let _ = writeln!(out, "  {label} steps:");
            for (ix, step) in sched.steps.iter().enumerate() {
                let _ = writeln!(out, "    {ix:3}. {step}");
            }
        };
        if let Some(w) = &report.blocking_witness {
            listing("witness", w);
        }
        for f in &report.failures {
            if let Some(cx) = &f.counterexample {
                listing(f.oracle, cx);
            }
        }
    }
    Ok(CheckRun { output: out, ok })
}

/// `nbc trace verify FILE...` / `nbc trace stats FILE...` — offline
/// analysis of recorded JSONL event traces.
///
/// `verify` re-checks the engine's invariants from the trace alone —
/// message conservation, decision consistency, WAL-before-send ordering,
/// stable decisions — and reports the Gray–Lamport accounting; it shares
/// `nbc check`'s exit contract (0 = every oracle passed, 1 = a violation,
/// 2 = usage error). `stats` derives decision-latency percentiles and the
/// time-series snapshot curve; it always exits 0 unless the trace is
/// unreadable. Both are pure functions of the file bytes: the same trace
/// renders byte-identically on every run.
pub fn cmd_trace(args: &[String]) -> Result<CheckRun, CliError> {
    let Some(sub) = args.first() else {
        return fail("trace: missing subcommand (verify | stats)");
    };
    let verify_mode = match sub.as_str() {
        "verify" => true,
        "stats" => false,
        other => return fail(format!("trace: unknown subcommand {other:?} (verify | stats)")),
    };
    let mut json = false;
    let mut files: Vec<&str> = Vec::new();
    for a in &args[1..] {
        match a.as_str() {
            "--json" => json = true,
            f if f.starts_with('-') => return fail(format!("trace {sub}: unknown flag {f:?}")),
            f => files.push(f),
        }
    }
    if files.is_empty() {
        return fail(format!("trace {sub}: missing trace file argument"));
    }
    let mut out = String::new();
    let mut ok = true;
    for path in &files {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
        let events = analyze::parse_jsonl(&text).map_err(|e| CliError(format!("{path}: {e}")))?;
        if files.len() > 1 && !json {
            let _ = writeln!(out, "{path}:");
        }
        if verify_mode {
            let report = analyze::verify(&events);
            ok &= report.ok();
            if json {
                let _ = writeln!(out, "{}", report.to_json());
            } else {
                out.push_str(&report.render());
            }
        } else {
            let stats = analyze::stats(&events);
            if json {
                let _ = writeln!(out, "{}", stats.to_json());
            } else {
                out.push_str(&stats.render());
            }
        }
    }
    Ok(CheckRun { output: out, ok })
}

/// Run one happy-path (all-yes, no-failure) transaction through the
/// instrumented engine and fold the event stream into the Gray–Lamport
/// accounting unit: messages sent, stable writes, and sequential message
/// delays (the latest decision latency under the constant-1 lockstep
/// clock) per committed transaction.
fn measured_cost(protocol: &Protocol) -> Result<(nbc_paxos::CostRow, Metrics), CliError> {
    let analysis = build_analysis(protocol, 0, false, false, 0)?;
    let cfg = RunConfig::happy(protocol.n_sites());
    let events = SharedSink::new(MemorySink::default());
    let metrics = SharedSink::new(Metrics::default());
    let mut tracer = Tracer::to_sink(events.clone());
    tracer.attach(metrics.clone());
    let report = run_traced(protocol, &analysis, cfg, tracer);
    if !report.consistent {
        return fail(format!("{}: happy-path run was inconsistent", protocol.name));
    }
    // Delays: unit network latency makes "time until the last site logs
    // its decision" exactly the sequential-message-delay count.
    let delays = events.with(|s| {
        let start = s.events.iter().map(|e| e.time).min().unwrap_or(0);
        let last = s
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Decision { .. }))
            .map(|e| e.time)
            .max()
            .unwrap_or(start);
        (last - start) as usize
    });
    let m = metrics.with(|m| m.clone());
    let row = nbc_paxos::CostRow {
        messages: m.txns.values().map(|t| t.msgs_sent).sum::<u64>() as usize,
        stable_writes: m.txns.values().map(|t| t.stable_writes).sum::<u64>() as usize,
        delays,
    };
    Ok((row, m))
}

/// `nbc paxos [--sites N] [--faults F] [--metrics] [--json]` — run one
/// happy-path Paxos Commit transaction under the instrumented engine and
/// print the Gray–Lamport cost table: measured messages / stable writes /
/// message delays per committed transaction for Paxos Commit next to this
/// repo's central 2PC and 3PC, plus Gray & Lamport's analytic predictions.
pub fn cmd_paxos(args: &[String]) -> Result<String, CliError> {
    fn val(args: &[String], i: &mut usize) -> Result<String, CliError> {
        *i += 1;
        args.get(*i).cloned().ok_or_else(|| CliError(format!("{} needs a value", args[*i - 1])))
    }
    let mut sites = 3usize;
    let mut faults = 1usize;
    let mut want_metrics = false;
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--sites" | "-n" => sites = parse_num(&val(args, &mut i)?, "--sites")?,
            "--faults" | "-f" => faults = parse_num(&val(args, &mut i)?, "--faults")?,
            "--metrics" => want_metrics = true,
            "--json" => json = true,
            other => return fail(format!("paxos: unknown flag {other:?}")),
        }
        i += 1;
    }
    let paxos = build_paxos(sites, faults)?;
    let (px, px_metrics) = measured_cost(&paxos)?;
    let (c2, _) = measured_cost(&central_2pc(sites))?;
    let (c3, _) = measured_cost(&central_3pc(sites))?;
    // Gray & Lamport count resource managers; our leader doubles as the
    // first RM, so n participants = n RMs in their accounting.
    let gl2 = nbc_paxos::gl_2pc_cost(sites);
    let glp = nbc_paxos::gl_paxos_cost(sites, faults);

    if json {
        let mut out = String::new();
        let row = |r: &nbc_paxos::CostRow| {
            format!(
                "{{\"messages\":{},\"stable_writes\":{},\"delays\":{}}}",
                r.messages, r.stable_writes, r.delays
            )
        };
        let _ = writeln!(
            out,
            "{{\"protocol\":{:?},\"sites\":{sites},\"faults\":{faults},\
             \"measured\":{{\"paxos\":{},\"central_2pc\":{},\"central_3pc\":{}}},\
             \"gray_lamport\":{{\"paxos\":{},\"two_pc\":{}}}}}",
            paxos.name,
            row(&px),
            row(&c2),
            row(&c3),
            row(&glp),
            row(&gl2),
        );
        return Ok(out);
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: one committed transaction, all sites vote yes\n\
         quorum: {} acceptors, decision needs {} ack-commit(s)\n",
        paxos.name,
        2 * faults + 1,
        faults + 1
    );
    let _ = writeln!(
        out,
        "cost per committed transaction (measured by the event stream):\n\
         \x20 {:<22} {:>6} {:>14} {:>8}",
        "protocol", "msgs", "stable-writes", "delays"
    );
    for (name, r) in
        [("central-2pc", &c2), ("central-3pc", &c3), (&*format!("paxos-commit f={faults}"), &px)]
    {
        let _ = writeln!(
            out,
            "  {:<22} {:>6} {:>14} {:>8}",
            name, r.messages, r.stable_writes, r.delays
        );
    }
    let _ = writeln!(
        out,
        "\nGray & Lamport analytic predictions ({} resource managers):\n\
         \x20 {:<22} {:>6} {:>14} {:>8}",
        sites, "protocol", "msgs", "stable-writes", "delays"
    );
    for (name, r) in [("two-phase commit", &gl2), (&*format!("paxos commit f={faults}"), &glp)] {
        let _ = writeln!(
            out,
            "  {:<22} {:>6} {:>14} {:>8}",
            name, r.messages, r.stable_writes, r.delays
        );
    }
    let _ = writeln!(
        out,
        "\nDivergence from the paper is structural: Gray & Lamport colocate\n\
         acceptors with RMs and the leader with one acceptor, eliding relay\n\
         messages and acceptor log writes that this model keeps as distinct\n\
         sites (each acceptor adds its own messages and 3 stable writes)."
    );
    if want_metrics {
        let _ = write!(out, "\n{px_metrics}");
    }
    Ok(out)
}

/// Parse a `--votes` plan: one `y`/`1` (yes) or `n`/`0` (no) per site,
/// e.g. `yyn`.
pub fn parse_votes_arg(arg: &str) -> Result<Vec<bool>, CliError> {
    arg.chars()
        .map(|c| match c {
            'y' | '1' => Ok(true),
            'n' | '0' => Ok(false),
            _ => fail(format!("bad --votes character {c:?} (want y/n or 1/0)")),
        })
        .collect()
}

/// `nbc sweep PROTO [opts]`
pub fn cmd_sweep(
    protocol: &Protocol,
    analysis: &Analysis,
    opts: &SimOpts,
) -> Result<String, CliError> {
    let specs = enumerate_crash_specs(protocol, opts.recover);
    let base = opts.to_config(protocol.n_sites());
    let mut metrics_table = None;
    let s = if opts.wants_events() {
        let events = SharedSink::new(MemorySink::default());
        let metrics = SharedSink::new(Metrics::default());
        let mut tracer = Tracer::to_sink(events.clone());
        if opts.metrics {
            tracer.attach(metrics.clone());
        }
        let s = sweep_traced(protocol, analysis, &base, &specs, tracer);
        if let Some(path) = &opts.trace_path {
            events.with(|sink| write_trace(path, opts.trace_chrome, &sink.events))?;
        }
        if opts.metrics {
            metrics_table = Some(metrics.with(|m| m.clone()));
        }
        s
    } else {
        sweep(protocol, analysis, &base, &specs)
    };
    if opts.json {
        return Ok(format!("{}\n", s.to_json()));
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: {} crash points; consistent {}/{}; blocked {}; all-decided {}",
        protocol.name, s.total, s.consistent, s.total, s.blocked, s.fully_decided
    );
    for bad in s.inconsistent_runs.iter().take(5) {
        let _ = writeln!(out, "  ! {bad}");
    }
    let _ = writeln!(
        out,
        "verdict: {}",
        if !s.all_consistent() {
            "ATOMICITY VIOLATED"
        } else if s.nonblocking() {
            "nonblocking"
        } else {
            "blocking window present"
        }
    );
    if let Some(m) = metrics_table {
        let _ = write!(out, "{m}");
    }
    Ok(out)
}

/// Append an instrumented exemplar run to a table command's output when
/// `--trace`/`--metrics` asked for one: the coordinator crashes mid-way
/// through its decision broadcast (one message sent), which drives the
/// full termination protocol — election, alignment, backup decision —
/// through the tracer. With `recover` the crashed site comes back and runs
/// the recovery protocol too.
fn demo_run(
    protocol: &Protocol,
    analysis: &Analysis,
    opts: &SimOpts,
    recover: bool,
    out: &mut String,
) -> Result<(), CliError> {
    if !opts.wants_events() {
        return Ok(());
    }
    let mut cfg = opts.to_config(protocol.n_sites());
    if cfg.crashes.is_empty() {
        cfg.crashes.push(CrashSpec {
            site: 0,
            point: CrashPoint::OnTransition {
                ordinal: 2,
                progress: TransitionProgress::AfterMsgs(1),
            },
            recover_at: opts.recover.or(if recover { Some(300) } else { None }),
        });
    }
    let _ = writeln!(
        out,
        "exemplar run: site 0 crashes at ordinal 2 after 1 message{}",
        if recover { ", recovers" } else { "" }
    );
    let (report, metrics) = run_observed(protocol, analysis, cfg, opts)?;
    let _ = writeln!(out, "{report}");
    if let Some(m) = metrics {
        let _ = write!(out, "{m}");
    }
    Ok(())
}

/// `nbc termination PROTO`
pub fn cmd_termination(
    protocol: &Protocol,
    analysis: &Analysis,
    opts: &SimOpts,
) -> Result<String, CliError> {
    let mut out = String::new();
    let _ = writeln!(out, "{}: backup-coordinator decision table", protocol.name);
    for row in termination::decision_table(protocol, analysis) {
        let _ = writeln!(
            out,
            "  {} in {:<4} ({}) -> {}",
            row.site,
            row.state_name,
            row.class.letter(),
            row.backup
        );
    }
    demo_run(protocol, analysis, opts, false, &mut out)?;
    Ok(out)
}

/// `nbc recovery PROTO`
pub fn cmd_recovery(
    protocol: &Protocol,
    analysis: &Analysis,
    opts: &SimOpts,
) -> Result<String, CliError> {
    let mut out = String::new();
    let _ = writeln!(out, "{}: independent recovery classification", protocol.name);
    for row in recovery_analysis::classify(protocol, analysis) {
        let _ = writeln!(out, "  {} in {:<4} -> {}", row.site, row.state_name, row.class);
    }
    demo_run(protocol, analysis, opts, true, &mut out)?;
    Ok(out)
}

/// `nbc pipeline PROTO [flags]` — run the concurrent commit scheduler
/// over a bank workload and report throughput, latency percentiles, and
/// group-commit savings, alongside a serial baseline (the same scheduler
/// at in-flight 1 with group commit off).
///
/// Parses its own argument tail: `PROTO [--txns T] [--crash-pct P]
/// [--in-flight K] [--window W] [--reap T] [--seed S] [-n N]`.
pub fn cmd_pipeline(args: &[String]) -> Result<String, CliError> {
    use nbc_pipeline::{bank_transfer_txns, Pipeline, PipelineConfig, PipelineTxn};
    use nbc_simnet::SimRng;
    use nbc_txn::{BankWorkload, ProtocolKind};

    let Some(proto) = args.first() else {
        return fail("pipeline: missing protocol argument");
    };
    let kind = match proto.as_str() {
        "central-2pc" | "2pc" => ProtocolKind::Central2pc,
        "central-3pc" | "3pc" => ProtocolKind::Central3pc,
        "decentralized-2pc" | "d2pc" => ProtocolKind::Decentralized2pc,
        "decentralized-3pc" | "d3pc" => ProtocolKind::Decentralized3pc,
        "paxos" | "paxos-commit" => ProtocolKind::Paxos { f: 1 },
        p if p.starts_with("paxos:") => {
            let f: usize = p[6..]
                .parse()
                .map_err(|_| CliError(format!("bad acceptor-fault count in {p:?}")))?;
            ProtocolKind::Paxos { f }
        }
        other => {
            return fail(format!(
                "pipeline runs the cluster protocols only \
                 (central-2pc | central-3pc | decentralized-2pc | decentralized-3pc | paxos:F), \
                 got {other:?}"
            ))
        }
    };

    let mut n = 3usize;
    let mut txns = 64usize;
    let mut crash_pct = 0u32;
    let mut in_flight = 8usize;
    let mut window = 2u64;
    let mut reap = 200u64;
    let mut seed = 42u64;
    let mut trace_path: Option<String> = None;
    let mut trace_chrome = false;
    let mut metrics = false;
    let mut series_every = 0u64;
    let mut flight_path: Option<String> = None;
    let mut flight_cap = 256usize;
    let mut i = 1;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut val = |what: &str| -> Result<String, CliError> {
            i += 1;
            args.get(i).cloned().ok_or_else(|| CliError(format!("{what} needs a value")))
        };
        match flag {
            "-n" => n = parse_num(&val("-n")?, "-n")?,
            "--txns" => txns = parse_num(&val("--txns")?, "--txns")?,
            "--crash-pct" => {
                crash_pct = parse_num(&val("--crash-pct")?, "--crash-pct")?;
                if crash_pct > 100 {
                    return fail("--crash-pct wants 0..=100");
                }
            }
            "--in-flight" => in_flight = parse_num(&val("--in-flight")?, "--in-flight")?,
            "--window" => window = parse_num(&val("--window")?, "--window")?,
            "--reap" => reap = parse_num(&val("--reap")?, "--reap")?,
            "--seed" => seed = parse_num(&val("--seed")?, "--seed")?,
            "--trace" => trace_path = Some(val("--trace")?),
            "--trace-format" => trace_chrome = parse_trace_format(&val("--trace-format")?)?,
            "--metrics" => metrics = true,
            "--series-every" => {
                series_every = parse_num(&val("--series-every")?, "--series-every")?
            }
            "--flight" => flight_path = Some(val("--flight")?),
            "--flight-cap" => flight_cap = parse_num(&val("--flight-cap")?, "--flight-cap")?,
            other => return fail(format!("unknown flag {other:?}")),
        }
        i += 1;
    }
    if n < 2 {
        return fail("pipeline needs -n >= 2");
    }

    let accounts = (n * 4).max(8);
    let mut w = BankWorkload::new(n, accounts, 1_000, seed);
    let mut rng = SimRng::seed_from_u64(seed);
    let batch = bank_transfer_txns(&mut w, txns, crash_pct, &mut rng);

    let run_with = |max_in_flight: usize, group_window: u64, tracer: Option<Tracer>| {
        let mut p = Pipeline::new(
            PipelineConfig::new(n, kind)
                .with_in_flight(max_in_flight)
                .with_group_window(group_window)
                .with_reap_after(reap)
                .with_series_every(series_every),
        );
        p.run(vec![PipelineTxn::from_ops(&w.setup_ops())]);
        // Attach only after the setup transaction: the trace covers the
        // measured batch, not the workload bootstrap.
        if let Some(t) = tracer {
            p.set_tracer(t);
        }
        let start = p.now();
        let r = p.run(batch.clone());
        let conserved = p.total_balance(&w) == w.expected_total() && p.locked_keys() == 0;
        let ticks = r.finished_at - start;
        (r, ticks, conserved)
    };
    let (serial, serial_ticks, serial_ok) = run_with(1, 0, None);
    let events = SharedSink::new(MemorySink::default());
    let metrics_sink = SharedSink::new(Metrics::default());
    let flight =
        flight_path.as_ref().map(|_| SharedSink::new(FlightRecorder::new(flight_cap.max(1))));
    let tracer = (trace_path.is_some() || metrics || flight.is_some()).then(|| {
        let mut t = Tracer::to_sink(events.clone());
        if metrics {
            t.attach(metrics_sink.clone());
        }
        if let Some(rec) = &flight {
            t.attach(rec.clone());
        }
        t
    });
    // With a flight recorder attached, a scheduler panic still yields its
    // black box: catch the unwind, dump the ring, then surface the error.
    let dump_flight = |note: &str| -> Result<(), CliError> {
        let (Some(path), Some(rec)) = (&flight_path, &flight) else { return Ok(()) };
        let (dump, kept, total) = rec.with(|r| (r.dump_jsonl(), r.len(), r.total_seen()));
        std::fs::write(path, dump).map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
        eprintln!("flight recorder: {note}; dumped last {kept} of {total} events to {path}");
        Ok(())
    };
    let (report, pipe_ticks, pipe_ok) = if flight.is_some() {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_with(in_flight, window, tracer)
        })) {
            Ok(r) => r,
            Err(panic) => {
                dump_flight("scheduler panicked")?;
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "unknown panic".to_string());
                return fail(format!("pipeline panicked: {msg}"));
            }
        }
    } else {
        run_with(in_flight, window, tracer)
    };
    if let Some(path) = &trace_path {
        events.with(|s| write_trace(path, trace_chrome, &s.events))?;
    }
    if !pipe_ok {
        dump_flight("conservation violated")?;
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "pipeline: {} x{n} sites, {txns} txns, crash {crash_pct}%, \
         in-flight {in_flight}, window {window}, seed {seed}",
        kind.name()
    );
    let _ = writeln!(out, "{report}");
    let _ = writeln!(
        out,
        "serial baseline (in-flight 1, window 0): {} ticks, {:.2} txn/ktick, {} syncs",
        serial_ticks,
        serial.txns_per_kilotick(),
        serial.wal_forces
    );
    let speedup = serial_ticks as f64 / pipe_ticks.max(1) as f64;
    let _ = writeln!(
        out,
        "speedup over serial: {speedup:.2}x; conservation: {}",
        if serial_ok && pipe_ok { "ok" } else { "VIOLATED" }
    );
    if metrics {
        let _ = write!(out, "{}", metrics_sink.with(|m| m.clone()));
    }
    Ok(out)
}

fn parse_num<T: std::str::FromStr>(arg: &str, flag: &str) -> Result<T, CliError> {
    arg.parse().map_err(|_| CliError(format!("bad {flag} value {arg:?}")))
}

/// Parse `site:ordinal:msgs` (msgs may be `log`).
pub fn parse_crash_arg(arg: &str) -> Result<(usize, u32, Option<u32>), CliError> {
    let parts: Vec<&str> = arg.split(':').collect();
    if parts.len() != 3 {
        return fail(format!("--crash wants SITE:ORDINAL:MSGS, got {arg:?}"));
    }
    let site = parts[0].parse().map_err(|_| CliError(format!("bad site {:?}", parts[0])))?;
    let ordinal = parts[1].parse().map_err(|_| CliError(format!("bad ordinal {:?}", parts[1])))?;
    let msgs = if parts[2] == "log" {
        None
    } else {
        Some(parts[2].parse().map_err(|_| CliError(format!("bad msg count {:?}", parts[2])))?)
    };
    Ok((site, ordinal, msgs))
}

/// Parse a `lo..hi` latency range.
pub fn parse_latency_arg(arg: &str) -> Result<(u64, u64), CliError> {
    let (lo, hi) =
        arg.split_once("..").ok_or(CliError(format!("--latency wants LO..HI, got {arg:?}")))?;
    let lo = lo.parse().map_err(|_| CliError(format!("bad latency {lo:?}")))?;
    let hi = hi.parse().map_err(|_| CliError(format!("bad latency {hi:?}")))?;
    if lo > hi {
        return fail("--latency LO..HI needs LO <= HI");
    }
    Ok((lo, hi))
}

/// Parse a `--detector-jitter` heartbeat-latency range (`lo..hi`).
pub fn parse_jitter_arg(arg: &str) -> Result<(u64, u64), CliError> {
    let (lo, hi) = arg
        .split_once("..")
        .ok_or(CliError(format!("--detector-jitter wants LO..HI, got {arg:?}")))?;
    let lo = lo.parse().map_err(|_| CliError(format!("bad jitter bound {lo:?}")))?;
    let hi = hi.parse().map_err(|_| CliError(format!("bad jitter bound {hi:?}")))?;
    if lo > hi {
        return fail("--detector-jitter LO..HI needs LO <= HI");
    }
    Ok((lo, hi))
}

/// Parse a `--detector-timeout` value (must be positive).
pub fn parse_timeout_arg(arg: &str) -> Result<u64, CliError> {
    let t: u64 = parse_num(arg, "--detector-timeout")?;
    if t == 0 {
        return fail("--detector-timeout needs a positive value");
    }
    Ok(t)
}

/// Parse a `--trace-format` value; `true` selects Chrome trace-event JSON.
pub fn parse_trace_format(arg: &str) -> Result<bool, CliError> {
    match arg {
        "jsonl" => Ok(false),
        "chrome" => Ok(true),
        _ => fail(format!("unknown trace format {arg:?} (jsonl | chrome)")),
    }
}

/// Parse a termination-rule name.
pub fn parse_rule_arg(arg: &str) -> Result<TerminationRule, CliError> {
    match arg {
        "skeen" => Ok(TerminationRule::Skeen),
        "cooperative" => Ok(TerminationRule::Cooperative),
        "naive" => Ok(TerminationRule::NaiveCs),
        "quorum" => Ok(TerminationRule::QuorumSkeen),
        _ => fail(format!("unknown rule {arg:?} (skeen | cooperative | naive | quorum)")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_budget_parses_suffixes() {
        assert_eq!(parse_mem_budget("4096", "--mem-budget").unwrap(), 4096);
        assert_eq!(parse_mem_budget("64K", "--mem-budget").unwrap(), 64 << 10);
        assert_eq!(parse_mem_budget("64k", "--mem-budget").unwrap(), 64 << 10);
        assert_eq!(parse_mem_budget("16M", "--mem-budget").unwrap(), 16 << 20);
        assert_eq!(parse_mem_budget("1g", "--mem-budget").unwrap(), 1 << 30);
        assert!(parse_mem_budget("", "--mem-budget").is_err());
        assert!(parse_mem_budget("K", "--mem-budget").is_err());
        assert!(parse_mem_budget("12Q", "--mem-budget").is_err());
        assert!(parse_mem_budget("999999999999999999G", "--mem-budget").is_err());
    }

    #[test]
    fn resolve_catalog_names() {
        assert_eq!(resolve_protocol("3pc", 3).unwrap().phase_count(), 3);
        assert_eq!(resolve_protocol("d2pc", 4).unwrap().n_sites(), 4);
        assert_eq!(resolve_protocol("kpc:4", 3).unwrap().phase_count(), 4);
        assert!(resolve_protocol("nope", 3).is_err());
        assert!(resolve_protocol("kpc:1", 3).is_err());
        assert!(resolve_protocol("/does/not/exist.nbc", 3).is_err());
    }

    fn retained(p: &Protocol) -> Analysis {
        build_analysis(p, 0, false, false, 0).unwrap()
    }

    #[test]
    fn analyze_reports_verdicts() {
        let p = resolve_protocol("2pc", 3).unwrap();
        let out = cmd_analyze(&p, &retained(&p)).unwrap();
        assert!(out.contains("BLOCKING"));
        assert!(out.contains("1 clean site(s) of 3"));
        let p = resolve_protocol("3pc", 3).unwrap();
        let out = cmd_analyze(&p, &retained(&p)).unwrap();
        assert!(out.contains("NONBLOCKING"));
    }

    #[test]
    fn budgeted_streamed_analyze_is_byte_identical() {
        // A 1-byte budget forces a spill after every level; the rendered
        // analysis must not change by a byte.
        let p = resolve_protocol("3pc", 3).unwrap();
        let unlimited = cmd_analyze(&p, &build_analysis(&p, 2, true, false, 0).unwrap()).unwrap();
        let budgeted = cmd_analyze(&p, &build_analysis(&p, 2, true, false, 1).unwrap()).unwrap();
        assert_eq!(unlimited, budgeted);
    }

    #[test]
    fn streamed_analyze_matches_retained_verdicts() {
        for (name, verdict) in [("2pc", "BLOCKING"), ("3pc", "NONBLOCKING")] {
            let p = resolve_protocol(name, 3).unwrap();
            let streamed = build_analysis(&p, 2, true, false, 0).unwrap();
            let out = cmd_analyze(&p, &streamed).unwrap();
            assert!(out.contains(verdict), "{name}: {out}");
            assert!(out.contains("streamed analysis:"), "{name}: {out}");
            assert!(out.contains("graph not retained"), "{name}: {out}");
            // Everything below the stats line is identical to the retained run.
            let retained_out = cmd_analyze(&p, &retained(&p)).unwrap();
            let tail = |s: &str| s.lines().skip_while(|l| !l.starts_with("synchronous")).count();
            assert_eq!(tail(&out), tail(&retained_out));
        }
    }

    #[test]
    fn verify_distinguishes_blocking() {
        let p = resolve_protocol("3pc", 3).unwrap();
        assert!(cmd_verify(&p, &retained(&p)).unwrap().contains("HOLDS — nonblocking"));
        let p = resolve_protocol("2pc", 3).unwrap();
        assert!(cmd_verify(&p, &retained(&p)).unwrap().contains("blocking"));
    }

    #[test]
    fn verify_rejects_streamed_analysis() {
        let p = resolve_protocol("3pc", 3).unwrap();
        let streamed = build_analysis(&p, 0, true, false, 0).unwrap();
        let err = cmd_verify(&p, &streamed).unwrap_err();
        assert!(err.0.contains("--stream"), "{err}");
    }

    #[test]
    fn simulate_happy_path() {
        let p = resolve_protocol("3pc", 3).unwrap();
        let out = cmd_simulate(&p, &retained(&p), &SimOpts::default()).unwrap();
        assert!(out.contains("committed"));
        assert!(out.contains("preserved"));
    }

    #[test]
    fn simulate_with_crash_and_recovery() {
        let p = resolve_protocol("3pc", 3).unwrap();
        let opts =
            SimOpts { crash: Some((0, 3, Some(1))), recover: Some(300), ..SimOpts::default() };
        let out = cmd_simulate(&p, &retained(&p), &opts).unwrap();
        assert!(out.contains("preserved"), "{out}");
    }

    #[test]
    fn simulate_trace_shows_the_story() {
        let p = resolve_protocol("3pc", 3).unwrap();
        // Partial prepare broadcast: the backup must run phase 1
        // (alignment) before deciding, so the whole termination protocol
        // shows up in the trace.
        let opts = SimOpts { crash: Some((0, 2, Some(1))), trace: true, ..SimOpts::default() };
        let out = cmd_simulate(&p, &retained(&p), &opts).unwrap();
        assert!(out.contains("CRASH"), "{out}");
        assert!(out.contains("align-to"), "{out}");
        assert!(out.contains("align-ack"), "{out}");
        assert!(out.contains("DECIDED COMMIT"), "{out}");
        assert!(out.contains("q1 -> w1"), "{out}");
    }

    #[test]
    fn sweep_verdicts() {
        let p = resolve_protocol("3pc", 3).unwrap();
        assert!(cmd_sweep(&p, &retained(&p), &SimOpts::default()).unwrap().contains("nonblocking"));
        let p = resolve_protocol("2pc", 3).unwrap();
        let a = retained(&p);
        let opts = SimOpts { rule: TerminationRule::Cooperative, ..SimOpts::default() };
        assert!(cmd_sweep(&p, &a, &opts).unwrap().contains("blocking window"));
        let opts =
            SimOpts { rule: TerminationRule::NaiveCs, no_voters: vec![0], ..SimOpts::default() };
        assert!(cmd_sweep(&p, &a, &opts).unwrap().contains("ATOMICITY VIOLATED"));
    }

    #[test]
    fn synthesize_2pc() {
        let p = resolve_protocol("2pc", 3).unwrap();
        let out = cmd_synthesize(&p, &retained(&p)).unwrap();
        assert!(out.contains("after:  0 violation(s), 3 phase(s)"), "{out}");
    }

    #[test]
    fn tables_render() {
        let p = resolve_protocol("3pc", 3).unwrap();
        let a = retained(&p);
        let o = SimOpts::default();
        assert!(cmd_termination(&p, &a, &o).unwrap().contains("commit"));
        assert!(cmd_recovery(&p, &a, &o).unwrap().contains("must ask"));
        assert!(cmd_graph(&p, false, 0, false).unwrap().contains("global states"));
        assert!(cmd_graph(&p, true, 0, false).unwrap().contains("digraph"));
        assert_eq!(
            cmd_graph(&p, false, 1, false).unwrap(),
            cmd_graph(&p, false, 4, false).unwrap()
        );
    }

    #[test]
    fn tables_identical_under_streaming() {
        // Termination and recovery tables are pure concurrency-set
        // queries, so the streamed analysis must produce byte-identical
        // output at any thread count.
        let p = resolve_protocol("3pc", 3).unwrap();
        let a = retained(&p);
        let o = SimOpts::default();
        for threads in [1, 2, 4] {
            let s = build_analysis(&p, threads, true, false, 0).unwrap();
            assert_eq!(cmd_termination(&p, &a, &o).unwrap(), cmd_termination(&p, &s, &o).unwrap());
            assert_eq!(cmd_recovery(&p, &a, &o).unwrap(), cmd_recovery(&p, &s, &o).unwrap());
        }
    }

    #[test]
    fn pipeline_command_reports_speedup() {
        let args: Vec<String> =
            ["3pc", "--txns", "32", "--in-flight", "8", "--window", "3", "--seed", "7"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        let out = cmd_pipeline(&args).unwrap();
        assert!(out.contains("speedup over serial"), "{out}");
        assert!(out.contains("conservation: ok"), "{out}");
        assert!(out.contains("saved by group commit"), "{out}");
    }

    #[test]
    fn pipeline_command_rejects_junk() {
        let bad = |v: &[&str]| {
            let args: Vec<String> = v.iter().map(|s| s.to_string()).collect();
            cmd_pipeline(&args)
        };
        assert!(bad(&[]).is_err());
        assert!(bad(&["1pc"]).is_err(), "non-cluster protocol");
        assert!(bad(&["3pc", "--crash-pct", "101"]).is_err());
        assert!(bad(&["3pc", "--bogus"]).is_err());
    }

    #[test]
    fn simulate_json_and_metrics() {
        let p = resolve_protocol("3pc", 3).unwrap();
        let a = retained(&p);
        let out = cmd_simulate(&p, &a, &SimOpts { json: true, ..SimOpts::default() }).unwrap();
        nbc_obs::json::validate(out.trim()).unwrap();
        assert!(out.contains("\"decision\":true"), "{out}");

        let out = cmd_simulate(&p, &a, &SimOpts { metrics: true, ..SimOpts::default() }).unwrap();
        assert!(out.contains("metrics ("), "{out}");
        assert!(out.contains("messages"), "{out}");
        assert!(out.contains("preserved"), "{out}");
    }

    #[test]
    fn simulate_writes_trace_files() {
        let p = resolve_protocol("3pc", 3).unwrap();
        let a = retained(&p);
        let dir = std::env::temp_dir();
        let jsonl = dir.join("nbc-cli-test-trace.jsonl");
        let chrome = dir.join("nbc-cli-test-trace.chrome.json");

        let opts = SimOpts {
            trace_path: Some(jsonl.to_string_lossy().into_owned()),
            ..SimOpts::default()
        };
        cmd_simulate(&p, &a, &opts).unwrap();
        let data = std::fs::read_to_string(&jsonl).unwrap();
        assert!(!data.is_empty());
        for line in data.lines() {
            nbc_obs::json::validate(line).unwrap();
        }

        let opts = SimOpts {
            trace_path: Some(chrome.to_string_lossy().into_owned()),
            trace_chrome: true,
            ..SimOpts::default()
        };
        cmd_simulate(&p, &a, &opts).unwrap();
        let data = std::fs::read_to_string(&chrome).unwrap();
        nbc_obs::json::validate(&data).unwrap();
        assert!(data.starts_with("{\"traceEvents\":["), "{data}");

        let _ = std::fs::remove_file(&jsonl);
        let _ = std::fs::remove_file(&chrome);
    }

    #[test]
    fn sweep_json_is_valid() {
        let p = resolve_protocol("3pc", 3).unwrap();
        let a = retained(&p);
        let out = cmd_sweep(&p, &a, &SimOpts { json: true, ..SimOpts::default() }).unwrap();
        nbc_obs::json::validate(out.trim()).unwrap();
        assert!(out.contains("\"nonblocking\":true"), "{out}");
    }

    #[test]
    fn tables_append_exemplar_run_when_observed() {
        let p = resolve_protocol("3pc", 3).unwrap();
        let a = retained(&p);
        let opts = SimOpts { metrics: true, ..SimOpts::default() };
        let out = cmd_termination(&p, &a, &opts).unwrap();
        assert!(out.contains("exemplar run"), "{out}");
        assert!(out.contains("metrics ("), "{out}");
        let out = cmd_recovery(&p, &a, &opts).unwrap();
        assert!(out.contains("recovers"), "{out}");
        assert!(out.contains("recoveries=1"), "{out}");
    }

    #[test]
    fn pipeline_trace_and_metrics() {
        let path = std::env::temp_dir().join("nbc-cli-test-pipeline.jsonl");
        let args: Vec<String> =
            ["3pc", "--txns", "16", "--seed", "7", "--metrics", "--trace", path.to_str().unwrap()]
                .iter()
                .map(|s| s.to_string())
                .collect();
        let out = cmd_pipeline(&args).unwrap();
        assert!(out.contains("scheduler"), "{out}");
        assert!(out.contains("admits="), "{out}");
        let data = std::fs::read_to_string(&path).unwrap();
        for line in data.lines() {
            nbc_obs::json::validate(line).unwrap();
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trace_verify_passes_on_recorded_trace() {
        let p = resolve_protocol("3pc", 3).unwrap();
        let a = retained(&p);
        let path = std::env::temp_dir().join("nbc-cli-test-trace-verify.jsonl");
        let opts = SimOpts {
            crash: Some((0, 2, Some(1))),
            trace_path: Some(path.to_string_lossy().into_owned()),
            ..SimOpts::default()
        };
        cmd_simulate(&p, &a, &opts).unwrap();
        let args = vec!["verify".to_string(), path.to_string_lossy().into_owned()];
        let run = cmd_trace(&args).unwrap();
        assert!(run.ok, "{}", run.output);
        assert!(run.output.contains("result: PASS"), "{}", run.output);
        assert!(run.output.contains("gray-lamport:"), "{}", run.output);
        // Byte-determinism: a second pass over the same file is identical.
        assert_eq!(run.output, cmd_trace(&args).unwrap().output);
        // --json emits one valid object with the same verdict.
        let jargs =
            vec!["verify".to_string(), path.to_string_lossy().into_owned(), "--json".into()];
        let jrun = cmd_trace(&jargs).unwrap();
        nbc_obs::json::validate(jrun.output.trim()).unwrap();
        assert!(jrun.output.contains("\"ok\":true"), "{}", jrun.output);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trace_verify_detects_corruption() {
        let p = resolve_protocol("3pc", 3).unwrap();
        let a = retained(&p);
        let path = std::env::temp_dir().join("nbc-cli-test-trace-corrupt.jsonl");
        let opts =
            SimOpts { trace_path: Some(path.to_string_lossy().into_owned()), ..SimOpts::default() };
        cmd_simulate(&p, &a, &opts).unwrap();
        // Drop one delivery: conservation must notice the orphaned send.
        let text = std::fs::read_to_string(&path).unwrap();
        let corrupted: String = {
            let mut removed = false;
            text.lines()
                .filter(|l| {
                    if !removed && l.contains("\"kind\":\"msg-deliver\"") {
                        removed = true;
                        false
                    } else {
                        true
                    }
                })
                .map(|l| format!("{l}\n"))
                .collect()
        };
        assert_ne!(text, corrupted, "trace had no delivery to remove");
        std::fs::write(&path, corrupted).unwrap();
        let args = vec!["verify".to_string(), path.to_string_lossy().into_owned()];
        let run = cmd_trace(&args).unwrap();
        assert!(!run.ok, "{}", run.output);
        assert!(run.output.contains("conservation"), "{}", run.output);
        assert!(run.output.contains("result: FAIL"), "{}", run.output);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trace_stats_renders_percentiles() {
        let path = std::env::temp_dir().join("nbc-cli-test-trace-stats.jsonl");
        let args: Vec<String> = [
            "3pc",
            "--txns",
            "24",
            "--seed",
            "9",
            "--series-every",
            "64",
            "--trace",
            path.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        cmd_pipeline(&args).unwrap();
        let targs = vec!["stats".to_string(), path.to_string_lossy().into_owned()];
        let run = cmd_trace(&targs).unwrap();
        assert!(run.ok);
        assert!(run.output.contains("decision latency: n="), "{}", run.output);
        assert!(run.output.contains("p95="), "{}", run.output);
        assert!(run.output.contains("time series ("), "{}", run.output);
        let jargs = vec!["stats".to_string(), path.to_string_lossy().into_owned(), "--json".into()];
        let jrun = cmd_trace(&jargs).unwrap();
        nbc_obs::json::validate(jrun.output.trim()).unwrap();
        assert!(jrun.output.contains("\"snapshots\":["), "{}", jrun.output);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trace_usage_errors() {
        let s = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert!(cmd_trace(&s(&[])).is_err(), "missing subcommand");
        assert!(cmd_trace(&s(&["frob", "x.jsonl"])).is_err(), "unknown subcommand");
        assert!(cmd_trace(&s(&["verify"])).is_err(), "missing file");
        assert!(cmd_trace(&s(&["verify", "--bogus", "x.jsonl"])).is_err(), "unknown flag");
        assert!(cmd_trace(&s(&["verify", "/does/not/exist.jsonl"])).is_err(), "missing file");
    }

    #[test]
    fn simulate_flight_dump_only_on_bad_runs() {
        let dir = std::env::temp_dir();
        // Clean run: no dump.
        let p = resolve_protocol("3pc", 3).unwrap();
        let a = retained(&p);
        let clean = dir.join("nbc-cli-test-flight-clean.jsonl");
        let _ = std::fs::remove_file(&clean);
        let opts = SimOpts {
            flight_path: Some(clean.to_string_lossy().into_owned()),
            ..SimOpts::default()
        };
        cmd_simulate(&p, &a, &opts).unwrap();
        assert!(!clean.exists(), "clean run must not write a flight dump");

        // Blocked run (2PC coordinator crash, cooperative rule): dump.
        let p = resolve_protocol("2pc", 3).unwrap();
        let a = retained(&p);
        let bad = dir.join("nbc-cli-test-flight-bad.jsonl");
        let _ = std::fs::remove_file(&bad);
        let opts = SimOpts {
            crash: Some((0, 2, Some(0))),
            rule: TerminationRule::Cooperative,
            flight_path: Some(bad.to_string_lossy().into_owned()),
            flight_cap: 32,
            ..SimOpts::default()
        };
        let out = cmd_simulate(&p, &a, &opts).unwrap();
        assert!(out.contains("all operational decided: false"), "{out}");
        let dump = std::fs::read_to_string(&bad).expect("flight dump written");
        assert!(dump.lines().next().unwrap().contains("flight recorder"), "{dump}");
        // The tail minus its header note is a verifiable trace fragment.
        let events = nbc_obs::analyze::parse_jsonl(&dump).unwrap();
        assert!(!events.is_empty());
        let _ = std::fs::remove_file(&bad);
    }

    #[test]
    fn simulate_json_with_metrics_nests_both() {
        let p = resolve_protocol("3pc", 3).unwrap();
        let a = retained(&p);
        let opts = SimOpts { json: true, metrics: true, ..SimOpts::default() };
        let out = cmd_simulate(&p, &a, &opts).unwrap();
        let v = nbc_obs::json::parse(out.trim()).unwrap();
        assert!(v.get("report").is_some(), "{out}");
        assert!(v.get("metrics").is_some(), "{out}");
        assert_eq!(
            v.get("report").and_then(|r| r.get("decision")).and_then(|d| d.as_bool()),
            Some(true),
            "{out}"
        );
    }

    #[test]
    fn arg_parsers() {
        assert_eq!(parse_crash_arg("0:3:1").unwrap(), (0, 3, Some(1)));
        assert_eq!(parse_crash_arg("2:1:log").unwrap(), (2, 1, None));
        assert!(parse_crash_arg("1:2").is_err());
        assert_eq!(parse_latency_arg("1..20").unwrap(), (1, 20));
        assert!(parse_latency_arg("9..2").is_err());
        assert!(parse_rule_arg("cooperative").is_ok());
        assert!(parse_rule_arg("yolo").is_err());
        assert!(!parse_trace_format("jsonl").unwrap());
        assert!(parse_trace_format("chrome").unwrap());
        assert!(parse_trace_format("svg").is_err());
    }
}
