//! # nbc-obs — structured observability for the execution stack
//!
//! The rest of the workspace *runs* commit protocols; this crate lets you
//! *see* a run. It is a dependency-free tracing and metrics layer with
//! three design rules:
//!
//! * **Typed events, keyed to paper concepts.** Every [`Event`] carries
//!   simulation [`Event::time`], the acting site, the transaction id, and
//!   an [`EventKind`] drawn from the taxonomy of Skeen's SIGMOD 1981 paper
//!   and its companions: local state transitions (`q_i → w_i`), message
//!   send/deliver/drop, votes, decisions, crashes and recoveries,
//!   backup-election rounds, WAL appends/fsyncs/compactions, and scheduler
//!   admission events. Gray & Lamport's *Consensus on Transaction Commit*
//!   compares commit protocols by messages, delays, and stable writes per
//!   transaction — exactly the counts this taxonomy makes recoverable.
//!
//! * **Zero overhead when disabled.** A [`Tracer`] is either off (a
//!   `None`, one branch per call-site) or holds a list of [`Sink`]s.
//!   [`Tracer::emit`] takes a closure, so the event — and every string in
//!   it — is only constructed when a sink is attached.
//!
//! * **Deterministic output.** Events are stamped with simulation time,
//!   never wall-clock time, and sinks record them in emission order. The
//!   same protocol, seed, and configuration produce a byte-identical
//!   [`export::to_jsonl`] log at any analysis thread count.
//!
//! Exporters: [`export::to_jsonl`] (one JSON object per line),
//! [`export::to_chrome`] (Chrome trace-event format — load the file in
//! Perfetto or `chrome://tracing` to see the run as a timeline), and the
//! [`Metrics`] registry's stdout table (decision latency per site,
//! messages and stable writes per transaction, WAL traffic, election
//! rounds).
//!
//! The crate also has a **read side**: [`analyze`] parses JSONL traces
//! back into typed events, reconstructs happens-before with Lamport
//! clocks ([`CausalTrace`]), audits the engine's invariants offline
//! ([`analyze::verify`]), and derives decision-latency percentiles and
//! time-series curves ([`analyze::stats`]). A [`FlightRecorder`] — a
//! bounded overwrite-oldest ring sink — retains the causal tail of any
//! run so failures can dump their last moments for that analysis.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analyze;
pub mod event;
pub mod export;
pub mod json;
pub mod metrics;
pub mod progress;
pub mod recorder;
pub mod sink;

pub use analyze::{CausalTrace, TraceReport, TraceStats};
pub use event::{Event, EventKind};
pub use metrics::{Histogram, Metrics, TxnStats};
pub use recorder::FlightRecorder;
pub use sink::{LinesSink, MemorySink, SharedSink, Sink, Tracer};
