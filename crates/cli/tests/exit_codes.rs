//! `nbc check` exit-status contract, tested against the real binary:
//! 0 = every oracle passed, 1 = an oracle reported a violation, 2 = usage
//! or protocol error. CI gates on these codes, so they are part of the
//! tool's interface, not a rendering detail.

use std::process::Command;

fn nbc(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_nbc")).args(args).output().expect("run nbc binary")
}

#[test]
fn check_pass_exits_zero() {
    let out = nbc(&["check", "central-3pc", "-n", "2"]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("verdict: OK"), "{stdout}");
}

#[test]
fn check_blocking_confirmation_is_a_pass() {
    // A blocking protocol whose exploration *confirms* the theorem's
    // BLOCKING classification passes all oracles — the witness is the
    // expected answer, not a failure.
    let out = nbc(&["check", "central-2pc", "-n", "2"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("blocking confirmed"), "{stdout}");
}

#[test]
fn check_oracle_violation_exits_one() {
    // The deliberately unsafe naive concurrency-set rule loses atomicity
    // under two crashes: a known-FAIL spec.
    let out = nbc(&["check", "central-3pc", "-n", "3", "--rule", "naive", "--faults", "2"]);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("verdict: FAIL"), "{stdout}");
    assert!(stdout.contains("FAILURE [consistency]"), "{stdout}");
}

#[test]
fn check_json_failure_also_exits_one() {
    let out =
        nbc(&["check", "central-3pc", "-n", "3", "--rule", "naive", "--faults", "2", "--json"]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"ok\":false"), "{stdout}");
}

#[test]
fn check_usage_error_exits_two() {
    for args in [
        &["check", "no-such-protocol"][..],
        &["check", "central-2pc", "--bogus-flag"][..],
        &["check"][..],
    ] {
        let out = nbc(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
    }
}

#[test]
fn non_check_commands_keep_their_exit_codes() {
    assert_eq!(nbc(&["list"]).status.code(), Some(0));
    assert_eq!(nbc(&["frobnicate"]).status.code(), Some(2));
}
