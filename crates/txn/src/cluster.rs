//! A multi-site transactional cluster driving the commit engine.
//!
//! Each site owns a key-value store, a persistent WAL, and a lock manager.
//! A distributed transaction stages its writes under strict 2PL (wait-die
//! kills younger conflicters → organic no votes), then runs one commit
//! round through `nbc-engine` under the configured protocol, optionally
//! with injected crashes.
//!
//! Crashes are transient per round: a site that "crashed" during a round
//! reboots immediately but has *missed* the decision — its committed state
//! is stale until [`Cluster::recover_all`] replays the WAL (the local
//! recovery protocol). A **blocked** round (2PC's fate when the
//! coordinator dies in the window) keeps its locks, poisoning later
//! transactions that touch the same keys — the mechanism by which blocking
//! destroys throughput.

use std::collections::BTreeMap;

use nbc_core::protocols::{central_2pc, central_3pc, decentralized_2pc, decentralized_3pc};
use nbc_core::{Analysis, Protocol};
use nbc_engine::{run_with, CrashSpec, RunConfig, TerminationRule};
use nbc_simnet::LatencyModel;
use nbc_storage::{KvStore, LogRecord, Wal};

use crate::locks::{LockManager, LockMode, LockOutcome};
use crate::workload::{BankWorkload, InventoryWorkload, Op};

/// Which commit protocol the cluster runs.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ProtocolKind {
    /// Central-site two-phase commit (blocking).
    Central2pc,
    /// Central-site three-phase commit (nonblocking).
    Central3pc,
    /// Decentralized two-phase commit (blocking).
    Decentralized2pc,
    /// Decentralized three-phase commit (nonblocking).
    Decentralized3pc,
    /// Paxos Commit with `2f + 1` acceptor sites riding on top of the
    /// data sites. The data sites are the protocol's participants; the
    /// acceptors carry no keys, locks, or WAL — they exist only inside
    /// the commit round.
    Paxos {
        /// Tolerated acceptor crashes.
        f: usize,
    },
}

impl ProtocolKind {
    /// Instantiate the protocol for `n` sites.
    pub fn build(self, n: usize) -> Protocol {
        match self {
            Self::Central2pc => central_2pc(n),
            Self::Central3pc => central_3pc(n),
            Self::Decentralized2pc => decentralized_2pc(n),
            Self::Decentralized3pc => decentralized_3pc(n),
            Self::Paxos { f } => nbc_paxos::paxos_commit(n, f),
        }
    }

    /// The termination rule a deployment of this protocol would use:
    /// cooperative termination for the blocking protocols, the paper's
    /// rule for the nonblocking ones. Paxos Commit participants behave
    /// like 2PC slaves, so they terminate cooperatively.
    pub fn rule(self) -> TerminationRule {
        match self {
            Self::Central2pc | Self::Decentralized2pc | Self::Paxos { .. } => {
                TerminationRule::Cooperative
            }
            Self::Central3pc | Self::Decentralized3pc => TerminationRule::Skeen,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Central2pc => "central 2PC",
            Self::Central3pc => "central 3PC",
            Self::Decentralized2pc => "decentralized 2PC",
            Self::Decentralized3pc => "decentralized 3PC",
            Self::Paxos { .. } => "paxos commit",
        }
    }
}

/// Cluster configuration.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of sites.
    pub n_sites: usize,
    /// Commit protocol.
    pub kind: ProtocolKind,
    /// Network latency per message.
    pub latency: u64,
    /// Failure detection delay.
    pub detect_delay: u64,
}

impl ClusterConfig {
    /// Defaults: latency 1, detection delay 5.
    pub fn new(n_sites: usize, kind: ProtocolKind) -> Self {
        Self { n_sites, kind, latency: 1, detect_delay: 5 }
    }
}

/// Outcome of one distributed transaction.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum TxnResult {
    /// Committed everywhere (stale crashed sites catch up on recovery).
    Committed,
    /// Aborted (vote no, or injected failure before the decision).
    Aborted,
    /// The commit round blocked; locks are still held.
    Blocked,
}

/// Aggregate cluster statistics.
#[derive(Clone, Debug, Default)]
pub struct ClusterStats {
    /// Transactions committed.
    pub committed: u64,
    /// Transactions aborted.
    pub aborted: u64,
    /// Transactions blocked (locks still held).
    pub blocked: u64,
    /// Total messages across all commit rounds.
    pub messages: u64,
    /// Total simulated time across all commit rounds.
    pub sim_time: u64,
}

/// The cluster.
pub struct Cluster {
    cfg: ClusterConfig,
    protocol: Protocol,
    analysis: Analysis,
    stores: Vec<KvStore>,
    wals: Vec<Wal>,
    locks: Vec<LockManager>,
    next_txn: u64,
    /// Global decision ledger: what actually happened to each transaction
    /// (including decisions durable only at crashed sites).
    ledger: BTreeMap<u64, bool>,
    /// Per-site transactions whose decision the site missed (crashed
    /// during the round).
    missed: Vec<Vec<u64>>,
    /// Blocked transactions (locks held).
    blocked_txns: Vec<u64>,
    /// Statistics.
    pub stats: ClusterStats,
}

impl Cluster {
    /// Create a cluster.
    pub fn new(cfg: ClusterConfig) -> Self {
        let protocol = cfg.kind.build(cfg.n_sites);
        let analysis = Analysis::build(&protocol).expect("catalog protocols analyzable");
        let n = cfg.n_sites;
        Self {
            cfg,
            protocol,
            analysis,
            stores: vec![KvStore::new(); n],
            wals: vec![Wal::new(); n],
            locks: vec![LockManager::new(); n],
            next_txn: 1,
            ledger: BTreeMap::new(),
            missed: vec![Vec::new(); n],
            blocked_txns: Vec::new(),
            stats: ClusterStats::default(),
        }
    }

    /// Number of sites.
    pub fn n_sites(&self) -> usize {
        self.cfg.n_sites
    }

    /// Committed value of `key` at `site`.
    pub fn get(&self, site: usize, key: &[u8]) -> Option<&[u8]> {
        self.stores[site].get(key)
    }

    /// Execute a transaction with no injected failures.
    pub fn execute(&mut self, ops: &[Op]) -> TxnResult {
        self.execute_with_crashes(ops, &[])
    }

    /// Bring every site that missed a decision back up to date before it
    /// serves another transaction: the quick-reboot recovery path (the
    /// site asks the survivors — modeled by the ledger — and redoes the
    /// missed transaction from its own WAL images).
    pub(crate) fn catch_up(&mut self) {
        for site in 0..self.cfg.n_sites {
            let mut still_missing = Vec::new();
            for txn in std::mem::take(&mut self.missed[site]) {
                match self.ledger.get(&txn).copied() {
                    Some(commit) => {
                        self.wals[site]
                            .append_sync(&LogRecord::Decision { txn, commit })
                            .expect("wal record fits");
                        self.wals[site].append(&LogRecord::End { txn }).expect("wal record fits");
                        if commit {
                            let records = Wal::recover(&self.wals[site].full_image())
                                .expect("cluster WALs are well-formed");
                            self.stores[site].redo_one(&records, txn);
                        }
                    }
                    None => still_missing.push(txn),
                }
            }
            self.missed[site] = still_missing;
        }
    }

    /// Execute a transaction, injecting `crashes` into its commit round.
    pub fn execute_with_crashes(&mut self, ops: &[Op], crashes: &[CrashSpec]) -> TxnResult {
        self.catch_up();
        let txn = self.next_txn;
        self.next_txn += 1;
        let n = self.cfg.n_sites;
        let mut votes = vec![true; n];
        let mut touched = vec![false; n];

        // Acquire locks and stage writes. A conflict (`Die`, or `Wait` on a
        // holder that will never release because it is blocked) makes the
        // site vote no.
        for op in ops {
            let site = op.site();
            assert!(site < n, "op addresses site {site} of {n}");
            touched[site] = true;
            if !votes[site] {
                continue; // site already doomed
            }
            match op {
                Op::Read { key, .. } => {
                    if self.locks[site].request(txn, key, LockMode::Shared) != LockOutcome::Granted
                    {
                        votes[site] = false;
                    }
                }
                Op::Write { key, value, .. } => {
                    if self.locks[site].request(txn, key, LockMode::Exclusive)
                        == LockOutcome::Granted
                    {
                        self.stores[site].stage_put(txn, key.clone(), value.clone());
                    } else {
                        votes[site] = false;
                    }
                }
            }
        }

        // Write-ahead: Begin + redo images, durable before the vote.
        for (site, touched_here) in touched.iter().enumerate() {
            if *touched_here {
                self.wals[site].append(&LogRecord::Begin { txn }).expect("wal record fits");
                let store = &self.stores[site];
                store.log_stage(txn, &mut self.wals[site]);
                self.wals[site].sync();
            }
        }

        // Run the commit round. Quorum protocols bring extra acceptor
        // sites along; they carry no data and always "vote" yes.
        let mut rc = RunConfig::happy(self.protocol.n_sites());
        rc.votes[..n].copy_from_slice(&votes);
        rc.crashes = crashes.to_vec();
        rc.rule = self.cfg.kind.rule();
        rc.latency = LatencyModel::constant(self.cfg.latency);
        rc.detect_delay = self.cfg.detect_delay;
        let report = run_with(&self.protocol, &self.analysis, rc);
        self.stats.messages += report.msgs_sent;
        self.stats.sim_time += report.finished_at;
        assert!(report.consistent, "txn {txn}: commit round violated atomicity: {report}");

        // `RunReport::decision()` is the omniscient auditor's view — it
        // reports a decision durable only in a crashed site's log even
        // when every survivor is blocked. The cluster must act on what the
        // *operational* sites know.
        let blocked = report.any_blocked || !report.all_operational_decided;
        match (blocked, report.decision()) {
            (false, Some(commit)) => {
                self.ledger.insert(txn, commit);
                for (site, touched_here) in touched.iter().enumerate() {
                    let op_outcome = report.outcomes[site];
                    if op_outcome.operational() {
                        self.apply_decision(site, txn, commit);
                    } else if *touched_here {
                        // Crashed during the round: volatile stage lost;
                        // the WAL's redo images remain for recovery.
                        self.stores[site].abort(txn);
                        self.locks[site].release_all(txn);
                        self.missed[site].push(txn);
                    } else {
                        self.locks[site].release_all(txn);
                    }
                }
                if commit {
                    self.stats.committed += 1;
                    TxnResult::Committed
                } else {
                    self.stats.aborted += 1;
                    TxnResult::Aborted
                }
            }
            _ => {
                // Blocked: record a durable decision if one exists only at
                // a crashed site (the survivors don't know it — that is
                // the point of blocking — but the ledger is the omniscient
                // auditor's view, consulted at recovery).
                for o in &report.outcomes {
                    if let Some(commit) = o.decision() {
                        self.ledger.insert(txn, commit);
                    }
                }
                self.blocked_txns.push(txn);
                self.stats.blocked += 1;
                TxnResult::Blocked
            }
        }
    }

    fn apply_decision(&mut self, site: usize, txn: u64, commit: bool) {
        self.wals[site].append_sync(&LogRecord::Decision { txn, commit }).expect("wal record fits");
        if commit {
            self.stores[site].commit(txn);
        } else {
            self.stores[site].abort(txn);
        }
        self.wals[site].append(&LogRecord::End { txn }).expect("wal record fits");
        self.locks[site].release_all(txn);
    }

    /// Resolve every blocked transaction and replay missed decisions at
    /// every site — the cluster-wide recovery protocol. Blocked
    /// transactions whose outcome is durable at a crashed site adopt it;
    /// those whose coordinator died undecided abort (the recovered
    /// coordinator aborts a transaction it never decided).
    pub fn recover_all(&mut self) {
        // Resolve blocked transactions.
        let blocked = std::mem::take(&mut self.blocked_txns);
        for txn in blocked {
            let commit = self.ledger.get(&txn).copied().unwrap_or(false);
            self.ledger.insert(txn, commit);
            for site in 0..self.cfg.n_sites {
                self.apply_decision(site, txn, commit);
            }
        }
        // Replay missed decisions from the WAL redo images.
        for site in 0..self.cfg.n_sites {
            let missed = std::mem::take(&mut self.missed[site]);
            for txn in missed {
                let commit = *self.ledger.get(&txn).expect("missed txn was decided");
                self.wals[site]
                    .append_sync(&LogRecord::Decision { txn, commit })
                    .expect("wal record fits");
                self.wals[site].append(&LogRecord::End { txn }).expect("wal record fits");
            }
            // Rebuild the store from the durable log: the real recovery
            // path, exercising WAL decode + redo.
            let records =
                Wal::recover(&self.wals[site].full_image()).expect("cluster WALs are well-formed");
            let rebuilt = KvStore::redo_from_log(&records);
            // Staged-but-undecided data of future transactions does not
            // exist at this point (recover_all resolves everything), so
            // the rebuilt store is authoritative.
            self.stores[site] = rebuilt;
        }
    }

    /// Compact every site's WAL into a single checkpoint record. Requires
    /// quiescence: no blocked transactions and no missed decisions (call
    /// [`Cluster::recover_all`] first if in doubt).
    ///
    /// # Panics
    /// Panics if transactions are still unresolved.
    pub fn checkpoint(&mut self) {
        assert!(self.blocked_txns.is_empty(), "checkpoint requires no blocked transactions");
        assert!(self.missed.iter().all(Vec::is_empty), "checkpoint requires no missed decisions");
        for site in 0..self.cfg.n_sites {
            let snapshot = self.stores[site].snapshot();
            self.wals[site].checkpoint_compact(snapshot).expect("wal record fits");
        }
    }

    /// Total bytes across all site WALs (observability for compaction).
    pub fn wal_bytes(&self) -> usize {
        self.wals.iter().map(Wal::len).sum()
    }

    /// Number of transactions currently blocked.
    pub fn blocked_count(&self) -> usize {
        self.blocked_txns.len()
    }

    /// Total keys currently locked across all sites.
    pub fn locked_keys(&self) -> usize {
        self.locks.iter().map(LockManager::locked_keys).sum()
    }

    /// Execute a bank transfer (helper around [`Cluster::execute`]).
    pub fn transfer(&mut self, w: &BankWorkload, from: usize, to: usize, amount: i64) -> TxnResult {
        self.transfer_with_crashes(w, from, to, amount, &[])
    }

    /// Bank transfer with injected crashes in its commit round.
    pub fn transfer_with_crashes(
        &mut self,
        w: &BankWorkload,
        from: usize,
        to: usize,
        amount: i64,
        crashes: &[CrashSpec],
    ) -> TxnResult {
        // Catch up before reading: a site that missed a decision must not
        // serve stale balances.
        self.catch_up();
        let (fk, tk) = (BankWorkload::key_of(from), BankWorkload::key_of(to));
        let (fs, ts) = (w.site_of(from), w.site_of(to));
        let fb = self.get(fs, &fk).map(BankWorkload::decode).unwrap_or(w.initial_balance);
        let tb = self.get(ts, &tk).map(BankWorkload::decode).unwrap_or(w.initial_balance);
        let ops = vec![
            Op::Read { site: fs, key: fk.clone() },
            Op::Read { site: ts, key: tk.clone() },
            Op::Write { site: fs, key: fk, value: BankWorkload::encode(fb - amount) },
            Op::Write { site: ts, key: tk, value: BankWorkload::encode(tb + amount) },
        ];
        self.execute_with_crashes(&ops, crashes)
    }

    /// Place an inventory order: decrement `item`'s stock, increment its
    /// ledger entry — two writes on (usually) different sites.
    pub fn place_order(
        &mut self,
        w: &InventoryWorkload,
        item: usize,
        qty: i64,
        crashes: &[CrashSpec],
    ) -> TxnResult {
        self.catch_up();
        let (sk, lk) = (InventoryWorkload::stock_key(item), InventoryWorkload::sold_key(item));
        let ss = w.site_of(item);
        let stock = self.get(ss, &sk).map(BankWorkload::decode).unwrap_or(w.initial_stock);
        let sold = self.get(0, &lk).map(BankWorkload::decode).unwrap_or(0);
        let ops = vec![
            Op::Read { site: ss, key: sk.clone() },
            Op::Read { site: 0, key: lk.clone() },
            Op::Write { site: ss, key: sk, value: BankWorkload::encode(stock - qty) },
            Op::Write { site: 0, key: lk, value: BankWorkload::encode(sold + qty) },
        ];
        self.execute_with_crashes(&ops, crashes)
    }

    /// Per-item `stock + sold` sums (each must equal the initial stock).
    pub fn inventory_totals(&self, w: &InventoryWorkload) -> Vec<i64> {
        (0..w.n_items)
            .map(|i| {
                let stock = self
                    .get(w.site_of(i), &InventoryWorkload::stock_key(i))
                    .map(BankWorkload::decode)
                    .unwrap_or(w.initial_stock);
                let sold = self
                    .get(0, &InventoryWorkload::sold_key(i))
                    .map(BankWorkload::decode)
                    .unwrap_or(0);
                stock + sold
            })
            .collect()
    }

    /// Sum of all committed account balances (conservation check). Only
    /// meaningful after [`Cluster::recover_all`] if crashes were injected.
    pub fn total_balance(&self, w: &BankWorkload) -> i64 {
        (0..w.n_accounts)
            .map(|a| {
                self.get(w.site_of(a), &BankWorkload::key_of(a))
                    .map(BankWorkload::decode)
                    .unwrap_or(w.initial_balance)
            })
            .sum()
    }
}
