//! Property-based tests over the core invariants:
//!
//! * **Atomicity under arbitrary failures** — random vote plans and crash
//!   schedules can never make a safe protocol/rule combination produce a
//!   mixed decision.
//! * **Nonblocking under arbitrary failures** — any 3PC run with at least
//!   one survivor terminates at every operational site.
//! * **WAL robustness** — arbitrary record streams roundtrip; arbitrary
//!   truncation yields a clean prefix; arbitrary single-byte corruption is
//!   detected or truncates, never fabricates records.
//! * **Buffer-state synthesis** — on randomly generated canonical commit
//!   automata, `insert_buffer_states` always produces a Lemma-satisfying
//!   automaton.
//! * **KV store model** — staged transactions against a reference model.

use proptest::prelude::*;

use nonblocking_commit::nbc_core::canonical::{
    insert_buffer_states, CanonicalFsa, CanonicalState,
};
use nonblocking_commit::nbc_core::protocols::{catalog, central_3pc, decentralized_3pc};
use nonblocking_commit::nbc_core::{Analysis, StateClass};
use nonblocking_commit::nbc_engine::{
    run_with, CrashPoint, CrashSpec, RunConfig, TerminationRule, TransitionProgress,
};
use nonblocking_commit::nbc_storage::{KvStore, LogRecord, Wal};

// ---------------------------------------------------------------------
// Engine properties
// ---------------------------------------------------------------------

fn arb_crash_spec(n_sites: usize) -> impl Strategy<Value = CrashSpec> {
    (
        0..n_sites,
        prop_oneof![
            (1u32..=4).prop_map(|o| (o, 0u8, 0u32)),
            (1u32..=4, 0u32..=4).prop_map(|(o, k)| (o, 1, k)),
            (1u64..40).prop_map(|t| (t as u32, 2, 0)),
        ],
        prop_oneof![Just(None), (50u64..300).prop_map(Some)],
    )
        .prop_map(|(site, (a, tag, b), recover_at)| CrashSpec {
            site,
            point: match tag {
                0 => CrashPoint::OnTransition {
                    ordinal: a,
                    progress: TransitionProgress::BeforeLog,
                },
                1 => CrashPoint::OnTransition {
                    ordinal: a,
                    progress: TransitionProgress::AfterMsgs(b),
                },
                _ => CrashPoint::AtTime(a as u64),
            },
            recover_at,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn atomicity_survives_random_failures(
        proto_ix in 0usize..4,
        votes in proptest::collection::vec(any::<bool>(), 3),
        crashes in proptest::collection::vec(arb_crash_spec(3), 0..3),
        rule_ix in 0usize..2,
    ) {
        let p = &catalog(3)[proto_ix];
        let analysis = Analysis::build(p).unwrap();
        let mut cfg = RunConfig::happy(3);
        cfg.votes = votes;
        cfg.crashes = crashes;
        cfg.rule = [TerminationRule::Skeen, TerminationRule::Cooperative][rule_ix];
        let r = run_with(p, &analysis, cfg);
        prop_assert!(r.consistent, "{}: {r}", p.name);
        prop_assert!(!r.truncated, "{}: event-limit hit", p.name);
    }

    #[test]
    fn three_pc_terminates_under_random_failures(
        central in any::<bool>(),
        votes in proptest::collection::vec(any::<bool>(), 3),
        crash in arb_crash_spec(3),
    ) {
        // One crash, no recovery: at least two survivors must all decide.
        let p = if central { central_3pc(3) } else { decentralized_3pc(3) };
        let analysis = Analysis::build(&p).unwrap();
        let mut cfg = RunConfig::happy(3);
        cfg.votes = votes;
        cfg.crashes = vec![CrashSpec { recover_at: None, ..crash }];
        let r = run_with(&p, &analysis, cfg);
        prop_assert!(r.consistent, "{}: {r}", p.name);
        prop_assert!(!r.any_blocked, "{}: {r}", p.name);
        prop_assert!(r.all_operational_decided, "{}: {r}", p.name);
    }
}

// ---------------------------------------------------------------------
// WAL properties
// ---------------------------------------------------------------------

fn arb_record() -> impl Strategy<Value = LogRecord> {
    prop_oneof![
        any::<u64>().prop_map(|txn| LogRecord::Begin { txn }),
        (any::<u64>(), any::<u32>(), any::<u8>())
            .prop_map(|(txn, state, class)| LogRecord::Progress { txn, state, class }),
        (any::<u64>(), any::<bool>())
            .prop_map(|(txn, commit)| LogRecord::Decision { txn, commit }),
        (any::<u64>(), any::<u8>())
            .prop_map(|(txn, class)| LogRecord::AlignedTo { txn, class }),
        (
            any::<u64>(),
            proptest::collection::vec(any::<u8>(), 0..24),
            proptest::collection::vec(any::<u8>(), 0..48)
        )
            .prop_map(|(txn, key, value)| LogRecord::Put { txn, key, value }),
        (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..24))
            .prop_map(|(txn, key)| LogRecord::Delete { txn, key }),
        any::<u64>().prop_map(|txn| LogRecord::End { txn }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn wal_roundtrips_arbitrary_records(
        records in proptest::collection::vec(arb_record(), 0..40)
    ) {
        let mut wal = Wal::new();
        for r in &records {
            wal.append(r);
        }
        wal.sync();
        let recovered = Wal::recover(&wal.crash_image()).unwrap();
        prop_assert_eq!(recovered, records);
    }

    #[test]
    fn wal_truncation_yields_clean_prefix(
        records in proptest::collection::vec(arb_record(), 1..30),
        cut in any::<proptest::sample::Index>(),
    ) {
        let mut wal = Wal::new();
        for r in &records {
            wal.append(r);
        }
        wal.sync();
        let image = wal.crash_image();
        let cut = cut.index(image.len() + 1);
        let recovered = Wal::recover(&image[..cut]).unwrap();
        prop_assert!(recovered.len() <= records.len());
        prop_assert_eq!(&records[..recovered.len()], &recovered[..]);
    }

    #[test]
    fn wal_corruption_never_fabricates(
        records in proptest::collection::vec(arb_record(), 1..20),
        byte in any::<proptest::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut wal = Wal::new();
        for r in &records {
            wal.append(r);
        }
        wal.sync();
        let mut image = wal.crash_image();
        let pos = byte.index(image.len());
        image[pos] ^= 1 << bit;
        match Wal::recover(&image) {
            // Detected corruption: fine.
            Err(_) => {}
            // Or a clean truncation: every decoded record must be a
            // *prefix* record of the original, unaltered.
            Ok(recovered) => {
                // The flipped byte lives in some record k; records before
                // k must be intact.
                prop_assert!(recovered.len() <= records.len());
                for (r, orig) in recovered.iter().zip(&records) {
                    if r != orig {
                        // The altered record must be where the flip landed
                        // and still framed correctly; CRC catching payload
                        // flips means this can only be a flipped *length*
                        // field interpreted as truncation — in which case
                        // decode stops before it. Anything else is
                        // fabrication.
                        prop_assert!(false, "fabricated record {r:?} != {orig:?}");
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Canonical synthesis property
// ---------------------------------------------------------------------

fn arb_canonical_fsa() -> impl Strategy<Value = CanonicalFsa> {
    // Layered DAG: q (layer 0), `mid` wait-ish states per layer, plus final
    // a and c. Every non-final state gets an edge forward (to a later
    // middle state or a final), and extra random edges are added.
    (1usize..4, 1usize..3, proptest::collection::vec(any::<u16>(), 8))
        .prop_map(|(layers, width, seeds)| {
            let mut states = vec![CanonicalState {
                name: "q".into(),
                class: StateClass::Initial,
                committable: false,
            }];
            for l in 0..layers {
                for w in 0..width {
                    states.push(CanonicalState {
                        name: format!("m{l}_{w}"),
                        class: StateClass::Wait,
                        committable: false,
                    });
                }
            }
            let a = states.len() as u32;
            states.push(CanonicalState {
                name: "a".into(),
                class: StateClass::Aborted,
                committable: false,
            });
            let c = states.len() as u32;
            states.push(CanonicalState {
                name: "c".into(),
                class: StateClass::Committed,
                committable: true,
            });

            let mid = |l: usize, w: usize| (1 + l * width + w) as u32;
            let mut edges = Vec::new();
            // q to every first-layer state, plus unilateral abort.
            for w in 0..width {
                edges.push((0, mid(0, w)));
            }
            edges.push((0, a));
            // Forward chain between layers; last layer to finals.
            for l in 0..layers {
                for w in 0..width {
                    let from = mid(l, w);
                    if l + 1 < layers {
                        edges.push((from, mid(l + 1, (w + 1) % width)));
                    } else {
                        edges.push((from, c));
                    }
                    // Seeded extra abort edges.
                    if seeds[(l * width + w) % seeds.len()] % 3 == 0 {
                        edges.push((from, a));
                    }
                    // Seeded shortcut straight to commit (a blocking
                    // pattern when the source is abort-adjacent).
                    if seeds[(l * width + w + 1) % seeds.len()] % 4 == 0 {
                        edges.push((from, c));
                    }
                }
            }
            CanonicalFsa::new("random canonical", states, edges, 0)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn buffer_insertion_always_yields_nonblocking(fsa in arb_canonical_fsa()) {
        let fixed = insert_buffer_states(&fsa);
        prop_assert!(
            fixed.is_nonblocking(),
            "violations: {:?}",
            fixed.lemma_violations()
        );
        // The fix never removes reachability structure: state count only
        // grows, and the commit/abort states survive.
        prop_assert!(fixed.states().len() >= fsa.states().len());
    }
}

// ---------------------------------------------------------------------
// KV store vs. reference model
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum KvOp {
    Put(u8, Vec<u8>, Vec<u8>),
    Delete(u8, Vec<u8>),
    Commit(u8),
    Abort(u8),
}

fn arb_kv_op() -> impl Strategy<Value = KvOp> {
    let key = proptest::collection::vec(any::<u8>(), 1..4);
    let val = proptest::collection::vec(any::<u8>(), 0..4);
    prop_oneof![
        (0u8..4, key.clone(), val).prop_map(|(t, k, v)| KvOp::Put(t, k, v)),
        (0u8..4, key).prop_map(|(t, k)| KvOp::Delete(t, k)),
        (0u8..4).prop_map(KvOp::Commit),
        (0u8..4).prop_map(KvOp::Abort),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn kv_store_matches_reference_model(ops in proptest::collection::vec(arb_kv_op(), 0..60)) {
        use std::collections::BTreeMap;
        let mut kv = KvStore::new();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        let mut staged: BTreeMap<u8, Vec<KvOp>> = BTreeMap::new();

        for op in ops {
            match op {
                KvOp::Put(t, ref k, ref v) => {
                    kv.stage_put(t as u64, k.clone(), v.clone());
                    staged.entry(t).or_default().push(op.clone());
                }
                KvOp::Delete(t, ref k) => {
                    kv.stage_delete(t as u64, k.clone());
                    staged.entry(t).or_default().push(op.clone());
                }
                KvOp::Commit(t) => {
                    kv.commit(t as u64);
                    for s in staged.remove(&t).unwrap_or_default() {
                        match s {
                            KvOp::Put(_, k, v) => {
                                model.insert(k, v);
                            }
                            KvOp::Delete(_, k) => {
                                model.remove(&k);
                            }
                            _ => unreachable!(),
                        }
                    }
                }
                KvOp::Abort(t) => {
                    kv.abort(t as u64);
                    staged.remove(&t);
                }
            }
        }
        let got: BTreeMap<Vec<u8>, Vec<u8>> =
            kv.iter().map(|(k, v)| (k.to_vec(), v.to_vec())).collect();
        prop_assert_eq!(got, model);
    }
}
