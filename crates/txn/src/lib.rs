//! # nbc-txn — a distributed transaction manager over the commit engine
//!
//! The paper motivates unilateral aborts with local concurrency control:
//! *"a server may not be able to commit its part of a transaction due to
//! issues of concurrency control — e.g. the resolution of a deadlock, when
//! a locking scheme is adopted."* This crate supplies that application
//! layer:
//!
//! * [`locks`] — a per-site lock manager with shared/exclusive locks and
//!   **wait-die** deadlock avoidance, so no votes arise organically;
//! * [`cluster`] — a multi-site cluster: each site holds a transactional
//!   key-value store and a persistent WAL; distributed transactions stage
//!   writes under locks and then run a commit round through `nbc-engine`
//!   with the configured protocol (2PC or 3PC, central or decentralized),
//!   optionally under injected crashes. Blocked commit rounds (2PC's
//!   curse) leave their locks held — which is exactly how blocking
//!   destroys throughput, and what the failure benchmarks measure;
//! * [`workload`] — bank-transfer and inventory workload generators with
//!   conservation invariants used by the property tests.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cluster;
pub mod locks;
pub mod workload;

pub use cluster::{Cluster, ClusterConfig, ProtocolKind, TxnResult};
pub use locks::{LockManager, LockMode, LockOutcome};
pub use workload::{BankWorkload, InventoryWorkload, Op};
