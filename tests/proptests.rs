//! Randomized property tests over the core invariants, driven by the
//! workspace's own deterministic [`SimRng`] (seeded sweeps — every case a
//! failure reports is replayable from its printed seed):
//!
//! * **Atomicity under arbitrary failures** — random vote plans and crash
//!   schedules can never make a safe protocol/rule combination produce a
//!   mixed decision.
//! * **Nonblocking under arbitrary failures** — any 3PC run with at least
//!   one survivor terminates at every operational site.
//! * **WAL robustness** — arbitrary record streams roundtrip; arbitrary
//!   truncation yields a clean prefix; arbitrary single-byte corruption is
//!   detected or truncates, never fabricates records.
//! * **Buffer-state synthesis** — on randomly generated canonical commit
//!   automata, `insert_buffer_states` always produces a Lemma-satisfying
//!   automaton.
//! * **KV store model** — staged transactions against a reference model.

use nonblocking_commit::nbc_core::canonical::{insert_buffer_states, CanonicalFsa, CanonicalState};
use nonblocking_commit::nbc_core::protocols::{catalog, central_3pc, decentralized_3pc};
use nonblocking_commit::nbc_core::{Analysis, StateClass};
use nonblocking_commit::nbc_engine::{
    run_with, CrashPoint, CrashSpec, RunConfig, TerminationRule, TransitionProgress,
};
use nonblocking_commit::nbc_simnet::SimRng;
use nonblocking_commit::nbc_storage::{KvStore, LogRecord, Wal};

// ---------------------------------------------------------------------
// Engine properties
// ---------------------------------------------------------------------

fn random_crash_spec(rng: &mut SimRng, n_sites: usize) -> CrashSpec {
    let site = rng.gen_range(0..n_sites);
    let point = match rng.gen_range(0u32..3) {
        0 => CrashPoint::OnTransition {
            ordinal: rng.gen_range(1u32..=4),
            progress: TransitionProgress::BeforeLog,
        },
        1 => CrashPoint::OnTransition {
            ordinal: rng.gen_range(1u32..=4),
            progress: TransitionProgress::AfterMsgs(rng.gen_range(0u32..=4)),
        },
        _ => CrashPoint::AtTime(rng.gen_range(1u64..40)),
    };
    let recover_at = if rng.gen_bool(0.5) { None } else { Some(rng.gen_range(50u64..300)) };
    CrashSpec { site, point, recover_at }
}

fn random_votes(rng: &mut SimRng, n: usize) -> Vec<bool> {
    (0..n).map(|_| rng.gen_bool(0.5)).collect()
}

#[test]
fn atomicity_survives_random_failures() {
    let mut rng = SimRng::seed_from_u64(0xA70);
    for case in 0..96 {
        let proto_ix = rng.gen_range(0usize..4);
        let p = &catalog(3)[proto_ix];
        let analysis = Analysis::build(p).unwrap();
        let mut cfg = RunConfig::happy(3);
        cfg.votes = random_votes(&mut rng, 3);
        cfg.crashes =
            (0..rng.gen_range(0usize..3)).map(|_| random_crash_spec(&mut rng, 3)).collect();
        cfg.rule =
            if rng.gen_bool(0.5) { TerminationRule::Skeen } else { TerminationRule::Cooperative };
        let r = run_with(p, &analysis, cfg);
        assert!(r.consistent, "case {case}, {}: {r}", p.name);
        assert!(!r.truncated, "case {case}, {}: event-limit hit", p.name);
    }
}

#[test]
fn three_pc_terminates_under_random_failures() {
    let mut rng = SimRng::seed_from_u64(0x3BC);
    for case in 0..96 {
        // One crash, no recovery: at least two survivors must all decide.
        let p = if rng.gen_bool(0.5) { central_3pc(3) } else { decentralized_3pc(3) };
        let analysis = Analysis::build(&p).unwrap();
        let mut cfg = RunConfig::happy(3);
        cfg.votes = random_votes(&mut rng, 3);
        cfg.crashes = vec![CrashSpec { recover_at: None, ..random_crash_spec(&mut rng, 3) }];
        let r = run_with(&p, &analysis, cfg);
        assert!(r.consistent, "case {case}, {}: {r}", p.name);
        assert!(!r.any_blocked, "case {case}, {}: {r}", p.name);
        assert!(r.all_operational_decided, "case {case}, {}: {r}", p.name);
    }
}

// ---------------------------------------------------------------------
// WAL properties
// ---------------------------------------------------------------------

fn random_bytes(rng: &mut SimRng, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range(0..=max_len);
    (0..len).map(|_| rng.gen_range(0u32..256) as u8).collect()
}

fn random_record(rng: &mut SimRng) -> LogRecord {
    let txn = rng.next_u64();
    match rng.gen_range(0u32..7) {
        0 => LogRecord::Begin { txn },
        1 => LogRecord::Progress {
            txn,
            state: rng.next_u64() as u32,
            class: rng.gen_range(0u32..256) as u8,
        },
        2 => LogRecord::Decision { txn, commit: rng.gen_bool(0.5) },
        3 => LogRecord::AlignedTo { txn, class: rng.gen_range(0u32..256) as u8 },
        4 => LogRecord::Put { txn, key: random_bytes(rng, 23), value: random_bytes(rng, 47) },
        5 => LogRecord::Delete { txn, key: random_bytes(rng, 23) },
        _ => LogRecord::End { txn },
    }
}

#[test]
fn wal_roundtrips_arbitrary_records() {
    let mut rng = SimRng::seed_from_u64(0x11A1);
    for _ in 0..128 {
        let records: Vec<LogRecord> =
            (0..rng.gen_range(0usize..40)).map(|_| random_record(&mut rng)).collect();
        let mut wal = Wal::new();
        for r in &records {
            wal.append(r).unwrap();
        }
        wal.sync();
        let recovered = Wal::recover(&wal.crash_image()).unwrap();
        assert_eq!(recovered, records);
    }
}

#[test]
fn wal_truncation_yields_clean_prefix() {
    let mut rng = SimRng::seed_from_u64(0x11A2);
    for _ in 0..128 {
        let records: Vec<LogRecord> =
            (0..rng.gen_range(1usize..30)).map(|_| random_record(&mut rng)).collect();
        let mut wal = Wal::new();
        for r in &records {
            wal.append(r).unwrap();
        }
        wal.sync();
        let image = wal.crash_image();
        let cut = rng.gen_range(0..=image.len());
        let recovered = Wal::recover(&image[..cut]).unwrap();
        assert!(recovered.len() <= records.len());
        assert_eq!(&records[..recovered.len()], &recovered[..]);
    }
}

#[test]
fn wal_corruption_never_fabricates() {
    let mut rng = SimRng::seed_from_u64(0x11A3);
    for _ in 0..128 {
        let records: Vec<LogRecord> =
            (0..rng.gen_range(1usize..20)).map(|_| random_record(&mut rng)).collect();
        let mut wal = Wal::new();
        for r in &records {
            wal.append(r).unwrap();
        }
        wal.sync();
        let mut image = wal.crash_image();
        let pos = rng.gen_range(0..image.len());
        image[pos] ^= 1 << rng.gen_range(0u32..8);
        match Wal::recover(&image) {
            // Detected corruption: fine.
            Err(_) => {}
            // Or a clean truncation: every decoded record must be a
            // *prefix* record of the original, unaltered. CRC catches
            // payload flips, so a surviving decode can only come from a
            // flipped *length* field interpreted as truncation — anything
            // else is fabrication.
            Ok(recovered) => {
                assert!(recovered.len() <= records.len());
                for (r, orig) in recovered.iter().zip(&records) {
                    assert_eq!(r, orig, "fabricated record");
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Canonical synthesis property
// ---------------------------------------------------------------------

fn random_canonical_fsa(rng: &mut SimRng) -> CanonicalFsa {
    // Layered DAG: q (layer 0), `width` wait-ish states per layer, plus
    // final a and c. Every non-final state gets an edge forward (to a
    // later middle state or a final), and extra random edges are added.
    let layers = rng.gen_range(1usize..4);
    let width = rng.gen_range(1usize..3);
    let seeds: Vec<u16> = (0..8).map(|_| rng.next_u64() as u16).collect();

    let mut states =
        vec![CanonicalState { name: "q".into(), class: StateClass::Initial, committable: false }];
    for l in 0..layers {
        for w in 0..width {
            states.push(CanonicalState {
                name: format!("m{l}_{w}"),
                class: StateClass::Wait,
                committable: false,
            });
        }
    }
    let a = states.len() as u32;
    states.push(CanonicalState {
        name: "a".into(),
        class: StateClass::Aborted,
        committable: false,
    });
    let c = states.len() as u32;
    states.push(CanonicalState {
        name: "c".into(),
        class: StateClass::Committed,
        committable: true,
    });

    let mid = |l: usize, w: usize| (1 + l * width + w) as u32;
    let mut edges = Vec::new();
    // q to every first-layer state, plus unilateral abort.
    for w in 0..width {
        edges.push((0, mid(0, w)));
    }
    edges.push((0, a));
    // Forward chain between layers; last layer to finals.
    for l in 0..layers {
        for w in 0..width {
            let from = mid(l, w);
            if l + 1 < layers {
                edges.push((from, mid(l + 1, (w + 1) % width)));
            } else {
                edges.push((from, c));
            }
            // Seeded extra abort edges.
            if seeds[(l * width + w) % seeds.len()].is_multiple_of(3) {
                edges.push((from, a));
            }
            // Seeded shortcut straight to commit (a blocking pattern when
            // the source is abort-adjacent).
            if seeds[(l * width + w + 1) % seeds.len()].is_multiple_of(4) {
                edges.push((from, c));
            }
        }
    }
    CanonicalFsa::new("random canonical", states, edges, 0)
}

#[test]
fn buffer_insertion_always_yields_nonblocking() {
    let mut rng = SimRng::seed_from_u64(0xBF5);
    for case in 0..256 {
        let fsa = random_canonical_fsa(&mut rng);
        let fixed = insert_buffer_states(&fsa);
        assert!(fixed.is_nonblocking(), "case {case} violations: {:?}", fixed.lemma_violations());
        // The fix never removes reachability structure: state count only
        // grows, and the commit/abort states survive.
        assert!(fixed.states().len() >= fsa.states().len());
    }
}

// ---------------------------------------------------------------------
// KV store vs. reference model
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum KvOp {
    Put(u8, Vec<u8>, Vec<u8>),
    Delete(u8, Vec<u8>),
    Commit(u8),
    Abort(u8),
}

fn random_kv_op(rng: &mut SimRng) -> KvOp {
    let t = rng.gen_range(0u32..4) as u8;
    match rng.gen_range(0u32..4) {
        0 => {
            let klen = rng.gen_range(1usize..4);
            let k = (0..klen).map(|_| rng.gen_range(0u32..256) as u8).collect();
            KvOp::Put(t, k, random_bytes(rng, 3))
        }
        1 => {
            let klen = rng.gen_range(1usize..4);
            KvOp::Delete(t, (0..klen).map(|_| rng.gen_range(0u32..256) as u8).collect())
        }
        2 => KvOp::Commit(t),
        _ => KvOp::Abort(t),
    }
}

#[test]
fn kv_store_matches_reference_model() {
    use std::collections::BTreeMap;
    let mut rng = SimRng::seed_from_u64(0x4B5);
    for _ in 0..128 {
        let ops: Vec<KvOp> =
            (0..rng.gen_range(0usize..60)).map(|_| random_kv_op(&mut rng)).collect();
        let mut kv = KvStore::new();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        let mut staged: BTreeMap<u8, Vec<KvOp>> = BTreeMap::new();

        for op in ops {
            match op {
                KvOp::Put(t, ref k, ref v) => {
                    kv.stage_put(t as u64, k.clone(), v.clone());
                    staged.entry(t).or_default().push(op.clone());
                }
                KvOp::Delete(t, ref k) => {
                    kv.stage_delete(t as u64, k.clone());
                    staged.entry(t).or_default().push(op.clone());
                }
                KvOp::Commit(t) => {
                    kv.commit(t as u64);
                    for s in staged.remove(&t).unwrap_or_default() {
                        match s {
                            KvOp::Put(_, k, v) => {
                                model.insert(k, v);
                            }
                            KvOp::Delete(_, k) => {
                                model.remove(&k);
                            }
                            _ => unreachable!(),
                        }
                    }
                }
                KvOp::Abort(t) => {
                    kv.abort(t as u64);
                    staged.remove(&t);
                }
            }
        }
        let got: BTreeMap<Vec<u8>, Vec<u8>> =
            kv.iter().map(|(k, v)| (k.to_vec(), v.to_vec())).collect();
        assert_eq!(got, model);
    }
}
