//! Message accounting, the raw data behind the message-complexity
//! experiments (how many messages 1PC/2PC/3PC exchange per transaction in
//! each paradigm).

use crate::net::SiteIx;

/// Counters for one [`Network`](crate::net::Network) instance.
#[derive(Debug, Clone)]
pub struct NetStats {
    n: usize,
    sent: u64,
    delivered: u64,
    dropped: u64,
    per_link: Vec<u64>,
}

impl NetStats {
    /// Fresh counters for `n` sites.
    pub fn new(n: usize) -> Self {
        Self { n, sent: 0, delivered: 0, dropped: 0, per_link: vec![0; n * n] }
    }

    pub(crate) fn record_send(&mut self, src: SiteIx, dst: SiteIx) {
        self.sent += 1;
        self.per_link[src * self.n + dst] += 1;
    }

    pub(crate) fn record_delivery(&mut self) {
        self.delivered += 1;
    }

    pub(crate) fn record_drop(&mut self) {
        self.dropped += 1;
    }

    pub(crate) fn undo_delivery(&mut self) {
        self.delivered -= 1;
    }

    /// Messages swallowed by a partition.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total messages sent.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Total messages delivered (popped by the driver).
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Messages sent on one link.
    pub fn link(&self, src: SiteIx, dst: SiteIx) -> u64 {
        self.per_link[src * self.n + dst]
    }

    /// Messages sent by one site (row sum).
    pub fn sent_by(&self, src: SiteIx) -> u64 {
        (0..self.n).map(|d| self.link(src, d)).sum()
    }

    /// Messages addressed to one site (column sum).
    pub fn sent_to(&self, dst: SiteIx) -> u64 {
        (0..self.n).map(|s| self.link(s, dst)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_and_column_sums() {
        let mut s = NetStats::new(3);
        s.record_send(0, 1);
        s.record_send(0, 2);
        s.record_send(1, 2);
        assert_eq!(s.sent(), 3);
        assert_eq!(s.sent_by(0), 2);
        assert_eq!(s.sent_to(2), 2);
        assert_eq!(s.link(0, 1), 1);
        assert_eq!(s.link(2, 0), 0);
    }
}
