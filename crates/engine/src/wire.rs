//! The engine's wire format: protocol messages plus the control messages
//! of the termination and recovery protocols.

use std::fmt;

use nbc_core::MsgKind;

/// Everything that travels between sites during a run.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Wire {
    /// A commit-protocol message (read/written by the site FSAs).
    Proto(MsgKind),
    /// Termination protocol, phase 1: the backup coordinator `backup`
    /// directs the receiver to make a transition to the backup's state
    /// (identified by its class code).
    AlignTo {
        /// The backup coordinator issuing the directive.
        backup: usize,
        /// Class code of the backup's state (see
        /// [`class_map`](crate::class_map)).
        class: u8,
    },
    /// Termination protocol: acknowledgement of `AlignTo`, carrying the
    /// class the acking site occupied *before* aligning (the cooperative
    /// rule's input).
    AlignAck {
        /// The backup this ack answers.
        backup: usize,
        /// The acking site's pre-alignment class code.
        reported_class: u8,
    },
    /// Termination protocol, phase 2: the decision.
    TermDecision {
        /// The backup that decided.
        backup: usize,
        /// `true` = commit.
        commit: bool,
    },
    /// Termination protocol, phase 2 (degenerate): the backup announces it
    /// cannot decide — the protocol blocks (possible only for protocols
    /// violating the fundamental nonblocking theorem).
    TermBlocked {
        /// The backup that blocked.
        backup: usize,
    },
    /// Recovery protocol: a recovering site asks what happened.
    WhatHappened,
    /// Recovery protocol: answer to `WhatHappened`.
    OutcomeIs {
        /// `Some(true)`=committed, `Some(false)`=aborted, `None`=the
        /// responder does not know (still in progress or itself blocked).
        outcome: Option<bool>,
        /// The responder's current class code (drives cooperative
        /// everyone-undecided recovery).
        class: u8,
        /// True if the responder will not reach a decision on its own:
        /// it has decided, is blocked, or is itself recovering. An
        /// *unsettled* `None` (the responder is still executing or
        /// terminating) must not count toward the everyone-undecided
        /// rule — acting on it races the in-flight termination protocol.
        settled: bool,
    },
}

impl fmt::Display for Wire {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let letter = |c: &u8| crate::class_map::decode_class(*c).letter();
        match self {
            Self::Proto(k) => write!(f, "{k}"),
            Self::AlignTo { backup, class } => {
                write!(f, "align-to({}) from backup site{backup}", letter(class))
            }
            Self::AlignAck { reported_class, .. } => {
                write!(f, "align-ack(was {})", letter(reported_class))
            }
            Self::TermDecision { commit, backup } => {
                write!(
                    f,
                    "decision({}) from site{backup}",
                    if *commit { "commit" } else { "abort" }
                )
            }
            Self::TermBlocked { backup } => write!(f, "blocked! (backup site{backup})"),
            Self::WhatHappened => write!(f, "what-happened?"),
            Self::OutcomeIs { outcome, class, settled } => match outcome {
                Some(true) => write!(f, "outcome: committed"),
                Some(false) => write!(f, "outcome: aborted"),
                None => write!(
                    f,
                    "outcome: unknown (in {}{})",
                    letter(class),
                    if *settled { ", settled" } else { "" }
                ),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_display_is_compact() {
        assert_eq!(Wire::Proto(MsgKind::YES).to_string(), "yes");
        assert_eq!(
            Wire::AlignTo { backup: 1, class: 2 }.to_string(),
            "align-to(p) from backup site1"
        );
        assert_eq!(
            Wire::TermDecision { backup: 0, commit: true }.to_string(),
            "decision(commit) from site0"
        );
        assert!(Wire::OutcomeIs { outcome: None, class: 1, settled: true }
            .to_string()
            .contains("settled"));
    }

    #[test]
    fn wire_is_comparable() {
        assert_eq!(Wire::Proto(MsgKind::YES), Wire::Proto(MsgKind::YES));
        assert_ne!(
            Wire::TermDecision { backup: 0, commit: true },
            Wire::TermDecision { backup: 0, commit: false }
        );
    }
}
