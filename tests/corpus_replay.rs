//! Regression corpus: checked-in minimal counterexample schedules.
//!
//! Each corpus file is a schedule the checker once produced (or a
//! hand-reduced variant of one), stored in the replayable JSONL form that
//! `nbc simulate --schedule` accepts. CI replays every file byte-for-byte
//! on a fresh engine and asserts the exact outcome it witnesses, so the
//! failure modes these schedules capture can never silently regress:
//!
//! * `linear-2pc-blocking.jsonl` — the chained 2PC's fundamental flaw: a
//!   head-site crash strands both survivors in wait states whose
//!   concurrency sets contain both outcomes, so neither may decide.
//! * `3pc-partition-election.jsonl` — a partition (a deliberate violation
//!   of the paper's network assumptions) masquerades as a crash: the
//!   majority side elects a backup and commits via the quorum rule while
//!   the minority coordinator, alone and short of quorum, blocks —
//!   atomicity holds, termination does not.
//! * `3pc-suspicion-livelock.jsonl` — no site ever crashes, yet 3PC under
//!   Skeen's own termination rule livelocks: one participant's imperfect
//!   detector repeatedly suspects and re-trusts the live coordinator, and
//!   every flip re-runs the election without ever completing a round. The
//!   bounded suspect/unsuspect loop here stands in for the unbounded one —
//!   each cycle adds two elections and decides nothing.
//! * `3pc-suspicion-quorum.jsonl` — the same false-suspicion partition
//!   shape under the quorum rule: the majority side elects a backup,
//!   aligns, and commits, while the minority coordinator — alive the whole
//!   run, merely suspected — falls short of quorum and blocks instead of
//!   deciding the other way. Availability is sacrificed, atomicity is not.

use nbc_check::explore::plan_config;
use nbc_check::{replay_strict, rule_from_name, Schedule};
use nbc_core::{Analysis, Protocol};
use nbc_engine::site::Mode;
use nbc_engine::Runner;

fn corpus(name: &str) -> (String, Schedule) {
    let path = format!("{}/tests/corpus/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    let schedule = Schedule::from_jsonl(&text).unwrap_or_else(|e| panic!("{path}: {e}"));
    (text, schedule)
}

fn resolve(schedule: &Schedule) -> Protocol {
    let protocol = if schedule.protocol.starts_with("linear-2pc") {
        let path = format!("{}/specs/linear-2pc.nbc", env!("CARGO_MANIFEST_DIR"));
        nbc_spec::parse(&std::fs::read_to_string(path).unwrap(), schedule.n).unwrap()
    } else {
        nbc_core::protocols::catalog(schedule.n)
            .into_iter()
            .find(|p| p.name == schedule.protocol)
            .unwrap_or_else(|| panic!("unknown corpus protocol {:?}", schedule.protocol))
    };
    assert_eq!(protocol.name, schedule.protocol, "corpus header names the resolved protocol");
    protocol
}

fn replay(schedule: &Schedule, protocol: &Protocol) -> Vec<(Mode, Option<bool>)> {
    let analysis = Analysis::build(protocol).unwrap();
    let rule = rule_from_name(&schedule.rule).expect("corpus rule parses");
    let config = plan_config(schedule.n, &schedule.votes, rule);
    let mut runner = Runner::new(protocol, &analysis, config);
    replay_strict(&mut runner, &schedule.steps)
        .unwrap_or_else(|e| panic!("{}: replay failed at {e}", schedule.protocol));
    assert!(runner.net_quiescent(), "corpus schedules must end quiescent");
    let decided: Vec<bool> = runner.sites().iter().filter_map(|s| s.outcome).collect();
    assert!(
        decided.windows(2).all(|w| w[0] == w[1]),
        "corpus replay must preserve atomicity: {decided:?}"
    );
    runner.sites().iter().map(|s| (s.mode.clone(), s.outcome)).collect()
}

#[test]
fn corpus_files_round_trip_byte_for_byte() {
    for name in [
        "linear-2pc-blocking.jsonl",
        "3pc-partition-election.jsonl",
        "3pc-suspicion-livelock.jsonl",
        "3pc-suspicion-quorum.jsonl",
    ] {
        let (text, schedule) = corpus(name);
        assert_eq!(schedule.to_jsonl(), text, "{name}: parse → serialize must be the identity");
    }
}

#[test]
fn linear_2pc_blocking_witness_replays() {
    let (_, schedule) = corpus("linear-2pc-blocking.jsonl");
    let protocol = resolve(&schedule);
    let sites = replay(&schedule, &protocol);
    assert!(matches!(sites[0].0, Mode::Down), "head site crashed");
    assert!(
        sites.iter().any(|(m, _)| matches!(m, Mode::Blocked)),
        "a survivor must be blocked: {sites:?}"
    );
    assert!(
        sites.iter().all(|(_, outcome)| outcome.is_none()),
        "no site may decide in the blocking witness: {sites:?}"
    );
}

#[test]
fn false_suspicion_livelock_churns_elections_without_deciding() {
    let (_, schedule) = corpus("3pc-suspicion-livelock.jsonl");
    let protocol = resolve(&schedule);
    let analysis = Analysis::build(&protocol).unwrap();
    let rule = rule_from_name(&schedule.rule).unwrap();
    let config = plan_config(schedule.n, &schedule.votes, rule);
    let mut runner = Runner::new(&protocol, &analysis, config);
    replay_strict(&mut runner, &schedule.steps).unwrap_or_else(|e| panic!("replay failed at {e}"));
    assert!(runner.net_quiescent(), "livelock witness must end quiescent");
    let report = runner.report();
    // The loop's signature: every flip of site2's detector re-ran the
    // election (initial suspicion + three unsuspect/suspect cycles), and
    // none of those seven rounds produced a decision anywhere.
    assert_eq!(report.elections, 7, "each suspicion flip must re-run the election");
    assert!(runner.sites().iter().all(|s| s.is_up()), "no site ever crashed");
    assert!(
        runner.sites().iter().all(|s| s.outcome.is_none()),
        "livelock decides nothing: {:?}",
        report.outcomes
    );
    assert!(
        matches!(runner.sites()[2].mode, Mode::Terminating { .. }),
        "the flip-flopping site is stuck mid-termination: {:?}",
        runner.sites()[2].mode
    );
}

#[test]
fn false_suspicion_under_quorum_commits_majority_blocks_suspected_minority() {
    let (_, schedule) = corpus("3pc-suspicion-quorum.jsonl");
    let protocol = resolve(&schedule);
    let sites = replay(&schedule, &protocol);
    // Site 0 is alive and merely suspected; short of quorum it must block
    // rather than decide against the majority.
    assert!(
        matches!(sites[0].0, Mode::Blocked),
        "suspected-but-alive coordinator must block: {sites:?}"
    );
    assert_eq!(sites[0].1, None);
    for i in [1, 2] {
        assert!(matches!(sites[i].0, Mode::Done), "majority site {i} terminates: {sites:?}");
        assert_eq!(sites[i].1, Some(true), "majority commits via elected backup");
    }
}

#[test]
fn partition_election_commits_majority_blocks_minority() {
    let (_, schedule) = corpus("3pc-partition-election.jsonl");
    let protocol = resolve(&schedule);
    let sites = replay(&schedule, &protocol);
    assert!(
        matches!(sites[0].0, Mode::Blocked),
        "minority coordinator must block under quorum: {sites:?}"
    );
    assert_eq!(sites[0].1, None);
    for i in [1, 2] {
        assert!(matches!(sites[i].0, Mode::Done), "majority site {i} terminates: {sites:?}");
        assert_eq!(sites[i].1, Some(true), "majority commits via elected backup");
    }
}
