//! Pipeline transaction descriptions: operations, per-round crash
//! schedules, and the bank-transfer workload generator used by the CLI,
//! the benches, and the property tests.

use nbc_engine::{CrashPoint, CrashSpec, TransitionProgress};
use nbc_simnet::SimRng;
use nbc_txn::{BankWorkload, Op};

/// One data operation of a pipelined transaction.
///
/// [`PipeOp::AddI64`] is the read-modify-write primitive the concurrent
/// scheduler needs: under overlap the value a transfer writes depends on
/// what committed before it, so the delta is resolved against the
/// committed (plus own-staged) state *at admission*, after the exclusive
/// lock is granted — two-phase locking makes that serializable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PipeOp {
    /// Read `key` at `site` (shared lock).
    Read {
        /// Site holding the key.
        site: usize,
        /// Key bytes.
        key: Vec<u8>,
    },
    /// Write `key = value` at `site` (exclusive lock).
    Write {
        /// Site holding the key.
        site: usize,
        /// Key bytes.
        key: Vec<u8>,
        /// Value bytes.
        value: Vec<u8>,
    },
    /// Add `delta` to the little-endian i64 at `key` on `site`
    /// (exclusive lock; missing key reads as 0).
    AddI64 {
        /// Site holding the key.
        site: usize,
        /// Key bytes.
        key: Vec<u8>,
        /// Signed delta applied at admission time.
        delta: i64,
    },
}

impl PipeOp {
    /// The site this operation addresses.
    pub fn site(&self) -> usize {
        match self {
            Self::Read { site, .. } | Self::Write { site, .. } | Self::AddI64 { site, .. } => *site,
        }
    }

    /// The key this operation touches.
    pub fn key(&self) -> &[u8] {
        match self {
            Self::Read { key, .. } | Self::Write { key, .. } | Self::AddI64 { key, .. } => key,
        }
    }
}

impl From<&Op> for PipeOp {
    fn from(op: &Op) -> Self {
        match op {
            Op::Read { site, key } => Self::Read { site: *site, key: key.clone() },
            Op::Write { site, key, value } => {
                Self::Write { site: *site, key: key.clone(), value: value.clone() }
            }
        }
    }
}

/// One transaction submitted to the pipeline: its operations plus the
/// crash schedule injected into its commit round.
#[derive(Clone, Debug, Default)]
pub struct PipelineTxn {
    /// Data operations, executed under wait-die locking at admission.
    pub ops: Vec<PipeOp>,
    /// Crashes injected into this transaction's commit round.
    pub crashes: Vec<CrashSpec>,
}

impl PipelineTxn {
    /// A crash-free transaction.
    pub fn new(ops: Vec<PipeOp>) -> Self {
        Self { ops, crashes: Vec::new() }
    }

    /// Attach a crash schedule for this transaction's commit round.
    pub fn with_crashes(mut self, crashes: Vec<CrashSpec>) -> Self {
        self.crashes = crashes;
        self
    }

    /// Convert a cluster-style operation list.
    pub fn from_ops(ops: &[Op]) -> Self {
        Self::new(ops.iter().map(PipeOp::from).collect())
    }
}

/// Generate `count` random bank transfers as pipeline transactions, each
/// with probability `crash_pct`% of a coordinator crash partway through
/// its second transition (the same injection point as bench B4).
pub fn bank_transfer_txns(
    w: &mut BankWorkload,
    count: usize,
    crash_pct: u32,
    rng: &mut SimRng,
) -> Vec<PipelineTxn> {
    (0..count)
        .map(|_| {
            let (from, to, amount) = w.random_transfer();
            let ops = vec![
                PipeOp::AddI64 {
                    site: w.site_of(from),
                    key: BankWorkload::key_of(from),
                    delta: -amount,
                },
                PipeOp::AddI64 {
                    site: w.site_of(to),
                    key: BankWorkload::key_of(to),
                    delta: amount,
                },
            ];
            let crashes = if crash_pct > 0 && rng.gen_ratio(crash_pct, 100) {
                vec![CrashSpec {
                    site: 0,
                    point: CrashPoint::OnTransition {
                        ordinal: 2,
                        progress: TransitionProgress::AfterMsgs(rng.gen_range(0u32..=2)),
                    },
                    recover_at: None,
                }]
            } else {
                Vec::new()
            };
            PipelineTxn::new(ops).with_crashes(crashes)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_accessors() {
        let op = PipeOp::AddI64 { site: 2, key: b"k".to_vec(), delta: -5 };
        assert_eq!(op.site(), 2);
        assert_eq!(op.key(), b"k");
    }

    #[test]
    fn from_cluster_ops() {
        let ops = vec![
            Op::Read { site: 0, key: b"a".to_vec() },
            Op::Write { site: 1, key: b"b".to_vec(), value: b"v".to_vec() },
        ];
        let t = PipelineTxn::from_ops(&ops);
        assert_eq!(t.ops.len(), 2);
        assert_eq!(t.ops[1], PipeOp::Write { site: 1, key: b"b".to_vec(), value: b"v".to_vec() });
    }

    #[test]
    fn generator_shapes_transfers() {
        let mut w = BankWorkload::new(3, 12, 1_000, 9);
        let mut rng = SimRng::seed_from_u64(9);
        let txns = bank_transfer_txns(&mut w, 20, 50, &mut rng);
        assert_eq!(txns.len(), 20);
        for t in &txns {
            assert_eq!(t.ops.len(), 2);
            let deltas: i64 = t
                .ops
                .iter()
                .map(|o| match o {
                    PipeOp::AddI64 { delta, .. } => *delta,
                    _ => panic!("transfers are AddI64 pairs"),
                })
                .sum();
            assert_eq!(deltas, 0, "transfer legs must cancel");
        }
        assert!(txns.iter().any(|t| !t.crashes.is_empty()), "50% crash rate yields some");
        assert!(txns.iter().any(|t| t.crashes.is_empty()));
    }
}
