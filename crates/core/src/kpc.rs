//! The k-phase commit family — an extension ablating the paper's design
//! choice.
//!
//! The paper inserts *one* buffer state to make 2PC nonblocking. A natural
//! question is whether further buffer rounds buy anything. This module
//! generates the whole family — `k_phase_central(n, k)` is 2PC with `k−2`
//! buffer rounds (so `k = 2` is 2PC, `k = 3` is 3PC, `k = 4` is "4PC"…) —
//! and the ablation answer, verified by tests and the `x1` experiment, is
//! the paper's: **one buffer state suffices**. Every `k ≥ 3` member
//! satisfies the fundamental nonblocking theorem and tolerates `n−1`
//! failures, exactly like 3PC, while paying `2(n−1)` additional messages
//! (central) or `n²` (decentralized) per extra phase.

use crate::protocol::Protocol;
use crate::protocols::{central_2pc, decentralized_2pc};
use crate::synthesis::{buffer_once, SynthesisError};

/// Central-site k-phase commit: `k = 2` is 2PC, each further phase is a
/// buffer round.
///
/// # Panics
/// Panics if `k < 2` or `n < 2`.
pub fn k_phase_central(n: usize, k: u32) -> Result<Protocol, SynthesisError> {
    assert!(k >= 2, "commit protocols start at two phases");
    let mut p = central_2pc(n);
    for _ in 2..k {
        p = buffer_once(&p)?;
    }
    p.name = format!("central-site {k}PC (n={n})");
    Ok(p)
}

/// Decentralized k-phase commit.
///
/// # Panics
/// Panics if `k < 2` or `n < 2`.
pub fn k_phase_decentralized(n: usize, k: u32) -> Result<Protocol, SynthesisError> {
    assert!(k >= 2, "commit protocols start at two phases");
    let mut p = decentralized_2pc(n);
    for _ in 2..k {
        p = buffer_once(&p)?;
    }
    p.name = format!("decentralized {k}PC (n={n})");
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::{central_3pc, decentralized_3pc};
    use crate::{resilience, theorem};

    #[test]
    fn k2_is_2pc_and_k3_matches_3pc_shape() {
        let p2 = k_phase_central(3, 2).unwrap();
        assert_eq!(p2.phase_count(), 2);
        assert!(!theorem::check(&p2).unwrap().nonblocking());

        let p3 = k_phase_central(3, 3).unwrap();
        let hand = central_3pc(3);
        assert_eq!(p3.phase_count(), 3);
        for site in p3.sites() {
            assert_eq!(p3.fsa(site).state_count(), hand.fsa(site).state_count());
        }
        let p3d = k_phase_decentralized(3, 3).unwrap();
        let handd = decentralized_3pc(3);
        for site in p3d.sites() {
            assert_eq!(p3d.fsa(site).state_count(), handd.fsa(site).state_count());
        }
    }

    #[test]
    fn every_k_at_least_3_is_nonblocking() {
        for k in 3..=5u32 {
            for p in [k_phase_central(3, k).unwrap(), k_phase_decentralized(3, k).unwrap()] {
                p.validate_strict().unwrap_or_else(|e| panic!("{}: {e}", p.name));
                assert_eq!(p.phase_count(), k, "{}", p.name);
                let r = theorem::check(&p).unwrap();
                assert!(r.nonblocking(), "{}: {r}", p.name);
            }
        }
    }

    #[test]
    fn extra_phases_add_no_resilience() {
        // The ablation: 4PC and 5PC tolerate exactly what 3PC tolerates.
        for k in 3..=5u32 {
            let p = k_phase_central(4, k).unwrap();
            let r = resilience::resilience(&p).unwrap();
            assert_eq!(r.max_tolerated_failures, 3, "{}", p.name);
        }
    }

    #[test]
    fn buffer_states_are_distinctly_named() {
        let p4 = k_phase_central(2, 4).unwrap();
        let coord = p4.fsa(crate::SiteId(0));
        let names: Vec<&str> = coord
            .states()
            .iter()
            .filter(|s| s.class == crate::StateClass::Prepared)
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(names.len(), 2);
        assert_ne!(names[0], names[1]);
    }
}
