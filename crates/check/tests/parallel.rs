//! Thread-count invariance of the parallel explorer, and the explicit
//! work-stack's depth independence.
//!
//! The checker's determinism contract says the report — verdicts, stats,
//! and every replayable schedule in it — is a function of the protocol
//! and options alone, not of how the exploration was scheduled. These
//! tests pin that down across the full catalog at 1, 2 and 4 workers,
//! with and without a traversal seed, including a FAILing configuration
//! whose counterexample must come out byte-identical everywhere.

use nbc_check::{run_check, CheckOptions, CheckReport};
use nbc_core::kpc::k_phase_central;
use nbc_core::protocols::{central_2pc, central_3pc, decentralized_2pc, decentralized_3pc, one_pc};
use nbc_core::Protocol;
use nbc_engine::TerminationRule;
use nbc_paxos::paxos_commit;

fn check_at(protocol: &Protocol, threads: usize, seed: Option<u64>) -> CheckReport {
    run_check(protocol, CheckOptions { threads, seed, ..CheckOptions::default() }).unwrap()
}

/// Everything observable about two reports must agree: the full render
/// (which inlines witness and counterexample JSONL), the JSON summary,
/// and the schedules compared bytewise on their own.
fn assert_identical(base: &CheckReport, other: &CheckReport, what: &str) {
    assert_eq!(base.render(), other.render(), "{what}: render diverged");
    assert_eq!(base.to_json(), other.to_json(), "{what}: json diverged");
    match (&base.blocking_witness, &other.blocking_witness) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            assert_eq!(a.to_jsonl(), b.to_jsonl(), "{what}: witness JSONL diverged")
        }
        _ => panic!("{what}: witness presence diverged"),
    }
    assert_eq!(base.failures.len(), other.failures.len(), "{what}: failure count diverged");
    for (a, b) in base.failures.iter().zip(&other.failures) {
        let (ca, cb) = (a.counterexample.as_ref(), b.counterexample.as_ref());
        assert_eq!(
            ca.map(|c| c.to_jsonl()),
            cb.map(|c| c.to_jsonl()),
            "{what}: counterexample JSONL diverged"
        );
    }
}

#[test]
fn full_catalog_is_thread_count_invariant() {
    let catalog: Vec<Protocol> = vec![
        central_2pc(3),
        central_3pc(3),
        decentralized_2pc(3),
        decentralized_3pc(3),
        one_pc(3),
        paxos_commit(2, 1),
    ];
    for (i, protocol) in catalog.iter().enumerate() {
        let base = check_at(protocol, 1, None);
        assert_eq!(base.options.threads, 1);
        for threads in [2, 4] {
            let run = check_at(protocol, threads, None);
            assert_identical(&base, &run, &format!("{} at {threads} threads", protocol.name));
        }
        // A traversal seed perturbs the parallel sweep's visit order;
        // nothing observable may move (the rendered seed line aside).
        let seeded = check_at(protocol, 2, Some(0xfeed + i as u64));
        assert_eq!(base.stats.distinct_states, seeded.stats.distinct_states, "{}", protocol.name);
        assert_eq!(base.stats.actions, seeded.stats.actions, "{}", protocol.name);
        assert_eq!(base.ok(), seeded.ok(), "{}", protocol.name);
        match (&base.blocking_witness, &seeded.blocking_witness) {
            (None, None) => {}
            (Some(a), Some(b)) => assert_eq!(a.to_jsonl(), b.to_jsonl(), "{}", protocol.name),
            _ => panic!("{}: seeded witness presence diverged", protocol.name),
        }
    }
}

#[test]
fn failing_run_produces_byte_identical_counterexamples_at_any_thread_count() {
    // The deliberately unsafe naive concurrency-set rule loses atomicity
    // under two crashes: a known-FAIL configuration whose shrunk
    // counterexample must be reproduced identically however the sweep was
    // scheduled.
    let protocol = central_3pc(3);
    let opts = |threads, seed| CheckOptions {
        rule: TerminationRule::NaiveCs,
        faults: 2,
        threads,
        seed,
        ..CheckOptions::default()
    };
    let base = run_check(&protocol, opts(1, None)).unwrap();
    assert!(!base.ok(), "naive rule with two crashes must violate consistency");
    assert!(base.failures.iter().any(|f| f.oracle == "consistency"));
    assert!(
        base.failures.iter().any(|f| f.counterexample.is_some()),
        "violation must carry a replayable counterexample"
    );
    for (threads, seed) in [(2, None), (4, None), (4, Some(7))] {
        let run = run_check(&protocol, opts(threads, seed)).unwrap();
        assert!(!run.ok());
        for (a, b) in base.failures.iter().zip(&run.failures) {
            assert_eq!(a.oracle, b.oracle);
            assert_eq!(a.detail, b.detail, "threads={threads} seed={seed:?}");
            assert_eq!(
                a.counterexample.as_ref().map(|c| c.to_jsonl()),
                b.counterexample.as_ref().map(|c| c.to_jsonl()),
                "threads={threads} seed={seed:?}"
            );
        }
    }
}

#[test]
fn deep_exploration_runs_on_a_tiny_thread_stack() {
    // Regression: the explorer used to recurse once per schedule action,
    // so a --depth in the thousands was a stack overflow waiting to
    // happen. The k-phase central protocol at k=400 with no fault budget
    // is a ~1600-action serialized chain — the explicit work-stack must
    // walk it (and the canonical witness search must re-walk it) inside a
    // 256 KiB thread stack.
    let handle = std::thread::Builder::new()
        .stack_size(256 * 1024)
        .spawn(|| {
            let opts = CheckOptions {
                depth: 2400,
                faults: 0,
                vote_plan: Some(vec![true; 3]),
                ..CheckOptions::default()
            };
            run_check(&k_phase_central(3, 400).expect("kpc builds"), opts).unwrap()
        })
        .expect("spawn deep-exploration thread");
    let report = handle.join().expect("deep exploration must not overflow the stack");
    assert!(report.ok(), "{}", report.render());
    assert!(!report.stats.truncated, "must be exhaustive");
    assert!(report.stats.distinct_states > 1000, "the chain actually is deep");
}
