//! Extension experiments beyond the paper's figures.
//!
//! * **X1** — the k-phase ablation: is one buffer state really enough?
//! * **X2** — independent recovery: which durable states let a restarted
//!   site decide without asking anyone?

use nbc_core::kpc::{k_phase_central, k_phase_decentralized};
use nbc_core::protocols::{central_3pc, decentralized_3pc};
use nbc_core::recovery_analysis::classify;
use nbc_core::{resilience, theorem, Analysis};
use nbc_engine::{enumerate_crash_specs, run_with, sweep, RunConfig};

use crate::table::Table;

/// X1 — generate 2PC…5PC by repeated buffer insertion and measure what
/// each extra phase buys: nothing past k = 3. This ablates the paper's
/// design choice of a *single* buffer state.
pub fn x1_kpc_ablation() -> String {
    let n = 3usize;
    let mut t = Table::new([
        "protocol",
        "phases",
        "nonblocking?",
        "tolerated failures",
        "blocking rate (sweep)",
        "msgs/commit",
    ]);
    for k in 2..=5u32 {
        for p in [
            k_phase_central(n, k).expect("central paradigm supported"),
            k_phase_decentralized(n, k).expect("decentralized paradigm supported"),
        ] {
            let a = Analysis::build(&p).expect("analyzable");
            let verdict = theorem::check_with(&p, &a);
            let res = resilience::resilience_with(&p, &verdict);
            let specs = enumerate_crash_specs(&p, None);
            let s = sweep(&p, &a, &RunConfig::happy(n), &specs);
            assert!(s.all_consistent(), "{}: {:?}", p.name, s.inconsistent_runs);
            let happy = run_with(&p, &a, RunConfig::happy(n));
            t.row([
                p.name.clone(),
                p.phase_count().to_string(),
                if verdict.nonblocking() { "yes".into() } else { "NO".to_string() },
                res.max_tolerated_failures.to_string(),
                format!("{:.3}", s.blocking_rate()),
                happy.msgs_sent.to_string(),
            ]);
        }
    }
    format!(
        "{}\nAblation verdict: the paper's single buffer state is exactly \
         right. k = 3 already\ntolerates n−1 failures with zero blocking; \
         k = 4, 5 tolerate the same while paying\nanother message round per \
         phase. More phases buy cost, not resilience.\n",
        t.render()
    )
}

/// X2 — independent recovery classification for the catalog: where the
/// paper's "abort immediately upon recovering" rule applies, where a
/// restarted site must ask, and why.
pub fn x2_independent_recovery() -> String {
    let mut out = String::new();
    for p in [central_3pc(3), decentralized_3pc(3)] {
        let a = Analysis::build(&p).expect("analyzable");
        let mut t =
            Table::new(["site", "durable state", "recovery", "survivor decisions reachable"]);
        for row in classify(&p, &a) {
            let reach: Vec<String> =
                row.reachable_decisions.iter().map(|d| d.to_string()).collect();
            t.row([row.site.to_string(), row.state_name, row.class.to_string(), reach.join("/")]);
        }
        out.push_str(&format!("{}:\n{}\n", p.name, t.render()));
    }
    out.push_str(
        "Reading: a site that provably never cast its yes vote (initial \
         states — and the central\ncoordinator's w1, whose own vote is \
         internal and not yet cast) may abort unilaterally on\nrecovery; \
         a site that voted must ask, because the survivors' termination \
         protocol can reach\neither decision from the concurrently \
         occupiable classes.\n",
    );
    out
}

/// X3 — what the paper's network assumption buys: under a partition that
/// masquerades as site failures, 3PC's termination protocol splits the
/// decision. Reproduces the famous caveat.
pub fn x3_partition_unsafety() -> String {
    use nbc_engine::{run_with, PartitionSpec, RunConfig};
    use nbc_simnet::LatencyModel;

    let p = central_3pc(3);
    let a = Analysis::build(&p).expect("analyzable");
    let mut t = Table::new(["partition at", "coordinator", "slave 1", "slave 2", "consistent?"]);
    for at in 0..12u64 {
        let mut cfg = RunConfig::happy(3);
        cfg.latency = LatencyModel::constant(2);
        cfg.detect_delay = 2;
        cfg.partition = Some(PartitionSpec { at, groups: vec![0, 1, 1] });
        let r = run_with(&p, &a, cfg);
        t.row([
            format!("t={at}"),
            r.outcomes[0].to_string(),
            r.outcomes[1].to_string(),
            r.outcomes[2].to_string(),
            if r.consistent { "yes".into() } else { "SPLIT".to_string() },
        ]);
    }
    format!(
        "Isolating the coordinator from its slaves at time t (latency 2, detection delay 2):\n\n{}\n\
         The SPLIT rows are the window where one side has entered committable territory\n\
         (the coordinator in p1) while the other has not: each side, believing the other\n\
         crashed, terminates per the backup rule — commit on one side, abort on the other.\n\
         This violates no theorem: the paper assumes the network never fails and that\n\
         failure detection is reliable. The experiment shows that assumption is load-bearing\n\
         (and why later work — quorum-based commit — was needed for partition tolerance).\n",
        t.render()
    )
}

/// X4 — the fix the paper's reference list points at: Skeen's quorum-based
/// commit. Gating the termination decision on a strict majority closes the
/// X3 split window — the minority side blocks instead of deciding.
pub fn x4_quorum_termination() -> String {
    use nbc_engine::{run_with, PartitionSpec, RunConfig, TerminationRule};
    use nbc_simnet::LatencyModel;

    let p = central_3pc(3);
    let a = Analysis::build(&p).expect("analyzable");
    let mut t = Table::new(["partition at", "plain Skeen rule", "quorum-gated rule"]);
    for at in 0..12u64 {
        let mut base = RunConfig::happy(3);
        base.latency = LatencyModel::constant(2);
        base.detect_delay = 2;
        base.partition = Some(PartitionSpec { at, groups: vec![0, 1, 1] });

        let plain = run_with(&p, &a, base.clone());
        let mut qcfg = base.clone();
        qcfg.rule = TerminationRule::QuorumSkeen;
        let quorum = run_with(&p, &a, qcfg);

        let show = |r: &nbc_engine::RunReport| {
            if !r.consistent {
                "SPLIT".to_string()
            } else if r.any_blocked {
                format!("consistent (minority blocked, decision {:?})", r.decision())
            } else {
                format!("consistent ({:?})", r.decision())
            }
        };
        t.row([format!("t={at}"), show(&plain), show(&quorum)]);
    }
    format!(
        "{}\nShape: the quorum gate turns every SPLIT into \"minority blocks, majority\n\
         decides\" — safety under partitions bought with minority availability. The same\n\
         gate makes a lone survivor of two *real* crashes block too: the survivor cannot\n\
         distinguish a dead majority from an unreachable one. That trade is fundamental,\n\
         and it is why the paper's perfect-failure-detector assumption mattered.\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x1_shows_flat_resilience_past_three_phases() {
        let s = x1_kpc_ablation();
        assert!(s.contains("buy cost, not resilience"));
        // Every k>=3 row must be nonblocking with 2 tolerated failures.
        for line in s.lines().filter(|l| l.contains("PC (n=3)") && !l.contains("2PC")) {
            assert!(line.contains("yes"), "{line}");
        }
    }

    #[test]
    fn x3_finds_the_split_window() {
        let s = x3_partition_unsafety();
        assert!(s.contains("SPLIT"));
        assert!(s.contains("yes"));
    }

    #[test]
    fn x4_quorum_closes_split() {
        let s = x4_quorum_termination();
        assert!(s.contains("SPLIT"), "{s}");
        assert!(s.contains("minority blocked"), "{s}");
        // The quorum column must never split.
        for line in s.lines().filter(|l| l.starts_with("t=")) {
            let quorum_col = line.rsplit("  ").find(|c| !c.trim().is_empty()).unwrap();
            assert!(!quorum_col.contains("SPLIT"), "{line}");
        }
    }

    #[test]
    fn x2_lists_both_rules() {
        let s = x2_independent_recovery();
        assert!(s.contains("independent abort"));
        assert!(s.contains("must ask"));
        assert!(s.contains("independent commit"));
    }
}
