//! External-memory and truncation determinism of the checker.
//!
//! Two contracts pin the explorer's "byte-identical report" promise in
//! its two hardest corners:
//!
//! * **Spill equivalence** — a `mem_budget` small enough to force many
//!   spill rounds (and at least one k-way merge compaction) must not
//!   change a byte of the report, the JSON summary, or any replayable
//!   schedule, at any thread count.
//! * **Truncation determinism** — a `--max-states`-truncated run is
//!   redone by the serial canonical sweep, so even its counts and
//!   verdicts are identical across thread counts *and* traversal seeds.

use nbc_check::{run_check, CheckOptions, CheckReport};
use nbc_core::protocols::{central_2pc, central_3pc};

/// Everything observable about two reports must agree: the full render
/// (which inlines witness and counterexample JSONL), the JSON summary,
/// and the schedules compared bytewise on their own.
fn assert_identical(base: &CheckReport, other: &CheckReport, what: &str) {
    assert_eq!(base.render(), other.render(), "{what}: render diverged");
    assert_eq!(base.to_json(), other.to_json(), "{what}: json diverged");
    match (&base.blocking_witness, &other.blocking_witness) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            assert_eq!(a.to_jsonl(), b.to_jsonl(), "{what}: witness JSONL diverged")
        }
        _ => panic!("{what}: witness presence diverged"),
    }
    assert_eq!(base.failures.len(), other.failures.len(), "{what}: failure count diverged");
    for (a, b) in base.failures.iter().zip(&other.failures) {
        assert_eq!(
            a.counterexample.as_ref().map(|c| c.to_jsonl()),
            b.counterexample.as_ref().map(|c| c.to_jsonl()),
            "{what}: counterexample JSONL diverged"
        );
    }
}

/// The rendered report minus the `budgets:` line (the one line that
/// legitimately differs across seeds — it prints the seed).
fn render_sans_seed(r: &CheckReport) -> String {
    r.render()
        .lines()
        .filter(|l| !l.trim_start().starts_with("budgets:"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn tiny_mem_budget_is_byte_identical_to_unlimited() {
    // central 2PC n=3 holds ~4k distinct states across its 8 plans
    // (~33 KiB of hot entries per plan), so a 4 KiB budget forces many
    // spill rounds and at least one compaction — while the unlimited
    // baseline never touches disk.
    let protocol = central_2pc(3);
    let base = run_check(&protocol, CheckOptions::default()).unwrap();
    assert_eq!(base.spill.runs_written, 0, "unlimited run must not spill");
    assert!(base.blocking_witness.is_some(), "2PC must yield its blocking witness");
    for threads in [1, 2, 4] {
        let budgeted = run_check(
            &protocol,
            CheckOptions { threads, mem_budget: 4096, ..CheckOptions::default() },
        )
        .unwrap();
        assert!(
            budgeted.spill.runs_written >= 2,
            "threads={threads}: budget must force repeated spilling, got {:?}",
            budgeted.spill
        );
        assert!(
            budgeted.spill.merge_passes >= 1,
            "threads={threads}: enough runs must accumulate to compact, got {:?}",
            budgeted.spill
        );
        assert_identical(&base, &budgeted, &format!("4K budget at {threads} threads"));
    }
}

#[test]
fn truncated_runs_are_identical_across_threads_and_seeds() {
    // A per-plan cap of 500 truncates every plan of central 3PC n=3;
    // the canonical redo must make the whole report a function of
    // (protocol, options) — seeds included, which only the rendered
    // `budgets:` line may reflect.
    let protocol = central_3pc(3);
    let opts =
        |threads, seed| CheckOptions { max_states: 500, threads, seed, ..CheckOptions::default() };
    let base = run_check(&protocol, opts(1, None)).unwrap();
    assert!(base.stats.truncated, "the cap must actually truncate");
    for threads in [2, 4] {
        let run = run_check(&protocol, opts(threads, None)).unwrap();
        assert_identical(&base, &run, &format!("truncated at {threads} threads"));
    }
    for (threads, seed) in [(1, Some(0)), (2, Some(0)), (4, Some(7))] {
        let run = run_check(&protocol, opts(threads, seed)).unwrap();
        assert_eq!(
            render_sans_seed(&base),
            render_sans_seed(&run),
            "truncated render diverged at threads={threads} seed={seed:?}"
        );
        assert_eq!(base.stats.distinct_states, run.stats.distinct_states);
        assert_eq!(base.stats.actions, run.stats.actions);
        assert_eq!(base.stats.fused, run.stats.fused);
        assert_eq!(
            base.blocking_witness.as_ref().map(|w| w.to_jsonl()),
            run.blocking_witness.as_ref().map(|w| w.to_jsonl()),
            "truncated witness diverged at threads={threads} seed={seed:?}"
        );
    }
}

#[test]
fn truncated_and_budgeted_together_stay_identical() {
    // The cap redo and the spill tier interact (the redo preserves the
    // sweep's spill stats but replaces its counts); the report must not
    // notice.
    let protocol = central_3pc(3);
    let base =
        run_check(&protocol, CheckOptions { max_states: 500, ..CheckOptions::default() }).unwrap();
    let run = run_check(
        &protocol,
        CheckOptions { max_states: 500, threads: 4, mem_budget: 4096, ..CheckOptions::default() },
    )
    .unwrap();
    assert!(run.spill.runs_written >= 2, "budget must engage: {:?}", run.spill);
    assert_identical(&base, &run, "truncated + 4K budget at 4 threads");
}
