//! False suspicion as a first-class scheduler choice: the checker must
//! find — exhaustively, within a suspicion budget — the textbook boundary
//! this repo's paper trail keeps circling. Skeen's termination rule is
//! nonblocking only under *accurate* failure detection: let the explorer
//! falsely suspect live sites and it produces a replayable witness of an
//! operational site stuck in termination. The quorum rule gives up that
//! termination claim and keeps safety instead, so the same budgets must
//! pass all oracles there, and for Paxos Commit. All of it byte-identical
//! at any thread count, like every other checker verdict.

use nbc_check::explore::plan_config;
use nbc_check::{replay_strict, rule_from_name, run_check, CheckOptions, CheckReport, Step};
use nbc_core::protocols::central_3pc;
use nbc_core::Analysis;
use nbc_engine::{Runner, TerminationRule};
use nbc_paxos::paxos_commit;

/// Fast suspicion-only budget: no crashes, all-yes votes, two false
/// suspicions to play with.
fn suspicion_opts(rule: TerminationRule) -> CheckOptions {
    CheckOptions {
        rule,
        faults: 0,
        suspicions: 2,
        vote_plan: Some(vec![true; 3]),
        ..CheckOptions::default()
    }
}

#[test]
fn skeen_rule_blocks_under_false_suspicion_with_replayable_witness() {
    let protocol = central_3pc(3);
    let report = run_check(&protocol, suspicion_opts(TerminationRule::Skeen)).unwrap();
    assert!(!report.ok(), "false suspicion must break Skeen's nonblocking claim");
    let failure = report
        .failures
        .iter()
        .find(|f| f.oracle == "nonblocking")
        .expect("the violated oracle is nonblocking");
    let witness = failure.counterexample.as_ref().expect("violation carries a schedule");
    assert!(
        witness.steps.iter().any(|s| matches!(s, Step::Suspect { .. })),
        "the witness must use a suspicion step: {}",
        witness.to_jsonl()
    );

    // Replay the shrunk witness strictly on a fresh engine: it must end
    // quiescent with every site alive (the suspicion really was false)
    // and some operational site still undecided.
    let analysis = Analysis::build(&protocol).unwrap();
    let rule = rule_from_name(&witness.rule).unwrap();
    let config = plan_config(witness.n, &witness.votes, rule);
    let mut runner = Runner::new(&protocol, &analysis, config);
    replay_strict(&mut runner, &witness.steps).expect("witness replays step for step");
    assert!(runner.net_quiescent());
    assert!(runner.sites().iter().all(|s| s.is_up()), "no site ever crashed");
    assert!(
        runner.sites().iter().any(|s| s.outcome.is_none()),
        "a live site must be left undecided"
    );
}

#[test]
fn quorum_rule_passes_the_same_suspicion_budgets() {
    let report = run_check(&central_3pc(3), suspicion_opts(TerminationRule::QuorumSkeen)).unwrap();
    assert!(report.ok(), "{}", report.render());
    // The quorum rule makes no termination promise under an imperfect
    // detector, so any blocking the explorer finds is permitted — the
    // report must say so rather than claim resilience.
    assert!(!report.within_resilience, "suspicions void the quorum termination promise");
}

#[test]
fn paxos_commit_passes_with_a_suspicion_budget() {
    let opts = CheckOptions { faults: 0, suspicions: 1, ..CheckOptions::default() };
    let report = run_check(&paxos_commit(2, 1), opts).unwrap();
    assert!(report.ok(), "{}", report.render());
    assert!(!report.stats.truncated, "must be exhaustive");
}

fn assert_identical(base: &CheckReport, other: &CheckReport, what: &str) {
    assert_eq!(base.render(), other.render(), "{what}: render diverged");
    assert_eq!(base.to_json(), other.to_json(), "{what}: json diverged");
    for (a, b) in base.failures.iter().zip(&other.failures) {
        assert_eq!(
            a.counterexample.as_ref().map(|c| c.to_jsonl()),
            b.counterexample.as_ref().map(|c| c.to_jsonl()),
            "{what}: counterexample JSONL diverged"
        );
    }
}

#[test]
fn suspicion_exploration_is_thread_count_invariant() {
    let protocol = central_3pc(3);
    let opts =
        |threads, seed| CheckOptions { threads, seed, ..suspicion_opts(TerminationRule::Skeen) };
    let base = run_check(&protocol, opts(1, None)).unwrap();
    assert!(!base.ok());
    for (threads, seed) in [(2, None), (4, None), (4, Some(11))] {
        let run = run_check(&protocol, opts(threads, seed)).unwrap();
        if seed.is_none() {
            assert_identical(&base, &run, &format!("threads={threads}"));
        } else {
            // The rendered seed line differs; everything observable about
            // the exploration and its witnesses must not.
            assert_eq!(base.stats.distinct_states, run.stats.distinct_states);
            assert_eq!(base.stats.actions, run.stats.actions);
            assert_eq!(
                base.blocking_witness.as_ref().map(|w| w.to_jsonl()),
                run.blocking_witness.as_ref().map(|w| w.to_jsonl()),
                "seeded witness diverged"
            );
        }
    }
}

#[test]
fn suspicion_budget_strictly_widens_the_state_space() {
    // Digest coverage sanity: suspicion choices must actually reach new
    // states (the explorer hashes suspicion sets into its fingerprints;
    // if it did not, these counts would collapse).
    let protocol = central_3pc(3);
    let without = run_check(
        &protocol,
        CheckOptions { suspicions: 0, ..suspicion_opts(TerminationRule::Skeen) },
    )
    .unwrap();
    let with = run_check(&protocol, suspicion_opts(TerminationRule::Skeen)).unwrap();
    assert!(
        with.stats.distinct_states > without.stats.distinct_states,
        "suspicions must enlarge the explored space: {} vs {}",
        with.stats.distinct_states,
        without.stats.distinct_states
    );
}
