//! Cascading backup failures during the termination protocol, and the
//! recovery protocol: the "worst case, all of the operational sites must
//! obey the fundamental nonblocking theorem" part of the paper.

use nbc_core::protocols::{central_2pc, central_3pc, decentralized_3pc};
use nbc_core::Analysis;
use nbc_engine::{
    enumerate_crash_specs, run_with, sweep::sweep_double, CrashPoint, CrashSpec, RunConfig,
    SiteOutcome, TerminationRule, TransitionProgress,
};

#[test]
fn three_pc_double_failure_sweep_stays_consistent() {
    // Every single-crash point combined with a timed crash of every other
    // site across the interesting time window — this includes crashing the
    // backup mid-termination (after phase 1 alignments, before or after a
    // partial decision broadcast).
    for p in [central_3pc(3), decentralized_3pc(3)] {
        let a = Analysis::build(&p).unwrap();
        let specs = enumerate_crash_specs(&p, None);
        let s = sweep_double(&p, &a, &RunConfig::happy(3), &specs, 0..30u64);
        assert!(
            s.all_consistent(),
            "{}: {} inconsistent of {}: {:?}",
            p.name,
            s.inconsistent_runs.len(),
            s.total,
            &s.inconsistent_runs[..s.inconsistent_runs.len().min(5)]
        );
        // With up to two of three sites crashed, the survivor must still
        // terminate: nonblocking with respect to n-1 failures.
        assert!(
            s.nonblocking(),
            "{}: blocked={} fully_decided={}/{}",
            p.name,
            s.blocked,
            s.fully_decided,
            s.total
        );
    }
}

#[test]
fn three_pc_double_failure_with_no_voter_stays_consistent() {
    let p = central_3pc(3);
    let a = Analysis::build(&p).unwrap();
    let specs = enumerate_crash_specs(&p, None);
    for no_voter in 0..3 {
        let base = RunConfig::one_no(3, no_voter);
        let s = sweep_double(&p, &a, &base, &specs, 0..20u64);
        assert!(
            s.all_consistent(),
            "no@{no_voter}: {:?}",
            &s.inconsistent_runs[..s.inconsistent_runs.len().min(5)]
        );
    }
}

#[test]
fn blocked_two_pc_slaves_unblock_when_coordinator_recovers() {
    // The classical 2PC blocking story with a happy ending: the
    // coordinator crashes right after durably committing without telling
    // anyone; the slaves block; the coordinator recovers and answers.
    let p = central_2pc(3);
    let a = Analysis::build(&p).unwrap();
    let cfg = RunConfig::happy(3).with_rule(TerminationRule::Cooperative).with_crash(CrashSpec {
        site: 0,
        point: CrashPoint::OnTransition { ordinal: 2, progress: TransitionProgress::AfterMsgs(0) },
        recover_at: Some(200),
    });
    let r = run_with(&p, &a, cfg);
    assert!(r.consistent, "{r}");
    assert_eq!(r.decision(), Some(true), "{r}");
    assert_eq!(r.outcomes[0], SiteOutcome::Committed);
    assert_eq!(r.outcomes[1], SiteOutcome::Committed);
    assert_eq!(r.outcomes[2], SiteOutcome::Committed);
    assert!(!r.any_blocked, "blocking resolved by recovery: {r}");
}

#[test]
fn blocked_two_pc_without_recovery_stays_blocked_but_consistent() {
    let p = central_2pc(3);
    let a = Analysis::build(&p).unwrap();
    let cfg = RunConfig::happy(3).with_rule(TerminationRule::Cooperative).with_crash(CrashSpec {
        site: 0,
        point: CrashPoint::OnTransition { ordinal: 2, progress: TransitionProgress::AfterMsgs(0) },
        recover_at: None,
    });
    let r = run_with(&p, &a, cfg);
    assert!(r.consistent, "{r}");
    assert!(r.any_blocked, "{r}");
    assert_eq!(r.outcomes[1], SiteOutcome::Blocked);
    assert_eq!(r.outcomes[2], SiteOutcome::Blocked);
}

#[test]
fn recovering_slave_learns_outcome_from_survivors() {
    // A 3PC slave crashes after voting yes, while receiving the prepare.
    // The coordinator — already in p1 with unanimous yes votes — becomes
    // the backup and the class rule commits; the recovered slave asks the
    // survivors and adopts the commit.
    let p = central_3pc(3);
    let a = Analysis::build(&p).unwrap();
    let cfg = RunConfig::happy(3).with_crash(CrashSpec {
        site: 2,
        point: CrashPoint::OnTransition { ordinal: 2, progress: TransitionProgress::BeforeLog },
        recover_at: Some(100),
    });
    let r = run_with(&p, &a, cfg);
    assert!(r.consistent, "{r}");
    assert_eq!(r.decision(), Some(true), "{r}");
    assert_eq!(r.outcomes[2], SiteOutcome::Committed, "{r}");
    assert!(r.all_operational_decided, "{r}");
}

#[test]
fn recovering_slave_adopts_survivor_abort() {
    // Same crash point, but another slave votes no: the survivors abort
    // and the recovered slave adopts the abort.
    let p = central_3pc(3);
    let a = Analysis::build(&p).unwrap();
    let cfg = RunConfig::one_no(3, 1).with_crash(CrashSpec {
        site: 2,
        point: CrashPoint::OnTransition { ordinal: 2, progress: TransitionProgress::BeforeLog },
        recover_at: Some(100),
    });
    let r = run_with(&p, &a, cfg);
    assert!(r.consistent, "{r}");
    assert_eq!(r.decision(), Some(false), "{r}");
    assert_eq!(r.outcomes[2], SiteOutcome::Aborted, "{r}");
}

#[test]
fn recovered_site_that_crashed_before_voting_aborts_unilaterally() {
    let p = central_2pc(3);
    let a = Analysis::build(&p).unwrap();
    let cfg = RunConfig::happy(3).with_rule(TerminationRule::Cooperative).with_crash(CrashSpec {
        site: 1,
        point: CrashPoint::OnTransition { ordinal: 1, progress: TransitionProgress::BeforeLog },
        recover_at: Some(100),
    });
    let r = run_with(&p, &a, cfg);
    assert!(r.consistent, "{r}");
    assert_eq!(r.decision(), Some(false), "{r}");
    assert_eq!(r.outcomes[1], SiteOutcome::Aborted, "{r}");
}

#[test]
fn total_failure_recovery_reaches_a_consistent_decision() {
    // Everyone crashes mid-protocol, everyone recovers: cooperative
    // total-failure recovery decides (commit only if someone durably
    // committed; here nobody did, so abort).
    let p = central_3pc(3);
    let a = Analysis::build(&p).unwrap();
    let mut cfg = RunConfig::happy(3);
    cfg.crashes = vec![
        CrashSpec {
            site: 0,
            point: CrashPoint::OnTransition {
                ordinal: 2,
                progress: TransitionProgress::AfterMsgs(1),
            },
            recover_at: Some(100),
        },
        CrashSpec { site: 1, point: CrashPoint::AtTime(4), recover_at: Some(120) },
        CrashSpec { site: 2, point: CrashPoint::AtTime(4), recover_at: Some(140) },
    ];
    let r = run_with(&p, &a, cfg);
    assert!(r.consistent, "{r}");
    assert_eq!(r.decision(), Some(false), "{r}");
    assert!(r.all_operational_decided, "{r}");
}

#[test]
fn total_failure_after_durable_commit_recovers_to_commit() {
    // The coordinator durably commits, then everything burns down; on full
    // recovery the durable commit must win.
    let p = central_3pc(3);
    let a = Analysis::build(&p).unwrap();
    let mut cfg = RunConfig::happy(3);
    cfg.crashes = vec![
        CrashSpec {
            site: 0,
            point: CrashPoint::OnTransition {
                ordinal: 3,
                progress: TransitionProgress::AfterMsgs(0),
            },
            recover_at: Some(100),
        },
        CrashSpec { site: 1, point: CrashPoint::AtTime(6), recover_at: Some(120) },
        CrashSpec { site: 2, point: CrashPoint::AtTime(6), recover_at: Some(140) },
    ];
    let r = run_with(&p, &a, cfg);
    assert!(r.consistent, "{r}");
    assert_eq!(r.decision(), Some(true), "{r}");
    assert!(r.all_operational_decided, "{r}");
}

#[test]
fn exhaustive_single_crash_with_recovery_reintegrates_consistently() {
    // Every crash point, with the crashed site recovering later: the
    // recovered site must always adopt the survivors' decision.
    for p in [central_3pc(3), decentralized_3pc(3)] {
        let a = Analysis::build(&p).unwrap();
        let specs = enumerate_crash_specs(&p, Some(300));
        let s = nbc_engine::sweep(&p, &a, &RunConfig::happy(3), &specs);
        assert!(s.all_consistent(), "{}: {:?}", p.name, s.inconsistent_runs);
        assert!(
            s.nonblocking(),
            "{}: blocked={} fully_decided={}/{}",
            p.name,
            s.blocked,
            s.fully_decided,
            s.total
        );
    }
}

#[test]
fn fast_recovery_must_not_race_in_flight_termination() {
    // A slave crashes and restarts *before* the survivors' termination
    // protocol has decided (slow failure detection). The recovering site
    // collects inconclusive replies — it must NOT treat them as a
    // settled "nobody will ever decide" signal and abort unilaterally,
    // because the backup (in p) is about to commit.
    let p = central_3pc(3);
    let a = Analysis::build(&p).unwrap();
    let mut cfg = RunConfig::happy(3);
    cfg.detect_delay = 25; // termination starts late...
    cfg.crashes = vec![CrashSpec {
        site: 2,
        point: CrashPoint::OnTransition { ordinal: 2, progress: TransitionProgress::BeforeLog },
        recover_at: Some(6), // ...but the crashed site restarts early.
    }];
    let r = run_with(&p, &a, cfg);
    assert!(r.consistent, "{r}");
    assert!(r.all_operational_decided, "{r}");
}

#[test]
fn exhaustive_fast_recovery_sweep_stays_consistent() {
    for p in [central_3pc(3), decentralized_3pc(3)] {
        let a = Analysis::build(&p).unwrap();
        for recover_at in [3u64, 6, 10, 30] {
            let specs = enumerate_crash_specs(&p, Some(recover_at));
            let mut base = RunConfig::happy(3);
            base.detect_delay = 20;
            let s = nbc_engine::sweep(&p, &a, &base, &specs);
            assert!(
                s.all_consistent(),
                "{} recover@{recover_at}: {:?}",
                p.name,
                &s.inconsistent_runs[..s.inconsistent_runs.len().min(3)]
            );
            assert!(
                s.nonblocking(),
                "{} recover@{recover_at}: blocked={} decided={}/{}",
                p.name,
                s.blocked,
                s.fully_decided,
                s.total
            );
        }
    }
}

#[test]
fn recovered_undecided_coordinator_unblocks_2pc_by_independent_abort() {
    // The coordinator dies in w1 *without* a durable decision; the slaves
    // block. When the coordinator restarts, independent-recovery analysis
    // tells it that no commit can exist (it never cast its own yes vote),
    // so it aborts unilaterally and its answers unblock the slaves.
    let p = central_2pc(3);
    let a = Analysis::build(&p).unwrap();
    let cfg = RunConfig::happy(3).with_rule(TerminationRule::Cooperative).with_crash(CrashSpec {
        site: 0,
        point: CrashPoint::OnTransition { ordinal: 2, progress: TransitionProgress::BeforeLog },
        recover_at: Some(200),
    });
    let r = run_with(&p, &a, cfg);
    assert!(r.consistent, "{r}");
    assert_eq!(r.decision(), Some(false), "{r}");
    assert!(!r.any_blocked, "{r}");
    assert!(r.all_operational_decided, "{r}");
    assert_eq!(r.outcomes[0], SiteOutcome::Aborted);
}
