//! The discrete-event run loop: executes one distributed transaction under
//! a protocol, a vote plan, and a crash schedule, with the paper's
//! termination and recovery protocols.
//!
//! ## Execution discipline
//!
//! * **Write-ahead**: a site logs (and syncs) its `Progress` record before
//!   sending any of the transition's messages. A crash mid-transition
//!   therefore leaves either no trace (`TransitionProgress::BeforeLog`) or
//!   a durable state plus a *prefix* of the outgoing messages — the
//!   paper's non-atomic transition failure.
//! * **Freeze on failure**: when the failure detector reports a crash to a
//!   site that has not finished, the site abandons the commit protocol and
//!   enters the termination protocol (paper §"Termination Protocols").
//! * **Election**: the backup coordinator is the lowest-id site in the
//!   operational view ("any distributed election mechanism can be used");
//!   views are consistent because the perfect failure detector reports a
//!   crash to everyone with the same delay.
//! * **Two-phase backup protocol**: the backup (unless already in a final
//!   state, where phase 1 "can be omitted") directs every operational site
//!   to make a transition to its local state and awaits acknowledgements;
//!   only then does it decide and broadcast. Cascading backup failures
//!   stay consistent because alignment is durable and the decision is a
//!   function of the aligned class.
//! * **Recovery**: a restarted site resumes from its log: decided → done;
//!   crashed before voting → abort unilaterally; otherwise ask the other
//!   sites, with cooperative total-failure recovery once every site is
//!   back and none holds a decision.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use nbc_core::recovery_analysis::{classify, RecoveryClass};
use nbc_core::{Analysis, Protocol, StateClass, StateId, Vote};
use nbc_obs::{Event, EventKind, LinesSink, SharedSink, Tracer};
use nbc_simnet::{DetectorEvent, LatencyModel, NetEvent, Network, Suspicion, Time};
use nbc_storage::recovery::{summarize, TxnOutcome};
use nbc_storage::LogRecord;

use crate::config::{CrashPoint, RunConfig, TerminationRule, TransitionProgress};
use crate::decide::ClassDecisions;
use crate::report::{RunReport, SiteOutcome};
use crate::site::{Mode, SiteRt, CLIENT_SRC};
use crate::wire::Wire;

/// Transaction id used for single-transaction runs.
pub const TXN: u64 = 1;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum Timer {
    Crash(usize),
    Recover(usize),
    Partition,
}

/// One in-flight simulation.
///
/// `Clone` forks the entire run — sites, WALs, in-flight messages, timers —
/// which is how the model checker (`nbc-check`) branches an execution at a
/// nondeterministic choice point. A cloned runner shares the (reference-
/// counted) tracer sinks of its parent, so clone-heavy exploration should
/// run untraced.
#[derive(Clone)]
pub struct Runner<'a> {
    pub(crate) protocol: &'a Protocol,
    pub(crate) analysis: &'a Analysis,
    decisions: ClassDecisions,
    /// `recovery_classes[site][state]`: what a recovered site may conclude
    /// from its durable state alone (see `nbc_core::recovery_analysis`).
    recovery_classes: Vec<Vec<RecoveryClass>>,
    pub(crate) config: RunConfig,
    pub(crate) net: Network<Wire>,
    pub(crate) sites: Vec<SiteRt>,
    pub(crate) timers: BinaryHeap<Reverse<(Time, Timer)>>,
    /// Pending `OnTransition` crash points, per site.
    transition_crashes: Vec<Option<(u32, TransitionProgress, Option<Time>)>>,
    /// Recovery times for timed crashes, per site.
    pub(crate) now: Time,
    pub(crate) events: usize,
    truncated: bool,
    /// Timeout-based failure detection, replacing the network's perfect
    /// detector when the config carries an *inaccurate* [`DetectorSpec`]
    /// (accurate specs degenerate to the legacy path by construction —
    /// that equivalence is tested). With a detector, crashes, recoveries
    /// and partitions are learned by suspicion timers, never by notice.
    ///
    /// [`DetectorSpec`]: crate::config::DetectorSpec
    detector: Option<Suspicion>,
    /// Backup elections entered (termination-protocol rounds), for the
    /// run report — a counter, so it works untraced.
    elections: u64,
    /// Observability handle; every protocol action is emitted through it
    /// as a typed event (no-op when no sink is attached).
    tracer: Tracer,
    /// When `config.record_trace`, a [`LinesSink`] attached to the tracer
    /// that re-renders the human-readable trace lines for
    /// [`RunReport::trace`] in their historical format.
    legacy: Option<SharedSink<LinesSink>>,
}

impl<'a> Runner<'a> {
    /// Set up a run.
    ///
    /// # Panics
    /// Panics if `config.votes.len()` differs from the protocol's site
    /// count.
    pub fn new(protocol: &'a Protocol, analysis: &'a Analysis, config: RunConfig) -> Self {
        Self::with_tracer(protocol, analysis, config, Tracer::off())
    }

    /// As [`Runner::new`], emitting every protocol action through `tracer`
    /// as typed [`Event`]s (state transitions, votes, message traffic, WAL
    /// activity, elections, decisions, crashes). The tracer is also handed
    /// to the network, which reports partition drops through it.
    pub fn with_tracer(
        protocol: &'a Protocol,
        analysis: &'a Analysis,
        config: RunConfig,
        mut tracer: Tracer,
    ) -> Self {
        let n = protocol.n_sites();
        assert_eq!(config.votes.len(), n, "one vote per site required");
        let legacy = if config.record_trace {
            let sink = SharedSink::new(LinesSink::default());
            tracer.attach(sink.clone());
            Some(sink)
        } else {
            None
        };
        let mut net = Network::new(n, config.latency.clone(), config.detect_delay);
        net.set_tracer(tracer.clone());
        let sites =
            (0..n).map(|i| SiteRt::new(i, protocol.fsa(nbc_core::SiteId(i as u32)), n)).collect();
        let mut timers = BinaryHeap::new();
        let mut transition_crashes = vec![None; n];
        for spec in &config.crashes {
            match spec.point {
                CrashPoint::AtTime(t) => {
                    timers.push(Reverse((t, Timer::Crash(spec.site))));
                    if let Some(rt) = spec.recover_at {
                        timers.push(Reverse((rt, Timer::Recover(spec.site))));
                    }
                }
                CrashPoint::OnTransition { ordinal, progress } => {
                    transition_crashes[spec.site] = Some((ordinal, progress, spec.recover_at));
                }
            }
        }
        if let Some(p) = &config.partition {
            timers.push(Reverse((p.at, Timer::Partition)));
        }
        let decisions = ClassDecisions::build(protocol, analysis);
        let mut recovery_classes: Vec<Vec<RecoveryClass>> =
            protocol.fsas().iter().map(|f| vec![RecoveryClass::MustAsk; f.state_count()]).collect();
        for row in classify(protocol, analysis) {
            recovery_classes[row.site.index()][row.state.index()] = row.class;
        }
        let start_at = config.start_at;
        // An accurate detector (heartbeats always beat the timeout) can
        // never falsely suspect; it is behaviorally the perfect detector,
        // so use the legacy notice path verbatim — the equivalence the
        // property tests pin down byte for byte.
        let detector = config.detector.filter(|d| !d.is_accurate()).map(|d| {
            let jitter = if d.jitter.0 == d.jitter.1 {
                LatencyModel::constant(d.jitter.0)
            } else {
                LatencyModel::uniform(d.jitter.0, d.jitter.1, d.seed)
            };
            Suspicion::new(n, d.timeout, jitter, start_at)
        });
        let mut runner = Self {
            protocol,
            analysis,
            decisions,
            recovery_classes,
            config,
            net,
            sites,
            timers,
            transition_crashes,
            now: start_at,
            events: 0,
            truncated: false,
            tracer,
            legacy,
            detector,
            elections: 0,
        };
        // Seed the client stimuli and let every site take its first steps,
        // so the run is steppable from the moment it is constructed.
        for m in runner.protocol.initial_msgs() {
            let dst = m.dst.index();
            runner.sites[dst].inbox.push((CLIENT_SRC, m.kind));
        }
        for i in 0..runner.sites.len() {
            runner.pump(i);
        }
        runner
    }

    /// Execute to quiescence and report.
    pub fn run(mut self) -> RunReport {
        while self.step() {}
        self.report()
    }

    /// The time of the next pending event (network delivery, failure
    /// notice, or timer), or `None` if the run is quiescent. Never moves
    /// backwards; the multiplexer uses it to interleave concurrent runs in
    /// global time order.
    pub fn next_time(&self) -> Option<Time> {
        let net_t = self.net.peek_time();
        let det_t = self.detector_deadline();
        let timer_t = self.timers.peek().map(|Reverse((t, _))| *t);
        [net_t, det_t, timer_t].into_iter().flatten().min()
    }

    /// Next suspicion-timer deadline, when the detector still has work to
    /// do. Gated on some site being up and undecided: once every
    /// operational site holds an outcome, further suspicion cannot change
    /// anything and the run is allowed to quiesce. (A run that *never*
    /// settles — 3PC livelocked by repeated false suspicion — keeps
    /// ticking until the event safety valve truncates it: that truncation
    /// is the livelock, observed.) Clamped to `now` so a deadline the
    /// engine passed while processing same-time messages fires
    /// immediately rather than moving time backwards.
    fn detector_deadline(&self) -> Option<Time> {
        let d = self.detector.as_ref()?;
        if !self.sites.iter().any(|s| s.is_up() && s.outcome.is_none()) {
            return None;
        }
        d.next_deadline().map(|t| t.max(self.now))
    }

    /// The run's current simulation time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Process exactly one event. Returns `false` once the run is
    /// quiescent (or the event safety valve tripped).
    pub fn step(&mut self) -> bool {
        if self.events >= self.config.max_events {
            self.truncated = true;
            return false;
        }
        let net_t = self.net.peek_time();
        let det_t = self.detector_deadline();
        let timer_t = self.timers.peek().map(|Reverse((t, _))| *t);
        let Some(t) = [net_t, det_t, timer_t].into_iter().flatten().min() else {
            return false;
        };
        // Tie-breaking order: deliveries before detector checks (a message
        // arriving at the deadline is evidence of life and wins — the
        // timeout boundary), detector checks before crash/recovery timers.
        if net_t == Some(t) {
            let (t, ev) = self.net.next_event().expect("peeked");
            self.now = t;
            self.events += 1;
            self.handle_net(ev);
            return true;
        }
        if det_t == Some(t) {
            self.now = t;
            self.events += 1;
            let fired = self.detector.as_mut().expect("deadline implies a detector").poll(t);
            for e in fired {
                match e {
                    DetectorEvent::Suspect { observer, peer } => self.on_suspect(observer, peer),
                    DetectorEvent::Unsuspect { observer, peer } => {
                        self.on_unsuspect(observer, peer)
                    }
                }
            }
            return true;
        }
        let Reverse((t, timer)) = self.timers.pop().expect("peeked");
        self.now = t;
        self.events += 1;
        match timer {
            Timer::Crash(site) => self.crash_site(site),
            Timer::Recover(site) => self.recover_site(site),
            Timer::Partition => {
                let spec = self.config.partition.clone().expect("partition timer implies a spec");
                self.tracer.emit(|| {
                    self.ev(EventKind::Partition { groups: format!("{:?}", spec.groups) })
                });
                if let Some(d) = self.detector.as_mut() {
                    // Imperfect detection: no failure notices — the cut
                    // is *suspected*, at each observer's own timeout.
                    d.set_groups(self.now, Some(spec.groups.clone()));
                    self.net.partition_silent(self.now, spec.groups);
                } else {
                    self.net.partition(self.now, spec.groups);
                }
            }
        }
        true
    }

    // ------------------------------------------------------------------
    // Tracing
    // ------------------------------------------------------------------

    /// Event skeleton: current simulation time, this run's transaction.
    fn ev(&self, kind: EventKind) -> Event {
        Event::new(self.now, kind).for_txn(self.config.txn_id)
    }

    /// Send with tracing. The send event is emitted even when a partition
    /// swallows the message — the site *did* send it; the network follows
    /// up with a drop event.
    fn send(&mut self, src: usize, dst: usize, wire: Wire) {
        self.tracer.emit(|| {
            self.ev(EventKind::MsgSend { dst: dst as u32, label: wire.to_string() }).at_site(src)
        });
        self.net.send(self.now, src, dst, wire);
    }

    // ------------------------------------------------------------------
    // Normal protocol execution
    // ------------------------------------------------------------------

    /// Fire enabled transitions at `ix` until quiescent (or crash).
    fn pump(&mut self, ix: usize) {
        while self.sites[ix].mode == Mode::Normal {
            let fsa = self.protocol.fsa(nbc_core::SiteId(ix as u32));
            let vote = self.config.votes[ix];
            let Some((ti, consumed)) = self.sites[ix].choose_transition(fsa, vote) else {
                return;
            };
            let t = &fsa.transitions()[ti as usize];
            let (to, emits, vote_cast) = (t.to, t.emit.clone(), t.vote);
            let to_class = fsa.state(to).class;

            // Crash-point check: is this the transition we die in?
            self.sites[ix].transitions_attempted += 1;
            let attempted = self.sites[ix].transitions_attempted;
            if let Some((ordinal, progress, recover_at)) = self.transition_crashes[ix] {
                if ordinal == attempted {
                    self.transition_crashes[ix] = None;
                    match progress {
                        TransitionProgress::BeforeLog => {
                            // Nothing durable, nothing sent.
                        }
                        TransitionProgress::AfterMsgs(k) => {
                            self.apply_transition_state(ix, to, to_class, &consumed, vote_cast);
                            for e in emits.iter().take(k as usize) {
                                self.send(ix, e.dst.index(), Wire::Proto(e.kind));
                            }
                        }
                    }
                    if let Some(rt) = recover_at {
                        self.timers.push(Reverse((rt.max(self.now + 1), Timer::Recover(ix))));
                    }
                    self.crash_site(ix);
                    return;
                }
            }

            self.apply_transition_state(ix, to, to_class, &consumed, vote_cast);
            for e in &emits {
                self.send(ix, e.dst.index(), Wire::Proto(e.kind));
            }
            if to_class.is_final() {
                self.finish(ix, to_class == StateClass::Committed);
                return;
            }
        }
    }

    /// Consume messages, log progress, move the local state.
    fn apply_transition_state(
        &mut self,
        ix: usize,
        to: StateId,
        to_class: StateClass,
        consumed: &[(usize, nbc_core::MsgKind)],
        vote_cast: Option<Vote>,
    ) {
        for &(src, kind) in consumed {
            let taken = self.sites[ix].take_msg(src, kind);
            debug_assert!(taken, "chosen transition must be satisfiable");
        }
        let txn = self.config.txn_id;
        self.tracer.emit(|| {
            let from = self.sites[ix].state;
            let fsa = self.protocol.fsa(nbc_core::SiteId(ix as u32));
            self.ev(EventKind::Transition {
                from: fsa.state(from).name.clone(),
                to: fsa.state(to).name.clone(),
            })
            .at_site(ix)
        });
        if let Some(v) = vote_cast {
            self.tracer.emit(|| self.ev(EventKind::Vote { yes: v == Vote::Yes }).at_site(ix));
        }
        self.sites[ix].log_progress(txn, to, to_class);
        self.tracer.emit(|| {
            let rec = LogRecord::Progress {
                txn,
                state: to.0,
                class: crate::class_map::encode_class(to_class),
            };
            self.ev(EventKind::WalAppend { bytes: rec.frame_len(), record: "progress".into() })
                .at_site(ix)
        });
        self.tracer.emit(|| self.ev(EventKind::WalFsync { physical: true }).at_site(ix));
        self.sites[ix].enter_state(to);
    }

    /// Reach a final outcome at `ix` (via the protocol or a decision).
    fn finish(&mut self, ix: usize, commit: bool) {
        if self.sites[ix].outcome.is_none() {
            let txn = self.config.txn_id;
            self.sites[ix].log_decision(txn, commit);
            self.tracer.emit(|| {
                let rec = LogRecord::Decision { txn, commit };
                self.ev(EventKind::WalAppend { bytes: rec.frame_len(), record: "decision".into() })
                    .at_site(ix)
            });
            self.tracer.emit(|| self.ev(EventKind::WalFsync { physical: true }).at_site(ix));
            self.tracer.emit(|| self.ev(EventKind::Decision { commit }).at_site(ix));
        }
        self.sites[ix].mode = Mode::Done;
        self.answer_pending_queries(ix);
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    pub(crate) fn handle_net(&mut self, ev: NetEvent<Wire>) {
        match ev {
            NetEvent::Deliver { src, dst, msg } => {
                // Delivery is traced even to a down site — the network did
                // its job; the dead site just never reads the message. This
                // keeps sent == delivered + dropped at quiescence.
                self.tracer.emit(|| {
                    self.ev(EventKind::MsgDeliver { src: src as u32, label: msg.to_string() })
                        .at_site(dst)
                });
                if self.sites[dst].mode == Mode::Down {
                    return; // lost with the site
                }
                // Any delivered message is evidence of life: it renews the
                // suspicion lease, and — processed *before* the payload —
                // clears a standing false suspicion so the view is honest
                // by the time the message acts.
                if let Some(d) = self.detector.as_mut() {
                    if d.heard(self.now, dst, src) {
                        self.on_unsuspect(dst, src);
                    }
                }
                self.deliver(src, dst, msg);
            }
            NetEvent::FailureNotice { observer, crashed } => {
                if self.sites[observer].mode == Mode::Down {
                    return;
                }
                self.tracer.emit(|| {
                    self.ev(EventKind::FailureNotice { crashed: crashed as u32 }).at_site(observer)
                });
                self.on_failure_notice(observer, crashed);
            }
            NetEvent::RecoveryNotice { observer, recovered } => {
                if self.sites[observer].mode == Mode::Down {
                    return;
                }
                self.tracer.emit(|| {
                    self.ev(EventKind::RecoveryNotice { recovered: recovered as u32 })
                        .at_site(observer)
                });
                self.sites[observer].recovered_peers.insert(recovered);
                // Blocked and recovering sites probe recovered peers.
                if matches!(self.sites[observer].mode, Mode::Blocked | Mode::Recovering) {
                    self.send(observer, recovered, Wire::WhatHappened);
                }
            }
        }
    }

    fn deliver(&mut self, src: usize, dst: usize, msg: Wire) {
        match msg {
            Wire::Proto(kind) => {
                if self.sites[dst].mode == Mode::Normal {
                    self.sites[dst].inbox.push((src, kind));
                    self.pump(dst);
                }
                // Frozen (terminating/blocked/recovering/done) sites ignore
                // protocol traffic; the termination or recovery protocol
                // owns the outcome now.
            }
            Wire::AlignTo { backup, class } => self.on_align_to(dst, backup, class),
            Wire::AlignAck { backup, reported_class } => {
                if backup == dst {
                    self.on_align_ack(dst, src, reported_class);
                }
            }
            Wire::TermDecision { commit, .. } => {
                if self.sites[dst].outcome.is_none() && self.sites[dst].mode != Mode::Down {
                    self.finish(dst, commit);
                }
            }
            Wire::TermBlocked { backup } => {
                if matches!(self.sites[dst].mode, Mode::Terminating { .. })
                    && self.sites[dst].elected_backup() == backup
                {
                    self.sites[dst].mode = Mode::Blocked;
                    // A blocked site will not decide on its own: give any
                    // waiting recoverers a settled answer.
                    self.answer_pending_queries(dst);
                }
            }
            Wire::WhatHappened => self.on_what_happened(dst, src),
            Wire::OutcomeIs { outcome, class, settled } => {
                self.on_outcome_is(dst, src, outcome, class, settled)
            }
        }
    }

    // ------------------------------------------------------------------
    // Termination protocol
    // ------------------------------------------------------------------

    /// The class a site reports to the termination and recovery protocols:
    /// a decided site reports its outcome's final class even if its FSA
    /// never reached a final state (it may have adopted a `TermDecision`
    /// while frozen mid-protocol); otherwise the aligned class or the
    /// current state's class.
    fn reported_class_of(&self, ix: usize) -> u8 {
        use nbc_storage::recovery::class_codes;
        match self.sites[ix].outcome {
            Some(true) => class_codes::COMMITTED,
            Some(false) => class_codes::ABORTED,
            None => {
                let fsa = self.protocol.fsa(nbc_core::SiteId(ix as u32));
                self.sites[ix].reported_class(fsa)
            }
        }
    }

    fn on_failure_notice(&mut self, observer: usize, crashed: usize) {
        self.sites[observer].view[crashed] = false;
        self.sites[observer].recovered_peers.remove(&crashed);
        if self.protocol.quorum().is_some()
            && (self.protocol.is_acceptor(crashed) || self.protocol.is_acceptor(observer))
        {
            // Quorum-based protocol: an acceptor crash is absorbed by the
            // quorum (the leader can still assemble f+1 relays), so no one
            // abandons the commit protocol over it; and acceptors never run
            // the termination protocol themselves — when a participant
            // crashes they keep relaying and learn the outcome from the
            // participants' decision broadcast.
            return;
        }
        match self.sites[observer].mode {
            Mode::Down | Mode::Recovering => {}
            Mode::Done => {
                // A finished site elected backup propagates its outcome:
                // the paper's degenerate case where phase 1 is omitted
                // because the backup is already in a commit or abort state.
                if self.sites[observer].elected_backup() == observer {
                    let commit = self.sites[observer].outcome.expect("Done implies an outcome");
                    self.broadcast_decision(observer, commit);
                }
            }
            Mode::Normal | Mode::Terminating { .. } | Mode::Blocked => {
                self.enter_termination(observer);
            }
        }
    }

    /// `observer` now suspects `peer` has failed (imperfect detection:
    /// possibly falsely). Engine-side this is exactly a failure notice —
    /// view change, quorum absorption, termination entry — plus the
    /// revocable bookkeeping that lets an unsuspicion undo it.
    pub(crate) fn on_suspect(&mut self, observer: usize, peer: usize) {
        if observer == peer || self.sites[observer].mode == Mode::Down {
            return;
        }
        if !self.sites[observer].suspects.insert(peer) {
            return; // already suspected
        }
        self.tracer
            .emit(|| self.ev(EventKind::Suspect { suspected: peer as u32 }).at_site(observer));
        self.on_failure_notice(observer, peer);
    }

    /// `observer` clears its suspicion of `peer` — evidence of life from
    /// a heartbeat or a delivered message. The peer rejoins the
    /// operational view; a terminating or blocked observer re-runs the
    /// election over the restored view (the quorum rule is what keeps the
    /// rejoin safe — and under plain Skeen this very re-election is the
    /// livelock loop the checker witnesses).
    pub(crate) fn on_unsuspect(&mut self, observer: usize, peer: usize) {
        if observer == peer || self.sites[observer].mode == Mode::Down {
            return;
        }
        if !self.sites[observer].suspects.remove(&peer) {
            return; // not currently suspected
        }
        self.tracer
            .emit(|| self.ev(EventKind::Unsuspect { suspected: peer as u32 }).at_site(observer));
        self.sites[observer].view[peer] = true;
        // Evidence of life postdating the suspicion plays the role a
        // recovery notice plays for real crashes: a stale AlignTo must not
        // re-mark this peer dead.
        self.sites[observer].recovered_peers.insert(peer);
        // A decided site's decision broadcast skipped every peer it was
        // suspecting at that moment, so restored life doubles as a
        // missed-broadcast signal: resend the outcome. Duplicate
        // decisions are idempotent at the receiver, and a legacy run
        // never unsuspects, so this arm is dead there.
        if self.sites[observer].mode == Mode::Done {
            if let Some(commit) = self.sites[observer].outcome {
                self.send(observer, peer, Wire::TermDecision { backup: observer, commit });
            }
            return;
        }
        if self.protocol.quorum().is_some()
            && (self.protocol.is_acceptor(peer) || self.protocol.is_acceptor(observer))
        {
            // Mirror of the absorption rule in `on_failure_notice`:
            // acceptor-involved view changes never drive termination in
            // either direction.
            return;
        }
        match self.sites[observer].mode {
            Mode::Terminating { .. } | Mode::Blocked => self.enter_termination(observer),
            Mode::Recovering => self.send(observer, peer, Wire::WhatHappened),
            Mode::Down | Mode::Normal | Mode::Done => {}
        }
    }

    /// (Re)enter the termination protocol after a view change.
    fn enter_termination(&mut self, ix: usize) {
        self.elections += 1;
        let backup = self.sites[ix].elected_backup();
        self.tracer.emit(|| self.ev(EventKind::Election { backup: backup as u32 }).at_site(ix));
        self.sites[ix].mode = Mode::Terminating { backup };
        if backup == ix {
            self.start_backup(ix);
        } else if self.sites[ix].backup_state.phase1_sent {
            // This site was the backup of an earlier round; drop that role.
            self.sites[ix].backup_state = Default::default();
        }
    }

    /// Begin (or refresh) the backup role at `ix`.
    fn start_backup(&mut self, ix: usize) {
        // A backup already in a final state skips phase 1 (paper: "it can
        // be omitted if the backup coordinator is initially in a commit or
        // abort state") and simply propagates its outcome.
        if let Some(commit) = self.sites[ix].outcome {
            self.broadcast_decision(ix, commit);
            return;
        }
        let fsa = self.protocol.fsa(nbc_core::SiteId(ix as u32));
        if fsa.state(self.sites[ix].state).class.is_final() {
            let commit = fsa.state(self.sites[ix].state).class == StateClass::Committed;
            self.finish(ix, commit);
            self.broadcast_decision(ix, commit);
            return;
        }

        let peers = self.term_peers(ix);
        let my_class = self.reported_class_of(ix);
        self.sites[ix].backup_state.pending_acks = peers.iter().copied().collect();
        self.sites[ix].backup_state.collected.clear();
        self.sites[ix].backup_state.phase1_sent = true;
        if peers.is_empty() {
            self.backup_decide(ix);
            return;
        }
        for j in peers {
            self.send(ix, j, Wire::AlignTo { backup: ix, class: my_class });
        }
    }

    fn on_align_to(&mut self, ix: usize, backup: usize, class: u8) {
        match self.sites[ix].mode {
            Mode::Down | Mode::Recovering => return,
            Mode::Done => {
                let reported = self.reported_class_of(ix);
                self.send(ix, backup, Wire::AlignAck { backup, reported_class: reported });
                return;
            }
            Mode::Normal | Mode::Terminating { .. } | Mode::Blocked => {}
        }
        // A durably aligned site never re-aligns to a *different* class.
        // Under crash-stop failures every re-election aligns to the same
        // class, so this cannot trigger; under false suspicion two live
        // backups can run concurrent termination rounds whose "views" are
        // not disjoint partition groups, and a site acking contrary
        // alignments would hand each round a majority — the split-brain
        // of X4 with "down" meaning merely "slow". Ignoring the contrary
        // directive starves that round instead (its backup never
        // completes phase 1): a liveness sacrifice, never a safety one.
        if self.sites[ix].aligned_class.is_some_and(|prev| prev != class) {
            return;
        }
        // The sender elected itself backup only after observing every
        // lower-ranked site crash. Under crash-stop failures its directive
        // is therefore also evidence of those crashes, so adopt the view
        // change even if this site's own failure notice has not arrived
        // yet (skipping peers known to have recovered since — their
        // notices postdate the sender's election). Dropping the directive
        // instead would deadlock the backup's round: it waits for an ack
        // this site would never send.
        for j in 0..backup {
            if j != ix && !self.sites[ix].recovered_peers.contains(&j) {
                self.sites[ix].view[j] = false;
            }
        }
        // Only obey the currently elected backup; stale directives from a
        // previous (now crashed or superseded) backup are ignored.
        if self.sites[ix].elected_backup() != backup {
            return;
        }
        self.sites[ix].mode = Mode::Terminating { backup };
        let reported = self.reported_class_of(ix);
        let fsa = self.protocol.fsa(nbc_core::SiteId(ix as u32));
        if !fsa.state(self.sites[ix].state).class.is_final() {
            // Make the transition to the backup's state: durable first.
            let txn = self.config.txn_id;
            self.sites[ix]
                .wal
                .append_sync(&LogRecord::AlignedTo { txn, class })
                .expect("wal record fits");
            self.sites[ix].aligned_class = Some(class);
            self.tracer.emit(|| {
                let rec = LogRecord::AlignedTo { txn, class };
                self.ev(EventKind::WalAppend {
                    bytes: rec.frame_len(),
                    record: "aligned-to".into(),
                })
                .at_site(ix)
            });
            self.tracer.emit(|| self.ev(EventKind::WalFsync { physical: true }).at_site(ix));
            self.tracer.emit(|| {
                let letter = crate::class_map::decode_class(class).letter();
                self.ev(EventKind::Aligned { class: letter.to_string() }).at_site(ix)
            });
        }
        self.send(ix, backup, Wire::AlignAck { backup, reported_class: reported });
    }

    fn on_align_ack(&mut self, ix: usize, from: usize, reported_class: u8) {
        if !matches!(self.sites[ix].mode, Mode::Terminating { backup } if backup == ix) {
            return;
        }
        let bs = &mut self.sites[ix].backup_state;
        if bs.pending_acks.remove(&from) {
            bs.collected.push((from, reported_class));
        }
        if bs.pending_acks.is_empty() {
            self.backup_decide(ix);
        }
    }

    fn backup_decide(&mut self, ix: usize) {
        use nbc_core::Decision;
        let fsa = self.protocol.fsa(nbc_core::SiteId(ix as u32));
        let my_class = self.reported_class_of(ix);
        // A peer that acked from a durable final state outranks every
        // class rule: that decision already happened, so the only safe
        // move is to adopt it. Under accurate detection this arm is
        // unreachable — no final state is concurrent with a backup still
        // terminating in a contrary class — but a falsely-elected backup
        // races the still-live coordinator (or a parallel round) that may
        // have decided in the meantime. NaiveCs keeps its paper-verbatim,
        // own-state-only reading: it exists to demonstrate that unsafety.
        let reported_final = (self.config.rule != TerminationRule::NaiveCs)
            .then(|| {
                self.sites[ix].backup_state.collected.iter().find_map(|&(_, c)| {
                    match crate::class_map::decode_class(c) {
                        StateClass::Committed => Some(Decision::Commit),
                        StateClass::Aborted => Some(Decision::Abort),
                        _ => None,
                    }
                })
            })
            .flatten();
        let decision = if let Some(d) = reported_final {
            d
        } else {
            match self.config.rule {
                TerminationRule::NaiveCs => {
                    // Paper rule verbatim on the backup's own local state —
                    // deliberately unsafe for blocking protocols.
                    let me = self.sites[ix].core_id();
                    let st = self.sites[ix].state;
                    match fsa.state(st).class {
                        StateClass::Committed => Decision::Commit,
                        StateClass::Aborted => Decision::Abort,
                        _ => {
                            if self.analysis.cs_has_commit(me, st) {
                                Decision::Commit
                            } else {
                                Decision::Abort
                            }
                        }
                    }
                }
                TerminationRule::Skeen => self.decisions.decide(my_class),
                TerminationRule::QuorumSkeen => {
                    // Count sites this backup believes operational (itself
                    // included); without a strict majority of all n sites the
                    // backup must not decide — the other side of a potential
                    // partition might.
                    let operational = self.sites[ix].view.iter().filter(|&&up| up).count();
                    if 2 * operational > self.sites.len() {
                        self.decisions.decide(my_class)
                    } else {
                        Decision::Blocked
                    }
                }
                TerminationRule::Cooperative => {
                    let base = self.decisions.decide(my_class);
                    if base == Decision::Blocked {
                        let mut classes: Vec<u8> =
                            self.sites[ix].backup_state.collected.iter().map(|&(_, c)| c).collect();
                        classes.push(my_class);
                        self.decisions.decide_cooperative(classes)
                    } else {
                        base
                    }
                }
            }
        };
        match decision {
            Decision::Commit => {
                self.finish(ix, true);
                self.broadcast_decision(ix, true);
            }
            Decision::Abort => {
                self.finish(ix, false);
                self.broadcast_decision(ix, false);
            }
            Decision::Blocked => {
                self.tracer.emit(|| self.ev(EventKind::Blocked { backup: ix as u32 }).at_site(ix));
                self.sites[ix].mode = Mode::Blocked;
                for j in self.term_peers(ix) {
                    self.send(ix, j, Wire::TermBlocked { backup: ix });
                }
                self.answer_pending_queries(ix);
            }
        }
    }

    /// The sites a backup coordinator aligns with: every other operational
    /// site — restricted to participants for quorum-based protocols,
    /// whose acceptors do not align (they adopt the final decision from
    /// [`Runner::broadcast_decision`], which still addresses everyone).
    fn term_peers(&self, ix: usize) -> Vec<usize> {
        (0..self.protocol.n_participants()).filter(|&j| j != ix && self.sites[ix].view[j]).collect()
    }

    fn broadcast_decision(&mut self, ix: usize, commit: bool) {
        let peers: Vec<usize> =
            (0..self.sites.len()).filter(|&j| j != ix && self.sites[ix].view[j]).collect();
        for j in peers {
            self.send(ix, j, Wire::TermDecision { backup: ix, commit });
        }
    }

    // ------------------------------------------------------------------
    // Crash and recovery
    // ------------------------------------------------------------------

    pub(crate) fn crash_site(&mut self, ix: usize) {
        if self.sites[ix].mode == Mode::Down {
            return;
        }
        // Volatile state is lost: only the synced WAL prefix survives.
        let image = self.sites[ix].wal.crash_image();
        let (wal, _) =
            nbc_storage::Wal::from_image(&image).expect("own crash image is well-formed");
        self.sites[ix].wal = wal;
        self.sites[ix].inbox.clear();
        self.sites[ix].backup_state = Default::default();
        self.sites[ix].pending_queries.clear();
        self.sites[ix].recovery_replies.clear();
        self.sites[ix].suspects.clear();
        self.sites[ix].ever_down = true;
        self.sites[ix].mode = Mode::Down;
        self.tracer.emit(|| self.ev(EventKind::Crash).at_site(ix));
        if let Some(d) = self.detector.as_mut() {
            // No oracle notice: peers will suspect the silence, each at
            // its own timeout.
            d.site_down(ix);
        } else {
            self.net.crash(self.now, ix);
        }
    }

    pub(crate) fn recover_site(&mut self, ix: usize) {
        if self.sites[ix].mode != Mode::Down {
            return;
        }
        let records = nbc_storage::Wal::recover(&self.sites[ix].wal.full_image()).expect("own log");
        let summaries = summarize(&records);
        let summary = summaries.iter().find(|t| t.txn == self.config.txn_id);
        // Fresh view: the recovering site interacts via the recovery
        // protocol only, so an optimistic view is harmless.
        let n = self.sites.len();
        self.sites[ix].view = vec![true; n];
        self.sites[ix].recovery_replies.clear();
        self.tracer.emit(|| self.ev(EventKind::Recover).at_site(ix));
        if let Some(d) = self.detector.as_mut() {
            // No oracle notice: peers detect the recovery when heartbeats
            // (or this site's recovery queries) next prove life.
            d.site_up(self.now, ix);
        } else {
            self.net.recover(self.now, ix);
        }

        let acceptor = self.protocol.is_acceptor(ix);
        match summary.map(|s| &s.outcome) {
            None | Some(TxnOutcome::AbortOnRecovery) if !acceptor => {
                // Crashed before voting (or before the transaction reached
                // it): abort unilaterally upon recovering.
                self.sites[ix].mode = Mode::Recovering;
                self.finish(ix, false);
            }
            Some(TxnOutcome::Committed) => {
                self.sites[ix].outcome = Some(true);
                self.sites[ix].mode = Mode::Done;
            }
            Some(TxnOutcome::Aborted) => {
                self.sites[ix].outcome = Some(false);
                self.sites[ix].mode = Mode::Done;
            }
            other => {
                // MustAsk from any site — or any undecided acceptor log.
                // An acceptor never decides unilaterally: its local log
                // says nothing about whether the participants already
                // committed through the other acceptors, and its decision
                // record must mirror theirs, so it always asks.
                if let Some(TxnOutcome::MustAsk { state, aligned_class, .. }) = other {
                    self.sites[ix].enter_state(StateId(*state));
                    self.sites[ix].aligned_class = *aligned_class;
                    self.sites[ix].mode = Mode::Recovering;
                    // Independent recovery (nbc-core::recovery_analysis): a
                    // durable state that provably never cast a yes vote lets
                    // the site abort unilaterally — no commit can exist or
                    // ever arise, because committable states require every
                    // site's vote. Only applicable when no termination-phase
                    // alignment intervened (alignment may carry another
                    // site's progress) — and never to an acceptor, whose
                    // vote is not part of that argument.
                    let rc = self.recovery_classes[ix][*state as usize];
                    if !acceptor && aligned_class.is_none() && rc == RecoveryClass::IndependentAbort
                    {
                        self.finish(ix, false);
                        return;
                    }
                } else {
                    self.sites[ix].mode = Mode::Recovering;
                }
                for j in 0..n {
                    if j != ix {
                        self.send(ix, j, Wire::WhatHappened);
                    }
                }
            }
        }
    }

    /// Is this site settled — guaranteed not to reach a decision on its
    /// own? True once it has decided, blocked, or is itself recovering.
    fn is_settled(&self, ix: usize) -> bool {
        self.sites[ix].outcome.is_some()
            || matches!(self.sites[ix].mode, Mode::Blocked | Mode::Recovering | Mode::Done)
    }

    fn on_what_happened(&mut self, ix: usize, from: usize) {
        let class = self.reported_class_of(ix);
        let outcome = self.sites[ix].outcome;
        let settled = self.is_settled(ix);
        self.send(ix, from, Wire::OutcomeIs { outcome, class, settled });
        if outcome.is_none() {
            // Remember the asker; answer again on deciding or blocking.
            if !self.sites[ix].pending_queries.contains(&from) {
                self.sites[ix].pending_queries.push(from);
            }
        }
    }

    fn answer_pending_queries(&mut self, ix: usize) {
        let outcome = self.sites[ix].outcome;
        let class = self.reported_class_of(ix);
        let settled = self.is_settled(ix);
        let pending = std::mem::take(&mut self.sites[ix].pending_queries);
        for q in pending {
            if self.sites[q].mode != Mode::Down {
                self.send(ix, q, Wire::OutcomeIs { outcome, class, settled });
            }
        }
    }

    fn on_outcome_is(
        &mut self,
        ix: usize,
        from: usize,
        outcome: Option<bool>,
        class: u8,
        settled: bool,
    ) {
        if self.sites[ix].mode != Mode::Recovering && self.sites[ix].mode != Mode::Blocked {
            return;
        }
        if let Some(commit) = outcome {
            self.finish(ix, commit);
            return;
        }
        if !settled {
            // The responder is still executing or terminating: it
            // registered us as a pending query and will answer again with
            // a settled reply. Counting an unsettled `None` toward the
            // everyone-undecided rule would race the in-flight
            // termination protocol.
            return;
        }
        self.sites[ix].recovery_replies.retain(|&(s, _, _)| s != from);
        self.sites[ix].recovery_replies.push((from, None, class));
        self.try_total_failure_recovery(ix);
    }

    /// Everyone-undecided recovery (total failure being the canonical
    /// case): once every other site has given a *settled* inconclusive
    /// answer — it decided nothing, and it will not decide on its own —
    /// no commit exists or ever will, so the lowest-id recovering site
    /// decides for everyone: commit iff someone durably reached a commit
    /// state (impossible here by construction, but kept for symmetry),
    /// else abort.
    fn try_total_failure_recovery(&mut self, ix: usize) {
        if !self.config.total_failure_recovery {
            return;
        }
        if self.sites[ix].mode != Mode::Recovering {
            return;
        }
        let n = self.sites.len();
        // Require an inconclusive answer from every other site.
        if self.sites[ix].recovery_replies.len() < n - 1 {
            return;
        }
        // Only the lowest-id recovering site drives the decision to avoid
        // duplicate (though identical) broadcasts.
        let lowest_recovering = (0..n).find(|&j| self.sites[j].mode == Mode::Recovering);
        if lowest_recovering != Some(ix) {
            return;
        }
        use nbc_storage::recovery::class_codes;
        let mut classes: Vec<u8> =
            self.sites[ix].recovery_replies.iter().map(|&(_, _, c)| c).collect();
        classes.push(self.reported_class_of(ix));
        let commit = classes.contains(&class_codes::COMMITTED);
        self.finish(ix, commit);
        for j in 0..n {
            if j != ix && self.sites[j].mode != Mode::Down {
                self.send(ix, j, Wire::TermDecision { backup: ix, commit });
            }
        }
    }

    // ------------------------------------------------------------------
    // Reporting
    // ------------------------------------------------------------------

    /// Assemble the run's current outcome report (callable mid-run by
    /// the multiplexer once [`Runner::next_time`] returns `None`).
    pub fn report(&self) -> RunReport {
        let mut outcomes = Vec::with_capacity(self.sites.len());
        for s in &self.sites {
            let o = if s.mode == Mode::Down {
                // Inspect the durable log of the dead site.
                let recs =
                    nbc_storage::Wal::recover(&s.wal.full_image()).expect("own log well-formed");
                let txn = self.config.txn_id;
                match summarize(&recs).iter().find(|t| t.txn == txn).map(|t| &t.outcome) {
                    Some(TxnOutcome::Committed) => SiteOutcome::DownCommitted,
                    Some(TxnOutcome::Aborted) => SiteOutcome::DownAborted,
                    _ => SiteOutcome::DownUndecided,
                }
            } else {
                match (s.outcome, &s.mode) {
                    (Some(true), _) => SiteOutcome::Committed,
                    (Some(false), _) => SiteOutcome::Aborted,
                    (None, Mode::Blocked) => SiteOutcome::Blocked,
                    (None, _) => SiteOutcome::InProgress,
                }
            };
            outcomes.push(o);
        }
        let trace = self.legacy.as_ref().map(|l| l.with(|s| s.lines.clone())).unwrap_or_default();
        let mut report = RunReport::assemble_with_trace(
            outcomes,
            self.net.stats().sent(),
            self.now,
            self.events,
            self.truncated,
            trace,
        );
        report.elections = self.elections;
        report
    }
}

/// Convenience: build the analysis and run one configuration.
pub fn run_one(protocol: &Protocol, config: RunConfig) -> RunReport {
    let analysis = Analysis::build(protocol).expect("protocol analyzable");
    Runner::new(protocol, &analysis, config).run()
}

/// As [`run_one`] with a shared analysis (for sweeps).
pub fn run_with(protocol: &Protocol, analysis: &Analysis, config: RunConfig) -> RunReport {
    Runner::new(protocol, analysis, config).run()
}

/// As [`run_with`], emitting typed events through `tracer`.
pub fn run_traced(
    protocol: &Protocol,
    analysis: &Analysis,
    config: RunConfig,
    tracer: Tracer,
) -> RunReport {
    Runner::with_tracer(protocol, analysis, config, tracer).run()
}
