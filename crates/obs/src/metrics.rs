//! The metrics registry: counters and fixed-bucket histograms derived from
//! the event stream.
//!
//! [`Metrics`] is itself a [`Sink`] — attach it to a [`crate::Tracer`]
//! alongside an export sink and it folds every event into: global message
//! and WAL counters, per-site decision-latency histograms, and per-
//! transaction rollups of the quantities Gray & Lamport use to compare
//! commit protocols (messages and stable writes per transaction), plus
//! election rounds from the termination protocol.
//!
//! Everything is stored in `BTreeMap`s and fixed arrays, so the rendered
//! table is deterministic.

use std::collections::BTreeMap;
use std::fmt;

use crate::event::{Event, EventKind};
use crate::sink::Sink;

/// Number of histogram buckets: bucket `i > 0` holds values in
/// `[2^(i-1), 2^i)`; bucket 0 holds zero. The last bucket absorbs
/// everything `>= 2^(BUCKETS-2)`.
const BUCKETS: usize = 17;

/// A fixed power-of-two-bucket histogram of `u64` samples.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self { buckets: [0; BUCKETS], count: 0, sum: 0, max: 0 }
    }
}

impl Histogram {
    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        let ix =
            if value == 0 { 0 } else { (64 - value.leading_zeros() as usize).min(BUCKETS - 1) };
        self.buckets[ix] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, rounded down (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Upper bound (exclusive) of the smallest bucket prefix holding at
    /// least `q` (in per-mille, e.g. 500 = median) of the samples — a
    /// bucket-resolution quantile.
    pub fn quantile_le(&self, q: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (self.count * q).div_ceil(1000);
        let mut seen = 0;
        for (ix, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return if ix == 0 { 0 } else { 1u64 << ix };
            }
        }
        self.max
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={} p50<={} p95<={} p99<={} max={}",
            self.count,
            self.mean(),
            self.quantile_le(500),
            self.quantile_le(950),
            self.quantile_le(990),
            self.max
        )
    }
}

/// Per-transaction rollup (the Gray–Lamport accounting unit).
#[derive(Clone, Debug, Default)]
pub struct TxnStats {
    /// Earliest event time attributed to the transaction.
    pub start: Option<u64>,
    /// Time of the first decision event, if any site decided.
    pub decided_at: Option<u64>,
    /// Verdict of the first decision event.
    pub committed: Option<bool>,
    /// Protocol messages handed to the network.
    pub msgs_sent: u64,
    /// Protocol messages delivered.
    pub msgs_delivered: u64,
    /// Protocol messages dropped by partitions.
    pub msgs_dropped: u64,
    /// WAL records appended.
    pub wal_appends: u64,
    /// WAL bytes appended (full frame size).
    pub wal_bytes: u64,
    /// Stable writes: physical WAL forces paid on behalf of this
    /// transaction.
    pub stable_writes: u64,
    /// Backup-election rounds entered by sites of this transaction.
    pub elections: u64,
    /// Sites that reported the round blocked.
    pub blocked: u64,
}

impl TxnStats {
    /// Decision latency: first decision time minus first event time.
    pub fn latency(&self) -> Option<u64> {
        Some(self.decided_at?.saturating_sub(self.start?))
    }
}

/// The registry. Feed it events (it is a [`Sink`]) and render it with
/// `Display` or read the public fields.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Total events folded in.
    pub events: u64,
    /// Global message counters (sent / delivered / dropped).
    pub msgs_sent: u64,
    /// Messages delivered to an up site.
    pub msgs_delivered: u64,
    /// Messages swallowed by partitions.
    pub msgs_dropped: u64,
    /// Local state transitions fired.
    pub transitions: u64,
    /// Site crashes.
    pub crashes: u64,
    /// Site recoveries.
    pub recoveries: u64,
    /// Backup-election rounds.
    pub elections: u64,
    /// Timeout-based suspicions raised (imperfect detection; counts both
    /// accurate and false suspicions — the detector cannot tell).
    pub suspicions: u64,
    /// Suspicions revoked by evidence of life. A high revocation share
    /// means the detector is too aggressive for the network's jitter.
    pub unsuspicions: u64,
    /// Blocked verdicts from backup coordinators.
    pub blocked: u64,
    /// WAL records appended.
    pub wal_appends: u64,
    /// WAL bytes appended.
    pub wal_bytes: u64,
    /// Physical WAL forces.
    pub wal_fsyncs_physical: u64,
    /// Fsync requests absorbed by an open group-commit batch.
    pub wal_fsyncs_batched: u64,
    /// Scheduler admissions.
    pub admits: u64,
    /// Scheduler parks (wait-die waits).
    pub parks: u64,
    /// Scheduler deaths (wait-die restarts).
    pub dies: u64,
    /// Blocked rounds reaped via recovery.
    pub reaps: u64,
    /// Per-site decision latency (decision time − transaction start).
    pub decision_latency: BTreeMap<u32, Histogram>,
    /// Per-transaction rollups.
    pub txns: BTreeMap<u64, TxnStats>,
}

impl Metrics {
    /// Fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn txn_mut(&mut self, event: &Event) -> Option<&mut TxnStats> {
        let txn = event.txn?;
        let stats = self.txns.entry(txn).or_default();
        stats.start = Some(stats.start.map_or(event.time, |s| s.min(event.time)));
        Some(stats)
    }

    /// Election-round distribution: one sample per transaction, counting
    /// the backup-election rounds it entered. Zero rounds means the
    /// commit protocol ran undisturbed; a heavy tail under an aggressive
    /// detector is the elect-and-re-elect churn of false suspicion.
    pub fn election_rounds(&self) -> Histogram {
        let mut h = Histogram::default();
        for t in self.txns.values() {
            h.record(t.elections);
        }
        h
    }

    /// Encode the registry as one JSON object (fixed key order, so equal
    /// runs produce byte-identical output). Histograms include the
    /// bucket-resolution p50/p95/p99 quantiles.
    pub fn to_json(&self) -> String {
        let hist_json = |h: &Histogram| {
            crate::json::Obj::new()
                .num("n", h.count())
                .num("mean", h.mean())
                .num("p50_le", h.quantile_le(500))
                .num("p95_le", h.quantile_le(950))
                .num("p99_le", h.quantile_le(990))
                .num("max", h.max())
                .build()
        };
        let latency = crate::json::array(self.decision_latency.iter().map(|(site, h)| {
            crate::json::Obj::new()
                .num("site", u64::from(*site))
                .raw("latency", &hist_json(h))
                .build()
        }));
        let txns = crate::json::array(self.txns.iter().map(|(txn, t)| {
            let mut o = crate::json::Obj::new()
                .num("txn", *txn)
                .num("msgs_sent", t.msgs_sent)
                .num("msgs_delivered", t.msgs_delivered)
                .num("msgs_dropped", t.msgs_dropped)
                .num("stable_writes", t.stable_writes)
                .num("wal_bytes", t.wal_bytes)
                .num("elections", t.elections);
            o = match t.latency() {
                Some(l) => o.num("latency", l),
                None => o.raw("latency", "null"),
            };
            o = match t.committed {
                Some(c) => o.bool("committed", c),
                None => o.raw("committed", "null"),
            };
            o.build()
        }));
        crate::json::Obj::new()
            .num("events", self.events)
            .num("msgs_sent", self.msgs_sent)
            .num("msgs_delivered", self.msgs_delivered)
            .num("msgs_dropped", self.msgs_dropped)
            .num("transitions", self.transitions)
            .num("crashes", self.crashes)
            .num("recoveries", self.recoveries)
            .num("elections", self.elections)
            .num("suspicions", self.suspicions)
            .num("unsuspicions", self.unsuspicions)
            .num("blocked", self.blocked)
            .num("wal_appends", self.wal_appends)
            .num("wal_bytes", self.wal_bytes)
            .num("wal_fsyncs_physical", self.wal_fsyncs_physical)
            .num("wal_fsyncs_batched", self.wal_fsyncs_batched)
            .num("admits", self.admits)
            .num("parks", self.parks)
            .num("dies", self.dies)
            .num("reaps", self.reaps)
            .raw("election_rounds", &hist_json(&self.election_rounds()))
            .raw("decision_latency", &latency)
            .raw("txns", &txns)
            .build()
    }
}

impl Sink for Metrics {
    fn record(&mut self, event: &Event) {
        self.events += 1;
        // Track transaction start from every attributed event, so decision
        // latency is measured from the first thing the transaction did.
        let _ = self.txn_mut(event);
        match &event.kind {
            EventKind::Transition { .. } => {
                self.transitions += 1;
            }
            EventKind::MsgSend { .. } => {
                self.msgs_sent += 1;
                if let Some(t) = self.txn_mut(event) {
                    t.msgs_sent += 1;
                }
            }
            EventKind::MsgDeliver { .. } => {
                self.msgs_delivered += 1;
                if let Some(t) = self.txn_mut(event) {
                    t.msgs_delivered += 1;
                }
            }
            EventKind::MsgDrop { .. } => {
                self.msgs_dropped += 1;
                if let Some(t) = self.txn_mut(event) {
                    t.msgs_dropped += 1;
                }
            }
            EventKind::Decision { commit } => {
                let commit = *commit;
                let mut latency = None;
                if let Some(t) = self.txn_mut(event) {
                    if t.decided_at.is_none() {
                        t.decided_at = Some(event.time);
                        t.committed = Some(commit);
                    }
                    latency = t.latency();
                }
                if let (Some(site), Some(lat)) = (event.site, latency) {
                    self.decision_latency.entry(site).or_default().record(lat);
                }
            }
            EventKind::Crash => self.crashes += 1,
            EventKind::Recover => self.recoveries += 1,
            EventKind::Suspect { .. } => self.suspicions += 1,
            EventKind::Unsuspect { .. } => self.unsuspicions += 1,
            EventKind::Election { .. } => {
                self.elections += 1;
                if let Some(t) = self.txn_mut(event) {
                    t.elections += 1;
                }
            }
            EventKind::Blocked { .. } => {
                self.blocked += 1;
                if let Some(t) = self.txn_mut(event) {
                    t.blocked += 1;
                }
            }
            EventKind::WalAppend { bytes, record: _ } => {
                let bytes = *bytes;
                self.wal_appends += 1;
                self.wal_bytes += bytes;
                if let Some(t) = self.txn_mut(event) {
                    t.wal_appends += 1;
                    t.wal_bytes += bytes;
                }
            }
            EventKind::WalFsync { physical } => {
                if *physical {
                    self.wal_fsyncs_physical += 1;
                    if let Some(t) = self.txn_mut(event) {
                        t.stable_writes += 1;
                    }
                } else {
                    self.wal_fsyncs_batched += 1;
                }
            }
            EventKind::Admit => self.admits += 1,
            EventKind::Park => self.parks += 1,
            EventKind::Die => self.dies += 1,
            EventKind::Reap { .. } => self.reaps += 1,
            EventKind::Vote { .. }
            | EventKind::FailureNotice { .. }
            | EventKind::RecoveryNotice { .. }
            | EventKind::Aligned { .. }
            | EventKind::WalCompact { .. }
            | EventKind::Partition { .. }
            | EventKind::Snapshot { .. }
            | EventKind::Note { .. } => {}
        }
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "metrics ({} events)", self.events)?;
        writeln!(
            f,
            "  messages   sent={} delivered={} dropped={}",
            self.msgs_sent, self.msgs_delivered, self.msgs_dropped
        )?;
        writeln!(
            f,
            "  protocol   transitions={} elections={} blocked={} crashes={} recoveries={}",
            self.transitions, self.elections, self.blocked, self.crashes, self.recoveries
        )?;
        if self.suspicions + self.unsuspicions > 0 {
            writeln!(
                f,
                "  detector   suspicions={} unsuspicions={} election-rounds: {}",
                self.suspicions,
                self.unsuspicions,
                self.election_rounds()
            )?;
        }
        writeln!(
            f,
            "  wal        appends={} bytes={} fsync-physical={} fsync-batched={}",
            self.wal_appends, self.wal_bytes, self.wal_fsyncs_physical, self.wal_fsyncs_batched
        )?;
        if self.admits + self.parks + self.dies + self.reaps > 0 {
            writeln!(
                f,
                "  scheduler  admits={} parks={} dies={} reaps={}",
                self.admits, self.parks, self.dies, self.reaps
            )?;
        }
        if !self.decision_latency.is_empty() {
            writeln!(f, "  decision latency by site:")?;
            for (site, h) in &self.decision_latency {
                writeln!(f, "    site{site}: {h}")?;
            }
        }
        if !self.txns.is_empty() {
            writeln!(
                f,
                "  per txn    {:<6} {:>6} {:>8} {:>10} {:>6} {:>8} outcome",
                "txn", "msgs", "stable-w", "wal-bytes", "elect", "latency"
            )?;
            for (txn, t) in &self.txns {
                let outcome = match t.committed {
                    Some(true) => "commit",
                    Some(false) => "abort",
                    None => "-",
                };
                let latency = t.latency().map_or_else(|| "-".to_string(), |l| l.to_string());
                writeln!(
                    f,
                    "             {:<6} {:>6} {:>8} {:>10} {:>6} {:>8} {}",
                    txn, t.msgs_sent, t.stable_writes, t.wal_bytes, t.elections, latency, outcome
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 110);
        assert_eq!(h.max(), 100);
        assert_eq!(h.mean(), 18);
        // Median bucket: 3rd sample of 6 lands in the [2,4) bucket.
        assert_eq!(h.quantile_le(500), 4);
        assert_eq!(h.quantile_le(1000), 128);
        // p95/p99 of 6 samples need all of them: the 100 bucket.
        assert_eq!(h.quantile_le(950), 128);
        assert_eq!(h.quantile_le(990), 128);
        let line = h.to_string();
        assert!(line.contains("p50<=4"), "{line}");
        assert!(line.contains("p95<=128"), "{line}");
        assert!(line.contains("p99<=128"), "{line}");
    }

    #[test]
    fn histogram_huge_values_saturate_last_bucket() {
        let mut h = Histogram::default();
        h.record(u64::MAX);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn metrics_fold_message_and_decision_flow() {
        let mut m = Metrics::new();
        let evs = [
            Event::new(0, EventKind::Transition { from: "q0".into(), to: "w0".into() })
                .at_site(0)
                .for_txn(1),
            Event::new(1, EventKind::MsgSend { dst: 1, label: "prepare".into() })
                .at_site(0)
                .for_txn(1),
            Event::new(3, EventKind::MsgDeliver { src: 0, label: "prepare".into() })
                .at_site(1)
                .for_txn(1),
            Event::new(3, EventKind::WalAppend { bytes: 22, record: "progress".into() })
                .at_site(1)
                .for_txn(1),
            Event::new(3, EventKind::WalFsync { physical: true }).at_site(1).for_txn(1),
            Event::new(9, EventKind::Decision { commit: true }).at_site(1).for_txn(1),
            Event::new(10, EventKind::Decision { commit: true }).at_site(0).for_txn(1),
        ];
        for e in &evs {
            m.record(e);
        }
        assert_eq!(m.msgs_sent, 1);
        assert_eq!(m.msgs_delivered, 1);
        assert_eq!(m.msgs_dropped, 0);
        assert_eq!(m.wal_bytes, 22);
        assert_eq!(m.wal_fsyncs_physical, 1);
        let t = &m.txns[&1];
        assert_eq!(t.start, Some(0));
        assert_eq!(t.decided_at, Some(9));
        assert_eq!(t.committed, Some(true));
        assert_eq!(t.stable_writes, 1);
        assert_eq!(t.latency(), Some(9));
        // Both deciding sites get a latency sample from txn start.
        assert_eq!(m.decision_latency[&1].count(), 1);
        assert_eq!(m.decision_latency[&0].count(), 1);
        assert_eq!(m.decision_latency[&0].max(), 9);
        let table = m.to_string();
        assert!(table.contains("sent=1 delivered=1 dropped=0"), "{table}");
        assert!(table.contains("decision latency by site:"), "{table}");
        assert!(table.contains("commit"), "{table}");
    }

    #[test]
    fn metrics_json_is_valid_and_carries_quantiles() {
        let mut m = Metrics::new();
        let evs = [
            Event::new(0, EventKind::Transition { from: "q0".into(), to: "w0".into() })
                .at_site(0)
                .for_txn(1),
            Event::new(7, EventKind::Decision { commit: true }).at_site(0).for_txn(1),
        ];
        for e in &evs {
            m.record(e);
        }
        let j = m.to_json();
        crate::json::validate(&j).unwrap();
        let v = crate::json::parse(&j).unwrap();
        assert_eq!(v.get("events").and_then(crate::json::Value::as_u64), Some(2));
        assert!(j.contains("\"p50_le\":8"), "{j}");
        assert!(j.contains("\"p95_le\":8"), "{j}");
        assert!(j.contains("\"p99_le\":8"), "{j}");
        assert!(j.contains("\"latency\":7,\"committed\":true"), "{j}");
    }
}
