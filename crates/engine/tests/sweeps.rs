//! Exhaustive crash-point sweeps: the engine-level validation of the
//! fundamental nonblocking theorem.
//!
//! * 3PC (both paradigms) with the paper's termination protocol must be
//!   consistent and nonblocking at **every** crash point, including
//!   non-atomic transitions and cascading double failures.
//! * 2PC with cooperative termination must stay consistent but exhibits a
//!   blocking window.
//! * 2PC with the naive verbatim rule must exhibit an actual atomicity
//!   violation — the behavior the theorem's necessity argument predicts.

use nbc_core::protocols::{central_2pc, central_3pc, decentralized_2pc, decentralized_3pc};
use nbc_core::Analysis;
use nbc_engine::{enumerate_crash_specs, run_with, sweep, RunConfig, SiteOutcome, TerminationRule};

fn happy(n: usize) -> RunConfig {
    RunConfig::happy(n)
}

#[test]
fn all_protocols_commit_on_unanimous_yes() {
    for p in nbc_core::protocols::catalog(3) {
        let a = Analysis::build(&p).unwrap();
        let r = run_with(&p, &a, happy(3));
        assert!(r.consistent, "{}: {r}", p.name);
        assert_eq!(r.decision(), Some(true), "{}: {r}", p.name);
        assert_eq!(r.committed_count(), 3, "{}: {r}", p.name);
        assert!(!r.truncated);
    }
}

#[test]
fn all_protocols_abort_on_any_no() {
    for p in nbc_core::protocols::catalog(4) {
        let a = Analysis::build(&p).unwrap();
        for no_voter in 0..4 {
            let r = run_with(&p, &a, RunConfig::one_no(4, no_voter));
            assert!(r.consistent, "{} no@{no_voter}: {r}", p.name);
            assert_eq!(r.decision(), Some(false), "{} no@{no_voter}: {r}", p.name);
        }
    }
}

#[test]
fn message_counts_match_theory() {
    // Central-site commit path: 2PC = 3(n-1) messages (xact, yes, commit);
    // 3PC = 5(n-1) (xact, yes, prepare, ack, commit).
    for n in [3usize, 5] {
        let p2 = central_2pc(n);
        let a2 = Analysis::build(&p2).unwrap();
        let r2 = run_with(&p2, &a2, happy(n));
        assert_eq!(r2.msgs_sent as usize, 3 * (n - 1), "2PC n={n}");

        let p3 = central_3pc(n);
        let a3 = Analysis::build(&p3).unwrap();
        let r3 = run_with(&p3, &a3, happy(n));
        assert_eq!(r3.msgs_sent as usize, 5 * (n - 1), "3PC n={n}");
    }
    // Decentralized commit path: 2PC = n^2 (votes incl. self-sends);
    // 3PC = 2 n^2 (votes + prepares).
    for n in [3usize, 4] {
        let p2 = decentralized_2pc(n);
        let a2 = Analysis::build(&p2).unwrap();
        let r2 = run_with(&p2, &a2, happy(n));
        assert_eq!(r2.msgs_sent as usize, n * n, "dec 2PC n={n}");

        let p3 = decentralized_3pc(n);
        let a3 = Analysis::build(&p3).unwrap();
        let r3 = run_with(&p3, &a3, happy(n));
        assert_eq!(r3.msgs_sent as usize, 2 * n * n, "dec 3PC n={n}");
    }
}

#[test]
fn three_pc_single_crash_sweep_is_nonblocking_and_consistent() {
    for n in [2usize, 3, 4] {
        for p in [central_3pc(n), decentralized_3pc(n)] {
            let a = Analysis::build(&p).unwrap();
            let specs = enumerate_crash_specs(&p, None);
            let s = sweep(&p, &a, &happy(n), &specs);
            assert!(s.all_consistent(), "{}: inconsistent runs: {:?}", p.name, s.inconsistent_runs);
            assert!(
                s.nonblocking(),
                "{}: blocked={} fully_decided={}/{}",
                p.name,
                s.blocked,
                s.fully_decided,
                s.total
            );
            assert_eq!(s.truncated, 0, "{}", p.name);
        }
    }
}

#[test]
fn three_pc_sweep_with_no_voters_stays_consistent() {
    for p in [central_3pc(3), decentralized_3pc(3)] {
        let a = Analysis::build(&p).unwrap();
        let specs = enumerate_crash_specs(&p, None);
        for no_voter in 0..3 {
            let base = RunConfig::one_no(3, no_voter);
            let s = sweep(&p, &a, &base, &specs);
            assert!(s.all_consistent(), "{} no@{no_voter}: {:?}", p.name, s.inconsistent_runs);
            assert!(s.nonblocking(), "{} no@{no_voter}: blocked={}", p.name, s.blocked);
        }
    }
}

#[test]
fn two_pc_cooperative_sweep_consistent_but_blocking() {
    for p in [central_2pc(3), decentralized_2pc(3)] {
        let a = Analysis::build(&p).unwrap();
        let specs = enumerate_crash_specs(&p, None);
        let base = happy(3).with_rule(TerminationRule::Cooperative);
        let s = sweep(&p, &a, &base, &specs);
        assert!(
            s.all_consistent(),
            "{}: cooperative termination must never violate atomicity: {:?}",
            p.name,
            s.inconsistent_runs
        );
        assert!(
            s.blocked > 0,
            "{}: 2PC has a blocking window the sweep must find (total {})",
            p.name,
            s.total
        );
    }
}

#[test]
fn two_pc_skeen_class_rule_also_consistent_but_blocking() {
    // The class-based Skeen rule refuses to decide from the 2PC wait
    // state, so it blocks rather than guesses.
    let p = central_2pc(3);
    let a = Analysis::build(&p).unwrap();
    let specs = enumerate_crash_specs(&p, None);
    let s = sweep(&p, &a, &happy(3), &specs);
    assert!(s.all_consistent(), "{:?}", s.inconsistent_runs);
    assert!(s.blocked > 0);
}

#[test]
fn two_pc_naive_rule_violates_atomicity() {
    // The theorem's necessity in action: applying the backup decision rule
    // verbatim to a blocking protocol commits from the wait state while
    // the crashed coordinator durably aborted (or vice versa).
    let p = central_2pc(3);
    let a = Analysis::build(&p).unwrap();
    let specs = enumerate_crash_specs(&p, None);
    // The violation needs the crashed coordinator to have durably decided
    // *abort* while slaves sit in their wait states — so the coordinator
    // votes no. A slave promoted to backup then applies "CS(w) contains a
    // commit state → commit" and contradicts the durable abort.
    let base = RunConfig::one_no(3, 0).with_rule(TerminationRule::NaiveCs);
    let s = sweep(&p, &a, &base, &specs);
    assert!(
        !s.all_consistent(),
        "expected the naive rule to produce an inconsistent run over {} runs",
        s.total
    );
}

#[test]
fn three_pc_is_nonblocking_even_under_naive_rule_for_slaves() {
    // For a protocol satisfying the theorem the verbatim rule is safe: all
    // 3PC crash points stay consistent under NaiveCs too... except that
    // NaiveCs on the *central coordinator's* p1 aborts (CS(p1) has no
    // commit state) which is also safe. The sweep confirms consistency.
    for p in [central_3pc(3), decentralized_3pc(3)] {
        let a = Analysis::build(&p).unwrap();
        let specs = enumerate_crash_specs(&p, None);
        let base = happy(3).with_rule(TerminationRule::NaiveCs);
        let s = sweep(&p, &a, &base, &specs);
        assert!(s.all_consistent(), "{}: {:?}", p.name, s.inconsistent_runs);
    }
}

#[test]
fn crashed_before_voting_leads_to_abort() {
    // A site that dies before its first transition cannot have voted yes;
    // the survivors abort.
    let p = central_3pc(3);
    let a = Analysis::build(&p).unwrap();
    let cfg = happy(3).with_crash(nbc_engine::CrashSpec {
        site: 2,
        point: nbc_engine::CrashPoint::OnTransition {
            ordinal: 1,
            progress: nbc_engine::TransitionProgress::BeforeLog,
        },
        recover_at: None,
    });
    let r = run_with(&p, &a, cfg);
    assert!(r.consistent, "{r}");
    assert_eq!(r.decision(), Some(false), "{r}");
    assert_eq!(r.outcomes[2], SiteOutcome::DownUndecided);
}

#[test]
fn coordinator_crash_after_full_commit_broadcast_propagates_commit() {
    // Coordinator dies right after sending every commit: slaves commit.
    let p = central_3pc(3);
    let a = Analysis::build(&p).unwrap();
    let cfg = happy(3).with_crash(nbc_engine::CrashSpec {
        site: 0,
        point: nbc_engine::CrashPoint::OnTransition {
            ordinal: 3,
            progress: nbc_engine::TransitionProgress::AfterMsgs(2),
        },
        recover_at: None,
    });
    let r = run_with(&p, &a, cfg);
    assert!(r.consistent, "{r}");
    assert_eq!(r.decision(), Some(true), "{r}");
    assert_eq!(r.outcomes[0], SiteOutcome::DownCommitted);
    assert_eq!(r.outcomes[1], SiteOutcome::Committed);
    assert_eq!(r.outcomes[2], SiteOutcome::Committed);
}

#[test]
fn coordinator_crash_with_partial_commit_broadcast_still_commits() {
    // The non-atomic transition: the coordinator durably committed but
    // only one slave heard; the termination protocol must carry the other
    // slave to commit as well.
    let p = central_3pc(3);
    let a = Analysis::build(&p).unwrap();
    let cfg = happy(3).with_crash(nbc_engine::CrashSpec {
        site: 0,
        point: nbc_engine::CrashPoint::OnTransition {
            ordinal: 3,
            progress: nbc_engine::TransitionProgress::AfterMsgs(1),
        },
        recover_at: None,
    });
    let r = run_with(&p, &a, cfg);
    assert!(r.consistent, "{r}");
    assert_eq!(r.decision(), Some(true), "{r}");
    assert_eq!(r.committed_count(), 3, "{r}");
}
