//! # nbc-bench — experiment harness
//!
//! The [`experiments`] module regenerates every figure and table of the
//! paper (run `cargo run -p nbc-bench --bin experiments`); the timing
//! benches under `benches/` (built on the local [`harness`]) measure the
//! quantitative shape claims (message complexity, latency in phases,
//! throughput under failures, reachable-graph growth).

pub mod baseline;
pub mod experiments;
pub mod harness;
pub mod table;

pub use harness::BenchGroup;
pub use table::Table;
