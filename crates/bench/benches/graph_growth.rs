//! B5 (timing face): reachable-state-graph construction and full analysis
//! cost as the number of sites grows — the "grows exponentially with the
//! number of sites" observation as wall-clock.

use nbc_bench::BenchGroup;
use nbc_core::protocols::{central_2pc, central_3pc, decentralized_2pc, decentralized_3pc};
use nbc_core::{Analysis, ReachGraph, ReachOptions};
use std::hint::black_box;

fn bench_graph_build() {
    let mut g = BenchGroup::new("reach_graph_build");
    g.sample_size(20);
    for n in [2usize, 3, 4, 5] {
        for (label, p) in [
            ("central_2pc", central_2pc(n)),
            ("central_3pc", central_3pc(n)),
            ("decentralized_2pc", decentralized_2pc(n)),
            ("decentralized_3pc", decentralized_3pc(n)),
        ] {
            g.bench(&format!("{label}/{n}"), || {
                ReachGraph::build(black_box(&p)).unwrap().node_count()
            });
        }
    }
}

/// Serial vs. frontier-parallel construction on the big central 2PC
/// instances (small ones are below the parallel threshold anyway).
fn bench_graph_build_parallel() {
    let mut g = BenchGroup::new("reach_graph_build_parallel");
    g.sample_size(10);
    for n in [7usize, 8] {
        let p = central_2pc(n);
        g.bench(&format!("central_2pc/{n}/serial"), || {
            ReachGraph::build_serial(black_box(&p), ReachOptions::default()).unwrap().node_count()
        });
        for threads in [2usize, 4] {
            g.bench(&format!("central_2pc/{n}/threads{threads}"), || {
                ReachGraph::build_with(black_box(&p), ReachOptions::default().with_threads(threads))
                    .unwrap()
                    .node_count()
            });
        }
    }
}

fn bench_full_analysis() {
    let mut g = BenchGroup::new("full_analysis");
    g.sample_size(20);
    for n in [3usize, 5] {
        let p = central_3pc(n);
        g.bench(&format!("central_3pc/{n}"), || {
            let a = Analysis::build(black_box(&p)).unwrap();
            nbc_core::theorem::check_with(&p, &a).nonblocking()
        });
    }
}

fn main() {
    bench_graph_build();
    bench_graph_build_parallel();
    bench_full_analysis();
}
