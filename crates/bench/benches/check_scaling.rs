//! B9/B10: parallel model-checking throughput and the external-memory
//! spill path — `nbc check` wall-clock and distinct-state rate at 1/2/4
//! worker threads, the exhaustive envelope (central protocols at n=5,
//! single all-yes plan at n=6), and a tiny-`mem_budget` run asserted
//! byte-identical to its unlimited twin.
//!
//! Every scaling row first asserts the determinism contract (identical
//! verdict, `distinct_states` and `actions` at every thread count) and
//! then reports the wall-clock of each worker count. On a single-CPU
//! host the multi-thread rows measure orchestration overhead (queue +
//! shard-lock traffic), not speedup — EXPERIMENTS.md records which one a
//! given table was.
//!
//! Besides the stdout tables, the run writes every row to
//! `BENCH_check.json` at the workspace root (states/sec, peak RSS,
//! spill statistics) so CI and the docs can consume the numbers
//! machine-readably.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use nbc_check::{run_check, CheckOptions, CheckReport};
use nbc_core::protocols::{central_2pc, central_3pc};
use nbc_core::Protocol;
use nbc_paxos::paxos_commit;

struct Row {
    section: &'static str,
    label: String,
    threads: usize,
    states: usize,
    actions: u64,
    seconds: f64,
    ok: bool,
    truncated: bool,
    spill_runs: u64,
    spill_bytes: u64,
    spill_merges: u64,
}

impl Row {
    fn from_report(
        section: &'static str,
        label: &str,
        threads: usize,
        elapsed: Duration,
        r: &CheckReport,
    ) -> Self {
        Self {
            section,
            label: label.to_string(),
            threads,
            states: r.stats.distinct_states,
            actions: r.stats.actions,
            seconds: elapsed.as_secs_f64(),
            ok: r.ok(),
            truncated: r.stats.truncated,
            spill_runs: r.spill.runs_written,
            spill_bytes: r.spill.bytes_written,
            spill_merges: r.spill.merge_passes,
        }
    }

    fn states_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.states as f64 / self.seconds
        } else {
            0.0
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"section\":\"{}\",\"label\":\"{}\",\"threads\":{},\"states\":{},\"actions\":{},\
             \"seconds\":{:.3},\"states_per_sec\":{:.0},\"verdict\":\"{}\",\"truncated\":{},\
             \"spill_runs\":{},\"spill_bytes\":{},\"spill_merge_passes\":{}}}",
            self.section,
            self.label,
            self.threads,
            self.states,
            self.actions,
            self.seconds,
            self.states_per_sec(),
            if self.ok { "OK" } else { "FAIL" },
            self.truncated,
            self.spill_runs,
            self.spill_bytes,
            self.spill_merges,
        )
    }

    fn print(&self) {
        println!(
            "{:<20} threads {}  states {:>9}  actions {:>10}  {:>9.2}s  ({:>9.0} states/s)  \
             verdict {}  {}",
            self.label,
            self.threads,
            self.states,
            self.actions,
            self.seconds,
            self.states_per_sec(),
            if self.ok { "OK" } else { "FAIL" },
            if self.truncated { "TRUNCATED" } else { "exhaustive" },
        );
    }
}

fn timed_check(protocol: &Protocol, opts: CheckOptions) -> (Duration, CheckReport) {
    let t = Instant::now();
    let report = run_check(protocol, opts).unwrap();
    (t.elapsed(), report)
}

fn scaling_table(rows: &mut Vec<Row>) {
    println!("== check_scaling (full check wall-clock by worker threads) ==");
    let specs: Vec<(&str, Protocol)> = vec![
        ("central_2pc/4", central_2pc(4)),
        ("central_3pc/4", central_3pc(4)),
        ("paxos_commit/2+3", paxos_commit(2, 1)),
    ];
    for (label, protocol) in &specs {
        let mut base: Option<(usize, u64, bool)> = None;
        for threads in [1usize, 2, 4] {
            let (elapsed, report) =
                timed_check(protocol, CheckOptions { threads, ..CheckOptions::default() });
            let row = Row::from_report("scaling", label, threads, elapsed, &report);
            assert!(!row.truncated, "{label}: scaling row must be exhaustive");
            match base {
                None => base = Some((row.states, row.actions, row.ok)),
                Some(b) => assert_eq!(
                    b,
                    (row.states, row.actions, row.ok),
                    "{label}: results diverged at {threads} threads"
                ),
            }
            row.print();
            rows.push(row);
        }
    }
}

fn spill_table(rows: &mut Vec<Row>) {
    println!("\n== check_spill (64 KiB budget vs unlimited, must be byte-identical) ==");
    let protocol = central_2pc(4);
    let (elapsed, unlimited) = timed_check(&protocol, CheckOptions::default());
    let base = Row::from_report("spill", "central_2pc/4 unlimited", 1, elapsed, &unlimited);
    base.print();
    let (elapsed, budgeted) =
        timed_check(&protocol, CheckOptions { mem_budget: 64 << 10, ..CheckOptions::default() });
    let row = Row::from_report("spill", "central_2pc/4 64K", 1, elapsed, &budgeted);
    assert!(row.spill_runs >= 2, "64K budget must force repeated spilling");
    assert_eq!(
        unlimited.render(),
        budgeted.render(),
        "budgeted report must be byte-identical to unlimited"
    );
    row.print();
    println!(
        "  spill: {} runs, {} bytes written, {} merge passes",
        row.spill_runs, row.spill_bytes, row.spill_merges
    );
    rows.push(base);
    rows.push(row);
}

fn envelope_table(rows: &mut Vec<Row>) {
    println!("\n== check_envelope (exhaustive n=5, default budgets) ==");
    for (label, protocol) in [("central_2pc/5", central_2pc(5)), ("central_3pc/5", central_3pc(5))]
    {
        let (elapsed, report) = timed_check(&protocol, CheckOptions::default());
        let row = Row::from_report("envelope", label, 1, elapsed, &report);
        row.print();
        rows.push(row);
    }
}

fn envelope6_table(rows: &mut Vec<Row>) {
    println!("\n== check_envelope_n6 (single all-yes plan, 64 MiB budget) ==");
    for (label, protocol) in [("central_2pc/6", central_2pc(6)), ("central_3pc/6", central_3pc(6))]
    {
        let opts = CheckOptions {
            vote_plan: Some(vec![true; 6]),
            mem_budget: 64 << 20,
            // The n=6 all-yes fixpoint exceeds the default 2M-state cap.
            max_states: 1 << 24,
            ..CheckOptions::default()
        };
        let (elapsed, report) = timed_check(&protocol, opts);
        let row = Row::from_report("envelope_n6", label, 1, elapsed, &report);
        assert!(!row.truncated, "{label}: n=6 single-plan row must be exhaustive");
        row.print();
        rows.push(row);
    }
}

fn write_json(rows: &[Row]) {
    let mut out = String::from("{\n  \"bench\": \"check_scaling\",\n  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(out, "    {}{sep}", row.to_json());
    }
    let rss = nbc_obs::progress::peak_rss_bytes().map_or("null".to_string(), |b| b.to_string());
    let _ = writeln!(out, "  ],\n  \"peak_rss_bytes\": {rss}\n}}");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_check.json");
    std::fs::write(path, out).expect("write BENCH_check.json");
    println!("\nwrote {path}");
}

fn main() {
    let mut rows = Vec::new();
    scaling_table(&mut rows);
    spill_table(&mut rows);
    envelope_table(&mut rows);
    envelope6_table(&mut rows);
    write_json(&rows);
}
