//! The partition demonstration: the paper's assumption that the network
//! *never fails* and that failure detection is *reliable* is load-bearing.
//! When a partition masquerades as site failures, both sides of a 3PC
//! cluster run the termination protocol independently — and can decide
//! differently. This is the famous caveat of 3PC, reproduced.

use nbc_core::protocols::central_3pc;
use nbc_core::Analysis;
use nbc_engine::{run_with, PartitionSpec, RunConfig, SiteOutcome};
use nbc_simnet::LatencyModel;

fn partition_cfg(at: u64) -> RunConfig {
    let mut cfg = RunConfig::happy(3);
    // Latency 2: xact delivered t=2, votes t=4 (coordinator enters p1 and
    // broadcasts prepare), prepares would arrive t=6.
    cfg.latency = LatencyModel::constant(2);
    cfg.detect_delay = 2;
    // Isolate the coordinator from the slaves.
    cfg.partition = Some(PartitionSpec { at, groups: vec![0, 1, 1] });
    cfg
}

#[test]
fn partition_at_prepared_coordinator_splits_the_decision() {
    // Partition at t=5: the coordinator has durably entered p1 and sent
    // the prepares, but they die on the wire. Side A = {coordinator in
    // p1} commits by the class rule; side B = {slaves in w} aborts.
    let p = central_3pc(3);
    let a = Analysis::build(&p).unwrap();
    let r = run_with(&p, &a, partition_cfg(5));
    assert!(!r.consistent, "the partition must split the decision, got {r}");
    assert_eq!(r.outcomes[0], SiteOutcome::Committed, "{r}");
    assert_eq!(r.outcomes[1], SiteOutcome::Aborted, "{r}");
    assert_eq!(r.outcomes[2], SiteOutcome::Aborted, "{r}");
}

#[test]
fn partition_before_any_vote_is_harmless() {
    // Partition at t=1: nothing has been decided and nobody has voted but
    // the coordinator's side; both sides abort independently — consistent.
    let p = central_3pc(3);
    let a = Analysis::build(&p).unwrap();
    let r = run_with(&p, &a, partition_cfg(1));
    assert!(r.consistent, "{r}");
    assert_eq!(r.decision(), Some(false), "{r}");
}

#[test]
fn partition_after_commit_broadcast_is_harmless() {
    // Partition at t=9: the commits (sent at t=8... with latency 2 the
    // full run is xact@2, yes@4, prepare@6, ack@8, commit@10 — partition
    // at 9 kills the commit messages but the coordinator has durably
    // committed; slaves in p terminate by the class rule: p → commit.
    // Consistent.
    let p = central_3pc(3);
    let a = Analysis::build(&p).unwrap();
    let r = run_with(&p, &a, partition_cfg(9));
    assert!(r.consistent, "{r}");
    assert_eq!(r.decision(), Some(true), "{r}");
    assert_eq!(r.outcomes[1], SiteOutcome::Committed, "{r}");
}

#[test]
fn no_partition_no_split_across_every_time() {
    // Control: the same schedule without the partition always commits.
    let p = central_3pc(3);
    let a = Analysis::build(&p).unwrap();
    let mut cfg = partition_cfg(5);
    cfg.partition = None;
    let r = run_with(&p, &a, cfg);
    assert!(r.consistent, "{r}");
    assert_eq!(r.decision(), Some(true), "{r}");
}

#[test]
fn partition_split_window_is_exactly_the_uncertainty_window() {
    // Sweep the partition time: splits occur only while one side has
    // progressed into committable territory (coordinator in p1) and the
    // other has not. Before and after, both sides agree.
    let p = central_3pc(3);
    let a = Analysis::build(&p).unwrap();
    let mut split_times = Vec::new();
    for at in 0..14u64 {
        let r = run_with(&p, &a, partition_cfg(at));
        if !r.consistent {
            split_times.push(at);
        }
    }
    assert!(!split_times.is_empty(), "the window must exist");
    // The window is contiguous.
    let first = split_times[0];
    for (i, t) in split_times.iter().enumerate() {
        assert_eq!(*t, first + i as u64, "window must be contiguous: {split_times:?}");
    }
}

mod quorum {
    use super::*;
    use nbc_engine::{enumerate_crash_specs, sweep, TerminationRule};

    fn quorum_cfg(at: u64) -> RunConfig {
        let mut cfg = partition_cfg(at);
        cfg.rule = TerminationRule::QuorumSkeen;
        cfg
    }

    #[test]
    fn quorum_rule_closes_the_split_window() {
        // With the quorum gate, the isolated coordinator (1 of 3) blocks
        // instead of committing; the slave majority decides. No partition
        // time splits the cluster.
        let p = central_3pc(3);
        let a = Analysis::build(&p).unwrap();
        for at in 0..14u64 {
            let r = run_with(&p, &a, quorum_cfg(at));
            assert!(r.consistent, "t={at}: {r}");
        }
    }

    #[test]
    fn minority_blocks_majority_decides() {
        // In the old split window (t=4): the coordinator blocks, the
        // slaves abort — safe, at the price of minority availability.
        let p = central_3pc(3);
        let a = Analysis::build(&p).unwrap();
        let r = run_with(&p, &a, quorum_cfg(4));
        assert!(r.consistent, "{r}");
        assert_eq!(r.outcomes[0], SiteOutcome::Blocked, "{r}");
        assert_eq!(r.outcomes[1], SiteOutcome::Aborted, "{r}");
        assert_eq!(r.outcomes[2], SiteOutcome::Aborted, "{r}");
    }

    #[test]
    fn quorum_rule_still_nonblocking_for_minority_crashes() {
        // Real crashes of a minority leave the majority deciding; the
        // quorum gate costs nothing there.
        for p in [central_3pc(3), nbc_core::protocols::decentralized_3pc(3)] {
            let a = Analysis::build(&p).unwrap();
            let specs = enumerate_crash_specs(&p, None);
            let base = RunConfig::happy(3).with_rule(TerminationRule::QuorumSkeen);
            let s = sweep(&p, &a, &base, &specs);
            assert!(s.all_consistent(), "{}: {:?}", p.name, s.inconsistent_runs);
            assert!(s.nonblocking(), "{}: blocked={}", p.name, s.blocked);
        }
    }

    #[test]
    fn quorum_rule_blocks_when_majority_is_truly_dead() {
        // The price: if 2 of 3 sites really crash, the lone survivor
        // blocks under the quorum gate (it cannot tell a partition from
        // death), where plain Skeen would have terminated.
        use nbc_engine::{CrashPoint, CrashSpec};
        let p = central_3pc(3);
        let a = Analysis::build(&p).unwrap();
        let mut cfg = RunConfig::happy(3).with_rule(TerminationRule::QuorumSkeen);
        cfg.crashes = vec![
            CrashSpec { site: 0, point: CrashPoint::AtTime(3), recover_at: None },
            CrashSpec { site: 1, point: CrashPoint::AtTime(3), recover_at: None },
        ];
        let r = run_with(&p, &a, cfg);
        assert!(r.consistent, "{r}");
        assert_eq!(r.outcomes[2], SiteOutcome::Blocked, "{r}");
    }
}
