//! The protocol catalog: every protocol the paper draws, as a constructor
//! parameterized by the number of participating sites.
//!
//! | Constructor | Paper figure |
//! |---|---|
//! | [`one_pc`] | §"1-Phase Commit Protocol" (prose; inadequate — no unilateral abort) |
//! | [`central_2pc`] | "The FSAs for the 2PC protocol" |
//! | [`decentralized_2pc`] | "The decentralized 2PC protocol" |
//! | [`central_3pc`] | "A nonblocking central site 3PC protocol" |
//! | [`decentralized_3pc`] | "A nonblocking decentralized 3PC protocol" |
//!
//! The *canonical* single-automaton forms used in the paper's concurrency
//! set discussion live in [`crate::canonical`].

mod central_2pc;
mod central_3pc;
mod decentralized_2pc;
mod decentralized_3pc;
mod one_pc;

pub use central_2pc::central_2pc;
pub use central_3pc::central_3pc;
pub use decentralized_2pc::decentralized_2pc;
pub use decentralized_3pc::decentralized_3pc;
pub use one_pc::one_pc;

use crate::protocol::Protocol;

/// Every catalog protocol instantiated for `n` sites, for sweep-style
/// experiments. 1PC is excluded (it fails strict validation by design).
pub fn catalog(n: usize) -> Vec<Protocol> {
    vec![central_2pc(n), decentralized_2pc(n), central_3pc(n), decentralized_3pc(n)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_catalog_validates_strictly() {
        for n in 2..=5 {
            for p in catalog(n) {
                p.validate_strict().unwrap_or_else(|e| panic!("{} failed: {e}", p.name));
            }
        }
    }

    #[test]
    fn phase_counts_match_names() {
        let cat = catalog(3);
        assert_eq!(cat[0].phase_count(), 2, "central 2PC");
        assert_eq!(cat[1].phase_count(), 2, "decentralized 2PC");
        assert_eq!(cat[2].phase_count(), 3, "central 3PC");
        assert_eq!(cat[3].phase_count(), 3, "decentralized 3PC");
    }

    #[test]
    fn one_pc_fails_strict_validation() {
        let p = one_pc(3);
        p.validate().unwrap();
        assert!(p.validate_strict().is_err(), "1PC has a single phase");
    }
}
