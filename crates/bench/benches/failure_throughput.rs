//! B4 (timing face): cluster transaction throughput under coordinator
//! crashes, 2PC vs 3PC over the bank workload.

use nbc_bench::BenchGroup;
use nbc_engine::{CrashPoint, CrashSpec, TransitionProgress};
use nbc_simnet::SimRng;
use nbc_txn::{BankWorkload, Cluster, ClusterConfig, ProtocolKind, TxnResult};

fn run_batch(kind: ProtocolKind, crash_pct: u32, txns: u32) -> u64 {
    let mut rng = SimRng::seed_from_u64(7);
    let w0 = BankWorkload::new(3, 12, 1_000, 31);
    let mut c = Cluster::new(ClusterConfig::new(3, kind));
    assert_eq!(c.execute(&w0.setup_ops()), TxnResult::Committed);
    let mut w = w0;
    for _ in 0..txns {
        let (f, t, amt) = w.random_transfer();
        let crashes = if rng.gen_ratio(crash_pct, 100) {
            vec![CrashSpec {
                site: 0,
                point: CrashPoint::OnTransition {
                    ordinal: 2,
                    progress: TransitionProgress::AfterMsgs(rng.gen_range(0u32..=2)),
                },
                recover_at: None,
            }]
        } else {
            vec![]
        };
        let _ = c.transfer_with_crashes(&w, f, t, amt, &crashes);
    }
    c.stats.committed
}

fn main() {
    let mut g = BenchGroup::new("cluster_throughput");
    g.sample_size(20);
    const TXNS: u32 = 50;
    for kind in [ProtocolKind::Central2pc, ProtocolKind::Central3pc] {
        for crash_pct in [0u32, 25] {
            let name = kind.name().replace(' ', "_");
            g.bench(&format!("{name}/crash{crash_pct}pct"), || run_batch(kind, crash_pct, TXNS));
        }
    }
}
