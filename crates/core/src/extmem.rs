//! External-memory run files: the spill tier shared by the streaming
//! reachability fold and the `nbc-check` explorer's fingerprint store.
//!
//! A [`RunSet`] is a log-structured set of **sorted, immutable run
//! files**, each holding fixed-width records — a 16-byte little-endian
//! `u128` key followed by a `P`-byte payload. Hot in-RAM tiers
//! (`HashMap`/`HashSet`) spill their contents as one sorted run when they
//! cross a byte budget; membership is then answered from the hot tier
//! first and the runs newest-first (the newest copy of a key carries the
//! largest monotone payload, so first hit wins). Three access paths:
//!
//! * [`RunSet::get`] — one exact probe: binary-search the in-RAM sparse
//!   block index (first key of every [`BLOCK_RECORDS`]-record block),
//!   read that one block, binary-search in it. Used by the checker,
//!   whose DFS discovers states in no particular key order.
//! * [`RunSet::contains_batch`] — one sequential pass per run merged
//!   against a sorted query list. Used by the reachability fold, which
//!   naturally batches a whole BFS level at its barrier.
//! * [`RunSet::for_each_merged`] — a k-way merge-dedup over all runs in
//!   ascending key order, combining duplicate keys oldest-to-newest with
//!   a caller-supplied `combine`. Used to fold final statistics.
//!
//! When the run count exceeds [`MAX_RUNS`], the whole set is compacted by
//! the same k-way merge into a single run (one "merge pass" in
//! [`SpillStats`]) so probe cost stays bounded however tiny the budget.
//!
//! Run files live in [`std::env::temp_dir`], are never read by anything
//! else (names embed the process id and a global counter), and are
//! deleted on drop. The module is dependency-free `std`.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Records per sparse-index block: an exact probe reads one block, so
/// this bounds the probe's I/O at `BLOCK_RECORDS * (16 + P)` bytes while
/// keeping the in-RAM index at one `u128` per block.
pub const BLOCK_RECORDS: usize = 64;

/// Compact into a single run past this many runs, so lookup cost is
/// bounded regardless of how many spills a tiny budget forces.
pub const MAX_RUNS: usize = 8;

static RUN_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Counters of external-memory activity, reported out-of-band (stderr /
/// `nbc-obs`-style) — deliberately **not** part of any deterministic
/// report, which must stay byte-identical between budgeted and unlimited
/// runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Sorted runs written (spills plus compaction outputs).
    pub runs_written: u64,
    /// Total bytes written to run files.
    pub bytes_written: u64,
    /// K-way merge compactions performed.
    pub merge_passes: u64,
}

/// One immutable sorted run file plus its sparse in-RAM block index.
struct Run<const P: usize> {
    path: PathBuf,
    /// Persistent read handle for exact probes (seek + read under the
    /// lock); batch scans reopen the path for an independent cursor.
    file: Mutex<File>,
    /// First key of every `BLOCK_RECORDS`-record block, ascending.
    index: Vec<u128>,
    records: u64,
}

impl<const P: usize> Drop for Run<P> {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

const fn rec_len<const P: usize>() -> usize {
    16 + P
}

fn decode_rec<const P: usize>(buf: &[u8]) -> (u128, [u8; P]) {
    let key = u128::from_le_bytes(buf[..16].try_into().expect("record key"));
    let mut payload = [0u8; P];
    payload.copy_from_slice(&buf[16..16 + P]);
    (key, payload)
}

impl<const P: usize> Run<P> {
    /// Write `entries` (sorted by key, keys unique) as one run file.
    fn create(entries: &[(u128, [u8; P])]) -> io::Result<Self> {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0), "run must be sorted + unique");
        let path = std::env::temp_dir().join(format!(
            "nbc-run-{}-{}.bin",
            std::process::id(),
            RUN_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let mut index = Vec::with_capacity(entries.len().div_ceil(BLOCK_RECORDS));
        // Read+write: the same handle later serves the exact probes.
        let file =
            std::fs::OpenOptions::new().read(true).write(true).create_new(true).open(&path)?;
        let mut w = BufWriter::new(file);
        for (i, (key, payload)) in entries.iter().enumerate() {
            if i % BLOCK_RECORDS == 0 {
                index.push(*key);
            }
            w.write_all(&key.to_le_bytes())?;
            w.write_all(payload)?;
        }
        let mut file = w.into_inner().map_err(|e| e.into_error())?;
        file.flush()?;
        file.seek(SeekFrom::Start(0))?;
        Ok(Self { path, file: Mutex::new(file), index, records: entries.len() as u64 })
    }

    fn bytes(&self) -> u64 {
        self.records * rec_len::<P>() as u64
    }

    /// Exact probe: locate the candidate block via the sparse index, read
    /// it, binary-search the records.
    fn get(&self, key: u128) -> io::Result<Option<[u8; P]>> {
        // Last block whose first key is <= key.
        let block = match self.index.partition_point(|&first| first <= key) {
            0 => return Ok(None),
            b => b - 1,
        };
        let rec = rec_len::<P>();
        let start = block * BLOCK_RECORDS;
        let count = BLOCK_RECORDS.min(self.records as usize - start);
        let mut buf = vec![0u8; count * rec];
        {
            let mut f = self.file.lock().expect("run file poisoned");
            f.seek(SeekFrom::Start((start * rec) as u64))?;
            f.read_exact(&mut buf)?;
        }
        let mut lo = 0usize;
        let mut hi = count;
        while lo < hi {
            let mid = (lo + hi) / 2;
            let k = u128::from_le_bytes(buf[mid * rec..mid * rec + 16].try_into().expect("key"));
            match k.cmp(&key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => {
                    let mut payload = [0u8; P];
                    payload.copy_from_slice(&buf[mid * rec + 16..mid * rec + 16 + P]);
                    return Ok(Some(payload));
                }
            }
        }
        Ok(None)
    }

    /// A fresh sequential reader over the run's records.
    fn reader(&self) -> io::Result<RunReader<P>> {
        let file = File::open(&self.path)?;
        Ok(RunReader {
            r: BufReader::with_capacity(1 << 16, file),
            remaining: self.records,
            buf: vec![0u8; rec_len::<P>()],
        })
    }
}

/// Streaming cursor over one run, in ascending key order.
struct RunReader<const P: usize> {
    r: BufReader<File>,
    remaining: u64,
    buf: Vec<u8>,
}

impl<const P: usize> RunReader<P> {
    fn next(&mut self) -> io::Result<Option<(u128, [u8; P])>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        self.r.read_exact(&mut self.buf)?;
        Ok(Some(decode_rec(&self.buf)))
    }
}

/// A set of sorted run files answering membership/lookup for spilled
/// `(u128 key, [u8; P] payload)` entries. See the module docs.
pub struct RunSet<const P: usize> {
    /// Oldest first; lookups probe newest-first.
    runs: Vec<Run<P>>,
    stats: SpillStats,
}

impl<const P: usize> Default for RunSet<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const P: usize> RunSet<P> {
    /// An empty run set. No file is touched until the first spill.
    pub fn new() -> Self {
        Self { runs: Vec::new(), stats: SpillStats::default() }
    }

    /// Number of live runs.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Activity counters so far.
    pub fn stats(&self) -> SpillStats {
        self.stats
    }

    /// Spill one hot tier: sort `entries` by key (keys must be unique —
    /// they come from a map/set drain) and write them as the newest run.
    /// Compacts everything into a single run past [`MAX_RUNS`].
    /// `combine(older, newer)` merges payloads of a key present in
    /// several runs during compaction.
    pub fn spill(
        &mut self,
        mut entries: Vec<(u128, [u8; P])>,
        combine: impl Fn(&[u8; P], &[u8; P]) -> [u8; P],
    ) -> io::Result<()> {
        if entries.is_empty() {
            return Ok(());
        }
        entries.sort_unstable_by_key(|e| e.0);
        let run = Run::create(&entries)?;
        self.stats.runs_written += 1;
        self.stats.bytes_written += run.bytes();
        self.runs.push(run);
        if self.runs.len() > MAX_RUNS {
            self.compact(combine)?;
        }
        Ok(())
    }

    /// K-way merge every run into one, combining duplicate keys
    /// oldest-to-newest.
    fn compact(&mut self, combine: impl Fn(&[u8; P], &[u8; P]) -> [u8; P]) -> io::Result<()> {
        let mut merged: Vec<(u128, [u8; P])> = Vec::new();
        self.for_each_merged(&combine, |key, payload| merged.push((key, payload)))?;
        let run = Run::create(&merged)?;
        self.stats.runs_written += 1;
        self.stats.bytes_written += run.bytes();
        self.stats.merge_passes += 1;
        self.runs = vec![run];
        Ok(())
    }

    /// Exact single-key lookup, newest run first. The newest copy of a
    /// key carries the most advanced payload (payloads only grow under
    /// `combine`), so the first hit is authoritative.
    pub fn get(&self, key: u128) -> io::Result<Option<[u8; P]>> {
        for run in self.runs.iter().rev() {
            if let Some(p) = run.get(key)? {
                return Ok(Some(p));
            }
        }
        Ok(None)
    }

    /// Batched membership: `keys` must be sorted ascending and unique.
    /// Returns one flag per key, true iff the key is present in some run.
    /// One sequential merge pass per run — the "level barrier" access
    /// pattern of the streaming reachability fold.
    pub fn contains_batch(&self, keys: &[u128]) -> io::Result<Vec<bool>> {
        debug_assert!(keys.windows(2).all(|w| w[0] < w[1]), "query keys must be sorted + unique");
        let mut present = vec![false; keys.len()];
        for run in &self.runs {
            let mut reader = run.reader()?;
            let mut qi = 0usize;
            while qi < keys.len() {
                match reader.next()? {
                    None => break,
                    Some((key, _)) => {
                        while qi < keys.len() && keys[qi] < key {
                            qi += 1;
                        }
                        if qi < keys.len() && keys[qi] == key {
                            present[qi] = true;
                            qi += 1;
                        }
                    }
                }
            }
        }
        Ok(present)
    }

    /// K-way merge-dedup over all runs in ascending key order. A key
    /// present in several runs is combined oldest-to-newest before `f`
    /// sees it; the hot tier is the caller's to merge in on top.
    pub fn for_each_merged(
        &self,
        combine: impl Fn(&[u8; P], &[u8; P]) -> [u8; P],
        mut f: impl FnMut(u128, [u8; P]),
    ) -> io::Result<()> {
        let mut readers = Vec::with_capacity(self.runs.len());
        let mut heads: Vec<Option<(u128, [u8; P])>> = Vec::with_capacity(self.runs.len());
        for run in &self.runs {
            let mut r = run.reader()?;
            heads.push(r.next()?);
            readers.push(r);
        }
        loop {
            // Runs are few (<= MAX_RUNS + 1): a linear min-scan beats a
            // heap. Index order breaks key ties oldest-first, which is
            // exactly the combine order.
            let Some(min_key) = heads.iter().filter_map(|h| h.as_ref().map(|&(k, _)| k)).min()
            else {
                return Ok(());
            };
            let mut acc: Option<[u8; P]> = None;
            for (i, head) in heads.iter_mut().enumerate() {
                if let Some((k, payload)) = head {
                    if *k == min_key {
                        acc = Some(match acc {
                            None => *payload,
                            Some(older) => combine(&older, payload),
                        });
                        *head = readers[i].next()?;
                    }
                }
            }
            f(min_key, acc.expect("min key came from some head"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Deterministic pseudo-random keys (no external RNG in this
    /// workspace): a splitmix-style scramble of the index.
    fn key(i: u64) -> u128 {
        let mut x = i.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(0xdead_beef);
        x ^= x >> 31;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        ((x as u128) << 64) | (i as u128)
    }

    fn payload(v: u32) -> [u8; 4] {
        v.to_le_bytes()
    }

    /// `combine` keeps the larger value — a stand-in for the checker's
    /// monotone `best`.
    fn combine_max(a: &[u8; 4], b: &[u8; 4]) -> [u8; 4] {
        payload(u32::from_le_bytes(*a).max(u32::from_le_bytes(*b)))
    }

    #[test]
    fn spilled_entries_are_found_and_absent_keys_are_not() {
        let mut rs: RunSet<4> = RunSet::new();
        let entries: Vec<_> = (0..1000u64).map(|i| (key(i), payload(i as u32))).collect();
        rs.spill(entries, combine_max).unwrap();
        for i in 0..1000u64 {
            assert_eq!(rs.get(key(i)).unwrap(), Some(payload(i as u32)), "key {i}");
        }
        for i in 1000..1100u64 {
            assert_eq!(rs.get(key(i)).unwrap(), None, "absent key {i}");
        }
    }

    #[test]
    fn multi_run_lookup_matches_hashmap_model_and_compaction_preserves_it() {
        let mut rs: RunSet<4> = RunSet::new();
        let mut model: HashMap<u128, u32> = HashMap::new();
        // 20 spills of overlapping keys — forces at least two compactions
        // at MAX_RUNS = 8. Keys within one spill must be unique, like a
        // map drain, so dedup each batch before feeding both sides.
        for round in 0..20u64 {
            let mut batch: Vec<(u128, [u8; 4])> = (0..97u64)
                .map(|j| (key((round * 31 + j) % 211), payload((round * 1000 + j) as u32)))
                .collect();
            batch.sort_unstable_by_key(|e| e.0);
            batch.dedup_by_key(|e| e.0);
            for &(k, p) in &batch {
                let v = u32::from_le_bytes(p);
                let e = model.entry(k).or_insert(0);
                *e = (*e).max(v);
            }
            rs.spill(batch, combine_max).unwrap();
        }
        assert!(rs.stats().merge_passes >= 2, "expected repeated compaction");
        assert!(rs.run_count() <= MAX_RUNS);
        for (&k, &v) in &model {
            assert_eq!(rs.get(k).unwrap(), Some(payload(v)), "probe disagrees with model");
        }
        // Merged iteration visits every key exactly once with the
        // combined payload, in ascending key order.
        let mut seen = Vec::new();
        rs.for_each_merged(combine_max, |k, p| seen.push((k, u32::from_le_bytes(p)))).unwrap();
        assert!(seen.windows(2).all(|w| w[0].0 < w[1].0), "merged iteration unsorted");
        assert_eq!(seen.len(), model.len());
        for (k, v) in seen {
            assert_eq!(model[&k], v);
        }
    }

    #[test]
    fn batched_membership_agrees_with_exact_probes() {
        let mut rs: RunSet<0> = RunSet::new();
        for round in 0..5u64 {
            let batch: Vec<(u128, [u8; 0])> = (0..50).map(|j| (key(round * 37 + j), [])).collect();
            let mut batch = batch;
            batch.sort_unstable_by_key(|e| e.0);
            batch.dedup_by_key(|e| e.0);
            rs.spill(batch, |_, b| *b).unwrap();
        }
        let mut queries: Vec<u128> = (0..400u64).map(key).collect();
        queries.sort_unstable();
        queries.dedup();
        let flags = rs.contains_batch(&queries).unwrap();
        for (q, flag) in queries.iter().zip(flags) {
            assert_eq!(rs.get(*q).unwrap().is_some(), flag, "batch vs probe for {q:#x}");
        }
    }

    #[test]
    fn empty_spill_writes_nothing() {
        let mut rs: RunSet<8> = RunSet::new();
        rs.spill(Vec::new(), |_, b| *b).unwrap();
        assert_eq!(rs.run_count(), 0);
        assert_eq!(rs.stats(), SpillStats::default());
        assert_eq!(rs.get(42).unwrap(), None);
    }
}
