//! # nonblocking-commit
//!
//! A full reproduction of Dale Skeen, *"Nonblocking Commit Protocols"*
//! (SIGMOD 1981): the FSA model of commit protocols, the reachable-state
//! analysis behind the fundamental nonblocking theorem, the 2PC/3PC
//! protocol catalog in both the central-site and fully decentralized
//! paradigms, buffer-state synthesis, and an executable engine with the
//! paper's termination and recovery protocols — plus the storage, network,
//! and transaction-manager substrates the system needs.
//!
//! This umbrella crate re-exports the workspace members:
//!
//! * [`nbc_core`] — the formal model and every analysis of the paper;
//! * [`nbc_simnet`] — the reliable network with a perfect failure detector;
//! * [`nbc_storage`] — write-ahead log and transactional KV store;
//! * [`nbc_engine`] — discrete-event execution, crash injection,
//!   termination and recovery protocols, exhaustive sweeps;
//! * [`nbc_txn`] — a distributed transaction manager (2PL + wait-die) over
//!   the engine.
//!
//! Start with `examples/quickstart.rs`, or regenerate every figure of the
//! paper with `cargo run -p nbc-bench --bin experiments`.

#![warn(missing_docs)]

pub use nbc_core;
pub use nbc_engine;
pub use nbc_simnet;
pub use nbc_storage;
pub use nbc_txn;
