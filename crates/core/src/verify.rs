//! Exhaustive verification of the termination protocol — the sufficiency
//! direction of the fundamental nonblocking theorem, model-checked.
//!
//! The theorem's sufficiency proof must show that *it is always possible
//! to terminate the protocol, in a consistent state, at all operational
//! sites*. This module checks that claim over the entire state space: for
//! **every** reachable global state `G` and **every** nonempty subset `S`
//! of surviving sites,
//!
//! 1. the decision the elected backup of `S` derives (the backup rule per
//!    [`termination::class_decisions`](crate::termination::class_decisions)
//!    applied to its state class) must not contradict a final state already
//!    present anywhere in `G` — a crashed site may have durably committed
//!    or aborted; and
//! 2. every *possible* backup is covered: crashing sites hands the backup
//!    role down the line, but a crash only shrinks the survivor set, so
//!    enumerating all subsets enumerates every site that can ever decide
//!    with its *own* class. (A backup that inherits a class through
//!    phase-1 alignment re-derives its predecessor's decision by
//!    construction — the rule is a function of the class.)
//!
//! For a protocol satisfying the theorem the check passes with zero
//! witnesses; for 2PC it reports exactly the global states where some
//! survivor subset is stuck or, under the naive rule, would split.

use std::fmt;

use crate::analysis::Analysis;
use crate::error::ProtocolError;
use crate::fsa::StateClass;
use crate::ids::SiteId;
use crate::protocol::Protocol;
use crate::reach::NodeId;
use crate::termination::{class_decisions, Decision};

/// A global state + survivor subset where termination misbehaves.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TerminationWitness {
    /// The elected backup's decision contradicts a final state in `G`.
    ContradictsFinal {
        /// Graph node id of the global state.
        node: NodeId,
        /// Survivor subset.
        survivors: Vec<usize>,
        /// The backup whose decision contradicts.
        survivor: SiteId,
        /// The site already in a contradicting final state.
        final_site: SiteId,
    },
    /// Some survivor subset cannot decide at all (every survivor's class
    /// decision is `Blocked`). Expected — and reported — for blocking
    /// protocols; fatal for protocols the theorem calls nonblocking.
    Stuck {
        /// Graph node id of the global state.
        node: NodeId,
        /// Survivor subset.
        survivors: Vec<usize>,
    },
}

impl fmt::Display for TerminationWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ContradictsFinal { node, survivors, survivor, final_site } => write!(
                f,
                "node {node}, survivors {survivors:?}: {survivor}'s decision contradicts the final state at {final_site}"
            ),
            Self::Stuck { node, survivors } => {
                write!(f, "node {node}, survivors {survivors:?}: no survivor can decide")
            }
        }
    }
}

/// Result of the exhaustive termination check.
#[derive(Clone, Debug)]
pub struct TerminationVerification {
    /// Protocol name.
    pub protocol: String,
    /// Global states × survivor subsets examined.
    pub cases: usize,
    /// Safety violations (backup decisions contradicting existing final
    /// states). Must be empty for *every* protocol under the class-based
    /// rule.
    pub unsafe_witnesses: Vec<TerminationWitness>,
    /// Liveness failures (stuck survivor subsets). Empty iff the protocol
    /// is nonblocking.
    pub stuck_witnesses: Vec<TerminationWitness>,
}

impl TerminationVerification {
    /// No split decisions and no contradictions.
    pub fn safe(&self) -> bool {
        self.unsafe_witnesses.is_empty()
    }

    /// Safe and never stuck: the full nonblocking property.
    pub fn nonblocking(&self) -> bool {
        self.safe() && self.stuck_witnesses.is_empty()
    }
}

/// Exhaustively verify termination over every reachable global state and
/// every nonempty survivor subset.
pub fn verify_termination(protocol: &Protocol) -> Result<TerminationVerification, ProtocolError> {
    let analysis = Analysis::build(protocol)?;
    Ok(verify_termination_with(protocol, &analysis))
}

/// As [`verify_termination`] with a shared analysis.
pub fn verify_termination_with(
    protocol: &Protocol,
    analysis: &Analysis,
) -> TerminationVerification {
    let decisions = class_decisions(protocol, analysis);
    let graph =
        analysis.graph().expect("termination verification requires a graph-retaining analysis");
    let n = protocol.n_sites();
    assert!(n < usize::BITS as usize, "subset enumeration uses a bitmask");

    let mut cases = 0usize;
    let mut unsafe_witnesses = Vec::new();
    let mut stuck_witnesses = Vec::new();

    for node in 0..graph.node_count() as NodeId {
        let g = graph.node(node);
        // Per-site decision the backup rule would derive from this global
        // state, and the final-state facts.
        let mut site_decision = Vec::with_capacity(n);
        let mut final_decision: Vec<Option<bool>> = Vec::with_capacity(n);
        for (i, &s) in g.locals.iter().enumerate() {
            let class = graph.class_of(SiteId(i as u32), s);
            site_decision.push(decisions.get(&class).copied().unwrap_or(Decision::Blocked));
            final_decision.push(match class {
                StateClass::Committed => Some(true),
                StateClass::Aborted => Some(false),
                _ => None,
            });
        }

        for mask in 1u64..(1u64 << n) {
            let survivors: Vec<usize> = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
            cases += 1;

            // The elected backup is the lowest-id survivor; the decision
            // emitted (if any) comes from its class.
            let backup = survivors[0];
            let backup_decision = site_decision[backup];

            // Safety: the backup's decision vs. any final state in G —
            // including the durable finals of the crashed sites.
            match backup_decision {
                Decision::Commit | Decision::Abort => {
                    let commits = backup_decision == Decision::Commit;
                    for (j, fd) in final_decision.iter().enumerate() {
                        if matches!(fd, Some(f) if *f != commits) {
                            unsafe_witnesses.push(TerminationWitness::ContradictsFinal {
                                node,
                                survivors: survivors.clone(),
                                survivor: SiteId(backup as u32),
                                final_site: SiteId(j as u32),
                            });
                        }
                    }
                }
                Decision::Blocked => {
                    // Liveness: stuck iff no survivor's class can refine
                    // the decision (the cooperative extension).
                    let refinable =
                        survivors.iter().any(|&i| site_decision[i] != Decision::Blocked);
                    if !refinable {
                        stuck_witnesses
                            .push(TerminationWitness::Stuck { node, survivors: survivors.clone() });
                    }
                }
            }
        }
    }

    TerminationVerification {
        protocol: protocol.name.clone(),
        cases,
        unsafe_witnesses,
        stuck_witnesses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kpc::k_phase_central;
    use crate::protocols::{central_2pc, central_3pc, decentralized_2pc, decentralized_3pc};

    #[test]
    fn three_pc_verifies_nonblocking_globally() {
        for n in 2..=4 {
            for p in [central_3pc(n), decentralized_3pc(n)] {
                let v = verify_termination(&p).unwrap();
                assert!(
                    v.safe(),
                    "{}: {:?}",
                    p.name,
                    &v.unsafe_witnesses[..3.min(v.unsafe_witnesses.len())]
                );
                assert!(
                    v.nonblocking(),
                    "{}: {} stuck cases of {}",
                    p.name,
                    v.stuck_witnesses.len(),
                    v.cases
                );
                assert!(v.cases > 0);
            }
        }
    }

    #[test]
    fn two_pc_is_safe_but_gets_stuck() {
        for p in [central_2pc(3), decentralized_2pc(3)] {
            let v = verify_termination(&p).unwrap();
            // The class rule never splits a decision, even for 2PC...
            assert!(
                v.safe(),
                "{}: {:?}",
                p.name,
                &v.unsafe_witnesses[..3.min(v.unsafe_witnesses.len())]
            );
            // ...but some survivor subsets are stuck: that is blocking.
            assert!(!v.stuck_witnesses.is_empty(), "{}", p.name);
        }
    }

    #[test]
    fn stuck_cases_of_2pc_are_all_wait_subsets() {
        // Every stuck witness has all survivors in their wait states.
        let p = central_2pc(3);
        let a = Analysis::build(&p).unwrap();
        let v = verify_termination_with(&p, &a);
        for w in &v.stuck_witnesses {
            let TerminationWitness::Stuck { node, survivors } = w else {
                panic!("unexpected witness kind {w}");
            };
            let graph = a.graph().unwrap();
            let g = graph.node(*node);
            for &i in survivors {
                assert_eq!(graph.class_of(SiteId(i as u32), g.locals[i]), StateClass::Wait);
            }
        }
    }

    #[test]
    fn k_phase_family_verifies() {
        for k in 3..=4u32 {
            let p = k_phase_central(3, k).unwrap();
            let v = verify_termination(&p).unwrap();
            assert!(v.nonblocking(), "{}", p.name);
        }
    }

    #[test]
    fn witness_display() {
        let w = TerminationWitness::Stuck { node: 7, survivors: vec![1, 2] };
        assert!(w.to_string().contains("node 7"));
    }
}
