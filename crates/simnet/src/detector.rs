//! Timeout-based failure suspicion: the imperfect detector.
//!
//! The paper assumes a *perfect* failure detector — every crash is
//! reported, accurately, to every operational site ([`Network::crash`]
//! models exactly that). Real networks only offer *silence*: a site
//! suspects a peer when it has heard nothing for a timeout, and silence
//! cannot distinguish a crashed peer from a slow or partitioned one. This
//! module models that boundary: per-`(observer, peer)` suspicion timers
//! driven by message arrivals, with a configurable timeout and a
//! heartbeat-latency distribution that decides how often a *live* peer is
//! falsely suspected.
//!
//! ## Model
//!
//! Every observer conceptually pings every peer once per `timeout`
//! window. At each check deadline the detector samples the heartbeat's
//! round-trip latency from `jitter`:
//!
//! * a **down or unreachable** peer stays silent — the observer suspects
//!   it (accurate suspicion) and hears nothing more until the peer
//!   recovers or the partition heals;
//! * a live peer whose heartbeat lands within the timeout renews the
//!   lease (and clears a stale suspicion — recovery/heal detection);
//! * a live peer whose heartbeat takes *longer* than the timeout is
//!   **falsely suspected** now and unsuspected when the late heartbeat
//!   lands (`check + (latency − timeout)`).
//!
//! Real protocol messages count as heartbeats too: [`Suspicion::heard`]
//! renews the peer's lease at delivery time, so a chatty link never
//! falsely suspects. Deliveries at exactly the check deadline win the
//! tie — the driver processes network events before detector deadlines at
//! equal times, which fixes the timeout boundary unambiguously (a message
//! at `t` prevents the suspicion scheduled for `t`).
//!
//! With `jitter` bounded by the timeout the detector is *accurate* (it
//! never falsely suspects) and degenerates to the paper's perfect
//! detector with detection latency ≤ `timeout`.
//!
//! [`Network::crash`]: crate::Network::crash

use crate::latency::LatencyModel;
use crate::net::{SiteIx, Time};

/// A suspicion-state change reported by [`Suspicion::poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorEvent {
    /// `observer` now suspects `peer` has failed.
    Suspect {
        /// The suspecting site.
        observer: SiteIx,
        /// The suspected site.
        peer: SiteIx,
    },
    /// `observer` clears its suspicion of `peer` (evidence of life).
    Unsuspect {
        /// The site clearing the suspicion.
        observer: SiteIx,
        /// The peer now trusted again.
        peer: SiteIx,
    },
}

/// Parked deadline: the pair cannot change state until an external event
/// (recovery, heal, message arrival) re-arms it.
const PARKED: Time = Time::MAX;

/// One `(observer, peer)` monitoring relationship.
#[derive(Debug, Clone, Copy)]
struct Pair {
    /// Last time the observer had evidence the peer is alive.
    last_heard: Time,
    /// Next suspicion-check deadline ([`PARKED`] while nothing can
    /// change without external input).
    check_at: Time,
    /// Scheduled end of a false suspicion: the late heartbeat's arrival.
    clear_at: Option<Time>,
    /// The observer currently suspects the peer.
    suspected: bool,
}

/// Per-site suspicion timers over `n` sites — the imperfect failure
/// detector. Pure timer arithmetic: the simulation driver feeds it
/// arrivals ([`Suspicion::heard`]) and liveness ground truth
/// ([`Suspicion::site_down`] / [`Suspicion::site_up`] /
/// [`Suspicion::set_groups`]), polls it at its own deadlines, and turns
/// the emitted [`DetectorEvent`]s into protocol reactions.
#[derive(Debug, Clone)]
pub struct Suspicion {
    n: usize,
    timeout: Time,
    jitter: LatencyModel,
    /// `pairs[observer * n + peer]`.
    pairs: Vec<Pair>,
    /// Ground-truth liveness, as told by the driver.
    down: Vec<bool>,
    /// Partition assignment, when partitioned (cross-group pairs are
    /// unreachable and will be — accurately — suspected).
    groups: Option<Vec<usize>>,
}

impl Suspicion {
    /// A detector for `n` sites: suspect after `timeout` units of
    /// silence, heartbeat latency sampled from `jitter` at each check.
    /// All leases start at `start`.
    ///
    /// # Panics
    /// Panics if `timeout` is zero (a zero lease would suspect everyone
    /// instantly and forever).
    pub fn new(n: usize, timeout: Time, jitter: LatencyModel, start: Time) -> Self {
        assert!(timeout > 0, "suspicion timeout must be positive");
        let pair =
            Pair { last_heard: start, check_at: start + timeout, clear_at: None, suspected: false };
        Self { n, timeout, jitter, pairs: vec![pair; n * n], down: vec![false; n], groups: None }
    }

    /// The configured silence timeout.
    pub fn timeout(&self) -> Time {
        self.timeout
    }

    /// Does `observer` currently suspect `peer`?
    pub fn suspected(&self, observer: SiteIx, peer: SiteIx) -> bool {
        self.pairs[observer * self.n + peer].suspected
    }

    fn cut(&self, a: SiteIx, b: SiteIx) -> bool {
        self.groups.as_ref().is_some_and(|g| g[a] != g[b])
    }

    /// Record evidence of life: a message from `peer` arrived at
    /// `observer` at `now`. Renews the lease and cancels any pending
    /// false-suspicion clearance. Returns `true` if the peer was
    /// suspected — the caller should emit/handle an unsuspicion.
    pub fn heard(&mut self, now: Time, observer: SiteIx, peer: SiteIx) -> bool {
        if observer == peer || self.down[observer] {
            return false;
        }
        let p = &mut self.pairs[observer * self.n + peer];
        p.last_heard = now;
        p.check_at = now + self.timeout;
        p.clear_at = None;
        std::mem::take(&mut p.suspected)
    }

    /// The earliest pending detector deadline (check or scheduled
    /// clearance) over all pairs with an operational observer, or `None`
    /// when every pair is parked — silence that no amount of waiting
    /// will break.
    pub fn next_deadline(&self) -> Option<Time> {
        let mut min: Option<Time> = None;
        for observer in 0..self.n {
            if self.down[observer] {
                continue;
            }
            for peer in 0..self.n {
                if peer == observer {
                    continue;
                }
                let p = &self.pairs[observer * self.n + peer];
                let t = match p.clear_at {
                    Some(c) => c.min(p.check_at),
                    None => p.check_at,
                };
                if t != PARKED {
                    min = Some(min.map_or(t, |m: Time| m.min(t)));
                }
            }
        }
        min
    }

    /// Fire every deadline due by `now`, in `(observer, peer)` order,
    /// and return the suspicion-state changes. Deterministic: the same
    /// call sequence yields the same events (the jitter stream is the
    /// only randomness, and it is seeded).
    pub fn poll(&mut self, now: Time) -> Vec<DetectorEvent> {
        let mut out = Vec::new();
        for observer in 0..self.n {
            if self.down[observer] {
                continue;
            }
            for peer in 0..self.n {
                if peer == observer {
                    continue;
                }
                let cut = self.cut(observer, peer);
                let peer_down = self.down[peer];
                let ix = observer * self.n + peer;
                // A pending clearance: the late heartbeat lands.
                if let Some(t) = self.pairs[ix].clear_at {
                    if t <= now {
                        let p = &mut self.pairs[ix];
                        p.clear_at = None;
                        if p.suspected && !peer_down && !cut {
                            p.suspected = false;
                            p.last_heard = t;
                            p.check_at = t + self.timeout;
                            out.push(DetectorEvent::Unsuspect { observer, peer });
                        } else {
                            // The peer died (or was cut off) while falsely
                            // suspected: the suspicion stands, and nothing
                            // further will arrive.
                            p.check_at = PARKED;
                        }
                    }
                }
                // Check deadlines (possibly several, if time leapt).
                while self.pairs[ix].clear_at.is_none() && self.pairs[ix].check_at <= now {
                    let at = self.pairs[ix].check_at;
                    if peer_down || cut {
                        // Genuine silence: suspect (once) and park — only
                        // recovery or healing re-arms this pair.
                        let p = &mut self.pairs[ix];
                        p.check_at = PARKED;
                        if !p.suspected {
                            p.suspected = true;
                            out.push(DetectorEvent::Suspect { observer, peer });
                        }
                    } else {
                        let hb = self.jitter.sample();
                        if hb > self.timeout {
                            // Late heartbeat: falsely suspect now, clear
                            // when it lands.
                            let p = &mut self.pairs[ix];
                            p.clear_at = Some(at + (hb - self.timeout));
                            p.check_at = PARKED;
                            if !p.suspected {
                                p.suspected = true;
                                out.push(DetectorEvent::Suspect { observer, peer });
                            }
                        } else {
                            // Heartbeat in time: renew the lease; clears a
                            // stale suspicion (recovery/heal detection).
                            let p = &mut self.pairs[ix];
                            if p.suspected {
                                p.suspected = false;
                                out.push(DetectorEvent::Unsuspect { observer, peer });
                            }
                            p.last_heard = at;
                            p.check_at = at + self.timeout;
                        }
                    }
                }
            }
        }
        out
    }

    /// Ground truth: `site` crashed. Its own observations freeze (a dead
    /// observer suspects no one) until [`Suspicion::site_up`].
    pub fn site_down(&mut self, site: SiteIx) {
        self.down[site] = true;
    }

    /// Ground truth: `site` recovered at `now`. Its own monitoring
    /// restarts with a clean slate (a recovered site trusts everyone —
    /// mirroring the engine's fresh recovery view), while its peers'
    /// *standing suspicions of it* are kept and re-armed, so each
    /// observer detects the recovery at its own next check rather than
    /// by oracle.
    pub fn site_up(&mut self, now: Time, site: SiteIx) {
        self.down[site] = false;
        for other in 0..self.n {
            if other == site {
                continue;
            }
            // Peers re-check the recovered site (suspicion kept until a
            // heartbeat proves life).
            let p = &mut self.pairs[other * self.n + site];
            p.last_heard = now;
            p.check_at = now + self.timeout;
            p.clear_at = None;
            // The recovered site starts monitoring afresh.
            let q = &mut self.pairs[site * self.n + other];
            q.last_heard = now;
            q.check_at = now + self.timeout;
            q.clear_at = None;
            q.suspected = false;
        }
    }

    /// Ground truth: the partition assignment changed at `now` (`None` =
    /// healed). Newly-cut pairs will be suspected at their next check;
    /// parked pairs whose peer became reachable again are re-armed so
    /// the heal is detected by heartbeat.
    pub fn set_groups(&mut self, now: Time, groups: Option<Vec<usize>>) {
        self.groups = groups;
        for observer in 0..self.n {
            for peer in 0..self.n {
                if peer == observer || self.down[observer] || self.down[peer] {
                    continue;
                }
                if self.cut(observer, peer) {
                    continue;
                }
                let p = &mut self.pairs[observer * self.n + peer];
                if p.check_at == PARKED && p.clear_at.is_none() {
                    p.last_heard = now;
                    p.check_at = now + self.timeout;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accurate(n: usize, timeout: Time) -> Suspicion {
        // Heartbeats always arrive instantly: never a false suspicion.
        Suspicion::new(n, timeout, LatencyModel::constant(0), 0)
    }

    fn events(v: &[DetectorEvent]) -> Vec<(bool, SiteIx, SiteIx)> {
        v.iter()
            .map(|e| match *e {
                DetectorEvent::Suspect { observer, peer } => (true, observer, peer),
                DetectorEvent::Unsuspect { observer, peer } => (false, observer, peer),
            })
            .collect()
    }

    #[test]
    fn silence_of_a_down_peer_is_suspected_at_exactly_the_timeout() {
        let mut d = accurate(2, 5);
        d.site_down(1);
        // One tick before the deadline: nothing.
        assert!(d.poll(4).is_empty());
        assert!(!d.suspected(0, 1));
        // At the deadline: suspected.
        let evs = d.poll(5);
        assert_eq!(events(&evs), vec![(true, 0, 1)]);
        assert!(d.suspected(0, 1));
        // Suspicion is reported once, then the pair parks.
        assert!(d.poll(100).is_empty());
        assert_eq!(d.next_deadline(), None, "all pairs parked or dead-observer");
    }

    #[test]
    fn hearing_at_the_deadline_wins_the_tie() {
        let mut d = accurate(2, 5);
        d.site_down(1);
        // Evidence of life delivered at exactly t=5 (the driver processes
        // deliveries before detector deadlines at equal times).
        assert!(!d.heard(5, 0, 1));
        assert!(d.poll(5).is_empty(), "lease renewed at the boundary");
        // The renewed lease expires at 10, not before.
        assert!(d.poll(9).is_empty());
        assert_eq!(events(&d.poll(10)), vec![(true, 0, 1)]);
    }

    #[test]
    fn late_heartbeat_falsely_suspects_then_clears_on_arrival() {
        // Heartbeat latency is always 8 > timeout 5: every check falsely
        // suspects, and the heartbeat lands 3 units later.
        let mut d = Suspicion::new(2, 5, LatencyModel::constant(8), 0);
        let evs = d.poll(5);
        // Both observers falsely suspect each other at t=5.
        assert_eq!(events(&evs), vec![(true, 0, 1), (true, 1, 0)]);
        // The late heartbeats land at 5 + (8 - 5) = 8.
        assert_eq!(d.next_deadline(), Some(8));
        assert!(d.poll(7).is_empty());
        let evs = d.poll(8);
        assert_eq!(events(&evs), vec![(false, 0, 1), (false, 1, 0)]);
        assert!(!d.suspected(0, 1));
        // The cleared lease restarts from the arrival: next check at 13.
        assert_eq!(d.next_deadline(), Some(13));
    }

    #[test]
    fn message_arrival_cancels_a_pending_clearance() {
        let mut d = Suspicion::new(2, 5, LatencyModel::constant(8), 0);
        d.poll(5); // false suspicion, clearance scheduled for t=8
                   // A real message at t=6 is earlier evidence of life: the caller
                   // learns the peer was suspected (and emits the unsuspicion).
        assert!(d.heard(6, 0, 1));
        assert!(!d.suspected(0, 1));
        // The stale clearance is gone; the new lease expires at 11.
        let evs = d.poll(8);
        assert_eq!(events(&evs), vec![(false, 1, 0)], "only the other direction clears");
        assert_eq!(
            d.next_deadline(),
            Some(11),
            "observer 0's lease renewed at 6; observer 1 cleared at 8, expires 13"
        );
    }

    #[test]
    fn suspicion_during_an_in_flight_recovery() {
        let mut d = accurate(3, 5);
        d.site_down(2);
        assert_eq!(events(&d.poll(5)), vec![(true, 0, 2), (true, 1, 2)]);
        // Site 2 recovers at t=7: observers keep suspecting until their
        // own next check proves life; site 2 itself trusts everyone.
        d.site_up(7, 2);
        assert!(d.suspected(0, 2));
        assert!(!d.suspected(2, 0));
        let evs = d.poll(12);
        // Observers 0 and 1 detect the recovery by heartbeat at 7+5.
        assert!(events(&evs).contains(&(false, 0, 2)));
        assert!(events(&evs).contains(&(false, 1, 2)));
        assert!(!d.suspected(0, 2));
    }

    #[test]
    fn crash_during_a_pending_clearance_keeps_the_suspicion() {
        // Falsely suspected at 5, clearance scheduled for 8 — but the
        // peer genuinely dies at 6. The unsuspicion must NOT fire.
        let mut d = Suspicion::new(2, 5, LatencyModel::constant(8), 0);
        d.poll(5);
        d.site_down(1);
        assert!(d
            .poll(8)
            .iter()
            .all(|e| !matches!(e, DetectorEvent::Unsuspect { observer: 0, .. })));
        assert!(d.suspected(0, 1), "suspicion stands; the peer really is down");
        // Recovery re-arms the checks — but with constant 8-unit
        // heartbeats every check is late: at 15 the recovered site 1
        // falsely suspects 0 (0's standing suspicion of 1 just
        // re-schedules), and both clear when the heartbeats land at 18.
        d.site_up(10, 1);
        assert_eq!(events(&d.poll(15)), vec![(true, 1, 0)]);
        assert_eq!(events(&d.poll(18)), vec![(false, 0, 1), (false, 1, 0)]);
        assert!(!d.suspected(0, 1));
    }

    #[test]
    fn partition_is_suspected_and_heal_is_detected() {
        let mut d = accurate(2, 5);
        d.set_groups(0, Some(vec![0, 1]));
        assert_eq!(events(&d.poll(5)), vec![(true, 0, 1), (true, 1, 0)]);
        assert_eq!(d.next_deadline(), None, "cut pairs are parked");
        // Heal at t=9: pairs re-arm, life detected one timeout later.
        d.set_groups(9, None);
        assert_eq!(d.next_deadline(), Some(14));
        assert_eq!(events(&d.poll(14)), vec![(false, 0, 1), (false, 1, 0)]);
    }

    #[test]
    fn dead_observers_suspect_no_one() {
        let mut d = accurate(2, 5);
        d.site_down(0);
        d.site_down(1);
        assert!(d.poll(50).is_empty());
        assert_eq!(d.next_deadline(), None);
    }

    #[test]
    fn seeded_jitter_unsuspicion_races_are_deterministic_and_sane() {
        // Uniform heartbeat latency crossing the timeout from both sides:
        // a seeded stream of false suspicions and clearances. Invariants:
        // per pair, Suspect and Unsuspect strictly alternate (starting
        // with Suspect), and the event stream replays identically from
        // the same seed.
        let run = |seed: u64| {
            let mut d = Suspicion::new(3, 4, LatencyModel::uniform(1, 9, seed), 0);
            let mut log = Vec::new();
            let mut now = 0;
            while now < 400 {
                let Some(t) = d.next_deadline() else { break };
                now = t;
                log.extend(events(&d.poll(now)).into_iter().map(|e| (now, e)));
            }
            log
        };
        for seed in [0u64, 1, 7, 0xdead_beef] {
            let log = run(seed);
            assert_eq!(log, run(seed), "seed {seed}: detector stream must be deterministic");
            for a in 0..3usize {
                for b in 0..3usize {
                    if a == b {
                        continue;
                    }
                    let mine: Vec<bool> = log
                        .iter()
                        .filter(|(_, (_, o, p))| *o == a && *p == b)
                        .map(|(_, (s, _, _))| *s)
                        .collect();
                    for (i, s) in mine.iter().enumerate() {
                        assert_eq!(
                            *s,
                            i % 2 == 0,
                            "seed {seed} pair {a}->{b}: suspect/unsuspect must alternate"
                        );
                    }
                }
            }
            // Timestamps non-decreasing (poll is driven at deadlines).
            assert!(log.windows(2).all(|w| w[0].0 <= w[1].0));
        }
    }

    #[test]
    fn accurate_detector_never_falsely_suspects() {
        // jitter max == timeout: every heartbeat lands within the lease.
        let mut d = Suspicion::new(3, 5, LatencyModel::uniform(1, 5, 42), 0);
        let mut now = 0;
        for _ in 0..200 {
            let Some(t) = d.next_deadline() else { break };
            now = t;
            assert!(d.poll(now).is_empty(), "no event without a real failure");
        }
        assert!(now > 0);
    }
}
