//! Aggregate throughput metrics for a pipeline run.

use nbc_simnet::Time;
use nbc_storage::SyncStats;

/// Everything a pipeline run measured, in integer simulation units so two
/// runs with the same seed produce bit-identical reports (`Eq` is the
/// determinism test's whole assertion).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ThroughputReport {
    /// Transactions submitted to this run.
    pub txns: u64,
    /// Rounds that decided commit while in flight.
    pub committed: u64,
    /// Rounds that decided abort while in flight (no-votes from lock
    /// conflicts, or crash-induced aborts).
    pub aborted: u64,
    /// Rounds that ended blocked and were later reaped by the
    /// termination/recovery path.
    pub blocked: u64,
    /// Of the blocked rounds, how many the reaper committed (a durable
    /// decision existed at a crashed site).
    pub reaped_commits: u64,
    /// Admission attempts that had to wait for older lock holders
    /// (wait-die backpressure events).
    pub deferrals: u64,
    /// Simulation time at which the last event of the run fired.
    pub finished_at: Time,
    /// Total engine events across all rounds.
    pub events: u64,
    /// Total protocol messages across all rounds.
    pub msgs: u64,
    /// Median commit latency (admission to decision, sim ticks).
    pub p50_commit_latency: Time,
    /// 99th-percentile commit latency (sim ticks).
    pub p99_commit_latency: Time,
    /// WAL sync requests issued during the run (all sites).
    pub wal_syncs: u64,
    /// Physical WAL forces actually performed (all sites).
    pub wal_forces: u64,
    /// Syncs absorbed by group commit: `wal_syncs - wal_forces`.
    pub syncs_saved: u64,
}

impl ThroughputReport {
    /// Rounds that reached *some* outcome (commit, abort, or reap).
    pub fn decided(&self) -> u64 {
        self.committed + self.aborted + self.blocked
    }

    /// Decided transactions per 1000 simulation ticks — the pipeline's
    /// throughput figure (sim time stands in for wall time).
    pub fn txns_per_kilotick(&self) -> f64 {
        self.decided() as f64 * 1000.0 / self.finished_at.max(1) as f64
    }

    /// Fold in the WAL sync counters accumulated between two snapshots.
    pub fn set_sync_stats(&mut self, requested: u64, physical: u64) {
        self.wal_syncs = requested;
        self.wal_forces = physical;
        self.syncs_saved = requested - physical;
    }

    /// Convenience over [`ThroughputReport::set_sync_stats`] for a stats
    /// delta.
    pub fn set_sync_delta(&mut self, delta: SyncStats) {
        self.set_sync_stats(delta.requested, delta.physical);
    }
}

impl std::fmt::Display for ThroughputReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} txns in {} ticks ({:.2} txn/ktick): {} committed, {} aborted, \
             {} blocked ({} reap-committed), {} deferrals",
            self.txns,
            self.finished_at,
            self.txns_per_kilotick(),
            self.committed,
            self.aborted,
            self.blocked,
            self.reaped_commits,
            self.deferrals,
        )?;
        writeln!(
            f,
            "  latency p50={} p99={} ticks; {} events, {} msgs",
            self.p50_commit_latency, self.p99_commit_latency, self.events, self.msgs
        )?;
        write!(
            f,
            "  wal: {} syncs requested, {} forced, {} saved by group commit",
            self.wal_syncs, self.wal_forces, self.syncs_saved
        )
    }
}

/// `values` must be sorted ascending; returns the `pct`-th percentile by
/// nearest-rank, or 0 for an empty slice.
pub(crate) fn percentile(values: &[Time], pct: u64) -> Time {
    if values.is_empty() {
        return 0;
    }
    let rank = (pct * values.len() as u64).div_ceil(100).max(1) as usize;
    values[rank.min(values.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<Time> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 99), 99);
        assert_eq!(percentile(&v, 100), 100);
        assert_eq!(percentile(&[], 50), 0);
        assert_eq!(percentile(&[7], 99), 7);
    }

    #[test]
    fn report_math_and_display() {
        let mut r = ThroughputReport {
            txns: 10,
            committed: 7,
            aborted: 2,
            blocked: 1,
            finished_at: 500,
            ..Default::default()
        };
        r.set_sync_stats(40, 25);
        assert_eq!(r.decided(), 10);
        assert_eq!(r.syncs_saved, 15);
        assert!((r.txns_per_kilotick() - 20.0).abs() < 1e-9);
        let text = format!("{r}");
        assert!(text.contains("saved by group commit"));
    }
}
