//! Termination decision rules (paper §"Termination Protocols" and
//! §"Decision Rule For Backup Coordinators").
//!
//! A termination protocol is used by the operational sites when crashes of
//! other sites impair the execution of a commit protocol; its purpose is to
//! terminate the transaction at all operational sites in a consistent
//! manner. The *decision* half of the protocol lives here in `core` (it is
//! pure analysis over local states); the *communication* half — election,
//! the two-phase backup broadcast, handling of cascading failures — lives
//! in the `nbc-engine` crate.

use std::fmt;

use crate::analysis::Analysis;
use crate::fsa::StateClass;
use crate::ids::{SiteId, StateId};
use crate::protocol::Protocol;

/// Outcome of a termination decision.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Decision {
    /// Commit the transaction at all operational sites.
    Commit,
    /// Abort the transaction at all operational sites.
    Abort,
    /// Neither commit nor abort can be inferred safely — the protocol
    /// *blocks* (possible only for protocols violating the fundamental
    /// nonblocking theorem, e.g. 2PC).
    Blocked,
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Commit => "commit",
            Self::Abort => "abort",
            Self::Blocked => "blocked",
        })
    }
}

/// The paper's decision rule for backup coordinators, applied to the
/// backup's own local state: *if the concurrency set for the current state
/// of the backup coordinator contains a commit state, then the transaction
/// is committed; otherwise, it is aborted.*
///
/// This rule is safe **only** for protocols satisfying the fundamental
/// nonblocking theorem. Applied to a blocking protocol it can violate
/// atomicity (e.g. a 2PC slave in `w` would commit while the crashed
/// coordinator had aborted) — `nbc-engine` demonstrates this, and offers
/// [`cautious_decision`] for the general case.
pub fn backup_decision(analysis: &Analysis, site: SiteId, state: StateId) -> Decision {
    match analysis.class_of(site, state) {
        StateClass::Committed => Decision::Commit,
        StateClass::Aborted => Decision::Abort,
        _ => {
            if analysis.cs_has_commit(site, state) {
                Decision::Commit
            } else {
                Decision::Abort
            }
        }
    }
}

/// A decision rule that is safe for *any* protocol, at the price of
/// reporting [`Decision::Blocked`] exactly where the theorem says a
/// decision cannot be inferred:
///
/// * a commit state among the collected states → commit;
/// * an abort state → abort (atomicity of the protocol guarantees no
///   commit state can then exist anywhere);
/// * some collected state whose concurrency set contains no commit state
///   → abort (no site, operational or crashed, can have committed);
/// * some collected state that is committable and whose concurrency set
///   contains no abort state → commit;
/// * otherwise → blocked.
///
/// With a single collected state and a nonblocking protocol this coincides
/// with [`backup_decision`]; with the full set of operational states it is
/// the classical *cooperative termination protocol* for 2PC.
pub fn cautious_decision(analysis: &Analysis, states: &[(SiteId, StateId)]) -> Decision {
    assert!(!states.is_empty(), "termination requires at least one operational site");
    if states.iter().any(|&(i, s)| analysis.class_of(i, s) == StateClass::Committed) {
        return Decision::Commit;
    }
    if states.iter().any(|&(i, s)| analysis.class_of(i, s) == StateClass::Aborted) {
        return Decision::Abort;
    }
    if states.iter().any(|&(i, s)| !analysis.cs_has_commit(i, s)) {
        return Decision::Abort;
    }
    if states.iter().any(|&(i, s)| analysis.committable(i, s) && !analysis.cs_has_abort(i, s)) {
        return Decision::Commit;
    }
    Decision::Blocked
}

/// The backup decision rule applied per state *class* — the canonical form
/// in which the paper presents its 3PC decision table (commit iff
/// `s ∈ {p, c}`).
///
/// Quantifying over every occupied state of a class across all sites makes
/// the rule a *function* of the class: every backup — the original
/// coordinator, a slave promoted mid-cascade, or a site aligned by a
/// previous backup that crashed — derives the same decision from the same
/// class, which is what keeps cascading backup handoffs consistent.
///
/// Per class:
/// * `Committed` → commit, `Aborted` → abort;
/// * if no occupied state of the class has a commit state in its
///   concurrency set → **abort** (nobody anywhere can have committed);
/// * else if every occupied state of the class is committable and none is
///   concurrent with an abort state → **commit**;
/// * else → **blocked** (a blocking class; impossible for protocols
///   satisfying the fundamental nonblocking theorem).
pub fn class_decisions(
    protocol: &Protocol,
    analysis: &Analysis,
) -> std::collections::BTreeMap<StateClass, Decision> {
    let mut by_class: std::collections::BTreeMap<StateClass, Vec<(SiteId, StateId)>> =
        std::collections::BTreeMap::new();
    for site in protocol.sites() {
        let fsa = protocol.fsa(site);
        for idx in 0..fsa.state_count() {
            let s = StateId(idx as u32);
            if analysis.occupied(site, s) {
                by_class.entry(fsa.state(s).class).or_default().push((site, s));
            }
        }
    }
    by_class
        .into_iter()
        .map(|(class, states)| {
            let d = match class {
                StateClass::Committed => Decision::Commit,
                StateClass::Aborted => Decision::Abort,
                _ => {
                    let any_commit_cs = states.iter().any(|&(i, s)| analysis.cs_has_commit(i, s));
                    let all_safe_commit = states
                        .iter()
                        .all(|&(i, s)| analysis.committable(i, s) && !analysis.cs_has_abort(i, s));
                    if all_safe_commit {
                        Decision::Commit
                    } else if !any_commit_cs {
                        Decision::Abort
                    } else {
                        Decision::Blocked
                    }
                }
            };
            (class, d)
        })
        .collect()
}

/// One row of a termination decision table.
#[derive(Clone, Debug)]
pub struct DecisionRow {
    /// Site whose state the row describes.
    pub site: SiteId,
    /// The local state.
    pub state: StateId,
    /// Display name of the state.
    pub state_name: String,
    /// State class.
    pub class: StateClass,
    /// The paper's backup rule applied to this state.
    pub backup: Decision,
    /// The cautious rule applied to this single state.
    pub cautious: Decision,
}

/// The full decision table of a protocol: for every occupied local state,
/// what a backup coordinator holding that state would decide.
///
/// For the canonical 3PC this reproduces the paper's table: commit if
/// `s ∈ {p, c}`, abort if `s ∈ {q, w, a}`.
pub fn decision_table(protocol: &Protocol, analysis: &Analysis) -> Vec<DecisionRow> {
    let mut rows = Vec::new();
    for site in protocol.sites() {
        let fsa = protocol.fsa(site);
        for idx in 0..fsa.state_count() {
            let s = StateId(idx as u32);
            if !analysis.occupied(site, s) {
                continue;
            }
            rows.push(DecisionRow {
                site,
                state: s,
                state_name: fsa.state(s).name.clone(),
                class: fsa.state(s).class,
                backup: backup_decision(analysis, site, s),
                cautious: cautious_decision(analysis, &[(site, s)]),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::{central_2pc, central_3pc, decentralized_3pc};

    #[test]
    fn three_pc_backup_rule_matches_paper_table() {
        // Paper table (canonical 3PC): commit iff s ∈ {p, c}. It holds
        // verbatim for every decentralized peer and for central-site
        // slaves. The central-site *coordinator's* p1 is the one exception:
        // no slave can commit before the coordinator reaches c1, so
        // CS(p1) contains no commit state and the rule aborts — which is
        // safe, since nobody can have committed.
        for p in [central_3pc(3), decentralized_3pc(3)] {
            let a = Analysis::build(&p).unwrap();
            for row in decision_table(&p, &a) {
                let coord_p1 = p.paradigm == crate::protocol::Paradigm::CentralSite
                    && row.site == SiteId(0)
                    && row.class == StateClass::Prepared;
                let expected = match row.class {
                    StateClass::Committed => Decision::Commit,
                    StateClass::Prepared if !coord_p1 => Decision::Commit,
                    StateClass::Prepared => Decision::Abort,
                    _ => Decision::Abort,
                };
                assert_eq!(row.backup, expected, "{} {} {}", p.name, row.site, row.state_name);
                // For a nonblocking protocol the cautious rule never blocks
                // and never contradicts safety; where it decides commit the
                // backup rule must also commit.
                assert_ne!(row.cautious, Decision::Blocked, "{} {}", p.name, row.state_name);
            }
        }
    }

    #[test]
    fn two_pc_backup_rule_is_unsafe_where_theorem_predicts() {
        // A 2PC slave in w: CS(w) contains c1, so the naive backup rule
        // says commit — but the crashed coordinator may have aborted.
        let p = central_2pc(3);
        let a = Analysis::build(&p).unwrap();
        let slave = SiteId(1);
        let w = p.fsa(slave).state_by_name("w").unwrap();
        assert_eq!(backup_decision(&a, slave, w), Decision::Commit);
        // The cautious rule refuses to decide: this is the blocking case.
        assert_eq!(cautious_decision(&a, &[(slave, w)]), Decision::Blocked);
    }

    #[test]
    fn two_pc_cooperative_rule_unblocks_with_more_information() {
        let p = central_2pc(3);
        let a = Analysis::build(&p).unwrap();
        let s1 = SiteId(1);
        let s2 = SiteId(2);
        let w = p.fsa(s1).state_by_name("w").unwrap();
        let q = p.fsa(s2).state_by_name("q").unwrap();
        let c = p.fsa(s2).state_by_name("c").unwrap();
        let abort = p.fsa(s2).state_by_name("a").unwrap();
        // Another operational slave still in q: nobody can have committed.
        assert_eq!(cautious_decision(&a, &[(s1, w), (s2, q)]), Decision::Abort);
        // Another slave already committed: propagate.
        assert_eq!(cautious_decision(&a, &[(s1, w), (s2, c)]), Decision::Commit);
        // Another slave already aborted: propagate.
        assert_eq!(cautious_decision(&a, &[(s1, w), (s2, abort)]), Decision::Abort);
        // Both in w: the classical 2PC blocking scenario.
        let w2 = p.fsa(s2).state_by_name("w").unwrap();
        assert_eq!(cautious_decision(&a, &[(s1, w), (s2, w2)]), Decision::Blocked);
    }

    #[test]
    fn final_states_decide_themselves() {
        let p = central_3pc(2);
        let a = Analysis::build(&p).unwrap();
        let coord = SiteId(0);
        let c1 = p.fsa(coord).state_by_name("c1").unwrap();
        let a1 = p.fsa(coord).state_by_name("a1").unwrap();
        assert_eq!(backup_decision(&a, coord, c1), Decision::Commit);
        assert_eq!(backup_decision(&a, coord, a1), Decision::Abort);
    }

    #[test]
    #[should_panic]
    fn cautious_decision_requires_nonempty_input() {
        let p = central_3pc(2);
        let a = Analysis::build(&p).unwrap();
        let _ = cautious_decision(&a, &[]);
    }

    #[test]
    fn decision_display() {
        assert_eq!(Decision::Commit.to_string(), "commit");
        assert_eq!(Decision::Abort.to_string(), "abort");
        assert_eq!(Decision::Blocked.to_string(), "blocked");
    }
}
