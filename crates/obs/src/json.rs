//! A hand-rolled JSON layer: string escaping, an object/array builder,
//! and a strict well-formedness validator.
//!
//! The workspace takes no external dependencies, so the exporters and the
//! machine-readable CLI output (`--json`) build their JSON through these
//! helpers. Key order is the insertion order — callers keep it fixed so
//! output is deterministic and diffable.

/// Escape `s` for inclusion in a JSON string literal (without the quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Quote and escape `s` as a JSON string literal.
pub fn string(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

/// Incremental JSON object builder; fields appear in call order.
#[derive(Debug, Default)]
pub struct Obj {
    buf: String,
}

impl Obj {
    /// Start an empty object.
    pub fn new() -> Self {
        Self::default()
    }

    fn push_key(&mut self, key: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push_str(&string(key));
        self.buf.push(':');
    }

    /// Add a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.push_key(key);
        self.buf.push_str(&string(value));
        self
    }

    /// Add an unsigned integer field.
    pub fn num(mut self, key: &str, value: u64) -> Self {
        self.push_key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Add a float field (rendered with Rust's shortest-roundtrip
    /// formatting, which is deterministic).
    pub fn float(mut self, key: &str, value: f64) -> Self {
        self.push_key(key);
        if value.is_finite() {
            self.buf.push_str(&value.to_string());
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Add a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.push_key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Add a field whose value is already-encoded JSON.
    pub fn raw(mut self, key: &str, json: &str) -> Self {
        self.push_key(key);
        self.buf.push_str(json);
        self
    }

    /// Finish: the complete `{...}` text.
    pub fn build(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Encode an iterator of already-encoded JSON values as an array.
pub fn array(items: impl IntoIterator<Item = String>) -> String {
    let mut buf = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&item);
    }
    buf.push(']');
    buf
}

/// Strictly validate that `input` is one well-formed JSON value (with
/// optional surrounding whitespace). Returns the byte offset and a
/// message on failure. Used by the trace tests and the CI smoke step to
/// check every exported line without an external JSON library.
pub fn validate(input: &str) -> Result<(), String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err<T>(&self, msg: &str) -> Result<T, String> {
        Err(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected {:?}", b as char))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            self.err(&format!("expected {lit:?}"))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.pos += 1,
                                    _ => return self.err("bad \\u escape"),
                                }
                            }
                        }
                        _ => return self.err("bad escape"),
                    }
                }
                Some(c) if c < 0x20 => return self.err("raw control character in string"),
                Some(_) => self.pos += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| -> Result<(), String> {
            let start = p.pos;
            while matches!(p.peek(), Some(b'0'..=b'9')) {
                p.pos += 1;
            }
            if p.pos == start {
                p.err("expected digits")
            } else {
                Ok(())
            }
        };
        digits(self)?;
        if self.peek() == Some(b'.') {
            self.pos += 1;
            digits(self)?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            digits(self)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(string("hi"), "\"hi\"");
    }

    #[test]
    fn builder_orders_fields() {
        let j = Obj::new().num("t", 5).str("kind", "crash").bool("ok", true).build();
        assert_eq!(j, "{\"t\":5,\"kind\":\"crash\",\"ok\":true}");
        validate(&j).unwrap();
    }

    #[test]
    fn arrays_and_raw_nest() {
        let inner = Obj::new().num("x", 1).build();
        let j = Obj::new().raw("items", &array([inner, "2".to_string()])).build();
        assert_eq!(j, "{\"items\":[{\"x\":1},2]}");
        validate(&j).unwrap();
    }

    #[test]
    fn validator_accepts_valid() {
        for ok in
            ["{}", "[]", "null", "-3.25e+2", "\"a\\u00e9b\"", " { \"a\" : [ 1 , true , { } ] } "]
        {
            validate(ok).unwrap_or_else(|e| panic!("{ok:?}: {e}"));
        }
    }

    #[test]
    fn validator_rejects_invalid() {
        for bad in ["{", "{\"a\":}", "[1,]", "01x", "\"unterminated", "{} {}", "{\"a\" 1}"] {
            assert!(validate(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn float_formatting_is_plain() {
        let j = Obj::new().float("v", 2.5).float("bad", f64::NAN).build();
        assert_eq!(j, "{\"v\":2.5,\"bad\":null}");
        validate(&j).unwrap();
    }
}
