//! End-to-end cross-crate validation: the paper's *theory* (nbc-core's
//! theorem checker) must agree with the paper's *practice* (nbc-engine's
//! exhaustive crash sweeps) on every protocol in the catalog. This is the
//! reproduction's keystone test.

use nonblocking_commit::nbc_core::protocols::catalog;
use nonblocking_commit::nbc_core::{resilience, sync_check, theorem, Analysis, ReachOptions};
use nonblocking_commit::nbc_engine::{enumerate_crash_specs, sweep, RunConfig, TerminationRule};

#[test]
fn theorem_verdict_matches_engine_behavior() {
    for n in [2usize, 3] {
        for p in catalog(n) {
            let analysis = Analysis::build(&p).unwrap();
            let verdict = theorem::check_with(&p, &analysis);
            let specs = enumerate_crash_specs(&p, None);
            let base = RunConfig::happy(n).with_rule(TerminationRule::Skeen);
            let s = sweep(&p, &analysis, &base, &specs);

            // Safety holds regardless of the verdict (the Skeen class rule
            // refuses to guess).
            assert!(s.all_consistent(), "{}: {:?}", p.name, s.inconsistent_runs);

            if verdict.nonblocking() {
                // Theorem says nonblocking ⇒ no sweep run may block.
                assert!(
                    s.nonblocking(),
                    "{}: theorem says nonblocking but engine blocked {} of {}",
                    p.name,
                    s.blocked,
                    s.total
                );
            } else {
                // Theorem says blocking ⇒ the sweep must find a blocking
                // run (the theorem's necessity direction, demonstrated).
                assert!(
                    s.blocked > 0,
                    "{}: theorem says blocking but no sweep run blocked ({} runs)",
                    p.name,
                    s.total
                );
            }
        }
    }
}

#[test]
fn resilience_matches_double_failure_sweeps() {
    use nonblocking_commit::nbc_engine::sweep::sweep_double;
    // 3PC is nonblocking w.r.t. n-1 failures per the corollary; the
    // double-failure sweep (2 of 3 sites die) must terminate every run.
    for p in catalog(3).into_iter().filter(|p| p.phase_count() == 3) {
        let analysis = Analysis::build(&p).unwrap();
        let r = resilience::resilience(&p).unwrap();
        assert_eq!(r.max_tolerated_failures, 2, "{}", p.name);
        let specs = enumerate_crash_specs(&p, None);
        let s = sweep_double(&p, &analysis, &RunConfig::happy(3), &specs, (0..24u64).step_by(3));
        assert!(s.all_consistent(), "{}: {:?}", p.name, s.inconsistent_runs);
        assert!(s.nonblocking(), "{}: blocked={}", p.name, s.blocked);
    }
}

#[test]
fn synchronicity_holds_across_catalog() {
    for p in catalog(3) {
        let a = Analysis::build(&p).unwrap();
        let r = sync_check::check_with(&p, &a, ReachOptions::default());
        assert!(r.synchronous_within_one(), "{}: {:?}", p.name, r.escapes);
    }
}

#[test]
fn concurrency_sets_are_symmetric() {
    // (j, t) ∈ CS(i, s) ⟺ (i, s) ∈ CS(j, t): co-occupancy is symmetric.
    use nonblocking_commit::nbc_core::StateId;
    for p in catalog(3) {
        let a = Analysis::build(&p).unwrap();
        for site in p.sites() {
            for idx in 0..p.fsa(site).state_count() {
                let s = StateId(idx as u32);
                for &(j, t) in a.concurrency_set(site, s) {
                    assert!(
                        a.concurrency_set(j, t).contains(&(site, s)),
                        "{}: CS asymmetry at {site:?}/{s:?} vs {j:?}/{t:?}",
                        p.name
                    );
                }
            }
        }
    }
}

#[test]
fn synthesis_agrees_with_engine() {
    use nonblocking_commit::nbc_core::synthesis::make_nonblocking;
    // Synthesize 3PC from 2PC, then let the engine hammer it.
    for p in catalog(3).into_iter().filter(|p| p.phase_count() == 2) {
        let fixed = make_nonblocking(&p).unwrap();
        let analysis = Analysis::build(&fixed).unwrap();
        let specs = enumerate_crash_specs(&fixed, None);
        let s = sweep(&fixed, &analysis, &RunConfig::happy(3), &specs);
        assert!(s.all_consistent(), "{}: {:?}", fixed.name, s.inconsistent_runs);
        assert!(s.nonblocking(), "{}: blocked={}", fixed.name, s.blocked);
    }
}
