//! B2/B3 (timing face): cost of one commit round per protocol and
//! paradigm — the engine's wall-clock reflection of message counts and
//! phase counts.

use nbc_bench::BenchGroup;
use nbc_core::protocols::{central_2pc, central_3pc, decentralized_2pc, decentralized_3pc};
use nbc_core::Analysis;
use nbc_engine::{run_with, RunConfig};
use std::hint::black_box;

fn bench_commit_round() {
    let mut g = BenchGroup::new("commit_round");
    g.sample_size(50);
    for n in [3usize, 5, 8] {
        for (label, p) in [("central_2pc", central_2pc(n)), ("central_3pc", central_3pc(n))] {
            let a = Analysis::build(&p).unwrap();
            g.bench(&format!("{label}/{n}"), || {
                run_with(black_box(&p), &a, RunConfig::happy(p.n_sites())).msgs_sent
            });
        }
    }
    for n in [3usize, 5] {
        for (label, p) in [
            ("decentralized_2pc", decentralized_2pc(n)),
            ("decentralized_3pc", decentralized_3pc(n)),
        ] {
            let a = Analysis::build(&p).unwrap();
            g.bench(&format!("{label}/{n}"), || {
                run_with(black_box(&p), &a, RunConfig::happy(p.n_sites())).msgs_sent
            });
        }
    }
}

fn bench_termination_round() {
    // A commit round that goes through the full termination protocol:
    // coordinator dies after a partial prepare broadcast.
    use nbc_engine::{CrashPoint, CrashSpec, TransitionProgress};
    let mut g = BenchGroup::new("termination_round");
    g.sample_size(50);
    for n in [3usize, 5] {
        let p = central_3pc(n);
        let a = Analysis::build(&p).unwrap();
        let cfg = RunConfig::happy(n).with_crash(CrashSpec {
            site: 0,
            point: CrashPoint::OnTransition {
                ordinal: 2,
                progress: TransitionProgress::AfterMsgs(1),
            },
            recover_at: None,
        });
        g.bench(&format!("central_3pc/{n}"), || {
            let r = run_with(black_box(&p), &a, cfg.clone());
            assert!(r.consistent);
            r.msgs_sent
        });
    }
}

fn bench_tracing_overhead() {
    // The observability tax: the same commit round with tracing disabled
    // (the default — one `None` branch per emission point), with events
    // collected into a memory sink, with a bounded flight-recorder ring,
    // and with the full JSONL render on top. `off` is the baseline the
    // flight recorder must stay close to when no failure ever dumps it.
    use nbc_engine::run_traced;
    use nbc_obs::export::to_jsonl;
    use nbc_obs::{FlightRecorder, MemorySink, SharedSink, Tracer};
    let mut g = BenchGroup::new("tracing_overhead");
    g.sample_size(50);
    for n in [3usize, 5] {
        let p = central_3pc(n);
        let a = Analysis::build(&p).unwrap();
        g.bench(&format!("off/{n}"), || run_with(black_box(&p), &a, RunConfig::happy(n)).msgs_sent);
        g.bench(&format!("memory_sink/{n}"), || {
            let sink = SharedSink::new(MemorySink::default());
            let r =
                run_traced(black_box(&p), &a, RunConfig::happy(n), Tracer::to_sink(sink.clone()));
            r.msgs_sent + sink.with(|s| s.events.len() as u64)
        });
        g.bench(&format!("flight_recorder/{n}"), || {
            let rec = SharedSink::new(FlightRecorder::new(256));
            let r =
                run_traced(black_box(&p), &a, RunConfig::happy(n), Tracer::to_sink(rec.clone()));
            r.msgs_sent + rec.with(|s| s.total_seen())
        });
        g.bench(&format!("jsonl/{n}"), || {
            let sink = SharedSink::new(MemorySink::default());
            run_traced(black_box(&p), &a, RunConfig::happy(n), Tracer::to_sink(sink.clone()));
            sink.with(|s| to_jsonl(&s.events).len() as u64)
        });
    }
}

fn main() {
    bench_commit_round();
    bench_termination_round();
    bench_tracing_overhead();
}
