//! The local half of the paper's recovery protocol: fold a recovered
//! record stream into per-transaction protocol state.
//!
//! Paper (§"The processing of a single transaction"): *when a failure
//! occurs before the commit point is reached, the site will abort the
//! transaction immediately upon recovering.* A site that progressed past
//! its vote must instead consult the log for the decision or, lacking one,
//! ask the operational sites — that is the engine's job; this module tells
//! it exactly where each transaction stood.

use std::collections::BTreeMap;

use crate::wal::LogRecord;

/// Where a transaction stood at the moment of the crash, from this site's
/// point of view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnOutcome {
    /// Decision durable: committed.
    Committed,
    /// Decision durable: aborted.
    Aborted,
    /// The site had begun but not voted yes (no progress past the initial
    /// state): abort unilaterally on recovery.
    AbortOnRecovery,
    /// The site voted yes (progressed to a wait/prepared state) but has no
    /// durable decision: it must ask the other sites.
    MustAsk {
        /// Last durable local state id.
        state: u32,
        /// Last durable state class (engine's encoding).
        class: u8,
        /// Class aligned to by a termination protocol, if any — the state
        /// the site should *report* when a new termination round starts.
        aligned_class: Option<u8>,
    },
}

/// Recovered per-transaction summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredTxn {
    /// Transaction id.
    pub txn: u64,
    /// Protocol position at the crash.
    pub outcome: TxnOutcome,
    /// True if an `End` record made the transaction fully locally applied.
    pub ended: bool,
}

/// Class encodings the engine uses inside `Progress`/`AlignedTo` records.
/// Kept here so the storage crate can distinguish "hasn't voted" from
/// "voted yes" without depending on `nbc-core`.
pub mod class_codes {
    /// `q` — initial, not voted.
    pub const INITIAL: u8 = 0;
    /// `w` — voted yes, waiting.
    pub const WAIT: u8 = 1;
    /// `p` — prepared to commit.
    pub const PREPARED: u8 = 2;
    /// `a` — aborted.
    pub const ABORTED: u8 = 3;
    /// `c` — committed.
    pub const COMMITTED: u8 = 4;
    /// Custom classes start here.
    pub const CUSTOM_BASE: u8 = 16;
}

/// Fold a record stream into per-transaction summaries, in first-seen
/// order of transaction ids.
pub fn summarize(records: &[LogRecord]) -> Vec<RecoveredTxn> {
    #[derive(Default)]
    struct Acc {
        last_progress: Option<(u32, u8)>,
        aligned: Option<u8>,
        decision: Option<bool>,
        ended: bool,
        order: usize,
    }
    let mut map: BTreeMap<u64, Acc> = BTreeMap::new();
    let mut next_order = 0usize;
    fn touch<'m>(map: &'m mut BTreeMap<u64, Acc>, next_order: &mut usize, txn: u64) -> &'m mut Acc {
        map.entry(txn).or_insert_with(|| {
            let acc = Acc { order: *next_order, ..Acc::default() };
            *next_order += 1;
            acc
        })
    }

    for r in records {
        match r {
            LogRecord::Begin { txn } => {
                touch(&mut map, &mut next_order, *txn);
            }
            LogRecord::Progress { txn, state, class } => {
                let acc = touch(&mut map, &mut next_order, *txn);
                acc.last_progress = Some((*state, *class));
                // Protocol progress supersedes an earlier alignment.
                acc.aligned = None;
            }
            LogRecord::AlignedTo { txn, class } => {
                touch(&mut map, &mut next_order, *txn).aligned = Some(*class);
            }
            LogRecord::Decision { txn, commit } => {
                touch(&mut map, &mut next_order, *txn).decision = Some(*commit);
            }
            LogRecord::End { txn } => {
                touch(&mut map, &mut next_order, *txn).ended = true;
            }
            LogRecord::Put { txn, .. } | LogRecord::Delete { txn, .. } => {
                touch(&mut map, &mut next_order, *txn);
            }
            LogRecord::Checkpoint { .. } => {
                // Checkpoints carry no per-transaction protocol state.
            }
        }
    }

    let mut out: Vec<(usize, RecoveredTxn)> = map
        .into_iter()
        .map(|(txn, acc)| {
            let outcome = match acc.decision {
                Some(true) => TxnOutcome::Committed,
                Some(false) => TxnOutcome::Aborted,
                None => match acc.last_progress {
                    // Progress no further than the initial state: the site
                    // had not voted — abort on recovery.
                    None => TxnOutcome::AbortOnRecovery,
                    Some((_, class)) if class == class_codes::INITIAL => {
                        TxnOutcome::AbortOnRecovery
                    }
                    Some((_, class)) if class == class_codes::ABORTED => TxnOutcome::Aborted,
                    Some((_, class)) if class == class_codes::COMMITTED => TxnOutcome::Committed,
                    Some((state, class)) => {
                        TxnOutcome::MustAsk { state, class, aligned_class: acc.aligned }
                    }
                },
            };
            (acc.order, RecoveredTxn { txn, outcome, ended: acc.ended })
        })
        .collect();
    out.sort_by_key(|(order, _)| *order);
    out.into_iter().map(|(_, t)| t).collect()
}

#[cfg(test)]
mod tests {
    use super::class_codes::*;
    use super::*;

    #[test]
    fn not_voted_aborts_on_recovery() {
        let recs = vec![LogRecord::Begin { txn: 1 }];
        let s = summarize(&recs);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].outcome, TxnOutcome::AbortOnRecovery);
        assert!(!s[0].ended);
    }

    #[test]
    fn voted_yes_must_ask() {
        let recs = vec![
            LogRecord::Begin { txn: 1 },
            LogRecord::Progress { txn: 1, state: 1, class: WAIT },
        ];
        let s = summarize(&recs);
        assert_eq!(
            s[0].outcome,
            TxnOutcome::MustAsk { state: 1, class: WAIT, aligned_class: None }
        );
    }

    #[test]
    fn prepared_must_ask() {
        let recs = vec![
            LogRecord::Begin { txn: 1 },
            LogRecord::Progress { txn: 1, state: 1, class: WAIT },
            LogRecord::Progress { txn: 1, state: 3, class: PREPARED },
        ];
        let s = summarize(&recs);
        assert_eq!(
            s[0].outcome,
            TxnOutcome::MustAsk { state: 3, class: PREPARED, aligned_class: None }
        );
    }

    #[test]
    fn durable_decision_wins() {
        let recs = vec![
            LogRecord::Begin { txn: 1 },
            LogRecord::Progress { txn: 1, state: 1, class: WAIT },
            LogRecord::Decision { txn: 1, commit: true },
        ];
        let s = summarize(&recs);
        assert_eq!(s[0].outcome, TxnOutcome::Committed);
    }

    #[test]
    fn local_abort_progress_is_aborted() {
        let recs = vec![
            LogRecord::Begin { txn: 1 },
            LogRecord::Progress { txn: 1, state: 2, class: ABORTED },
        ];
        let s = summarize(&recs);
        assert_eq!(s[0].outcome, TxnOutcome::Aborted);
    }

    #[test]
    fn alignment_is_reported() {
        let recs = vec![
            LogRecord::Begin { txn: 1 },
            LogRecord::Progress { txn: 1, state: 3, class: PREPARED },
            LogRecord::AlignedTo { txn: 1, class: WAIT },
        ];
        let s = summarize(&recs);
        assert_eq!(
            s[0].outcome,
            TxnOutcome::MustAsk { state: 3, class: PREPARED, aligned_class: Some(WAIT) }
        );
    }

    #[test]
    fn progress_supersedes_alignment() {
        let recs = vec![
            LogRecord::Begin { txn: 1 },
            LogRecord::AlignedTo { txn: 1, class: WAIT },
            LogRecord::Progress { txn: 1, state: 3, class: PREPARED },
        ];
        let s = summarize(&recs);
        assert_eq!(
            s[0].outcome,
            TxnOutcome::MustAsk { state: 3, class: PREPARED, aligned_class: None }
        );
    }

    #[test]
    fn multiple_transactions_in_first_seen_order() {
        let recs = vec![
            LogRecord::Begin { txn: 5 },
            LogRecord::Begin { txn: 2 },
            LogRecord::Decision { txn: 5, commit: false },
            LogRecord::Decision { txn: 2, commit: true },
            LogRecord::End { txn: 2 },
        ];
        let s = summarize(&recs);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].txn, 5);
        assert_eq!(s[0].outcome, TxnOutcome::Aborted);
        assert_eq!(s[1].txn, 2);
        assert_eq!(s[1].outcome, TxnOutcome::Committed);
        assert!(s[1].ended);
    }
}
