//! Protocol-figure experiments: render each FSA figure of the paper as a
//! transition table and as Graphviz DOT.

use nbc_core::protocols::{central_2pc, central_3pc, decentralized_2pc, decentralized_3pc};
use nbc_core::{dot, Protocol, SiteId};

fn render_protocol_figure(p: &Protocol, note: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("{p}\n"));
    out.push_str(note);
    out.push_str("\nDOT (render with `dot -Tsvg`):\n");
    out.push_str(&dot::protocol_to_dot(p));
    out
}

/// E1 — "The FSAs for the 2PC protocol": coordinator + slave automata.
pub fn e1_central_2pc_fsas() -> String {
    let p = central_2pc(3);
    let mut out = render_protocol_figure(
        &p,
        "Paper shape: coordinator q1-w1-{a1,c1}; slave q-{w,a}, w-{a,c}. \
         The coordinator's own votes are the parenthesized (yes_1)/(no_1).",
    );
    // Also render the single coordinator FSA standalone, matching the
    // figure's left half.
    out.push_str("\nCoordinator automaton standalone:\n");
    out.push_str(&dot::fsa_to_dot(p.fsa(SiteId(0)), "central-2pc-coordinator"));
    out
}

/// E3 — "The decentralized 2PC protocol": the single peer automaton all
/// sites run.
pub fn e3_decentralized_2pc_fsa() -> String {
    render_protocol_figure(
        &decentralized_2pc(3),
        "Paper shape: every site runs q-{w,a}, w-{a,c}; each round is a \
         full message interchange (votes go to every site, including the \
         sender itself).",
    )
}

/// E7 — "A nonblocking central site 3PC protocol".
pub fn e7_central_3pc_fsas() -> String {
    let p = central_3pc(3);
    let report = nbc_core::theorem::check(&p).expect("analyzable");
    let mut out = render_protocol_figure(
        &p,
        "Paper shape: 2PC plus the buffer state p between w and c \
         (prepare/ack round).",
    );
    out.push_str(&format!("\nTheorem verdict: {report}"));
    out
}

/// E8 — "A nonblocking decentralized 3PC protocol".
pub fn e8_decentralized_3pc_fsa() -> String {
    let p = decentralized_3pc(3);
    let report = nbc_core::theorem::check(&p).expect("analyzable");
    let mut out = render_protocol_figure(
        &p,
        "Paper shape: decentralized 2PC plus a full prepare interchange \
         before commit.",
    );
    out.push_str(&format!("\nTheorem verdict: {report}"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figures_render_nonempty_dot() {
        for f in [
            e1_central_2pc_fsas,
            e3_decentralized_2pc_fsa,
            e7_central_3pc_fsas,
            e8_decentralized_3pc_fsa,
        ] {
            let s = f();
            assert!(s.contains("digraph"), "missing DOT output");
            assert!(s.contains("->"));
        }
    }

    #[test]
    fn three_pc_figures_claim_nonblocking() {
        assert!(e7_central_3pc_fsas().contains("NONBLOCKING"));
        assert!(e8_decentralized_3pc_fsa().contains("NONBLOCKING"));
    }
}
