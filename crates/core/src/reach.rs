//! Global transaction states and the reachable state graph.
//!
//! The paper defines the *global state* of a distributed transaction as a
//! vector containing the local states of all FSAs plus the outstanding
//! messages in the network; it "defines the complete processing state of a
//! transaction". The graph of all global states reachable from the initial
//! global state is the *reachable state graph*, from which concurrency
//! sets, committability, and the fundamental nonblocking theorem are all
//! computed.
//!
//! Classification of global states (paper §"Comments on reachable state
//! graphs"):
//! * **final** — every local state in the vector is final;
//! * **terminal** — no immediately reachable successors;
//! * **deadlocked** — terminal but not final;
//! * **inconsistent** — contains both a local commit and a local abort
//!   state. A protocol that preserves transaction atomicity can have *no*
//!   reachable inconsistent state.
//!
//! The graph "grows exponentially with the number of sites, but, in
//! practice, we seldom need to actually build it" — we do build it (that is
//! the point of the reproduction), with a configurable node bound.

use std::collections::{HashMap, VecDeque};
use std::fmt;

use crate::error::ProtocolError;
use crate::fsa::{Consume, StateClass};
use crate::ids::{MsgKind, SiteId, StateId};
use crate::protocol::Protocol;

/// Index of a node in the reachable state graph.
pub type NodeId = u32;

/// Address of an outstanding message: who sent it, to whom, what kind.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct MsgAddr {
    /// Sender.
    pub src: SiteId,
    /// Receiver.
    pub dst: SiteId,
    /// Message kind.
    pub kind: MsgKind,
}

/// The multiset of outstanding messages, kept as a sorted vector of
/// `(address, count)` pairs with strictly positive counts so that equal
/// multisets are structurally equal (and hash equal).
#[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
pub struct Msgs(Vec<(MsgAddr, u16)>);

impl Msgs {
    /// Empty multiset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from addresses (duplicates accumulate).
    pub fn from_addrs(iter: impl IntoIterator<Item = MsgAddr>) -> Self {
        let mut m = Self::new();
        for a in iter {
            m.add(a);
        }
        m
    }

    /// Number of outstanding messages (with multiplicity).
    pub fn len(&self) -> usize {
        self.0.iter().map(|&(_, c)| c as usize).sum()
    }

    /// True if no messages are outstanding.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Multiplicity of `addr`.
    pub fn count(&self, addr: MsgAddr) -> u16 {
        match self.0.binary_search_by_key(&addr, |&(a, _)| a) {
            Ok(i) => self.0[i].1,
            Err(_) => 0,
        }
    }

    /// True if at least one message with this address is outstanding.
    pub fn contains(&self, addr: MsgAddr) -> bool {
        self.count(addr) > 0
    }

    /// Add one message.
    pub fn add(&mut self, addr: MsgAddr) {
        match self.0.binary_search_by_key(&addr, |&(a, _)| a) {
            Ok(i) => self.0[i].1 += 1,
            Err(i) => self.0.insert(i, (addr, 1)),
        }
    }

    /// Remove one message; panics if absent (callers check first).
    pub fn remove(&mut self, addr: MsgAddr) {
        match self.0.binary_search_by_key(&addr, |&(a, _)| a) {
            Ok(i) => {
                if self.0[i].1 == 1 {
                    self.0.remove(i);
                } else {
                    self.0[i].1 -= 1;
                }
            }
            Err(_) => panic!("removing absent message {addr:?}"),
        }
    }

    /// Iterate over `(address, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (MsgAddr, u16)> + '_ {
        self.0.iter().copied()
    }
}

/// One global transaction state.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct GlobalState {
    /// `locals[i]` = local state of site `i`.
    pub locals: Box<[StateId]>,
    /// Outstanding messages on the network tape.
    pub msgs: Msgs,
}

/// An edge of the reachable state graph: site `site` fired transition
/// `transition` (an index into its FSA's transition table). For `Any`
/// triggers, `any_choice` records which source's message was consumed.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Edge {
    /// Successor global state.
    pub to: NodeId,
    /// Site whose transition fired.
    pub site: SiteId,
    /// Index into the firing site's transition table.
    pub transition: u32,
    /// For `Any` triggers, the source whose message was consumed.
    pub any_choice: Option<SiteId>,
}

/// Options for graph construction.
#[derive(Copy, Clone, Debug)]
pub struct ReachOptions {
    /// Abort with [`ProtocolError::GraphTooLarge`] beyond this many nodes.
    pub max_states: usize,
}

impl Default for ReachOptions {
    fn default() -> Self {
        Self { max_states: 1 << 22 }
    }
}

/// The reachable state graph of a protocol (in the absence of failures).
pub struct ReachGraph {
    nodes: Vec<GlobalState>,
    out_edges: Vec<Vec<Edge>>,
    initial: NodeId,
    /// `classes[i][s]` = class of state `s` of site `i` (copied from the
    /// protocol so the graph is self-contained for classification).
    classes: Vec<Vec<StateClass>>,
}

impl ReachGraph {
    /// Build the reachable state graph with default options.
    pub fn build(protocol: &Protocol) -> Result<Self, ProtocolError> {
        Self::build_with(protocol, ReachOptions::default())
    }

    /// Build with explicit options.
    pub fn build_with(protocol: &Protocol, opts: ReachOptions) -> Result<Self, ProtocolError> {
        let n = protocol.n_sites();
        let initial_state = GlobalState {
            locals: protocol.fsas().iter().map(|f| f.initial()).collect(),
            msgs: Msgs::from_addrs(protocol.initial_msgs().iter().map(|m| MsgAddr {
                src: m.src,
                dst: m.dst,
                kind: m.kind,
            })),
        };

        let mut nodes: Vec<GlobalState> = vec![initial_state.clone()];
        let mut index: HashMap<GlobalState, NodeId> = HashMap::new();
        index.insert(initial_state, 0);
        let mut out_edges: Vec<Vec<Edge>> = vec![Vec::new()];
        let mut queue: VecDeque<NodeId> = VecDeque::from([0]);

        while let Some(id) = queue.pop_front() {
            let state = nodes[id as usize].clone();
            let mut edges = Vec::new();
            for i in 0..n {
                let site = SiteId(i as u32);
                let fsa = protocol.fsa(site);
                let local = state.locals[i];
                for (ti, t) in fsa.outgoing(local) {
                    match &t.consume {
                        Consume::Spontaneous => {
                            let succ = apply(&state, i, t.to, &[], &t.emit, site);
                            push_succ(
                                succ,
                                Edge { to: 0, site, transition: ti, any_choice: None },
                                &mut nodes,
                                &mut index,
                                &mut out_edges,
                                &mut queue,
                                &mut edges,
                                opts.max_states,
                            )?;
                        }
                        Consume::All(v) => {
                            let needed: Vec<MsgAddr> = v
                                .iter()
                                .map(|&(src, kind)| MsgAddr { src, dst: site, kind })
                                .collect();
                            if needed.iter().all(|&a| state.msgs.contains(a)) {
                                let succ = apply(&state, i, t.to, &needed, &t.emit, site);
                                push_succ(
                                    succ,
                                    Edge { to: 0, site, transition: ti, any_choice: None },
                                    &mut nodes,
                                    &mut index,
                                    &mut out_edges,
                                    &mut queue,
                                    &mut edges,
                                    opts.max_states,
                                )?;
                            }
                        }
                        Consume::Any(v) => {
                            for &(src, kind) in v {
                                let addr = MsgAddr { src, dst: site, kind };
                                if state.msgs.contains(addr) {
                                    let succ = apply(&state, i, t.to, &[addr], &t.emit, site);
                                    push_succ(
                                        succ,
                                        Edge { to: 0, site, transition: ti, any_choice: Some(src) },
                                        &mut nodes,
                                        &mut index,
                                        &mut out_edges,
                                        &mut queue,
                                        &mut edges,
                                        opts.max_states,
                                    )?;
                                }
                            }
                        }
                    }
                }
            }
            out_edges[id as usize] = edges;
        }

        let classes =
            protocol.fsas().iter().map(|f| f.states().iter().map(|s| s.class).collect()).collect();

        Ok(Self { nodes, out_edges, initial: 0, classes })
    }

    /// Number of reachable global states.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.out_edges.iter().map(Vec::len).sum()
    }

    /// The initial global state's node id.
    pub fn initial(&self) -> NodeId {
        self.initial
    }

    /// The global state at `id`.
    pub fn node(&self, id: NodeId) -> &GlobalState {
        &self.nodes[id as usize]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[GlobalState] {
        &self.nodes
    }

    /// Out-edges of `id`.
    pub fn edges(&self, id: NodeId) -> &[Edge] {
        &self.out_edges[id as usize]
    }

    /// Class of local state `s` of site `i`.
    pub fn class_of(&self, site: SiteId, s: StateId) -> StateClass {
        self.classes[site.index()][s.index()]
    }

    /// A global state is *final* if all local states are final.
    pub fn is_final(&self, id: NodeId) -> bool {
        let g = self.node(id);
        g.locals.iter().enumerate().all(|(i, &s)| self.class_of(SiteId(i as u32), s).is_final())
    }

    /// A global state is *terminal* if it has no immediately reachable
    /// successors.
    pub fn is_terminal(&self, id: NodeId) -> bool {
        self.out_edges[id as usize].is_empty()
    }

    /// A terminal state that is not final is *deadlocked*.
    pub fn is_deadlocked(&self, id: NodeId) -> bool {
        self.is_terminal(id) && !self.is_final(id)
    }

    /// A global state is *inconsistent* if it contains both a local commit
    /// and a local abort state.
    pub fn is_inconsistent(&self, id: NodeId) -> bool {
        let g = self.node(id);
        let mut commit = false;
        let mut abort = false;
        for (i, &s) in g.locals.iter().enumerate() {
            match self.class_of(SiteId(i as u32), s) {
                StateClass::Committed => commit = true,
                StateClass::Aborted => abort = true,
                _ => {}
            }
        }
        commit && abort
    }

    /// Summary statistics over the whole graph.
    pub fn stats(&self) -> GraphStats {
        let mut st = GraphStats {
            nodes: self.node_count(),
            edges: self.edge_count(),
            ..GraphStats::default()
        };
        for id in 0..self.node_count() as NodeId {
            if self.is_final(id) {
                st.final_states += 1;
            }
            if self.is_terminal(id) {
                st.terminal_states += 1;
            }
            if self.is_deadlocked(id) {
                st.deadlocked_states += 1;
            }
            if self.is_inconsistent(id) {
                st.inconsistent_states += 1;
            }
        }
        st
    }
}

/// Aggregate classification counts for a reachable state graph.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GraphStats {
    /// Reachable global states.
    pub nodes: usize,
    /// Transitions between them.
    pub edges: usize,
    /// States where every local state is final.
    pub final_states: usize,
    /// States with no successors.
    pub terminal_states: usize,
    /// Terminal but not final.
    pub deadlocked_states: usize,
    /// States containing both a local commit and a local abort.
    pub inconsistent_states: usize,
}

impl fmt::Display for GraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} global states, {} edges; {} final, {} terminal, {} deadlocked, {} inconsistent",
            self.nodes,
            self.edges,
            self.final_states,
            self.terminal_states,
            self.deadlocked_states,
            self.inconsistent_states
        )
    }
}

fn apply(
    state: &GlobalState,
    site_ix: usize,
    to: StateId,
    consumed: &[MsgAddr],
    emit: &[crate::fsa::Envelope],
    site: SiteId,
) -> GlobalState {
    let mut locals = state.locals.clone();
    locals[site_ix] = to;
    let mut msgs = state.msgs.clone();
    for &a in consumed {
        msgs.remove(a);
    }
    for e in emit {
        msgs.add(MsgAddr { src: site, dst: e.dst, kind: e.kind });
    }
    GlobalState { locals, msgs }
}

#[allow(clippy::too_many_arguments)]
fn push_succ(
    succ: GlobalState,
    mut edge: Edge,
    nodes: &mut Vec<GlobalState>,
    index: &mut HashMap<GlobalState, NodeId>,
    out_edges: &mut Vec<Vec<Edge>>,
    queue: &mut VecDeque<NodeId>,
    edges: &mut Vec<Edge>,
    max_states: usize,
) -> Result<(), ProtocolError> {
    let to = match index.get(&succ) {
        Some(&id) => id,
        None => {
            if nodes.len() >= max_states {
                return Err(ProtocolError::GraphTooLarge { limit: max_states });
            }
            let id = nodes.len() as NodeId;
            nodes.push(succ.clone());
            index.insert(succ, id);
            out_edges.push(Vec::new());
            queue.push_back(id);
            id
        }
    };
    edge.to = to;
    edges.push(edge);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::{central_2pc, central_3pc, decentralized_2pc, decentralized_3pc};

    #[test]
    fn msgs_multiset_semantics() {
        let a = MsgAddr { src: SiteId(0), dst: SiteId(1), kind: MsgKind::YES };
        let b = MsgAddr { src: SiteId(1), dst: SiteId(0), kind: MsgKind::NO };
        let mut m = Msgs::new();
        assert!(m.is_empty());
        m.add(a);
        m.add(a);
        m.add(b);
        assert_eq!(m.len(), 3);
        assert_eq!(m.count(a), 2);
        assert!(m.contains(b));
        m.remove(a);
        assert_eq!(m.count(a), 1);
        m.remove(a);
        assert!(!m.contains(a));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn msgs_equality_is_order_independent() {
        let a = MsgAddr { src: SiteId(0), dst: SiteId(1), kind: MsgKind::YES };
        let b = MsgAddr { src: SiteId(1), dst: SiteId(0), kind: MsgKind::NO };
        let m1 = Msgs::from_addrs([a, b]);
        let m2 = Msgs::from_addrs([b, a]);
        assert_eq!(m1, m2);
    }

    #[test]
    #[should_panic]
    fn removing_absent_message_panics() {
        let a = MsgAddr { src: SiteId(0), dst: SiteId(1), kind: MsgKind::YES };
        Msgs::new().remove(a);
    }

    #[test]
    fn two_site_2pc_graph_is_consistent_and_live() {
        // Paper figure: "Reachable state graph for the 2-site 2PC protocol".
        let p = central_2pc(2);
        let g = ReachGraph::build(&p).unwrap();
        let st = g.stats();
        assert!(st.nodes > 5, "nontrivial graph, got {}", st.nodes);
        assert_eq!(st.inconsistent_states, 0, "2PC preserves atomicity without failures");
        assert_eq!(st.deadlocked_states, 0, "no deadlock without failures");
        assert!(st.final_states >= 2, "both outcomes reachable");
    }

    #[test]
    fn all_catalog_graphs_are_consistent() {
        for n in 2..=3 {
            for p in crate::protocols::catalog(n) {
                let g = ReachGraph::build(&p).unwrap();
                let st = g.stats();
                assert_eq!(st.inconsistent_states, 0, "{}", p.name);
                assert_eq!(st.deadlocked_states, 0, "{}", p.name);
            }
        }
    }

    #[test]
    fn both_outcomes_reachable_everywhere() {
        for p in [central_2pc(3), central_3pc(3), decentralized_2pc(3), decentralized_3pc(3)] {
            let g = ReachGraph::build(&p).unwrap();
            let mut commit_reachable = false;
            let mut abort_reachable = false;
            for id in 0..g.node_count() as NodeId {
                if g.is_final(id) {
                    let all_commit =
                        g.node(id).locals.iter().enumerate().all(|(i, &s)| {
                            g.class_of(SiteId(i as u32), s) == StateClass::Committed
                        });
                    if all_commit {
                        commit_reachable = true;
                    } else {
                        abort_reachable = true;
                    }
                }
            }
            assert!(commit_reachable && abort_reachable, "{}", p.name);
        }
    }

    #[test]
    fn terminal_states_have_all_final_locals() {
        for p in crate::protocols::catalog(3) {
            let g = ReachGraph::build(&p).unwrap();
            for id in 0..g.node_count() as NodeId {
                if g.is_terminal(id) {
                    assert!(g.is_final(id), "{}: node {id} terminal but not final", p.name);
                }
            }
        }
    }

    #[test]
    fn graph_limit_enforced() {
        let p = central_3pc(3);
        let err = ReachGraph::build_with(&p, ReachOptions { max_states: 4 });
        assert!(matches!(err, Err(ProtocolError::GraphTooLarge { limit: 4 })));
    }

    #[test]
    fn three_pc_graph_larger_than_two_pc() {
        // The buffer state adds a phase, so the graph must grow.
        let g2 = ReachGraph::build(&central_2pc(3)).unwrap();
        let g3 = ReachGraph::build(&central_3pc(3)).unwrap();
        assert!(g3.node_count() > g2.node_count());
    }

    #[test]
    fn edges_record_firing_site() {
        let p = central_2pc(2);
        let g = ReachGraph::build(&p).unwrap();
        // The initial state's only enabled transition is the coordinator's
        // request consumption... plus nothing else (slaves have no input yet).
        let init_edges = g.edges(g.initial());
        assert_eq!(init_edges.len(), 1);
        assert_eq!(init_edges[0].site, SiteId(0));
    }
}
