//! Per-site runtime state: the FSA interpreter, inbox, WAL, and the mode
//! machine (normal execution / termination / blocked / recovering).

use std::collections::BTreeSet;

use nbc_core::{Consume, Fsa, MsgKind, SiteId, StateId, Vote};
use nbc_storage::{LogRecord, Wal};

use crate::class_map::encode_class;

/// What a site is currently doing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mode {
    /// Executing the commit protocol normally.
    Normal,
    /// Running the termination protocol.
    Terminating {
        /// The backup coordinator this site currently recognizes.
        backup: usize,
    },
    /// Termination blocked: waiting for a crashed site to recover.
    Blocked,
    /// Crashed (not running).
    Down,
    /// Restarted, running the recovery protocol (asking around).
    Recovering,
    /// Finished: reached a final state or adopted a decision.
    Done,
}

/// Backup-coordinator bookkeeping (only meaningful on the backup itself).
#[derive(Debug, Clone, Default)]
pub struct BackupState {
    /// Sites whose phase-1 ack is still pending.
    pub pending_acks: BTreeSet<usize>,
    /// Collected `(site, pre-alignment class)` pairs from acks.
    pub collected: Vec<(usize, u8)>,
    /// True once phase 1 has been broadcast.
    pub phase1_sent: bool,
}

/// One simulated site.
#[derive(Debug, Clone)]
pub struct SiteRt {
    /// This site's index.
    pub id: usize,
    /// Current local FSA state.
    pub state: StateId,
    /// Unconsumed protocol messages: multiset of `(src, kind)`.
    pub inbox: Vec<(usize, MsgKind)>,
    /// The write-ahead log.
    pub wal: Wal,
    /// Current mode.
    pub mode: Mode,
    /// Which sites this site believes operational (updated by the failure
    /// detector). Recovered sites are *not* re-added here for the purposes
    /// of backup election; they interact through the recovery protocol.
    pub view: Vec<bool>,
    /// Class aligned to by termination phase 1, if any.
    pub aligned_class: Option<u8>,
    /// Backup bookkeeping (when acting as backup).
    pub backup_state: BackupState,
    /// Adopted outcome, if decided (`true` = commit).
    pub outcome: Option<bool>,
    /// Number of transition attempts made (for crash-point matching).
    pub transitions_attempted: u32,
    /// Recovery protocol: queries from recovering sites awaiting an answer.
    pub pending_queries: Vec<usize>,
    /// Recovery protocol (asker side): replies collected, `(site, outcome,
    /// class)`.
    pub recovery_replies: Vec<(usize, Option<bool>, u8)>,
    /// Sites known (via recovery notices) to be up again.
    pub recovered_peers: BTreeSet<usize>,
    /// Peers this site currently *suspects* have failed (timeout-based
    /// detection only; empty under the perfect detector). Unlike `view`,
    /// a suspicion is revocable: an unsuspicion restores `view[peer]`.
    pub suspects: BTreeSet<usize>,
    /// Monitor only: true once this site has ever actually crashed. The
    /// checker's blocking oracle uses it to scope the `Recovering`
    /// exemption to sites that really went down — a falsely-suspected
    /// live site gets no such pass.
    pub ever_down: bool,
    /// Monitor only: `visited[s]` is true once this site has occupied local
    /// state `s` at any point of the run (including states passed through
    /// inside one delivery's transition cascade). The model checker's
    /// prediction oracle compares this against the analytic (site, state)
    /// occupancy; it is not part of the behavioral state.
    pub visited: Vec<bool>,
}

impl SiteRt {
    /// Fresh site at the FSA's initial state.
    pub fn new(id: usize, fsa: &Fsa, n: usize) -> Self {
        let mut visited = vec![false; fsa.state_count()];
        visited[fsa.initial().index()] = true;
        Self {
            id,
            state: fsa.initial(),
            inbox: Vec::new(),
            wal: Wal::new(),
            mode: Mode::Normal,
            view: vec![true; n],
            aligned_class: None,
            backup_state: BackupState::default(),
            outcome: None,
            transitions_attempted: 0,
            pending_queries: Vec::new(),
            recovery_replies: Vec::new(),
            recovered_peers: BTreeSet::new(),
            suspects: BTreeSet::new(),
            ever_down: false,
            visited,
        }
    }

    /// Move to local state `s`, recording it in the visited-state monitor.
    pub fn enter_state(&mut self, s: StateId) {
        self.state = s;
        self.visited[s.index()] = true;
    }

    /// The site id as a core [`SiteId`].
    pub fn core_id(&self) -> SiteId {
        SiteId(self.id as u32)
    }

    /// True if the site is up (any mode but `Down`).
    pub fn is_up(&self) -> bool {
        self.mode != Mode::Down
    }

    /// The class this site reports to the termination protocol: its
    /// aligned class if phase 1 aligned it, else its current state's class.
    pub fn reported_class(&self, fsa: &Fsa) -> u8 {
        if fsa.state(self.state).class.is_final() {
            // Final states never align; they report themselves.
            return encode_class(fsa.state(self.state).class);
        }
        self.aligned_class.unwrap_or_else(|| encode_class(fsa.state(self.state).class))
    }

    /// The backup this site elects: the lowest-id site in its operational
    /// view (itself included).
    pub fn elected_backup(&self) -> usize {
        self.view.iter().position(|&up| up).expect("at least this site is operational")
    }

    /// Remove one `(src, kind)` message from the inbox; true if present.
    pub fn take_msg(&mut self, src: usize, kind: MsgKind) -> bool {
        if let Some(pos) = self.inbox.iter().position(|&m| m == (src, kind)) {
            self.inbox.swap_remove(pos);
            true
        } else {
            false
        }
    }

    /// Does the inbox satisfy a trigger? Returns the concrete messages to
    /// consume (`None` if not satisfiable). For `Any`, the first matching
    /// source in list order is chosen.
    pub fn satisfy(&self, consume: &Consume) -> Option<Vec<(usize, MsgKind)>> {
        match consume {
            Consume::Spontaneous => Some(Vec::new()),
            Consume::All(v) => {
                let mut need: Vec<(usize, MsgKind)> =
                    v.iter().map(|&(src, kind)| (src_index(src), kind)).collect();
                // Every needed (src, kind) must be present; sources are
                // distinct in well-formed protocols so counting is simple.
                for item in &need {
                    if !self.inbox.contains(item) {
                        return None;
                    }
                }
                need.dedup();
                Some(need)
            }
            Consume::Any(v) => v
                .iter()
                .map(|&(src, kind)| (src_index(src), kind))
                .find(|item| self.inbox.contains(item))
                .map(|item| vec![item]),
            Consume::Quorum { k, srcs } => {
                // Take the first k listed messages present, each source at
                // most once, in list order — a deterministic choice among
                // the k-subsets the analysis enumerates.
                let mut take: Vec<(usize, MsgKind)> = Vec::with_capacity(*k as usize);
                for &(src, kind) in srcs {
                    let item = (src_index(src), kind);
                    if self.inbox.contains(&item) && !take.contains(&item) {
                        take.push(item);
                        if take.len() == *k as usize {
                            return Some(take);
                        }
                    }
                }
                None
            }
        }
    }

    /// Pick the transition to fire under the vote plan: the first
    /// transition (in declaration order) that is vote-compatible and whose
    /// trigger the inbox satisfies.
    pub fn choose_transition(
        &self,
        fsa: &Fsa,
        vote_yes: bool,
    ) -> Option<(u32, Vec<(usize, MsgKind)>)> {
        for (ti, t) in fsa.outgoing(self.state) {
            let compatible = match t.vote {
                Some(Vote::Yes) => vote_yes,
                Some(Vote::No) => !vote_yes,
                None => true,
            };
            if !compatible {
                continue;
            }
            // Untagged spontaneous transitions never self-fire: spontaneity
            // in the catalog always represents a vote.
            if matches!(t.consume, Consume::Spontaneous) && t.vote.is_none() {
                continue;
            }
            if let Some(consumed) = self.satisfy(&t.consume) {
                return Some((ti, consumed));
            }
        }
        None
    }

    /// Log a progress record for entering `state`.
    pub fn log_progress(&mut self, txn: u64, state: StateId, class: nbc_core::StateClass) {
        self.wal
            .append_sync(&LogRecord::Progress { txn, state: state.0, class: encode_class(class) })
            .expect("wal record fits");
    }

    /// Log and adopt a final decision.
    pub fn log_decision(&mut self, txn: u64, commit: bool) {
        self.wal.append_sync(&LogRecord::Decision { txn, commit }).expect("wal record fits");
        self.outcome = Some(commit);
    }
}

/// Map a core message source to a site index.
///
/// # Panics
/// Panics on [`SiteId::CLIENT`] — client stimuli are injected into inboxes
/// directly with a reserved source index.
pub fn src_index(src: SiteId) -> usize {
    if src == SiteId::CLIENT {
        CLIENT_SRC
    } else {
        src.index()
    }
}

/// Reserved inbox source index for client stimuli.
pub const CLIENT_SRC: usize = usize::MAX;

#[cfg(test)]
mod tests {
    use super::*;
    use nbc_core::protocols::central_2pc;

    #[test]
    fn inbox_multiset_ops() {
        let p = central_2pc(2);
        let mut s = SiteRt::new(1, p.fsa(SiteId(1)), 2);
        s.inbox.push((0, MsgKind::XACT));
        s.inbox.push((0, MsgKind::XACT));
        assert!(s.take_msg(0, MsgKind::XACT));
        assert_eq!(s.inbox.len(), 1);
        assert!(!s.take_msg(0, MsgKind::COMMIT));
    }

    #[test]
    fn satisfy_all_and_any() {
        let p = central_2pc(3);
        let mut s = SiteRt::new(0, p.fsa(SiteId(0)), 3);
        let all = Consume::All(vec![(SiteId(1), MsgKind::YES), (SiteId(2), MsgKind::YES)]);
        assert!(s.satisfy(&all).is_none());
        s.inbox.push((1, MsgKind::YES));
        assert!(s.satisfy(&all).is_none());
        s.inbox.push((2, MsgKind::YES));
        assert_eq!(s.satisfy(&all).unwrap().len(), 2);

        let any = Consume::Any(vec![(SiteId(1), MsgKind::NO), (SiteId(2), MsgKind::NO)]);
        assert!(s.satisfy(&any).is_none());
        s.inbox.push((2, MsgKind::NO));
        assert_eq!(s.satisfy(&any).unwrap(), vec![(2, MsgKind::NO)]);
    }

    #[test]
    fn vote_plan_gates_transitions() {
        let p = central_2pc(2);
        let fsa = p.fsa(SiteId(1));
        let mut s = SiteRt::new(1, fsa, 2);
        s.inbox.push((0, MsgKind::XACT));
        // Yes voter takes the yes transition (to w).
        let (ti, _) = s.choose_transition(fsa, true).unwrap();
        assert!(fsa.transitions()[ti as usize].vote == Some(Vote::Yes));
        // No voter takes the no transition (to a).
        let (ti, _) = s.choose_transition(fsa, false).unwrap();
        assert!(fsa.transitions()[ti as usize].vote == Some(Vote::No));
    }

    #[test]
    fn coordinator_no_vote_is_spontaneous() {
        let p = central_2pc(2);
        let fsa = p.fsa(SiteId(0));
        let mut s = SiteRt::new(0, fsa, 2);
        // Move to w1 manually.
        s.state = fsa.state_by_name("w1").unwrap();
        // A yes-voting coordinator with an empty inbox does nothing.
        assert!(s.choose_transition(fsa, true).is_none());
        // A no-voting coordinator aborts spontaneously.
        let (ti, consumed) = s.choose_transition(fsa, false).unwrap();
        assert!(consumed.is_empty());
        assert!(matches!(fsa.transitions()[ti as usize].consume, Consume::Spontaneous));
    }

    #[test]
    fn elected_backup_is_lowest_operational() {
        let p = central_2pc(3);
        let mut s = SiteRt::new(2, p.fsa(SiteId(2)), 3);
        assert_eq!(s.elected_backup(), 0);
        s.view[0] = false;
        assert_eq!(s.elected_backup(), 1);
        s.view[1] = false;
        assert_eq!(s.elected_backup(), 2);
    }

    #[test]
    fn reported_class_prefers_alignment_except_final() {
        let p = central_2pc(2);
        let fsa = p.fsa(SiteId(1));
        let mut s = SiteRt::new(1, fsa, 2);
        s.state = fsa.state_by_name("w").unwrap();
        assert_eq!(s.reported_class(fsa), nbc_storage::recovery::class_codes::WAIT);
        s.aligned_class = Some(nbc_storage::recovery::class_codes::PREPARED);
        assert_eq!(s.reported_class(fsa), nbc_storage::recovery::class_codes::PREPARED);
        // Final states report themselves regardless of alignment.
        s.state = fsa.state_by_name("c").unwrap();
        assert_eq!(s.reported_class(fsa), nbc_storage::recovery::class_codes::COMMITTED);
    }
}
