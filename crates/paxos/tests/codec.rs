//! The compact state codec must round-trip Paxos Commit exactly.
//!
//! Paxos Commit is the one catalog protocol with quorum triggers and an
//! acceptor tail, so its reachable states exercise message-address
//! universes the central/decentralized protocols never produce — every
//! acceptor broadcasts its phase-2b vote to all participants.

use nbc_core::{ReachGraph, StateCodec};
use nbc_paxos::paxos_commit;

#[test]
fn paxos_states_roundtrip_through_the_codec() {
    for (n, f) in [(2, 1), (3, 1)] {
        let protocol = paxos_commit(n, f);
        let graph = ReachGraph::build(&protocol).expect("paxos reach graph builds");
        let codec = StateCodec::new(&protocol);
        let mut words = Vec::new();
        for state in graph.nodes() {
            words.clear();
            codec.encode_into(state, &mut words);
            assert_eq!(
                &codec.decode(&words),
                state,
                "paxos_commit({n}, {f}) state failed to round-trip"
            );
        }
        assert!(!graph.nodes().is_empty());
    }
}
