//! A sharded bank running distributed transfers under failures: the
//! application-level face of nonblocking commit.
//!
//! Accounts are spread over three sites; every transfer debits one site
//! and credits another, so transaction atomicity *is* conservation of
//! money. We run the same crash-ridden workload under 2PC and 3PC and
//! compare what survives.
//!
//! ```text
//! cargo run --example bank_cluster
//! ```

use nonblocking_commit::nbc_engine::{CrashPoint, CrashSpec, TransitionProgress};
use nonblocking_commit::nbc_simnet::SimRng;
use nonblocking_commit::nbc_txn::{BankWorkload, Cluster, ClusterConfig, ProtocolKind, TxnResult};

fn run(kind: ProtocolKind) {
    let n_sites = 3;
    let w0 = BankWorkload::new(n_sites, 12, 1_000, 42);
    let mut cluster = Cluster::new(ClusterConfig::new(n_sites, kind));
    assert_eq!(cluster.execute(&w0.setup_ops()), TxnResult::Committed);

    let mut w = w0.clone();
    let mut rng = SimRng::seed_from_u64(99);
    let transfers = 100;
    for _ in 0..transfers {
        let (from, to, amount) = w.random_transfer();
        // 20% of commit rounds lose the coordinator at a random point of
        // its decision broadcast.
        let crashes = if rng.gen_bool(0.2) {
            vec![CrashSpec {
                site: 0,
                point: CrashPoint::OnTransition {
                    ordinal: 2,
                    progress: TransitionProgress::AfterMsgs(rng.gen_range(0u32..=2)),
                },
                recover_at: None,
            }]
        } else {
            vec![]
        };
        let _ = cluster.transfer_with_crashes(&w, from, to, amount, &crashes);
    }

    println!("--- {} ---", kind.name());
    println!(
        "  committed: {:>3}   aborted: {:>3}   blocked (locks stranded): {:>3}",
        cluster.stats.committed - 1, // setup txn
        cluster.stats.aborted,
        cluster.stats.blocked,
    );
    println!(
        "  messages: {}   locked keys before recovery: {}",
        cluster.stats.messages,
        cluster.locked_keys()
    );

    // Recovery: replay WALs, resolve blocked transactions.
    cluster.recover_all();
    let total = cluster.total_balance(&w);
    println!(
        "  after recovery: total balance = {} (expected {}) — money {}",
        total,
        w.expected_total(),
        if total == w.expected_total() { "conserved ✓" } else { "LOST ✗" }
    );
    assert_eq!(total, w.expected_total());
    println!();
}

fn main() {
    println!("100 transfers, 20% coordinator-crash rate, 3 sites, 12 accounts\n");
    run(ProtocolKind::Central2pc);
    run(ProtocolKind::Central3pc);
    println!(
        "Shape: both protocols preserve atomicity (money is conserved after \
         recovery), but 2PC\nstrands transactions whose held locks poison \
         later transfers, while 3PC keeps deciding."
    );
}
