//! # nbc-storage — per-site local recovery substrate
//!
//! The paper assumes *each site has a local recovery strategy that provides
//! atomicity at the local level* (§"Enforcing atomicity of distributed
//! transactions"). This crate is that strategy:
//!
//! * [`wal`] — a write-ahead log with a checksummed, length-prefixed binary
//!   record format. The log holds both the *distributed-transaction (DT)
//!   log* records that commit protocols persist at every state transition
//!   (progress, votes, decisions, termination-protocol alignments) and the
//!   data records (redo images) of the updates themselves. Crash semantics
//!   are explicit: only the [`Wal::sync`]ed prefix survives a crash, and
//!   recovery stops cleanly at a torn or corrupt tail.
//! * [`kv`] — a small key-value store with deferred-update transactions:
//!   writes are staged per transaction, logged, and applied only on commit,
//!   so an abort (or a crash before the decision) leaves no trace.
//! * [`recovery`] — folds a recovered record stream into the per-
//!   transaction protocol state a restarting site resumes from; this is the
//!   local half of the paper's *recovery protocol*.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod codec;
pub mod crc32;
pub mod kv;
pub mod recovery;
pub mod wal;

pub use kv::{KvStore, TxnWrite};
pub use recovery::{RecoveredTxn, TxnOutcome};
pub use wal::{LogRecord, Lsn, SyncStats, Wal, WalError};
