//! Small copyable identifiers used throughout the formal model.
//!
//! The paper models a distributed transaction as a set of communicating
//! finite state automata, one per participating site, exchanging messages
//! over a reliable network. Everything in the model is therefore addressed
//! by three kinds of identifiers: sites, local states, and message kinds.

use std::fmt;

/// Identifies one participating site of a protocol instance.
///
/// Sites are numbered `0..n`. By convention, in the *central site* paradigm
/// site `0` is the coordinator and sites `1..n` are the slaves; in the
/// *fully decentralized* paradigm all sites are peers.
///
/// The distinguished value [`SiteId::CLIENT`] denotes the external world
/// (the application that submits the transaction). The paper does not model
/// how the transaction reaches the sites ("an xact message will be simply
/// received"); we model that stimulus as a message from `CLIENT` placed on
/// the network tape in the initial global state.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SiteId(pub u32);

impl SiteId {
    /// The external transaction source (not a participating site).
    pub const CLIENT: SiteId = SiteId(u32::MAX);

    /// Returns the site index as a `usize`, panicking on [`SiteId::CLIENT`].
    #[inline]
    pub fn index(self) -> usize {
        debug_assert!(self != Self::CLIENT, "CLIENT has no participant index");
        self.0 as usize
    }

    /// True if this id denotes the external client rather than a site.
    #[inline]
    pub fn is_client(self) -> bool {
        self == Self::CLIENT
    }
}

impl fmt::Debug for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_client() {
            write!(f, "client")
        } else {
            write!(f, "site{}", self.0)
        }
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Identifies a local state within one site's finite state automaton.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub u32);

impl StateId {
    /// Returns the state index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A message kind (the "letter" written on the network tape).
///
/// Well-known kinds used by the catalog protocols are provided as associated
/// constants. User-defined protocols may use any further values; human
/// readable names are registered on the owning
/// [`Protocol`](crate::protocol::Protocol).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MsgKind(pub u16);

impl MsgKind {
    /// The client's commit request delivered to a central-site coordinator.
    pub const REQUEST: MsgKind = MsgKind(0);
    /// The transaction broadcast (`xact`): the stimulus that starts a site.
    pub const XACT: MsgKind = MsgKind(1);
    /// A yes vote ("I can commit").
    pub const YES: MsgKind = MsgKind(2);
    /// A no vote ("I must abort").
    pub const NO: MsgKind = MsgKind(3);
    /// The commit decision.
    pub const COMMIT: MsgKind = MsgKind(4);
    /// The abort decision.
    pub const ABORT: MsgKind = MsgKind(5);
    /// "Prepare to commit" — the buffer-state announcement of 3PC.
    pub const PREPARE: MsgKind = MsgKind(6);
    /// Acknowledgement of a `PREPARE` (central-site 3PC, phase 3).
    pub const ACK: MsgKind = MsgKind(7);
    /// First kind available for user-defined protocols.
    pub const FIRST_CUSTOM: MsgKind = MsgKind(8);

    /// Built-in name for the well-known kinds, `None` for custom kinds.
    pub fn builtin_name(self) -> Option<&'static str> {
        Some(match self {
            Self::REQUEST => "request",
            Self::XACT => "xact",
            Self::YES => "yes",
            Self::NO => "no",
            Self::COMMIT => "commit",
            Self::ABORT => "abort",
            Self::PREPARE => "prepare",
            Self::ACK => "ack",
            _ => return None,
        })
    }
}

impl fmt::Debug for MsgKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.builtin_name() {
            Some(n) => f.write_str(n),
            None => write!(f, "msg{}", self.0),
        }
    }
}

impl fmt::Display for MsgKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_is_distinguished() {
        assert!(SiteId::CLIENT.is_client());
        assert!(!SiteId(0).is_client());
        assert_eq!(format!("{}", SiteId::CLIENT), "client");
        assert_eq!(format!("{}", SiteId(3)), "site3");
    }

    #[test]
    fn site_index_roundtrip() {
        assert_eq!(SiteId(7).index(), 7);
        assert_eq!(StateId(4).index(), 4);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn client_index_panics() {
        let _ = SiteId::CLIENT.index();
    }

    #[test]
    fn builtin_msg_names() {
        assert_eq!(MsgKind::XACT.builtin_name(), Some("xact"));
        assert_eq!(MsgKind::ACK.builtin_name(), Some("ack"));
        assert_eq!(MsgKind(99).builtin_name(), None);
        assert_eq!(format!("{}", MsgKind::PREPARE), "prepare");
        assert_eq!(format!("{}", MsgKind(42)), "msg42");
    }

    #[test]
    fn msg_kind_ordering_is_stable() {
        assert!(MsgKind::REQUEST < MsgKind::XACT);
        assert!(MsgKind::ACK < MsgKind::FIRST_CUSTOM);
    }
}
