//! The concurrent commit scheduler: many overlapping commit rounds over
//! one set of sites, with group-committed WALs and wait-die admission.
//!
//! # How the multiplexing works
//!
//! Each admitted transaction runs its own [`Runner`] — an independent
//! commit-protocol round whose WAL records are tagged with the
//! transaction id ([`RunConfig::with_txn_id`]) and whose first stimulus
//! fires at the admission instant ([`RunConfig::with_start_at`]). The
//! scheduler owns the *shared* per-site state — key-value stores, data
//! WALs, lock tables — and interleaves the rounds by always stepping the
//! round with the globally earliest pending event (ties broken by
//! transaction id), so the merged execution is a single deterministic
//! discrete-event timeline.
//!
//! # Admission (wait-die, with a retry budget)
//!
//! Locks are acquired at admission. A requester older than every
//! conflicting holder *parks holding the locks it already has* (waits are
//! only old → young, so no deadlock); a younger requester *dies*,
//! releasing everything, and retries on a later admission pass with its
//! original id — the classic wait-die restart, which ages it toward
//! victory. A transaction that dies more than [`PipelineConfig::die_budget`]
//! times is admitted anyway with a no vote at the contested site, turning
//! starvation into an ordinary distributed abort (the serial cluster's
//! behaviour).
//!
//! # Blocked rounds
//!
//! A round that ends blocked (2PC's curse) keeps its locks — that is how
//! blocking destroys throughput, and younger transactions now die against
//! the strand-locks. After [`PipelineConfig::reap_after`] ticks the
//! scheduler runs the recovery decision for the round (adopt a durable
//! decision if one exists, else abort) and frees the locks, so blocking
//! is *measurable* (deferrals, latency tails) rather than fatal.

use std::collections::{BTreeMap, VecDeque};

use nbc_core::{Analysis, Protocol};
use nbc_engine::{RunConfig, Runner};
use nbc_obs::{Event, EventKind, Tracer};
use nbc_simnet::{LatencyModel, Time};
use nbc_storage::{KvStore, LogRecord, SyncStats, Wal};
use nbc_txn::{BankWorkload, LockManager, LockMode, LockOutcome, ProtocolKind};

use crate::report::{percentile, ThroughputReport};
use crate::txn::{PipeOp, PipelineTxn};

/// Scheduler configuration.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Number of sites.
    pub n_sites: usize,
    /// Commit protocol run by every round.
    pub kind: ProtocolKind,
    /// Maximum concurrent commit rounds.
    pub max_in_flight: usize,
    /// Constant network latency of each round.
    pub latency: Time,
    /// Failure-detection delay of each round.
    pub detect_delay: Time,
    /// Group-commit window in sim ticks: a physical WAL force covers
    /// every sync requested within this window (0 = force every sync).
    pub group_window: u64,
    /// Sim ticks a blocked round may hold its locks before the scheduler
    /// reaps it through the recovery decision.
    pub reap_after: Time,
    /// Wait-die restarts a transaction may suffer before it is admitted
    /// doomed (no vote at the contested site) instead of retried.
    pub die_budget: u32,
    /// Emit a [`EventKind::Snapshot`] metrics row through the tracer every
    /// this many sim ticks (0 = off). Snapshots land on exact interval
    /// boundaries, so the time series is deterministic.
    pub series_every: u64,
}

impl PipelineConfig {
    /// Defaults matching the serial cluster (latency 1, detection 5) with
    /// 8-way concurrency, a 2-tick group-commit window, and patient
    /// reaping.
    pub fn new(n_sites: usize, kind: ProtocolKind) -> Self {
        Self {
            n_sites,
            kind,
            max_in_flight: 8,
            latency: 1,
            detect_delay: 5,
            group_window: 2,
            reap_after: 200,
            die_budget: 3,
            series_every: 0,
        }
    }

    /// Set the concurrency limit.
    pub fn with_in_flight(mut self, max: usize) -> Self {
        self.max_in_flight = max;
        self
    }

    /// Set the group-commit window.
    pub fn with_group_window(mut self, window: u64) -> Self {
        self.group_window = window;
        self
    }

    /// Set the blocked-round reap delay.
    pub fn with_reap_after(mut self, ticks: Time) -> Self {
        self.reap_after = ticks;
        self
    }

    /// Set the metrics-snapshot interval (0 = no snapshots).
    pub fn with_series_every(mut self, ticks: u64) -> Self {
        self.series_every = ticks;
        self
    }
}

/// An admitted round in flight.
struct Round<'a> {
    txn: u64,
    admitted_at: Time,
    touched: Vec<bool>,
    /// Set when `step()` returned false while events remain (truncated).
    done: bool,
    runner: Runner<'a>,
}

/// A round that ended blocked, awaiting its reap timer.
struct BlockedRound {
    txn: u64,
    reap_at: Time,
}

/// A transaction waiting for admission (parked on a lock, or restarting
/// after a wait-die death).
struct ParkedTxn {
    spec: PipelineTxn,
    dies: u32,
}

enum Admission<'a> {
    /// Round admitted and running.
    Started(Box<Round<'a>>),
    /// Older than a conflicting holder: parked, keeping granted locks.
    Parked,
    /// Younger than a conflicting holder: released everything; retry.
    /// `released` is true if any lock was actually freed.
    Died { released: bool },
}

/// The concurrent commit scheduler. Owns the persistent per-site state
/// (stores, data WALs, lock tables) across [`Pipeline::run`] calls; each
/// call drains a batch of transactions to quiescence.
pub struct Pipeline {
    cfg: PipelineConfig,
    stores: Vec<KvStore>,
    wals: Vec<Wal>,
    locks: Vec<LockManager>,
    next_txn: u64,
    /// Omniscient decision record (the auditor's view, consulted by
    /// recovery and catch-up).
    ledger: BTreeMap<u64, bool>,
    /// Per-site transactions whose decision the site missed (crashed
    /// during the round).
    missed: Vec<Vec<u64>>,
    /// Persistent simulation clock: a second `run` continues where the
    /// first left off.
    clock: Time,
    /// Observability handle: the scheduler emits admission events
    /// (admit/park/die/reap) and data-WAL activity; each admitted round's
    /// [`Runner`] inherits a clone and emits the protocol events.
    tracer: Tracer,
}

impl Pipeline {
    /// A fresh pipeline: empty stores, group-commit windows armed.
    pub fn new(cfg: PipelineConfig) -> Self {
        assert!(cfg.n_sites >= 2, "need at least 2 sites");
        let n = cfg.n_sites;
        let wals = (0..n)
            .map(|_| {
                let mut w = Wal::new();
                w.set_group_window(cfg.group_window);
                w
            })
            .collect();
        Self {
            cfg,
            stores: (0..n).map(|_| KvStore::new()).collect(),
            wals,
            locks: (0..n).map(|_| LockManager::new()).collect(),
            next_txn: 1,
            ledger: BTreeMap::new(),
            missed: vec![Vec::new(); n],
            clock: 0,
            tracer: Tracer::off(),
        }
    }

    /// Attach an observability tracer: scheduler admission and data-WAL
    /// events, plus every round's protocol events, flow through it.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Number of sites.
    pub fn n_sites(&self) -> usize {
        self.cfg.n_sites
    }

    /// Committed value of `key` at `site`.
    pub fn get(&self, site: usize, key: &[u8]) -> Option<&[u8]> {
        self.stores[site].get(key)
    }

    /// Total keys currently locked across all sites.
    pub fn locked_keys(&self) -> usize {
        self.locks.iter().map(LockManager::locked_keys).sum()
    }

    /// Total WAL bytes across all sites.
    pub fn wal_bytes(&self) -> usize {
        self.wals.iter().map(Wal::len).sum()
    }

    /// Current simulation clock.
    pub fn now(&self) -> Time {
        self.clock
    }

    /// Sum of all committed account balances under the bank workload's
    /// encoding (missing account = not yet materialized = initial).
    pub fn total_balance(&self, w: &BankWorkload) -> i64 {
        (0..w.n_accounts)
            .map(|a| {
                self.get(w.site_of(a), &BankWorkload::key_of(a))
                    .map(BankWorkload::decode)
                    .unwrap_or(w.initial_balance)
            })
            .sum()
    }

    /// Drain `txns` through the scheduler: admit up to
    /// [`PipelineConfig::max_in_flight`] rounds, interleave their events
    /// in global time order, reap blocked rounds, and return the measured
    /// throughput. Deterministic: the same pipeline state and input
    /// produce an identical report.
    pub fn run(&mut self, txns: Vec<PipelineTxn>) -> ThroughputReport {
        let n = self.cfg.n_sites;
        let max_in_flight = self.cfg.max_in_flight.max(1);
        let protocol = self.cfg.kind.build(n);
        let analysis = Analysis::build(&protocol).expect("catalog protocols analyze");
        let sync_base = self.sync_totals();

        let mut report = ThroughputReport { txns: txns.len() as u64, ..Default::default() };
        let mut pending: VecDeque<(u64, PipelineTxn)> = txns
            .into_iter()
            .map(|t| {
                let id = self.next_txn;
                self.next_txn += 1;
                (id, t)
            })
            .collect();
        let mut parked: BTreeMap<u64, ParkedTxn> = BTreeMap::new();
        let mut in_flight: Vec<Round<'_>> = Vec::new();
        let mut blocked: Vec<BlockedRound> = Vec::new();
        let mut latencies: Vec<Time> = Vec::new();
        let mut clock = self.clock;
        let mut dirty = true;
        let mut last_pass_progressed = true;
        // Time-series boundary: the next snapshot lands on the first
        // interval boundary strictly after the starting clock.
        let every = self.cfg.series_every;
        let mut next_snap =
            clock.checked_div(every).map_or(Time::MAX, |intervals| (intervals + 1) * every);

        loop {
            // ---- Time-series snapshots at crossed interval boundaries. ----
            while clock >= next_snap {
                let at = next_snap;
                self.tracer.emit(|| {
                    Event::new(
                        at,
                        EventKind::Snapshot {
                            committed: report.committed,
                            in_flight: in_flight.len() as u64,
                            blocked: blocked.len() as u64,
                            wal_bytes: self.wal_bytes() as u64,
                        },
                    )
                });
                next_snap += every;
            }

            // ---- Admission pass (only when something changed). ----
            if dirty {
                dirty = false;
                last_pass_progressed = false;
                self.catch_up(clock);
                let retry_ids: Vec<u64> = parked.keys().copied().collect();
                for id in retry_ids {
                    if in_flight.len() >= max_in_flight {
                        break;
                    }
                    let entry = parked.remove(&id).expect("snapshotted id");
                    match self.try_admit(&protocol, &analysis, id, &entry.spec, entry.dies, clock) {
                        Admission::Started(r) => {
                            in_flight.push(*r);
                            last_pass_progressed = true;
                        }
                        Admission::Parked => {
                            report.deferrals += 1;
                            parked.insert(id, entry);
                        }
                        Admission::Died { released } => {
                            report.deferrals += 1;
                            last_pass_progressed |= released;
                            parked.insert(id, ParkedTxn { dies: entry.dies + 1, ..entry });
                        }
                    }
                }
                while in_flight.len() < max_in_flight {
                    let Some((id, spec)) = pending.pop_front() else { break };
                    match self.try_admit(&protocol, &analysis, id, &spec, 0, clock) {
                        Admission::Started(r) => {
                            in_flight.push(*r);
                            last_pass_progressed = true;
                        }
                        Admission::Parked => {
                            report.deferrals += 1;
                            parked.insert(id, ParkedTxn { spec, dies: 0 });
                        }
                        Admission::Died { released } => {
                            report.deferrals += 1;
                            last_pass_progressed |= released;
                            parked.insert(id, ParkedTxn { spec, dies: 1 });
                        }
                    }
                }
            }

            // ---- Finalize quiescent rounds (smallest txn id first). ----
            let quiescent = in_flight
                .iter()
                .enumerate()
                .filter(|(_, r)| r.done || r.runner.next_time().is_none())
                .min_by_key(|(_, r)| r.txn)
                .map(|(i, _)| i);
            if let Some(i) = quiescent {
                let round = in_flight.remove(i);
                clock = clock.max(round.runner.now());
                self.finalize(round, &mut report, &mut latencies, &mut blocked);
                dirty = true;
                continue;
            }

            // ---- Pick the globally earliest event: round step or reap. ----
            let round_next = in_flight
                .iter()
                .enumerate()
                .filter(|(_, r)| !r.done)
                .filter_map(|(i, r)| r.runner.next_time().map(|t| (t, r.txn, i)))
                .min();
            let reap_next = blocked.iter().enumerate().map(|(i, b)| (b.reap_at, b.txn, i)).min();
            let step_round = match (round_next, reap_next) {
                (Some((t, txn, i)), reap) => {
                    if reap.is_none_or(|(rt, rtxn, _)| (t, txn) <= (rt, rtxn)) {
                        Some(Some(i))
                    } else {
                        Some(None)
                    }
                }
                (None, Some(_)) => Some(None),
                (None, None) => None,
            };
            match step_round {
                Some(Some(i)) => {
                    let round = &mut in_flight[i];
                    if !round.runner.step() {
                        round.done = true;
                    }
                    clock = clock.max(round.runner.now());
                }
                Some(None) => {
                    let (rt, _, i) = reap_next.expect("reap selected");
                    clock = clock.max(rt);
                    let b = blocked.remove(i);
                    if self.reap(b.txn, rt) {
                        report.reaped_commits += 1;
                    }
                    dirty = true;
                }
                None => {
                    if pending.is_empty() && parked.is_empty() {
                        break;
                    }
                    // Locks can only be held by parked transactions now;
                    // an admission pass must admit or free something.
                    assert!(
                        last_pass_progressed,
                        "pipeline admission stalled with {} parked, {} pending",
                        parked.len(),
                        pending.len()
                    );
                    dirty = true;
                }
            }
        }

        self.catch_up(clock);
        // One closing snapshot so the series always covers the batch end.
        if every > 0 {
            self.tracer.emit(|| {
                Event::new(
                    clock,
                    EventKind::Snapshot {
                        committed: report.committed,
                        in_flight: 0,
                        blocked: blocked.len() as u64,
                        wal_bytes: self.wal_bytes() as u64,
                    },
                )
            });
        }
        self.clock = clock;
        latencies.sort_unstable();
        report.p50_commit_latency = percentile(&latencies, 50);
        report.p99_commit_latency = percentile(&latencies, 99);
        report.finished_at = clock;
        let mut delta = self.sync_totals();
        delta.requested -= sync_base.requested;
        delta.physical -= sync_base.physical;
        report.set_sync_delta(delta);
        report
    }

    /// Sum of WAL sync counters across sites.
    fn sync_totals(&self) -> SyncStats {
        let mut total = SyncStats::default();
        for w in &self.wals {
            total.absorb(&w.sync_stats());
        }
        total
    }

    /// Try to start a commit round for `txn` at time `now`.
    fn try_admit<'a>(
        &mut self,
        protocol: &'a Protocol,
        analysis: &'a Analysis,
        txn: u64,
        spec: &PipelineTxn,
        dies: u32,
        now: Time,
    ) -> Admission<'a> {
        let n = self.cfg.n_sites;
        let give_up = dies >= self.cfg.die_budget;
        let mut votes = vec![true; n];
        let mut touched = vec![false; n];

        for op in &spec.ops {
            let site = op.site();
            assert!(site < n, "op addresses site {site} of {n}");
            touched[site] = true;
            if !votes[site] {
                continue; // site already doomed
            }
            let mode = if matches!(op, PipeOp::Read { .. }) {
                LockMode::Shared
            } else {
                LockMode::Exclusive
            };
            match self.locks[site].request(txn, op.key(), mode) {
                LockOutcome::Granted => {}
                LockOutcome::Wait if !give_up => {
                    self.tracer
                        .emit(|| Event::new(now, EventKind::Park).at_site(site).for_txn(txn));
                    return Admission::Parked;
                }
                LockOutcome::Die if !give_up => {
                    let released = self.locks.iter().map(|l| l.held_by(txn)).sum::<usize>() > 0;
                    for l in &mut self.locks {
                        l.release_all(txn);
                    }
                    self.tracer.emit(|| Event::new(now, EventKind::Die).at_site(site).for_txn(txn));
                    return Admission::Died { released };
                }
                _ => votes[site] = false,
            }
        }

        // Stage writes at voting sites (own staged values visible, so
        // repeated AddI64 on one key accumulates).
        for op in &spec.ops {
            let site = op.site();
            if !votes[site] {
                continue;
            }
            match op {
                PipeOp::Read { .. } => {}
                PipeOp::Write { key, value, .. } => {
                    self.stores[site].stage_put(txn, key.clone(), value.clone());
                }
                PipeOp::AddI64 { key, delta, .. } => {
                    let cur =
                        self.stores[site].get_in_txn(txn, key).map(|v| decode_i64(&v)).unwrap_or(0);
                    self.stores[site].stage_put(txn, key.clone(), encode_i64(cur + delta));
                }
            }
        }

        // Write-ahead: Begin + redo images, group-commit batched.
        for (site, touched_here) in touched.iter().enumerate() {
            if *touched_here {
                let before = self.wals[site].len() as u64;
                self.wals[site].append(&LogRecord::Begin { txn }).expect("wal record fits");
                let store = &self.stores[site];
                store.log_stage(txn, &mut self.wals[site]);
                let appended = self.wals[site].len() as u64 - before;
                let physical = self.wals[site].sync_batched(now);
                self.tracer.emit(|| {
                    Event::new(
                        now,
                        EventKind::WalAppend { bytes: appended, record: "begin".into() },
                    )
                    .at_site(site)
                    .for_txn(txn)
                });
                self.tracer.emit(|| {
                    Event::new(now, EventKind::WalFsync { physical }).at_site(site).for_txn(txn)
                });
            }
        }

        // Quorum protocols bring extra acceptor sites along; they carry
        // no data and always "vote" yes.
        let mut rc = RunConfig::happy(protocol.n_sites());
        rc.votes[..n].copy_from_slice(&votes);
        rc.crashes = spec.crashes.clone();
        rc.rule = self.cfg.kind.rule();
        rc.latency = LatencyModel::constant(self.cfg.latency);
        rc.detect_delay = self.cfg.detect_delay;
        let rc = rc.with_txn_id(txn).with_start_at(now);
        self.tracer.emit(|| Event::new(now, EventKind::Admit).for_txn(txn));
        Admission::Started(Box::new(Round {
            txn,
            admitted_at: now,
            touched,
            done: false,
            runner: Runner::with_tracer(protocol, analysis, rc, self.tracer.clone()),
        }))
    }

    /// Post-round bookkeeping, mirroring the serial cluster: apply the
    /// decision at operational sites, queue crashed sites for catch-up,
    /// or park the round as blocked with a reap deadline.
    fn finalize(
        &mut self,
        round: Round<'_>,
        report: &mut ThroughputReport,
        latencies: &mut Vec<Time>,
        blocked: &mut Vec<BlockedRound>,
    ) {
        let txn = round.txn;
        let rr = round.runner.report();
        assert!(rr.consistent, "txn {txn}: commit round violated atomicity: {rr}");
        report.events += rr.events as u64;
        report.msgs += rr.msgs_sent;
        let done_at = rr.finished_at;

        // The operational sites' view, not the omniscient auditor's.
        let is_blocked = rr.any_blocked || !rr.all_operational_decided || rr.truncated;
        match (is_blocked, rr.decision()) {
            (false, Some(commit)) => {
                self.ledger.insert(txn, commit);
                for site in 0..self.cfg.n_sites {
                    if rr.outcomes[site].operational() {
                        self.apply_decision(site, txn, commit, done_at);
                    } else if round.touched[site] {
                        // Crashed during the round: volatile stage lost;
                        // the WAL's redo images remain for catch-up.
                        self.stores[site].abort(txn);
                        self.locks[site].release_all(txn);
                        self.missed[site].push(txn);
                    } else {
                        self.locks[site].release_all(txn);
                    }
                }
                if commit {
                    report.committed += 1;
                    latencies.push(done_at - round.admitted_at);
                } else {
                    report.aborted += 1;
                }
            }
            _ => {
                // Blocked: locks stay held (the measurable cost). Record
                // any decision durable only at a crashed site in the
                // ledger for the reaper.
                for o in &rr.outcomes {
                    if let Some(commit) = o.decision() {
                        self.ledger.insert(txn, commit);
                    }
                }
                report.blocked += 1;
                blocked.push(BlockedRound { txn, reap_at: done_at + self.cfg.reap_after });
            }
        }
    }

    /// Recovery decision for a blocked round: adopt a decision durable at
    /// a crashed site if one exists, else abort; apply everywhere and free
    /// the strand-locks. Returns true if the reap committed.
    fn reap(&mut self, txn: u64, now: Time) -> bool {
        let commit = self.ledger.get(&txn).copied().unwrap_or(false);
        self.ledger.insert(txn, commit);
        self.tracer.emit(|| Event::new(now, EventKind::Reap { commit }).for_txn(txn));
        for site in 0..self.cfg.n_sites {
            self.apply_decision(site, txn, commit, now);
        }
        commit
    }

    fn apply_decision(&mut self, site: usize, txn: u64, commit: bool, now: Time) {
        let decision = LogRecord::Decision { txn, commit };
        self.wals[site].append(&decision).expect("wal record fits");
        let physical = self.wals[site].sync_batched(now);
        self.tracer.emit(|| {
            Event::new(
                now,
                EventKind::WalAppend { bytes: decision.frame_len(), record: "decision".into() },
            )
            .at_site(site)
            .for_txn(txn)
        });
        self.tracer
            .emit(|| Event::new(now, EventKind::WalFsync { physical }).at_site(site).for_txn(txn));
        if commit {
            self.stores[site].commit(txn);
        } else {
            self.stores[site].abort(txn);
        }
        let end = LogRecord::End { txn };
        self.wals[site].append(&end).expect("wal record fits");
        self.tracer.emit(|| {
            Event::new(now, EventKind::WalAppend { bytes: end.frame_len(), record: "end".into() })
                .at_site(site)
                .for_txn(txn)
        });
        self.locks[site].release_all(txn);
    }

    /// Bring every site that missed a decision back up to date: replay the
    /// decision from the ledger and redo the staged images from the site's
    /// own WAL.
    fn catch_up(&mut self, now: Time) {
        for site in 0..self.cfg.n_sites {
            let mut still_missing = Vec::new();
            for txn in std::mem::take(&mut self.missed[site]) {
                match self.ledger.get(&txn).copied() {
                    Some(commit) => {
                        let decision = LogRecord::Decision { txn, commit };
                        let end = LogRecord::End { txn };
                        self.wals[site].append(&decision).expect("wal record fits");
                        let physical = self.wals[site].sync_batched(now);
                        self.wals[site].append(&end).expect("wal record fits");
                        self.tracer.emit(|| {
                            Event::new(
                                now,
                                EventKind::WalAppend {
                                    bytes: decision.frame_len() + end.frame_len(),
                                    record: "catch-up".into(),
                                },
                            )
                            .at_site(site)
                            .for_txn(txn)
                        });
                        self.tracer.emit(|| {
                            Event::new(now, EventKind::WalFsync { physical })
                                .at_site(site)
                                .for_txn(txn)
                        });
                        if commit {
                            let records = Wal::recover(&self.wals[site].full_image())
                                .expect("pipeline WALs are well-formed");
                            self.stores[site].redo_one(&records, txn);
                        }
                    }
                    None => still_missing.push(txn),
                }
            }
            self.missed[site] = still_missing;
        }
    }
}

fn encode_i64(v: i64) -> Vec<u8> {
    v.to_le_bytes().to_vec()
}

fn decode_i64(bytes: &[u8]) -> i64 {
    i64::from_le_bytes(bytes.try_into().expect("AddI64 target must be an 8-byte i64 cell"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::bank_transfer_txns;
    use nbc_simnet::SimRng;

    fn seeded_pipeline(kind: ProtocolKind, window: u64) -> (Pipeline, BankWorkload) {
        let w = BankWorkload::new(3, 12, 1_000, 31);
        let mut p = Pipeline::new(PipelineConfig::new(3, kind).with_group_window(window));
        let setup = p.run(vec![PipelineTxn::from_ops(&w.setup_ops())]);
        assert_eq!(setup.committed, 1);
        (p, w)
    }

    #[test]
    fn happy_batch_commits_and_conserves() {
        let (mut p, mut w) = seeded_pipeline(ProtocolKind::Central3pc, 2);
        let mut rng = SimRng::seed_from_u64(11);
        let txns = bank_transfer_txns(&mut w, 24, 0, &mut rng);
        let r = p.run(txns);
        assert_eq!(r.txns, 24);
        assert_eq!(r.decided(), 24);
        assert_eq!(r.blocked, 0, "no crashes, no blocking: {r}");
        assert!(r.committed > 0);
        assert_eq!(p.total_balance(&w), w.expected_total());
        assert_eq!(p.locked_keys(), 0);
    }

    #[test]
    fn group_commit_saves_syncs() {
        let (mut p, mut w) = seeded_pipeline(ProtocolKind::Central3pc, 4);
        let mut rng = SimRng::seed_from_u64(12);
        let r = p.run(bank_transfer_txns(&mut w, 24, 0, &mut rng));
        assert!(r.syncs_saved > 0, "overlapping rounds must batch syncs: {r}");
        assert_eq!(r.wal_syncs, r.wal_forces + r.syncs_saved);
    }

    #[test]
    fn window_zero_forces_every_sync() {
        let (mut p, mut w) = seeded_pipeline(ProtocolKind::Central3pc, 0);
        let mut rng = SimRng::seed_from_u64(12);
        let r = p.run(bank_transfer_txns(&mut w, 12, 0, &mut rng));
        assert_eq!(r.syncs_saved, 0);
    }

    #[test]
    fn conflicting_txns_backpressure() {
        let (mut p, _w) = seeded_pipeline(ProtocolKind::Central3pc, 2);
        // Every transaction hammers the same account pair: heavy
        // contention, so admission must defer or doom most of them.
        let ops = || {
            vec![
                PipeOp::AddI64 { site: 0, key: BankWorkload::key_of(0), delta: -1 },
                PipeOp::AddI64 { site: 1, key: BankWorkload::key_of(1), delta: 1 },
            ]
        };
        let txns: Vec<PipelineTxn> = (0..10).map(|_| PipelineTxn::new(ops())).collect();
        let r = p.run(txns);
        assert_eq!(r.decided(), 10);
        assert!(r.deferrals > 0, "same-key txns must collide: {r}");
        assert_eq!(p.locked_keys(), 0);
        // Conservation even under pure contention.
        let a0 = p.get(0, &BankWorkload::key_of(0)).map(decode_i64).unwrap();
        let a1 = p.get(1, &BankWorkload::key_of(1)).map(decode_i64).unwrap();
        assert_eq!(a0 + a1, 2_000);
    }

    #[test]
    fn blocked_two_pc_rounds_are_reaped() {
        use nbc_engine::{CrashPoint, CrashSpec, TransitionProgress};
        let (mut p, mut w) = seeded_pipeline(ProtocolKind::Central2pc, 2);
        // Coordinator logs its decision and crashes before sending any of
        // it: every operational slave is stuck in wait — 2PC's blocking
        // window, unresolvable even by cooperative termination.
        let crash = CrashSpec {
            site: 0,
            point: CrashPoint::OnTransition {
                ordinal: 2,
                progress: TransitionProgress::AfterMsgs(0),
            },
            recover_at: None,
        };
        let mut txns = bank_transfer_txns(&mut w, 8, 0, &mut SimRng::seed_from_u64(5));
        txns[1].crashes = vec![crash];
        let r = p.run(txns);
        assert_eq!(r.decided(), 8);
        assert!(r.blocked >= 1, "2PC coordinator crash must block: {r}");
        assert_eq!(p.locked_keys(), 0, "reaper must free strand-locks");
        assert_eq!(p.total_balance(&w), w.expected_total());
    }

    #[test]
    fn traced_batch_emits_admissions_deterministically() {
        use nbc_obs::{MemorySink, SharedSink};
        let run_traced = || {
            let (mut p, mut w) = seeded_pipeline(ProtocolKind::Central3pc, 2);
            let sink = SharedSink::new(MemorySink::default());
            p.set_tracer(Tracer::to_sink(sink.clone()));
            let mut rng = SimRng::seed_from_u64(11);
            let r = p.run(bank_transfer_txns(&mut w, 12, 0, &mut rng));
            assert_eq!(r.decided(), 12);
            sink.with(|s| s.events.clone())
        };
        let a = run_traced();
        let b = run_traced();
        assert_eq!(a, b, "same seed must produce an identical event stream");
        let admits = a.iter().filter(|e| matches!(e.kind, EventKind::Admit)).count();
        assert_eq!(admits, 12);
        // Every admitted round produced protocol traffic under its txn id.
        assert!(a.iter().any(|e| matches!(e.kind, EventKind::MsgSend { .. }) && e.txn == Some(12)));
    }

    #[test]
    fn series_snapshots_land_on_boundaries() {
        use nbc_obs::{MemorySink, SharedSink};
        let w = BankWorkload::new(3, 12, 1_000, 31);
        let cfg = PipelineConfig::new(3, ProtocolKind::Central3pc).with_series_every(16);
        let mut p = Pipeline::new(cfg);
        let sink = SharedSink::new(MemorySink::default());
        p.set_tracer(Tracer::to_sink(sink.clone()));
        assert_eq!(p.run(vec![PipelineTxn::from_ops(&w.setup_ops())]).committed, 1);
        let mut w2 = w;
        let mut rng = SimRng::seed_from_u64(11);
        let r = p.run(bank_transfer_txns(&mut w2, 12, 0, &mut rng));
        assert_eq!(r.decided(), 12);
        let snaps: Vec<Event> = sink.with(|s| {
            s.events
                .iter()
                .filter(|e| matches!(e.kind, EventKind::Snapshot { .. }))
                .cloned()
                .collect()
        });
        assert!(snaps.len() >= 2, "a multi-txn batch spans several intervals");
        // All but the per-run closing snapshots sit on interval boundaries,
        // and times never go backwards.
        let mut last = 0;
        for s in &snaps {
            assert!(s.time >= last, "snapshot times must be monotone");
            last = s.time;
        }
        assert!(snaps.iter().filter(|s| s.time % 16 == 0).count() >= snaps.len() - 2);
        // The committed counter in the final snapshot covers the batch.
        if let EventKind::Snapshot { committed, in_flight, .. } = snaps.last().unwrap().kind {
            assert_eq!(in_flight, 0);
            assert!(committed > 0);
        }
    }

    #[test]
    fn clock_persists_across_runs() {
        let (mut p, mut w) = seeded_pipeline(ProtocolKind::Central3pc, 2);
        let t0 = p.now();
        let mut rng = SimRng::seed_from_u64(3);
        p.run(bank_transfer_txns(&mut w, 4, 0, &mut rng));
        assert!(p.now() > t0);
    }
}
