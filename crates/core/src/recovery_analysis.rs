//! Independent recovery analysis — formalizing when a restarted site can
//! decide without asking anyone.
//!
//! The paper's recovery prose gives one independent rule: *when a failure
//! occurs before the commit point is reached, the site will abort the
//! transaction immediately upon recovering.* This module derives the full
//! per-state classification from the reachable-state analysis:
//!
//! * a state of class `c`/`a` recovers to its own outcome;
//! * a state from which the site provably **never cast a yes vote** (no
//!   path to it passes a yes-vote transition) recovers by unilateral
//!   abort — no global commit can exist, because committable states
//!   require *every* site's yes vote;
//! * everything else **must ask** the operational sites: between the crash
//!   and the recovery the survivors may have run the termination protocol,
//!   whose class-based decisions (see
//!   [`termination::class_decisions`](crate::termination::class_decisions))
//!   can go either way from the concurrently-occupiable classes.
//!
//! The classification mirrors — and is cross-validated against — the
//! operational behavior of the engine's recovery protocol and the DT-log
//! summary rules of `nbc-storage`.

use std::fmt;

use crate::analysis::Analysis;
use crate::fsa::StateClass;
use crate::ids::{SiteId, StateId};
use crate::protocol::Protocol;
use crate::termination::{class_decisions, Decision};

/// What a recovering site may conclude from its last durable state alone.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum RecoveryClass {
    /// The durable state is a commit state: finish committing.
    IndependentCommit,
    /// The durable state proves no commit can exist anywhere (own abort
    /// state, or the site never voted yes): abort unilaterally.
    IndependentAbort,
    /// The outcome may have been decided either way by the survivors (or
    /// may still be open): the site must ask.
    MustAsk,
}

impl fmt::Display for RecoveryClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::IndependentCommit => "independent commit",
            Self::IndependentAbort => "independent abort",
            Self::MustAsk => "must ask",
        })
    }
}

/// One classified state.
#[derive(Clone, Debug)]
pub struct RecoveryRow {
    /// Site.
    pub site: SiteId,
    /// State.
    pub state: StateId,
    /// Display name.
    pub state_name: String,
    /// Classification.
    pub class: RecoveryClass,
    /// The termination decisions reachable from the concurrently
    /// occupiable classes (why `MustAsk` states must ask).
    pub reachable_decisions: Vec<Decision>,
}

/// Classify every occupied state of the protocol.
pub fn classify(protocol: &Protocol, analysis: &Analysis) -> Vec<RecoveryRow> {
    let decisions = class_decisions(protocol, analysis);
    let mut rows = Vec::new();
    for site in protocol.sites() {
        let fsa = protocol.fsa(site);
        for idx in 0..fsa.state_count() {
            let s = StateId(idx as u32);
            if !analysis.occupied(site, s) {
                continue;
            }
            let state_class = fsa.state(s).class;
            // Decisions the survivors could reach, judging from the
            // classes concurrently occupiable with s.
            let mut reachable: Vec<Decision> = analysis
                .concurrency_classes(site, s)
                .into_iter()
                .chain([state_class])
                .filter_map(|c| decisions.get(&c).copied())
                .collect();
            reachable.sort_by_key(|d| match d {
                Decision::Commit => 0,
                Decision::Abort => 1,
                Decision::Blocked => 2,
            });
            reachable.dedup();

            let class = match state_class {
                StateClass::Committed => RecoveryClass::IndependentCommit,
                StateClass::Aborted => RecoveryClass::IndependentAbort,
                _ if !analysis.yes_voted(site, s) => RecoveryClass::IndependentAbort,
                _ => RecoveryClass::MustAsk,
            };
            rows.push(RecoveryRow {
                site,
                state: s,
                state_name: fsa.state(s).name.clone(),
                class,
                reachable_decisions: reachable,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::{central_2pc, central_3pc, decentralized_3pc};

    fn class_of(rows: &[RecoveryRow], site: u32, name: &str) -> RecoveryClass {
        rows.iter()
            .find(|r| r.site == SiteId(site) && r.state_name == name)
            .unwrap_or_else(|| panic!("{site}/{name} missing"))
            .class
    }

    #[test]
    fn initial_states_abort_independently() {
        for p in [central_2pc(3), central_3pc(3), decentralized_3pc(3)] {
            let a = Analysis::build(&p).unwrap();
            let rows = classify(&p, &a);
            for site in p.sites() {
                let q = &p.fsa(site).state(p.fsa(site).initial()).name;
                assert_eq!(
                    class_of(&rows, site.0, q),
                    RecoveryClass::IndependentAbort,
                    "{}",
                    p.name
                );
            }
        }
    }

    #[test]
    fn voted_states_must_ask() {
        let p = central_3pc(3);
        let a = Analysis::build(&p).unwrap();
        let rows = classify(&p, &a);
        // A slave that voted yes (w) or prepared (p) cannot decide alone:
        // the survivors' termination protocol may have gone either way.
        assert_eq!(class_of(&rows, 1, "w"), RecoveryClass::MustAsk);
        assert_eq!(class_of(&rows, 1, "p"), RecoveryClass::MustAsk);
        // The coordinator's p1 casts its yes vote, so it must ask too (a
        // slave backup in p will have committed).
        assert_eq!(class_of(&rows, 0, "p1"), RecoveryClass::MustAsk);
    }

    #[test]
    fn coordinator_wait_state_aborts_independently() {
        // A sharper result than the conservative DT-log rule: the 3PC
        // coordinator in w1 has not yet cast its own (internal) yes vote,
        // so no slave can have prepared and no termination run can commit
        // — the recovered coordinator may abort unilaterally.
        let p = central_3pc(3);
        let a = Analysis::build(&p).unwrap();
        let rows = classify(&p, &a);
        assert_eq!(class_of(&rows, 0, "w1"), RecoveryClass::IndependentAbort);
    }

    #[test]
    fn final_states_are_independent() {
        let p = central_3pc(2);
        let a = Analysis::build(&p).unwrap();
        let rows = classify(&p, &a);
        assert_eq!(class_of(&rows, 0, "c1"), RecoveryClass::IndependentCommit);
        assert_eq!(class_of(&rows, 0, "a1"), RecoveryClass::IndependentAbort);
        assert_eq!(class_of(&rows, 1, "c"), RecoveryClass::IndependentCommit);
        assert_eq!(class_of(&rows, 1, "a"), RecoveryClass::IndependentAbort);
    }

    #[test]
    fn must_ask_states_face_both_decisions_in_3pc() {
        // Why w/p must ask: from their concurrency classes, the survivors
        // can terminate with either outcome.
        let p = central_3pc(3);
        let a = Analysis::build(&p).unwrap();
        let rows = classify(&p, &a);
        let w = rows.iter().find(|r| r.site == SiteId(1) && r.state_name == "w").unwrap();
        assert!(w.reachable_decisions.contains(&Decision::Commit));
        assert!(w.reachable_decisions.contains(&Decision::Abort));
    }

    #[test]
    fn classification_refines_storage_dt_log_rules() {
        // nbc-storage's summarize() is the conservative operational rule:
        // INITIAL progress → abort on recovery, WAIT/PREPARED → must ask,
        // finals → decided. The analysis here may only *refine* it in the
        // safe direction: a MustAsk may sharpen to IndependentAbort (the
        // coordinator's w1), never to IndependentCommit, and the other
        // classes must agree exactly.
        let p = central_3pc(3);
        let a = Analysis::build(&p).unwrap();
        for r in classify(&p, &a) {
            let fsa_class = p.fsa(r.site).state(r.state).class;
            match fsa_class {
                StateClass::Initial => {
                    assert_eq!(r.class, RecoveryClass::IndependentAbort)
                }
                StateClass::Wait | StateClass::Prepared => {
                    assert_ne!(r.class, RecoveryClass::IndependentCommit)
                }
                StateClass::Committed => {
                    assert_eq!(r.class, RecoveryClass::IndependentCommit)
                }
                StateClass::Aborted => {
                    assert_eq!(r.class, RecoveryClass::IndependentAbort)
                }
                StateClass::Custom(_) => {}
            }
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(RecoveryClass::MustAsk.to_string(), "must ask");
        assert_eq!(RecoveryClass::IndependentCommit.to_string(), "independent commit");
    }
}
