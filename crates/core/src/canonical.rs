//! The *canonical* single-automaton view of a commit protocol, and the
//! paper's Lemma for protocols synchronous within one state transition.
//!
//! The paper observes that the central-site and decentralized 2PC protocols
//! are structurally equivalent and both synchronous within one state
//! transition, and abstracts them into a single canonical automaton
//! `q → w → {a, c}`. For such protocols, *the concurrency set for a given
//! state can only contain states that are adjacent to the given state and
//! the given state itself* — so nonblocking can be decided by pure graph
//! adjacency, without building the reachable state graph:
//!
//! > **Lemma.** A protocol which is synchronous within one state transition
//! > is nonblocking if and only if (1) it contains no local state adjacent
//! > to both a commit and an abort state, and (2) it contains no
//! > noncommittable state adjacent to a commit state.
//!
//! [`insert_buffer_states`] is the paper's design method: introducing a
//! buffer state `p` ("prepare to commit") between `w` and `c` makes the
//! canonical 2PC satisfy both constraints — yielding the canonical 3PC.

use std::collections::BTreeSet;
use std::fmt;

use crate::fsa::StateClass;
use crate::termination::Decision;

/// One state of a canonical automaton.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CanonicalState {
    /// Single-letter display name (`q`, `w`, `p`, `a`, `c`, …).
    pub name: String,
    /// Semantic class.
    pub class: StateClass,
    /// Whether occupancy implies all sites voted yes. In the canonical
    /// abstraction this is declared, not derived: buffer states introduced
    /// by the synthesis are committable by construction.
    pub committable: bool,
}

/// A canonical (site-symmetric) protocol automaton.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CanonicalFsa {
    /// Display name of the protocol.
    pub name: String,
    states: Vec<CanonicalState>,
    /// Directed edges `(from, to)` by state index.
    edges: Vec<(u32, u32)>,
    initial: u32,
}

impl CanonicalFsa {
    /// Assemble a canonical automaton.
    pub fn new(
        name: impl Into<String>,
        states: Vec<CanonicalState>,
        edges: Vec<(u32, u32)>,
        initial: u32,
    ) -> Self {
        Self { name: name.into(), states, edges, initial }
    }

    /// All states.
    pub fn states(&self) -> &[CanonicalState] {
        &self.states
    }

    /// All edges.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Index of the initial state.
    pub fn initial(&self) -> u32 {
        self.initial
    }

    /// Find a state index by name.
    pub fn state_by_name(&self, name: &str) -> Option<u32> {
        self.states.iter().position(|s| s.name == name).map(|i| i as u32)
    }

    /// The adjacency set of `s`: `s` itself plus its predecessors and
    /// successors. For a protocol synchronous within one state transition,
    /// this *is* the concurrency set (paper §"Concurrency sets in the
    /// canonical 2PC protocol").
    pub fn adjacency_set(&self, s: u32) -> BTreeSet<u32> {
        let mut out = BTreeSet::from([s]);
        for &(a, b) in &self.edges {
            if a == s {
                out.insert(b);
            }
            if b == s {
                out.insert(a);
            }
        }
        out
    }

    /// The adjacency (= concurrency) set rendered as state names, e.g.
    /// `CS(w) = {q, w, a, c}`.
    pub fn adjacency_names(&self, s: u32) -> Vec<&str> {
        self.adjacency_set(s).into_iter().map(|i| self.states[i as usize].name.as_str()).collect()
    }

    /// Check the Lemma's two constraints; empty result means nonblocking.
    pub fn lemma_violations(&self) -> Vec<LemmaViolation> {
        let mut out = Vec::new();
        for (i, st) in self.states.iter().enumerate() {
            let adj = self.adjacency_set(i as u32);
            let commit_adj =
                adj.iter().any(|&j| self.states[j as usize].class == StateClass::Committed);
            let abort_adj =
                adj.iter().any(|&j| self.states[j as usize].class == StateClass::Aborted);
            if commit_adj && abort_adj {
                out.push(LemmaViolation::AdjacentToBoth { state: st.name.clone() });
            }
            if commit_adj && !st.committable && st.class != StateClass::Committed {
                out.push(LemmaViolation::NoncommittableAdjacentToCommit { state: st.name.clone() });
            }
        }
        out
    }

    /// True iff the Lemma's constraints hold (the protocol is nonblocking).
    pub fn is_nonblocking(&self) -> bool {
        self.lemma_violations().is_empty()
    }

    /// The backup coordinator's decision rule (paper §"Decision Rule For
    /// Backup Coordinators"): commit iff the concurrency set of `s`
    /// contains a commit state, otherwise abort.
    ///
    /// Only meaningful for nonblocking canonical protocols.
    pub fn backup_decision(&self, s: u32) -> Decision {
        let adj = self.adjacency_set(s);
        if adj.iter().any(|&j| self.states[j as usize].class == StateClass::Committed) {
            Decision::Commit
        } else {
            Decision::Abort
        }
    }
}

impl fmt::Display for CanonicalFsa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "canonical protocol: {}", self.name)?;
        for (i, s) in self.states.iter().enumerate() {
            writeln!(
                f,
                "  {}{} [{:?}{}]  CS = {{{}}}",
                if i as u32 == self.initial { ">" } else { " " },
                s.name,
                s.class,
                if s.committable { ", committable" } else { "" },
                self.adjacency_names(i as u32).join(", ")
            )?;
        }
        for &(a, b) in &self.edges {
            writeln!(f, "  {} -> {}", self.states[a as usize].name, self.states[b as usize].name)?;
        }
        Ok(())
    }
}

/// A violated Lemma constraint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LemmaViolation {
    /// Constraint 1: a state adjacent to both a commit and an abort state.
    AdjacentToBoth {
        /// Name of the violating state.
        state: String,
    },
    /// Constraint 2: a noncommittable state adjacent to a commit state.
    NoncommittableAdjacentToCommit {
        /// Name of the violating state.
        state: String,
    },
}

impl fmt::Display for LemmaViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::AdjacentToBoth { state } => {
                write!(f, "state {state} is adjacent to both a commit and an abort state")
            }
            Self::NoncommittableAdjacentToCommit { state } => {
                write!(f, "noncommittable state {state} is adjacent to a commit state")
            }
        }
    }
}

/// The canonical two-phase commit automaton: `q → w → {a, c}`, plus the
/// unilateral abort `q → a`. Only `c` is committable.
pub fn canonical_2pc() -> CanonicalFsa {
    CanonicalFsa::new(
        "canonical 2PC",
        vec![
            CanonicalState { name: "q".into(), class: StateClass::Initial, committable: false },
            CanonicalState { name: "w".into(), class: StateClass::Wait, committable: false },
            CanonicalState { name: "a".into(), class: StateClass::Aborted, committable: false },
            CanonicalState { name: "c".into(), class: StateClass::Committed, committable: true },
        ],
        vec![(0, 1), (0, 2), (1, 2), (1, 3)],
        0,
    )
}

/// The canonical three-phase commit automaton: 2PC with the buffer state
/// `p` between `w` and `c`. Both `p` and `c` are committable.
pub fn canonical_3pc() -> CanonicalFsa {
    CanonicalFsa::new(
        "canonical 3PC",
        vec![
            CanonicalState { name: "q".into(), class: StateClass::Initial, committable: false },
            CanonicalState { name: "w".into(), class: StateClass::Wait, committable: false },
            CanonicalState { name: "a".into(), class: StateClass::Aborted, committable: false },
            CanonicalState { name: "p".into(), class: StateClass::Prepared, committable: true },
            CanonicalState { name: "c".into(), class: StateClass::Committed, committable: true },
        ],
        vec![(0, 1), (0, 2), (1, 2), (1, 3), (3, 4)],
        0,
    )
}

/// The paper's design method: make a blocking canonical protocol
/// nonblocking by inserting buffer states.
///
/// For every edge `s → c` into a commit state where `s` violates a Lemma
/// constraint (it is noncommittable, or it is also adjacent to an abort
/// state), the edge is replaced by `s → p → c` with a fresh committable
/// buffer state `p`. The buffer state is committable by construction: it is
/// entered precisely when the transition to commit had been enabled, i.e.
/// after unanimous yes votes.
///
/// Applying this to [`canonical_2pc`] yields exactly [`canonical_3pc`].
pub fn insert_buffer_states(fsa: &CanonicalFsa) -> CanonicalFsa {
    let mut out = fsa.clone();
    out.name = format!("{} + buffer states", fsa.name);
    let mut next_buffer = 0u32;
    loop {
        let offending = out.edges.iter().copied().position(|(s, c)| {
            let target_commit = out.states[c as usize].class == StateClass::Committed;
            if !target_commit {
                return false;
            }
            let src = &out.states[s as usize];
            if src.class == StateClass::Committed {
                return false;
            }
            let adj = out.adjacency_set(s);
            let abort_adjacent =
                adj.iter().any(|&j| out.states[j as usize].class == StateClass::Aborted);
            !src.committable || abort_adjacent
        });
        let Some(idx) = offending else { break };
        let (s, c) = out.edges[idx];
        let p_idx = out.states.len() as u32;
        out.states.push(CanonicalState {
            name: if next_buffer == 0 { "p".to_string() } else { format!("p{next_buffer}") },
            class: StateClass::Prepared,
            committable: true,
        });
        next_buffer += 1;
        out.edges.remove(idx);
        out.edges.push((s, p_idx));
        out.edges.push((p_idx, c));
        let _ = s;
        let _ = c;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_2pc_concurrency_sets_match_paper() {
        // CS(q)={q,w,a}, CS(w)={q,w,a,c}, CS(a)={q,w,a}, CS(c)={w,c}.
        let f = canonical_2pc();
        let id = |n: &str| f.state_by_name(n).unwrap();
        assert_eq!(f.adjacency_names(id("q")), vec!["q", "w", "a"]);
        assert_eq!(f.adjacency_names(id("w")), vec!["q", "w", "a", "c"]);
        assert_eq!(f.adjacency_names(id("a")), vec!["q", "w", "a"]);
        assert_eq!(f.adjacency_names(id("c")), vec!["w", "c"]);
    }

    #[test]
    fn canonical_2pc_blocks_at_w() {
        let f = canonical_2pc();
        let v = f.lemma_violations();
        assert_eq!(
            v,
            vec![
                LemmaViolation::AdjacentToBoth { state: "w".into() },
                LemmaViolation::NoncommittableAdjacentToCommit { state: "w".into() },
            ]
        );
        assert!(!f.is_nonblocking());
    }

    #[test]
    fn canonical_3pc_is_nonblocking() {
        let f = canonical_3pc();
        assert!(f.is_nonblocking(), "{:?}", f.lemma_violations());
    }

    #[test]
    fn buffer_insertion_turns_2pc_into_3pc() {
        let f2 = canonical_2pc();
        let f3 = insert_buffer_states(&f2);
        assert!(f3.is_nonblocking(), "{:?}", f3.lemma_violations());
        // Structurally equal to the canonical 3PC up to the name field.
        let reference = canonical_3pc();
        assert_eq!(f3.states().len(), reference.states().len());
        let mut e1: Vec<_> = f3
            .edges()
            .iter()
            .map(|&(a, b)| {
                (f3.states()[a as usize].name.clone(), f3.states()[b as usize].name.clone())
            })
            .collect();
        let mut e2: Vec<_> = reference
            .edges()
            .iter()
            .map(|&(a, b)| {
                (
                    reference.states()[a as usize].name.clone(),
                    reference.states()[b as usize].name.clone(),
                )
            })
            .collect();
        e1.sort();
        e2.sort();
        assert_eq!(e1, e2);
    }

    #[test]
    fn buffer_insertion_is_idempotent_on_nonblocking_input() {
        let f3 = canonical_3pc();
        let again = insert_buffer_states(&f3);
        assert_eq!(again.states().len(), f3.states().len());
        assert_eq!(again.edges().len(), f3.edges().len());
    }

    #[test]
    fn termination_decision_table_matches_paper() {
        // Paper §"Termination protocol for the canonical 3PC":
        // commit if s ∈ {p, c}; abort if s ∈ {q, w, a}.
        let f = canonical_3pc();
        let id = |n: &str| f.state_by_name(n).unwrap();
        assert_eq!(f.backup_decision(id("q")), Decision::Abort);
        assert_eq!(f.backup_decision(id("w")), Decision::Abort);
        assert_eq!(f.backup_decision(id("a")), Decision::Abort);
        assert_eq!(f.backup_decision(id("p")), Decision::Commit);
        assert_eq!(f.backup_decision(id("c")), Decision::Commit);
    }

    #[test]
    fn display_renders_concurrency_sets() {
        let s = canonical_2pc().to_string();
        assert!(s.contains("CS ="));
        assert!(s.contains("w -> c"));
    }
}
