//! Property tests for the spec parser: total on arbitrary input (errors,
//! never panics), and semantically faithful on the example specs at every
//! site count.

use nbc_spec::{examples, parse};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The parser must be total: any byte soup yields Ok or a positioned
    /// error — never a panic.
    #[test]
    fn parser_never_panics(text in "\\PC{0,400}", n in 2usize..6) {
        let _ = parse(&text, n);
    }

    /// Mutating random lines of a valid spec either still parses or fails
    /// with a line number inside the document.
    #[test]
    fn mutated_spec_errors_are_positioned(
        line_ix in any::<proptest::sample::Index>(),
        junk in "[a-z]{1,12}",
    ) {
        let mut lines: Vec<String> =
            examples::CENTRAL_3PC.lines().map(str::to_string).collect();
        let i = line_ix.index(lines.len());
        lines[i] = junk.clone();
        let text = lines.join("\n");
        match parse(&text, 3) {
            Ok(_) => {}
            Err(e) => prop_assert!(e.line <= lines.len(), "line {} of {}", e.line, lines.len()),
        }
    }

    /// Example specs instantiate at any site count and agree with the
    /// hand-written catalog on the theorem verdict.
    #[test]
    fn examples_parse_at_every_n(n in 2usize..6) {
        use nbc_core::protocols::{central_2pc, central_3pc, decentralized_2pc};
        use nbc_core::theorem;

        for (text, hand) in [
            (examples::CENTRAL_2PC, central_2pc(n)),
            (examples::CENTRAL_3PC, central_3pc(n)),
            (examples::DECENTRALIZED_2PC, decentralized_2pc(n)),
        ] {
            let spec = parse(text, n).unwrap();
            spec.validate_strict().unwrap();
            let vs = theorem::check(&spec).unwrap();
            let vh = theorem::check(&hand).unwrap();
            prop_assert_eq!(vs.nonblocking(), vh.nonblocking(), "{}", spec.name);
            prop_assert_eq!(vs.clean, vh.clean, "{}", spec.name);
        }
    }
}

#[test]
fn truncated_specs_fail_gracefully() {
    // Every prefix of a valid spec parses or errors cleanly.
    let full = examples::CENTRAL_2PC;
    for cut in 0..full.len() {
        if !full.is_char_boundary(cut) {
            continue;
        }
        let _ = parse(&full[..cut], 3);
    }
}
