//! The `nbc` command-line entry point. All real work lives in the library
//! (`nbc_cli`) so it is unit-tested; this file only parses `argv`.

use nbc_cli::*;

const USAGE: &str = "\
nbc — nonblocking commit protocols (Skeen, SIGMOD 1981)

USAGE:
  nbc list
  nbc analyze     PROTO [-n N] [--threads T] [--stream] [--mem-budget B] [--progress]
  nbc verify      PROTO [-n N] [--threads T] [--progress]
  nbc graph       PROTO [-n N] [--dot] [--threads T] [--progress]
  nbc synthesize  PROTO [-n N] [--threads T] [--stream] [--mem-budget B] [--progress]
  nbc simulate    PROTO [-n N] [--threads T] [--stream]
                  [--crash SITE:ORDINAL:MSGS] [--recover T]
                  [--no-voter K]... [--rule skeen|cooperative|naive|quorum]
                  [--latency LO..HI] [--seed S] [--story]
                  [--detector-timeout T] [--detector-jitter LO..HI]
                  [--schedule FILE]
                  [--trace PATH] [--trace-format jsonl|chrome] [--metrics] [--json]
                  [--flight PATH] [--flight-cap N]
  nbc check       PROTO [-n N] [--depth D] [--faults F] [--recoveries R]
                  [--drops K] [--suspicions S] [--seed S] [--threads T] [--progress]
                  [--rule skeen|cooperative|naive|quorum]
                  [--votes yyn] [--max-states M] [--mem-budget B]
                  [--counterexample FILE] [--trace] [--json]
  nbc sweep       PROTO [-n N] [--threads T] [--stream] [--recover T] [--rule ...]
                  [--detector-timeout T] [--detector-jitter LO..HI] [--seed S]
                  [--trace PATH] [--trace-format jsonl|chrome] [--metrics] [--json]
  nbc termination PROTO [-n N] [--threads T] [--stream]
                  [--trace PATH] [--trace-format jsonl|chrome] [--metrics]
  nbc recovery    PROTO [-n N] [--threads T] [--stream]
                  [--trace PATH] [--trace-format jsonl|chrome] [--metrics]
  nbc pipeline    PROTO [-n N] [--txns T] [--crash-pct P] [--in-flight K]
                  [--window W] [--reap T] [--seed S]
                  [--trace PATH] [--trace-format jsonl|chrome] [--metrics]
                  [--series-every T] [--flight PATH] [--flight-cap N]
  nbc paxos       [--sites N] [--faults F] [--metrics] [--json]
  nbc trace       verify FILE... [--json]
  nbc trace       stats  FILE... [--json]

PROTO: central-2pc | central-3pc | decentralized-2pc | decentralized-3pc |
       1pc | kpc:K | paxos:F | a .nbc spec file (see the nbc-spec crate docs)

MSGS in --crash: a number (messages sent before dying) or `log`
(crash before the write-ahead record).

--threads T: worker threads for the reachability analysis (0 = auto).
--stream: fold the analysis level by level without retaining the state
graph — lower memory, but graph consumers (`verify`, `--dot`) need the
retaining default.
--progress: per-level BFS progress (frontier, new states, dedup hits,
states/sec) on stderr while the analysis builds.
--mem-budget B: cap the in-RAM dedup store at B bytes (64K, 16M, 1G, or
plain bytes), spilling sorted runs to temp files past it. Results are
byte-identical with or without a budget; spill stats print on stderr.
For analyze/synthesize it applies to the --stream reachability fold.
--story: print the run's human-readable execution trace.
--detector-timeout T: replace the paper's perfect failure detector with
timeout-based suspicion — a site suspects a peer after T units of
silence, with heartbeat latency drawn from --detector-jitter LO..HI
(default 1..12, seeded by --seed). A timeout below the jitter ceiling
can falsely suspect live sites; a timeout at or above it detects only
genuine crashes and reproduces the perfect-detector run byte for byte.
--trace PATH: write the structured event trace to PATH; --trace-format
picks JSONL (one event object per line, the default) or Chrome
trace-event JSON for chrome://tracing / Perfetto.
--metrics: print message/WAL/latency counters after the run.
--json: emit the run report or sweep summary as JSON on stdout
(simulate --json --metrics nests both under {\"report\":..,\"metrics\":..}).
--flight PATH: attach a bounded flight recorder (last N events,
--flight-cap, default 256) and dump its tail to PATH only when the run
ends badly — atomicity violated, a site left undecided, or (pipeline)
a panic or conservation violation.
--series-every T: pipeline emits a metrics snapshot event every T ticks
(goodput, in-flight, blocked, WAL bytes) into the trace for
`nbc trace stats`.

paxos: run one happy-path Paxos Commit transaction (N participants,
2F+1 acceptors) and print the Gray–Lamport cost table — messages,
stable writes, and message delays per transaction — next to central
2PC/3PC and the paper's analytic predictions.

check: exhaustively explore every schedule (delivery order, crashes,
recoveries, drops, false suspicions via --suspicions) within the
budgets and cross-validate the engine
against the paper's state-graph analysis with four oracles; shrunk
counterexamples replay with `nbc simulate PROTO --schedule FILE`.
check exits 0 when every oracle passes, 1 on an oracle violation, and
2 on a usage or protocol error. `--threads T` fans the exploration out
over T workers (0 = auto; results are identical at any thread count);
`--seed S` perturbs traversal order only. With `--counterexample FILE`
a failing check also replays the shrunk schedule under a flight
recorder and writes its event tail to FILE.flight.jsonl.

trace: offline analysis of recorded JSONL traces. `verify` re-checks
message conservation, decision consistency, WAL-before-send ordering,
and stable decisions from the trace alone, and prints the Gray-Lamport
message/stable-write/delay accounting; it exits 0/1/2 like check.
`stats` prints decision-latency percentiles (p50/p95/p99) and the
time-series snapshot table recorded by `pipeline --series-every`.
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `check` owns its exit status: 0 = every oracle passed, 1 = some
    // oracle reported a violation, 2 = usage or protocol error. The
    // verdict must be scriptable (CI gates on it), not just rendered text.
    if let Some(cmd @ ("check" | "trace")) = args.first().map(String::as_str) {
        let run = if cmd == "check" { cmd_check(&args[1..]) } else { cmd_trace(&args[1..]) };
        match run {
            Ok(run) => {
                print!("{}", run.output);
                std::process::exit(if run.ok { 0 } else { 1 });
            }
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!("\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    match run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("\n{USAGE}");
            std::process::exit(2);
        }
    }
}

fn run(args: &[String]) -> Result<String, CliError> {
    let Some(cmd) = args.first() else {
        return Ok(USAGE.to_string());
    };
    if cmd == "list" {
        return Ok(cmd_list());
    }
    if cmd == "help" || cmd == "--help" || cmd == "-h" {
        return Ok(USAGE.to_string());
    }
    if cmd == "pipeline" {
        return cmd_pipeline(&args[1..]);
    }
    if cmd == "paxos" {
        return cmd_paxos(&args[1..]);
    }

    let Some(proto_arg) = args.get(1) else {
        return Err(CliError(format!("{cmd}: missing protocol argument")));
    };

    // Flag parsing.
    let mut n = 3usize;
    let mut dot = false;
    let mut threads = 0usize; // 0 = auto
    let mut stream = false;
    let mut progress = false;
    let mut mem_budget = 0usize;
    let mut opts = SimOpts::default();
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "-n" => {
                n = next_val(args, &mut i)?.parse().map_err(|_| CliError("bad -n value".into()))?;
            }
            "--dot" => dot = true,
            "--stream" => stream = true,
            "--progress" => progress = true,
            "--threads" => {
                threads = next_val(args, &mut i)?
                    .parse()
                    .map_err(|_| CliError("bad --threads value".into()))?
            }
            "--mem-budget" => {
                mem_budget = parse_mem_budget(&next_val(args, &mut i)?, "--mem-budget")?
            }
            "--story" => opts.trace = true,
            "--schedule" => opts.schedule = Some(next_val(args, &mut i)?),
            "--trace" => opts.trace_path = Some(next_val(args, &mut i)?),
            "--trace-format" => opts.trace_chrome = parse_trace_format(&next_val(args, &mut i)?)?,
            "--metrics" => opts.metrics = true,
            "--flight" => opts.flight_path = Some(next_val(args, &mut i)?),
            "--flight-cap" => {
                opts.flight_cap = next_val(args, &mut i)?
                    .parse()
                    .map_err(|_| CliError("bad --flight-cap value".into()))?
            }
            "--json" => opts.json = true,
            "--crash" => opts.crash = Some(parse_crash_arg(&next_val(args, &mut i)?)?),
            "--recover" => {
                opts.recover = Some(
                    next_val(args, &mut i)?
                        .parse()
                        .map_err(|_| CliError("bad --recover value".into()))?,
                )
            }
            "--no-voter" => opts.no_voters.push(
                next_val(args, &mut i)?
                    .parse()
                    .map_err(|_| CliError("bad --no-voter value".into()))?,
            ),
            "--rule" => opts.rule = parse_rule_arg(&next_val(args, &mut i)?)?,
            "--latency" => opts.latency = Some(parse_latency_arg(&next_val(args, &mut i)?)?),
            "--detector-timeout" => {
                opts.detector_timeout = Some(parse_timeout_arg(&next_val(args, &mut i)?)?)
            }
            "--detector-jitter" => {
                opts.detector_jitter = Some(parse_jitter_arg(&next_val(args, &mut i)?)?)
            }
            "--seed" => {
                opts.seed = next_val(args, &mut i)?
                    .parse()
                    .map_err(|_| CliError("bad --seed value".into()))?
            }
            other => return Err(CliError(format!("unknown flag {other:?}"))),
        }
        i += 1;
    }

    const ANALYSIS_CMDS: &[&str] =
        ["analyze", "verify", "synthesize", "simulate", "sweep", "termination", "recovery"]
            .as_slice();
    if cmd != "graph" && !ANALYSIS_CMDS.contains(&cmd.as_str()) {
        return Err(CliError(format!("unknown command {cmd:?}")));
    }

    let protocol = resolve_protocol(proto_arg, n)?;
    if cmd == "graph" {
        return cmd_graph(&protocol, dot, threads, progress);
    }

    // Every remaining command consumes the analysis; build it once and
    // share it across the theorem/resilience/termination/report subpaths.
    let analysis = build_analysis(&protocol, threads, stream, progress, mem_budget)?;
    match cmd.as_str() {
        "analyze" => cmd_analyze(&protocol, &analysis),
        "verify" => cmd_verify(&protocol, &analysis),
        "synthesize" => cmd_synthesize(&protocol, &analysis),
        "simulate" => cmd_simulate(&protocol, &analysis, &opts),
        "sweep" => cmd_sweep(&protocol, &analysis, &opts),
        "termination" => cmd_termination(&protocol, &analysis, &opts),
        "recovery" => cmd_recovery(&protocol, &analysis, &opts),
        _ => unreachable!("command validated above"),
    }
}

fn next_val(args: &[String], i: &mut usize) -> Result<String, CliError> {
    *i += 1;
    args.get(*i).cloned().ok_or_else(|| CliError(format!("{} needs a value", args[*i - 1])))
}
