//! The line-oriented parser for the protocol spec format.

use std::collections::BTreeMap;
use std::fmt;

use nbc_core::{
    Consume, Envelope, FsaBuilder, InitialMsg, MsgKind, Paradigm, Protocol, SiteId, StateClass,
    StateId, Vote,
};

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending input.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError { line, message: message.into() })
}

/// A set of sites, resolved against the instantiation size and (for
/// `Others`) the site currently being built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SiteSet {
    One(usize),
    Range(usize, Option<usize>),
    All,
    Slaves,
    Others,
}

impl SiteSet {
    fn resolve(self, n: usize, me: usize) -> Vec<usize> {
        match self {
            Self::One(i) => vec![i],
            Self::Range(lo, hi) => (lo..=hi.unwrap_or(n - 1)).collect(),
            Self::All => (0..n).collect(),
            Self::Slaves => (1..n).collect(),
            Self::Others => (0..n).filter(|&j| j != me).collect(),
        }
    }
}

/// Message source in a trigger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Src {
    Client,
    Site(usize),
    All(SiteSet),
    Any(SiteSet),
}

#[derive(Debug, Clone)]
enum Action {
    Send { kind: String, to: SiteSet },
    Vote(Vote),
}

#[derive(Debug, Clone)]
struct TransitionSpec {
    line: usize,
    from: String,
    to: String,
    trigger: Option<(String, Src)>, // None = spontaneous
    actions: Vec<Action>,
}

#[derive(Debug, Clone)]
struct FsaSpec {
    role: String,
    sites: SiteSet,
    states: Vec<(String, StateClass)>,
    transitions: Vec<TransitionSpec>,
}

struct Kinds {
    map: BTreeMap<String, MsgKind>,
    next_custom: u16,
}

impl Kinds {
    fn new() -> Self {
        let mut map = BTreeMap::new();
        for k in [
            MsgKind::REQUEST,
            MsgKind::XACT,
            MsgKind::YES,
            MsgKind::NO,
            MsgKind::COMMIT,
            MsgKind::ABORT,
            MsgKind::PREPARE,
            MsgKind::ACK,
        ] {
            map.insert(k.builtin_name().unwrap().to_string(), k);
        }
        Self { map, next_custom: MsgKind::FIRST_CUSTOM.0 }
    }

    fn intern(&mut self, name: &str) -> MsgKind {
        if let Some(&k) = self.map.get(name) {
            return k;
        }
        let k = MsgKind(self.next_custom);
        self.next_custom += 1;
        self.map.insert(name.to_string(), k);
        k
    }
}

/// Parse a spec into a protocol instantiated for `n_sites`.
pub fn parse(text: &str, n_sites: usize) -> Result<Protocol, ParseError> {
    if n_sites < 2 {
        return err(0, "a commit protocol needs at least 2 sites");
    }
    let mut name: Option<String> = None;
    let mut paradigm = Paradigm::Custom;
    let mut inits: Vec<(String, SiteSet, usize)> = Vec::new();
    let mut fsas: Vec<FsaSpec> = Vec::new();

    for (line_ix, raw) in text.lines().enumerate() {
        let line_no = line_ix + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let words: Vec<&str> = line.split_whitespace().collect();
        match words[0] {
            "protocol" => {
                if words.len() != 2 {
                    return err(line_no, "usage: protocol NAME");
                }
                name = Some(words[1].to_string());
            }
            "paradigm" => {
                paradigm = match words.get(1).copied() {
                    Some("central") => Paradigm::CentralSite,
                    Some("decentralized") => Paradigm::Decentralized,
                    Some("custom") => Paradigm::Custom,
                    other => {
                        return err(
                            line_no,
                            format!(
                                "unknown paradigm {other:?} (central | decentralized | custom)"
                            ),
                        )
                    }
                };
            }
            "init" => {
                // init KIND to SITESET
                if words.len() < 4 || words[2] != "to" {
                    return err(line_no, "usage: init KIND to SITESET");
                }
                let set = parse_site_set(&words[3..], line_no)?;
                inits.push((words[1].to_string(), set, line_no));
            }
            "fsa" => {
                if words.len() < 3 {
                    return err(line_no, "usage: fsa NAME SITESET");
                }
                let set = parse_site_set(&words[2..], line_no)?;
                fsas.push(FsaSpec {
                    role: words[1].to_string(),
                    sites: set,
                    states: Vec::new(),
                    transitions: Vec::new(),
                });
            }
            "state" => {
                let Some(fsa) = fsas.last_mut() else {
                    return err(line_no, "`state` outside an `fsa` block");
                };
                if words.len() < 3 {
                    return err(line_no, "usage: state NAME CLASS");
                }
                let class = match words[2] {
                    "initial" => StateClass::Initial,
                    "wait" => StateClass::Wait,
                    "prepared" => StateClass::Prepared,
                    "aborted" => StateClass::Aborted,
                    "committed" => StateClass::Committed,
                    "custom" => {
                        let k: u8 =
                            words.get(3).and_then(|w| w.parse().ok()).ok_or(ParseError {
                                line: line_no,
                                message: "usage: state NAME custom K".into(),
                            })?;
                        StateClass::Custom(k)
                    }
                    other => return err(line_no, format!("unknown state class {other:?}")),
                };
                if fsa.states.iter().any(|(nm, _)| nm == words[1]) {
                    return err(
                        line_no,
                        format!("duplicate state name {:?} in fsa {:?}", words[1], fsa.role),
                    );
                }
                fsa.states.push((words[1].to_string(), class));
            }
            _ if line.contains("->") => {
                let Some(fsa) = fsas.last_mut() else {
                    return err(line_no, "transition outside an `fsa` block");
                };
                fsa.transitions.push(parse_transition(line, line_no)?);
            }
            other => return err(line_no, format!("unrecognized directive {other:?}")),
        }
    }

    let name = name.ok_or(ParseError { line: 0, message: "missing `protocol NAME`".into() })?;
    if fsas.is_empty() {
        return err(0, "no `fsa` blocks");
    }

    // Assign an FSA spec to every site.
    let mut per_site: Vec<Option<&FsaSpec>> = vec![None; n_sites];
    for f in &fsas {
        for i in f.sites.resolve(n_sites, usize::MAX) {
            if i >= n_sites {
                return err(0, format!("fsa {:?} names site {i} of {n_sites}", f.role));
            }
            if per_site[i].is_some() {
                return err(0, format!("site {i} assigned to two fsa blocks"));
            }
            per_site[i] = Some(f);
        }
    }
    for (i, f) in per_site.iter().enumerate() {
        if f.is_none() {
            return err(0, format!("site {i} has no fsa"));
        }
    }

    let mut kinds = Kinds::new();
    let mut built = Vec::with_capacity(n_sites);
    for (i, spec) in per_site.iter().enumerate() {
        built.push(build_fsa(spec.expect("checked"), i, n_sites, &mut kinds)?);
    }

    let mut initial_msgs = Vec::new();
    for (kind, set, line) in &inits {
        let k = kinds.intern(kind);
        for dst in set.resolve(n_sites, usize::MAX) {
            if dst >= n_sites {
                return err(*line, format!("init targets site {dst} of {n_sites}"));
            }
            initial_msgs.push(InitialMsg { src: SiteId::CLIENT, dst: SiteId(dst as u32), kind: k });
        }
    }

    let mut p = Protocol::new(format!("{name} (n={n_sites})"), paradigm, built, initial_msgs);
    for (nm, k) in &kinds.map {
        if k.0 >= MsgKind::FIRST_CUSTOM.0 {
            p.name_msg(*k, nm.clone());
        }
    }
    Ok(p)
}

fn parse_site_set(words: &[&str], line: usize) -> Result<SiteSet, ParseError> {
    match words {
        ["all"] | ["peers"] => Ok(SiteSet::All),
        ["slaves"] => Ok(SiteSet::Slaves),
        ["others"] => Ok(SiteSet::Others),
        ["site", n] => n
            .parse()
            .map(SiteSet::One)
            .map_err(|_| ParseError { line, message: format!("bad site index {n:?}") }),
        ["sites", range] => {
            let (lo, hi) = range
                .split_once("..")
                .ok_or(ParseError { line, message: "usage: sites N.. or sites N..M".into() })?;
            let lo: usize = lo
                .parse()
                .map_err(|_| ParseError { line, message: format!("bad range start {lo:?}") })?;
            let hi =
                if hi.is_empty() {
                    None
                } else {
                    Some(hi.parse().map_err(|_| ParseError {
                        line,
                        message: format!("bad range end {hi:?}"),
                    })?)
                };
            Ok(SiteSet::Range(lo, hi))
        }
        other => err(line, format!("unrecognized site set {other:?}")),
    }
}

fn parse_transition(line: &str, line_no: usize) -> Result<TransitionSpec, ParseError> {
    let (arrow, rest) = line.split_once(':').ok_or(ParseError {
        line: line_no,
        message: "transition needs `FROM -> TO : TRIGGER [; ACTION]*`".into(),
    })?;
    let (from, to) = arrow
        .split_once("->")
        .ok_or(ParseError { line: line_no, message: "transition needs `FROM -> TO`".into() })?;
    let mut parts = rest.split(';').map(str::trim);
    let trigger_text = parts.next().unwrap_or("");
    let trigger = parse_trigger(trigger_text, line_no)?;
    let mut actions = Vec::new();
    for p in parts {
        if p.is_empty() {
            continue;
        }
        actions.push(parse_action(p, line_no)?);
    }
    Ok(TransitionSpec {
        line: line_no,
        from: from.trim().to_string(),
        to: to.trim().to_string(),
        trigger,
        actions,
    })
}

fn parse_trigger(text: &str, line: usize) -> Result<Option<(String, Src)>, ParseError> {
    let words: Vec<&str> = text.split_whitespace().collect();
    match words.as_slice() {
        [] => err(line, "transition has an empty rule body (want `spontaneous` or `recv ...`)"),
        ["spontaneous"] => Ok(None),
        ["recv", kind, "from", "client"] => Ok(Some((kind.to_string(), Src::Client))),
        ["recv", kind, "from", "site", n] => {
            let i: usize = n
                .parse()
                .map_err(|_| ParseError { line, message: format!("bad site index {n:?}") })?;
            Ok(Some((kind.to_string(), Src::Site(i))))
        }
        ["recv", kind, "from", quant @ ("all" | "any"), set @ ..] => {
            let set = parse_site_set_names(set, line)?;
            let src = if *quant == "all" { Src::All(set) } else { Src::Any(set) };
            Ok(Some((kind.to_string(), src)))
        }
        _ => err(line, format!("unrecognized trigger {text:?}")),
    }
}

/// Site-set names as used inside triggers, accepting singular forms
/// ("any slave").
fn parse_site_set_names(words: &[&str], line: usize) -> Result<SiteSet, ParseError> {
    match words {
        ["slaves"] | ["slave"] => Ok(SiteSet::Slaves),
        ["peers"] | ["peer"] | ["all"] => Ok(SiteSet::All),
        ["others"] | ["other"] => Ok(SiteSet::Others),
        other => parse_site_set(other, line),
    }
}

fn parse_action(text: &str, line: usize) -> Result<Action, ParseError> {
    let words: Vec<&str> = text.split_whitespace().collect();
    match words.as_slice() {
        ["send", kind, "to", set @ ..] => {
            Ok(Action::Send { kind: kind.to_string(), to: parse_site_set_names(set, line)? })
        }
        ["vote", "yes"] => Ok(Action::Vote(Vote::Yes)),
        ["vote", "no"] => Ok(Action::Vote(Vote::No)),
        _ => err(line, format!("unrecognized action {text:?}")),
    }
}

/// Reject a trigger source set that names the same site twice. `Consume::All`
/// consumes one message per listed pair, so a duplicate would demand two
/// identical outstanding messages — never what a spec means — and for `Any`
/// a duplicate is a redundant alternative. Every current [`SiteSet`] resolves
/// to unique sites, so this guards future set syntax (e.g. unions) from
/// silently producing a trigger the graph builder can never enable.
fn unique_sources(sites: Vec<usize>, line: usize, kind: &str) -> Result<Vec<usize>, ParseError> {
    let mut sorted = sites.clone();
    sorted.sort_unstable();
    if let Some(w) = sorted.windows(2).find(|w| w[0] == w[1]) {
        return err(line, format!("trigger lists source site {} twice for message {kind:?}", w[0]));
    }
    Ok(sites)
}

/// Reject site indices outside `0..n` with a line-attributed error instead of
/// letting them surface later as panics or dead protocol edges.
fn check_sites(sites: &[usize], n: usize, line: usize, what: &str) -> Result<(), ParseError> {
    if let Some(i) = sites.iter().find(|i| **i >= n) {
        return err(line, format!("{what} names site {i}, but the protocol has sites 0..{n}"));
    }
    Ok(())
}

fn build_fsa(
    spec: &FsaSpec,
    me: usize,
    n: usize,
    kinds: &mut Kinds,
) -> Result<nbc_core::Fsa, ParseError> {
    if !spec.states.iter().any(|(_, c)| *c == StateClass::Initial) {
        return err(0, format!("fsa {:?} declares no `initial` state", spec.role));
    }
    let mut b = FsaBuilder::new(spec.role.clone());
    let mut ids: BTreeMap<&str, StateId> = BTreeMap::new();
    for (nm, class) in &spec.states {
        ids.insert(nm.as_str(), b.state(nm.clone(), *class));
    }
    for t in &spec.transitions {
        let from = *ids
            .get(t.from.as_str())
            .ok_or(ParseError { line: t.line, message: format!("unknown state {:?}", t.from) })?;
        let to = *ids
            .get(t.to.as_str())
            .ok_or(ParseError { line: t.line, message: format!("unknown state {:?}", t.to) })?;
        let consume = match &t.trigger {
            None => Consume::Spontaneous,
            Some((kind, src)) => {
                let k = kinds.intern(kind);
                match src {
                    Src::Client => Consume::one(SiteId::CLIENT, k),
                    Src::Site(i) => {
                        check_sites(&[*i], n, t.line, "trigger")?;
                        Consume::one(SiteId(*i as u32), k)
                    }
                    Src::All(set) => {
                        let sites = set.resolve(n, me);
                        check_sites(&sites, n, t.line, "trigger")?;
                        Consume::All(
                            unique_sources(sites, t.line, kind)?
                                .into_iter()
                                .map(|j| (SiteId(j as u32), k))
                                .collect(),
                        )
                    }
                    Src::Any(set) => {
                        let sites = set.resolve(n, me);
                        check_sites(&sites, n, t.line, "trigger")?;
                        Consume::Any(
                            unique_sources(sites, t.line, kind)?
                                .into_iter()
                                .map(|j| (SiteId(j as u32), k))
                                .collect(),
                        )
                    }
                }
            }
        };
        let mut emit = Vec::new();
        let mut vote = None;
        for a in &t.actions {
            match a {
                Action::Send { kind, to } => {
                    let k = kinds.intern(kind);
                    let sites = to.resolve(n, me);
                    check_sites(&sites, n, t.line, "send target")?;
                    for j in sites {
                        emit.push(Envelope::new(SiteId(j as u32), k));
                    }
                }
                Action::Vote(v) => vote = Some(*v),
            }
        }
        let label = format!("{} -> {}", t.from, t.to);
        b.transition(from, to, consume, emit, vote, label);
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples;

    #[test]
    fn rejects_bad_paradigm() {
        let e = parse("protocol x\nparadigm sideways\n", 2).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("paradigm"));
    }

    #[test]
    fn rejects_state_outside_fsa() {
        let e = parse("protocol x\nstate q initial\n", 2).unwrap_err();
        assert!(e.message.contains("outside"));
    }

    #[test]
    fn rejects_unknown_state_in_transition() {
        let text = "protocol x\nfsa a all\n  state q initial\n  q -> nowhere : spontaneous\n";
        let e = parse(text, 2).unwrap_err();
        assert!(e.message.contains("nowhere"), "{e}");
        assert_eq!(e.line, 4);
    }

    #[test]
    fn rejects_unassigned_site() {
        let text = "protocol x\nfsa a site 0\n  state q initial\n";
        let e = parse(text, 3).unwrap_err();
        assert!(e.message.contains("no fsa"), "{e}");
    }

    #[test]
    fn rejects_double_assignment() {
        let text = "protocol x\nfsa a all\n state q initial\nfsa b site 0\n state q initial\n";
        let e = parse(text, 2).unwrap_err();
        assert!(e.message.contains("two fsa blocks"), "{e}");
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = parse(examples::DECENTRALIZED_2PC, 2).unwrap();
        assert_eq!(p.n_sites(), 2);
    }

    #[test]
    fn custom_message_kinds_are_interned_and_named() {
        let text = "\
protocol gossip
paradigm custom
init ping to site 0
fsa a site 0
  state q initial
  state c committed
  q -> c : recv ping from client ; send pong to others
fsa b sites 1..
  state q initial
  state c committed
  state a aborted
  q -> c : recv pong from site 0
  q -> a : spontaneous ; vote no
";
        let p = parse(text, 3).unwrap();
        // `pong` got a custom kind with its name registered.
        let pong =
            p.fsa(SiteId(0)).transitions().iter().flat_map(|t| t.emit.iter()).next().unwrap().kind;
        assert!(pong.0 >= MsgKind::FIRST_CUSTOM.0);
        assert_eq!(p.msg_name(pong), "pong");
    }

    #[test]
    fn line_numbers_in_errors() {
        let text =
            "protocol x\n\n# comment\nfsa a all\n  state q initial\n  q -> q : garbage trigger\n";
        let e = parse(text, 2).unwrap_err();
        assert_eq!(e.line, 6);
    }

    #[test]
    fn site_ranges_resolve() {
        assert_eq!(SiteSet::Range(1, None).resolve(4, 0), vec![1, 2, 3]);
        assert_eq!(SiteSet::Range(1, Some(2)).resolve(4, 0), vec![1, 2]);
        assert_eq!(SiteSet::Others.resolve(3, 1), vec![0, 2]);
        assert_eq!(SiteSet::Slaves.resolve(3, 0), vec![1, 2]);
    }

    #[test]
    fn needs_two_sites() {
        assert!(parse(examples::CENTRAL_2PC, 1).is_err());
    }

    #[test]
    fn rejects_duplicate_state_name() {
        let text = "protocol x\nfsa a all\n  state q initial\n  state q committed\n";
        let e = parse(text, 2).unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.message.contains("duplicate state name \"q\""), "{e}");
    }

    #[test]
    fn rejects_unknown_trigger_site() {
        let text = "\
protocol x
fsa a all
  state q initial
  state c committed
  q -> c : recv yes from site 9
";
        let e = parse(text, 3).unwrap_err();
        assert_eq!(e.line, 5);
        assert!(e.message.contains("site 9"), "{e}");
        assert!(e.message.contains("0..3"), "{e}");
    }

    #[test]
    fn rejects_out_of_range_send_target() {
        let text = "\
protocol x
fsa a all
  state q initial
  state c committed
  q -> c : spontaneous ; send yes to site 5
";
        let e = parse(text, 2).unwrap_err();
        assert_eq!(e.line, 5);
        assert!(e.message.contains("send target names site 5"), "{e}");
    }

    #[test]
    fn rejects_empty_rule_body() {
        let text = "protocol x\nfsa a all\n  state q initial\n  state c committed\n  q -> c :\n";
        let e = parse(text, 2).unwrap_err();
        assert_eq!(e.line, 5);
        assert!(e.message.contains("empty rule body"), "{e}");
    }

    #[test]
    fn duplicate_trigger_sources_rejected() {
        // No current SiteSet syntax can resolve to a duplicate, so exercise
        // the guard directly: it is what keeps future set syntax from
        // emitting a `Consume::All` that demands the same message twice.
        let e = unique_sources(vec![2, 1, 2], 7, "yes").unwrap_err();
        assert_eq!(e.line, 7);
        assert!(e.message.contains("site 2 twice"), "{}", e.message);
        assert!(e.message.contains("yes"));
        assert_eq!(unique_sources(vec![0, 1, 2], 7, "yes").unwrap(), vec![0, 1, 2]);
    }
}
