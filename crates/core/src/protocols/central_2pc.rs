//! The central-site two-phase commit protocol (paper figure "The FSAs for
//! the 2PC protocol").
//!
//! Site 0 is the coordinator; sites `1..n` are slaves. In phase one the
//! coordinator distributes the transaction and each slave votes; in phase
//! two the coordinator collects the votes and informs each site of the
//! outcome. 2PC is the simplest commit protocol that allows unilateral
//! abort — and it is *blocking*: a slave in its wait state cannot decide
//! alone if the coordinator fails.

use crate::fsa::{Consume, Envelope, FsaBuilder, StateClass, Vote};
use crate::ids::{MsgKind, SiteId};
use crate::protocol::{InitialMsg, Paradigm, Protocol};

/// Build central-site 2PC for `n >= 2` sites (1 coordinator + `n-1` slaves).
///
/// # Panics
/// Panics if `n < 2`.
pub fn central_2pc(n: usize) -> Protocol {
    assert!(n >= 2, "central-site protocols need a coordinator and >=1 slave");
    let slaves: Vec<SiteId> = (1..n as u32).map(SiteId).collect();

    // Coordinator (site 0).
    let mut cb = FsaBuilder::new("coordinator");
    let q1 = cb.state("q1", StateClass::Initial);
    let w1 = cb.state("w1", StateClass::Wait);
    let a1 = cb.state("a1", StateClass::Aborted);
    let c1 = cb.state("c1", StateClass::Committed);

    cb.transition(
        q1,
        w1,
        Consume::one(SiteId::CLIENT, MsgKind::REQUEST),
        slaves.iter().map(|&s| Envelope::new(s, MsgKind::XACT)).collect(),
        None,
        "request / xact_2..xact_n",
    );
    // All slaves voted yes and the coordinator itself agrees (its own yes
    // vote "(yes_1)" is internal, tagged on this transition).
    cb.transition(
        w1,
        c1,
        Consume::All(slaves.iter().map(|&s| (s, MsgKind::YES)).collect()),
        slaves.iter().map(|&s| Envelope::new(s, MsgKind::COMMIT)).collect(),
        Some(Vote::Yes),
        "(yes_1) yes_2..yes_n / commit_2..commit_n",
    );
    // Any slave voted no.
    cb.transition(
        w1,
        a1,
        Consume::Any(slaves.iter().map(|&s| (s, MsgKind::NO)).collect()),
        slaves.iter().map(|&s| Envelope::new(s, MsgKind::ABORT)).collect(),
        None,
        "no_i / abort_2..abort_n",
    );
    // The coordinator unilaterally votes no: "(no_1)".
    cb.transition(
        w1,
        a1,
        Consume::Spontaneous,
        slaves.iter().map(|&s| Envelope::new(s, MsgKind::ABORT)).collect(),
        Some(Vote::No),
        "(no_1) / abort_2..abort_n",
    );

    let mut fsas = vec![cb.build()];

    // Slaves (sites 1..n).
    let coord = SiteId(0);
    for _ in &slaves {
        let mut sb = FsaBuilder::new("slave");
        let qi = sb.state("q", StateClass::Initial);
        let wi = sb.state("w", StateClass::Wait);
        let ai = sb.state("a", StateClass::Aborted);
        let ci = sb.state("c", StateClass::Committed);
        sb.transition(
            qi,
            wi,
            Consume::one(coord, MsgKind::XACT),
            vec![Envelope::new(coord, MsgKind::YES)],
            Some(Vote::Yes),
            "xact / yes",
        );
        sb.transition(
            qi,
            ai,
            Consume::one(coord, MsgKind::XACT),
            vec![Envelope::new(coord, MsgKind::NO)],
            Some(Vote::No),
            "xact / no",
        );
        sb.transition(wi, ci, Consume::one(coord, MsgKind::COMMIT), vec![], None, "commit /");
        sb.transition(wi, ai, Consume::one(coord, MsgKind::ABORT), vec![], None, "abort /");
        fsas.push(sb.build());
    }

    Protocol::new(
        format!("central-site 2PC (n={n})"),
        Paradigm::CentralSite,
        fsas,
        vec![InitialMsg { src: SiteId::CLIENT, dst: coord, kind: MsgKind::REQUEST }],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsa::StateClass;

    #[test]
    fn shape_matches_paper_figure() {
        let p = central_2pc(3);
        p.validate_strict().unwrap();
        let coord = p.fsa(SiteId(0));
        assert_eq!(coord.state_count(), 4);
        assert_eq!(coord.transitions().len(), 4);
        let slave = p.fsa(SiteId(1));
        assert_eq!(slave.state_count(), 4);
        assert_eq!(slave.transitions().len(), 4);
    }

    #[test]
    fn coordinator_broadcasts_to_every_slave() {
        let p = central_2pc(4);
        let coord = p.fsa(SiteId(0));
        let q1 = coord.initial();
        let (_, start) = coord.outgoing(q1).next().unwrap();
        assert_eq!(start.emit.len(), 3, "xact to each of the 3 slaves");
    }

    #[test]
    fn slave_votes_are_tagged() {
        let p = central_2pc(2);
        let slave = p.fsa(SiteId(1));
        let votes: Vec<_> = slave.transitions().iter().filter_map(|t| t.vote).collect();
        assert_eq!(votes.len(), 2);
    }

    #[test]
    fn coordinator_can_unilaterally_abort() {
        let p = central_2pc(3);
        let coord = p.fsa(SiteId(0));
        let spont = coord
            .transitions()
            .iter()
            .filter(|t| matches!(t.consume, Consume::Spontaneous))
            .count();
        assert_eq!(spont, 1);
    }

    #[test]
    fn two_phases() {
        assert_eq!(central_2pc(5).phase_count(), 2);
    }

    #[test]
    fn final_states_partitioned() {
        let p = central_2pc(3);
        for site in p.sites() {
            let fsa = p.fsa(site);
            let commits = fsa.states().iter().filter(|s| s.class == StateClass::Committed).count();
            let aborts = fsa.states().iter().filter(|s| s.class == StateClass::Aborted).count();
            assert_eq!((commits, aborts), (1, 1));
        }
    }

    #[test]
    #[should_panic]
    fn rejects_single_site() {
        let _ = central_2pc(1);
    }
}
