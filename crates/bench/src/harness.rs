//! A minimal wall-clock benchmark harness for the `benches/` binaries.
//!
//! The workspace is dependency-free, so instead of Criterion the timing
//! benches use this: warm up, auto-calibrate an iteration batch so each
//! sample runs long enough to time meaningfully, take a fixed number of
//! samples, and report the median (with min/max spread) per iteration.
//! Output is one aligned line per benchmark, suitable for eyeballing and
//! diffing — these benches measure *shape* (relative cost across
//! protocols and sizes), not absolute regressions.

use std::time::{Duration, Instant};

/// Minimum wall-clock time per timed sample.
const MIN_SAMPLE: Duration = Duration::from_millis(2);

/// A named set of benchmarks reported together.
pub struct BenchGroup {
    name: String,
    samples: usize,
}

impl BenchGroup {
    /// A group with the default sample count (20).
    pub fn new(name: &str) -> Self {
        println!("\n== {name} ==");
        Self { name: name.to_string(), samples: 20 }
    }

    /// Override the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(3);
        self
    }

    /// Time `f` and print one result line. The closure's return value is
    /// passed through [`std::hint::black_box`] so the work is not
    /// optimized away.
    pub fn bench<R>(&mut self, id: &str, mut f: impl FnMut() -> R) {
        // Warmup + calibration: find an iteration count whose batch takes
        // at least MIN_SAMPLE.
        let mut iters = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            if t.elapsed() >= MIN_SAMPLE || iters >= 1 << 20 {
                break;
            }
            iters *= 4;
        }

        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(f());
                }
                t.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        let (min, max) = (per_iter[0], per_iter[per_iter.len() - 1]);
        println!(
            "{:<44} {:>14}/iter  [{} .. {}]  ({} iters x {} samples)",
            format!("{}/{}", self.name, id),
            fmt_ns(median),
            fmt_ns(min),
            fmt_ns(max),
            iters,
            self.samples,
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut g = BenchGroup::new("selftest");
        g.sample_size(3);
        let mut count = 0u64;
        g.bench("noop", || {
            count += 1;
            count
        });
        assert!(count > 0);
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(500.0), "500 ns");
        assert_eq!(fmt_ns(1_500.0), "1.50 us");
        assert_eq!(fmt_ns(2_500_000.0), "2.50 ms");
        assert_eq!(fmt_ns(3_000_000_000.0), "3.00 s");
    }
}
