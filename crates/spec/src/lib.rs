//! # nbc-spec — a text format for commit protocols
//!
//! The analyses of `nbc-core` are only useful to a downstream user if new
//! protocols can be described without writing Rust. This crate parses a
//! small line-oriented specification language into an
//! [`nbc_core::Protocol`], instantiated for a chosen site count.
//!
//! ## The format
//!
//! ```text
//! # Central-site two-phase commit, as a spec.
//! protocol my-2pc
//! paradigm central
//!
//! init request to site 0
//!
//! fsa coordinator site 0
//!   state q1 initial
//!   state w1 wait
//!   state a1 aborted
//!   state c1 committed
//!   q1 -> w1 : recv request from client ; send xact to slaves
//!   w1 -> c1 : recv yes from all slaves ; send commit to slaves ; vote yes
//!   w1 -> a1 : recv no from any slave ; send abort to slaves
//!   w1 -> a1 : spontaneous ; send abort to slaves ; vote no
//!
//! fsa slave sites 1..
//!   state q initial
//!   state w wait
//!   state a aborted
//!   state c committed
//!   q -> w : recv xact from site 0 ; send yes to site 0 ; vote yes
//!   q -> a : recv xact from site 0 ; send no to site 0 ; vote no
//!   w -> c : recv commit from site 0
//!   w -> a : recv abort from site 0
//! ```
//!
//! * `paradigm` — `central`, `decentralized`, or `custom`.
//! * `init KIND to SITESET` — pre-loads client stimuli.
//! * `fsa NAME SITESET` — an automaton and which sites run it. Site sets:
//!   `site N`, `sites N..` (N to the last site), `sites N..M` (inclusive),
//!   `all` (every site).
//! * Transitions: `FROM -> TO : TRIGGER [; ACTION]*` where
//!   * `TRIGGER` is `spontaneous`, `recv KIND from SRC`,
//!     `recv KIND from all SET`, or `recv KIND from any SET`;
//!   * `ACTION` is `send KIND to SET` or `vote yes|no`;
//!   * `SRC`/`SET` is `client`, `site N`, `slaves` (sites 1..), `peers`
//!     (all sites, including the sender), or `others` (all but the
//!     sender).
//! * Message kinds: the built-ins (`request`, `xact`, `yes`, `no`,
//!   `commit`, `abort`, `prepare`, `ack`) plus any further identifier,
//!   interned automatically.
//! * `#` starts a comment; indentation is free-form.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod parser;

pub use parser::{parse, ParseError};

/// The canonical spec text for the catalog protocols, provided both as
/// documentation of the format and as parser fixtures.
pub mod examples {
    /// Central-site 2PC.
    pub const CENTRAL_2PC: &str = r#"
protocol spec-central-2pc
paradigm central

init request to site 0

fsa coordinator site 0
  state q1 initial
  state w1 wait
  state a1 aborted
  state c1 committed
  q1 -> w1 : recv request from client ; send xact to slaves
  w1 -> c1 : recv yes from all slaves ; send commit to slaves ; vote yes
  w1 -> a1 : recv no from any slave ; send abort to slaves
  w1 -> a1 : spontaneous ; send abort to slaves ; vote no

fsa slave sites 1..
  state q initial
  state w wait
  state a aborted
  state c committed
  q -> w : recv xact from site 0 ; send yes to site 0 ; vote yes
  q -> a : recv xact from site 0 ; send no to site 0 ; vote no
  w -> c : recv commit from site 0
  w -> a : recv abort from site 0
"#;

    /// Central-site 3PC.
    pub const CENTRAL_3PC: &str = r#"
protocol spec-central-3pc
paradigm central

init request to site 0

fsa coordinator site 0
  state q1 initial
  state w1 wait
  state a1 aborted
  state p1 prepared
  state c1 committed
  q1 -> w1 : recv request from client ; send xact to slaves
  w1 -> p1 : recv yes from all slaves ; send prepare to slaves ; vote yes
  w1 -> a1 : recv no from any slave ; send abort to slaves
  w1 -> a1 : spontaneous ; send abort to slaves ; vote no
  p1 -> c1 : recv ack from all slaves ; send commit to slaves

fsa slave sites 1..
  state q initial
  state w wait
  state a aborted
  state p prepared
  state c committed
  q -> w : recv xact from site 0 ; send yes to site 0 ; vote yes
  q -> a : recv xact from site 0 ; send no to site 0 ; vote no
  w -> p : recv prepare from site 0 ; send ack to site 0
  w -> a : recv abort from site 0
  p -> c : recv commit from site 0
"#;

    /// Decentralized 2PC.
    pub const DECENTRALIZED_2PC: &str = r#"
protocol spec-decentralized-2pc
paradigm decentralized

init xact to all

fsa peer all
  state q initial
  state w wait
  state a aborted
  state c committed
  q -> w : recv xact from client ; send yes to peers ; vote yes
  q -> a : recv xact from client ; send no to peers ; vote no
  w -> c : recv yes from all peers
  w -> a : recv no from any peer
"#;
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbc_core::protocols::{central_2pc, central_3pc, decentralized_2pc};
    use nbc_core::theorem;

    #[test]
    fn spec_central_2pc_matches_catalog_analysis() {
        let spec = parse(examples::CENTRAL_2PC, 3).unwrap();
        spec.validate_strict().unwrap();
        let hand = central_2pc(3);
        assert_eq!(spec.phase_count(), hand.phase_count());
        let rs = theorem::check(&spec).unwrap();
        let rh = theorem::check(&hand).unwrap();
        assert_eq!(rs.nonblocking(), rh.nonblocking());
        assert_eq!(rs.violations.len(), rh.violations.len());
        assert_eq!(rs.clean, rh.clean);
    }

    #[test]
    fn spec_central_3pc_is_nonblocking() {
        let spec = parse(examples::CENTRAL_3PC, 4).unwrap();
        spec.validate_strict().unwrap();
        let hand = central_3pc(4);
        assert_eq!(spec.phase_count(), hand.phase_count());
        assert!(theorem::check(&spec).unwrap().nonblocking());
    }

    #[test]
    fn spec_decentralized_2pc_matches_catalog() {
        let spec = parse(examples::DECENTRALIZED_2PC, 3).unwrap();
        spec.validate_strict().unwrap();
        let hand = decentralized_2pc(3);
        let rs = theorem::check(&spec).unwrap();
        let rh = theorem::check(&hand).unwrap();
        assert_eq!(rs.violations.len(), rh.violations.len());
    }
}
