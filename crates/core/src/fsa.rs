//! The finite state automaton (FSA) model of one site's protocol.
//!
//! Following the paper's formal model, transaction execution at each site is
//! a nondeterministic FSA whose input/output tape is the network. A state
//! transition reads a (nonempty) string of messages addressed to the site,
//! writes a string of messages, and moves to the next local state. The
//! change of local state is instantaneous and — absent site failures —
//! atomic. Transitions at one site are asynchronous with respect to
//! transitions at other sites.
//!
//! The FSAs of commit protocols have these properties (paper §"Properties of
//! the FSAs"), all of which [`Fsa::validate`] enforces:
//!
//! * they are **nondeterministic** (a site may vote yes *or* no on the same
//!   input — we additionally allow `Spontaneous` transitions for purely
//!   internal decisions such as the coordinator's own vote);
//! * their **final states are partitioned** into *abort* and *commit*
//!   states, and both are **irreversible** (final states have no exits);
//! * their state diagrams are **acyclic**.

use std::collections::VecDeque;
use std::fmt;

use crate::error::ProtocolError;
use crate::ids::{MsgKind, SiteId, StateId};

/// Semantic classification of a local state.
///
/// The paper draws its protocols over the canonical alphabet
/// `q` (initial), `w` (wait), `p` (prepared-to-commit buffer), `a` (abort),
/// `c` (commit). The class is what the termination protocol aligns on when
/// coordinator and slave automata have structurally different state spaces.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum StateClass {
    /// `q` — initial state; the site has not voted.
    Initial,
    /// `w` — the site has voted yes and waits for the outcome.
    Wait,
    /// `p` — buffer state ("prepare to commit") introduced to make a
    /// blocking protocol nonblocking.
    Prepared,
    /// `a` — final abort state.
    Aborted,
    /// `c` — final commit state.
    Committed,
    /// Any additional state of a user-defined protocol; the payload
    /// disambiguates multiple custom classes.
    Custom(u8),
}

impl StateClass {
    /// True for the two final classes.
    #[inline]
    pub fn is_final(self) -> bool {
        matches!(self, Self::Aborted | Self::Committed)
    }

    /// Canonical single-letter name used in the paper's figures.
    pub fn letter(self) -> char {
        match self {
            Self::Initial => 'q',
            Self::Wait => 'w',
            Self::Prepared => 'p',
            Self::Aborted => 'a',
            Self::Committed => 'c',
            Self::Custom(_) => 'x',
        }
    }
}

/// Metadata for one local state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StateInfo {
    /// Display name, e.g. `"w1"` for the coordinator's wait state.
    pub name: String,
    /// Semantic class (see [`StateClass`]).
    pub class: StateClass,
}

/// A site's vote, recorded as a semantic tag on the transition that casts it.
///
/// The committability analysis (paper §"Committable States") needs to know,
/// for each local state, whether occupancy implies the site has voted yes;
/// the tag makes the vote explicit instead of being inferred from message
/// kinds (the coordinator's own vote is internal and sends no message).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Vote {
    /// The transition casts a yes vote.
    Yes,
    /// The transition casts a no vote (unilateral abort).
    No,
}

/// One message written to the network tape: `kind` addressed to `dst`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct Envelope {
    /// Destination site.
    pub dst: SiteId,
    /// Message kind.
    pub kind: MsgKind,
}

impl Envelope {
    /// Construct an envelope.
    pub const fn new(dst: SiteId, kind: MsgKind) -> Self {
        Self { dst, kind }
    }
}

/// The input condition of a transition — which messages it reads.
///
/// Sources may include [`SiteId::CLIENT`] for the external stimulus that
/// starts the protocol ("a transaction is received").
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Consume {
    /// A purely internal decision; always enabled while the site occupies
    /// the source state. Used for the coordinator's own no-vote, which the
    /// paper writes parenthesized ("(no₁)") in its figures.
    Spontaneous,
    /// Enabled when *every* listed `(source, kind)` message is outstanding
    /// and addressed to this site; consumes all of them. This models e.g.
    /// the coordinator collecting a yes vote from every slave.
    All(Vec<(SiteId, MsgKind)>),
    /// Enabled when *at least one* of the listed messages is outstanding;
    /// consumes exactly the one that fired. This models e.g. the
    /// coordinator aborting upon the first no vote.
    Any(Vec<(SiteId, MsgKind)>),
    /// Enabled when at least `k` of the listed `(source, kind)` messages
    /// are outstanding and addressed to this site; consumes exactly `k` of
    /// them. This models consensus-style quorum collection — e.g. the
    /// Paxos Commit leader committing once F+1 of the 2F+1 acceptors have
    /// relayed a unanimous-yes acknowledgement (Gray & Lamport, "Consensus
    /// on Transaction Commit"). `Quorum { k: v.len(), .. }` is `All`;
    /// `Quorum { k: 1, .. }` is `Any`.
    Quorum {
        /// How many of the listed messages must be present (and are
        /// consumed).
        k: u32,
        /// The candidate `(source, kind)` pairs; must be distinct.
        srcs: Vec<(SiteId, MsgKind)>,
    },
}

impl Consume {
    /// Convenience: read a single message.
    pub fn one(src: SiteId, kind: MsgKind) -> Self {
        Self::All(vec![(src, kind)])
    }

    /// Number of distinct message patterns this trigger mentions.
    pub fn arity(&self) -> usize {
        match self {
            Self::Spontaneous => 0,
            Self::All(v) | Self::Any(v) => v.len(),
            Self::Quorum { srcs, .. } => srcs.len(),
        }
    }
}

/// One state transition of a site FSA.
#[derive(Clone, Debug)]
pub struct Transition {
    /// Source local state.
    pub from: StateId,
    /// Target local state.
    pub to: StateId,
    /// Messages read.
    pub consume: Consume,
    /// Messages written.
    pub emit: Vec<Envelope>,
    /// Vote cast by this transition, if any.
    pub vote: Option<Vote>,
    /// Human-readable label for figures, e.g. `"yes₂…yesₙ / commit₂…commitₙ"`.
    pub label: String,
}

/// A site's finite state automaton.
///
/// Construct with [`FsaBuilder`]; validate with [`Fsa::validate`] (the
/// [`Protocol`](crate::protocol::Protocol) validator calls it for every
/// site).
#[derive(Clone, Debug)]
pub struct Fsa {
    /// Role shown in figures, e.g. `"coordinator"`, `"slave"`, `"peer"`.
    pub role: String,
    states: Vec<StateInfo>,
    initial: StateId,
    transitions: Vec<Transition>,
    /// `outgoing[s]` = indices into `transitions` with `from == s`.
    outgoing: Vec<Vec<u32>>,
}

impl Fsa {
    /// The initial local state.
    #[inline]
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// Number of local states.
    #[inline]
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// All state metadata, indexed by [`StateId`].
    #[inline]
    pub fn states(&self) -> &[StateInfo] {
        &self.states
    }

    /// Metadata for one state.
    #[inline]
    pub fn state(&self, s: StateId) -> &StateInfo {
        &self.states[s.index()]
    }

    /// All transitions.
    #[inline]
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Transitions leaving `s`.
    pub fn outgoing(&self, s: StateId) -> impl Iterator<Item = (u32, &Transition)> + '_ {
        self.outgoing[s.index()].iter().map(move |&i| (i, &self.transitions[i as usize]))
    }

    /// True if `s` is a final (commit or abort) state.
    #[inline]
    pub fn is_final(&self, s: StateId) -> bool {
        self.state(s).class.is_final()
    }

    /// True if `s` is the commit state.
    #[inline]
    pub fn is_commit(&self, s: StateId) -> bool {
        self.state(s).class == StateClass::Committed
    }

    /// True if `s` is the abort state.
    #[inline]
    pub fn is_abort(&self, s: StateId) -> bool {
        self.state(s).class == StateClass::Aborted
    }

    /// Find the (first) state with the given class, if any.
    pub fn state_of_class(&self, class: StateClass) -> Option<StateId> {
        self.states.iter().position(|i| i.class == class).map(|i| StateId(i as u32))
    }

    /// Find a state by display name.
    pub fn state_by_name(&self, name: &str) -> Option<StateId> {
        self.states.iter().position(|i| i.name == name).map(|i| StateId(i as u32))
    }

    /// States reachable from the initial state (local reachability, ignoring
    /// whether the required messages could ever arrive).
    pub fn reachable_states(&self) -> Vec<bool> {
        let mut seen = vec![false; self.states.len()];
        let mut queue = VecDeque::new();
        seen[self.initial.index()] = true;
        queue.push_back(self.initial);
        while let Some(s) = queue.pop_front() {
            for (_, t) in self.outgoing(s) {
                if !seen[t.to.index()] {
                    seen[t.to.index()] = true;
                    queue.push_back(t.to);
                }
            }
        }
        seen
    }

    /// Per-state depth (number of transitions from the initial state), if
    /// the FSA is *leveled* — every path from the initial state to a given
    /// state has the same length. All catalog protocols are leveled; the
    /// phase-synchronicity analysis relies on this.
    ///
    /// Unreachable states get depth `None` inside the `Ok` vector.
    pub fn levels(&self, site: SiteId) -> Result<Vec<Option<u32>>, ProtocolError> {
        let mut depth: Vec<Option<u32>> = vec![None; self.states.len()];
        depth[self.initial.index()] = Some(0);
        let mut queue = VecDeque::new();
        queue.push_back(self.initial);
        while let Some(s) = queue.pop_front() {
            let d = depth[s.index()].expect("queued state has a depth");
            for (_, t) in self.outgoing(s) {
                match depth[t.to.index()] {
                    None => {
                        depth[t.to.index()] = Some(d + 1);
                        queue.push_back(t.to);
                    }
                    Some(existing) if existing != d + 1 => {
                        return Err(ProtocolError::NotLeveled { site, state: t.to });
                    }
                    Some(_) => {}
                }
            }
        }
        Ok(depth)
    }

    /// Longest path length from the initial state; this is the number of
    /// phases this site participates in.
    pub fn max_depth(&self) -> u32 {
        // Acyclic, so a DFS longest-path with memoization terminates.
        fn longest(fsa: &Fsa, s: StateId, memo: &mut [Option<u32>]) -> u32 {
            if let Some(v) = memo[s.index()] {
                return v;
            }
            let best =
                fsa.outgoing(s).map(|(_, t)| 1 + longest(fsa, t.to, memo)).max().unwrap_or(0);
            memo[s.index()] = Some(best);
            best
        }
        let mut memo = vec![None; self.states.len()];
        longest(self, self.initial, &mut memo)
    }

    /// The undirected adjacency set of `s`: `s` itself plus its predecessor
    /// and successor states in the state diagram.
    ///
    /// For protocols *synchronous within one state transition*, the paper's
    /// Lemma shows the concurrency set of a state can only contain states
    /// adjacent to it — this set is the basis of the cheap lemma-based
    /// nonblocking check.
    pub fn adjacent(&self, s: StateId) -> Vec<StateId> {
        let mut out: Vec<StateId> = vec![s];
        for t in &self.transitions {
            if t.from == s && !out.contains(&t.to) {
                out.push(t.to);
            }
            if t.to == s && !out.contains(&t.from) {
                out.push(t.from);
            }
        }
        out.sort();
        out
    }

    /// Validate the structural properties required of commit-protocol FSAs.
    ///
    /// `site` and `n_sites` contextualize error messages and let us check
    /// that emitted messages address real sites of the instance.
    pub fn validate(&self, site: SiteId, n_sites: usize) -> Result<(), ProtocolError> {
        if self.states.is_empty() {
            return Err(ProtocolError::EmptyFsa { site });
        }
        if self.initial.index() >= self.states.len() {
            return Err(ProtocolError::BadStateRef { site, state: self.initial });
        }
        for t in &self.transitions {
            for s in [t.from, t.to] {
                if s.index() >= self.states.len() {
                    return Err(ProtocolError::BadStateRef { site, state: s });
                }
            }
            match &t.consume {
                Consume::Spontaneous => {}
                Consume::All(v) | Consume::Any(v) => {
                    if v.is_empty() {
                        return Err(ProtocolError::EmptyTrigger { site, state: t.from });
                    }
                    for (src, _) in v {
                        if !src.is_client() && src.index() >= n_sites {
                            return Err(ProtocolError::BadSiteRef { site, referenced: *src });
                        }
                    }
                }
                Consume::Quorum { k, srcs } => {
                    if srcs.is_empty() {
                        return Err(ProtocolError::EmptyTrigger { site, state: t.from });
                    }
                    if *k == 0 || *k as usize > srcs.len() {
                        return Err(ProtocolError::BadQuorum { site, state: t.from });
                    }
                    let mut sorted = srcs.clone();
                    sorted.sort();
                    if sorted.windows(2).any(|w| w[0] == w[1]) {
                        return Err(ProtocolError::BadQuorum { site, state: t.from });
                    }
                    for (src, _) in srcs {
                        if !src.is_client() && src.index() >= n_sites {
                            return Err(ProtocolError::BadSiteRef { site, referenced: *src });
                        }
                    }
                }
            }
            for e in &t.emit {
                if !e.dst.is_client() && e.dst.index() >= n_sites {
                    return Err(ProtocolError::BadSiteRef { site, referenced: e.dst });
                }
            }
            if self.is_final(t.from) {
                return Err(ProtocolError::FinalStateHasExit { site, state: t.from });
            }
        }
        self.check_acyclic(site)?;
        // Every reachable non-final state must have an exit.
        let reach = self.reachable_states();
        for (i, reachable) in reach.iter().enumerate() {
            let s = StateId(i as u32);
            if *reachable && !self.is_final(s) && self.outgoing[i].is_empty() {
                return Err(ProtocolError::StrandedState { site, state: s });
            }
        }
        Ok(())
    }

    fn check_acyclic(&self, site: SiteId) -> Result<(), ProtocolError> {
        // Kahn's algorithm over the state diagram.
        let n = self.states.len();
        let mut indeg = vec![0usize; n];
        for t in &self.transitions {
            if t.from != t.to {
                indeg[t.to.index()] += 1;
            } else {
                return Err(ProtocolError::Cyclic { site });
            }
        }
        let mut queue: VecDeque<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut removed = 0;
        while let Some(i) = queue.pop_front() {
            removed += 1;
            for t in &self.transitions {
                if t.from.index() == i {
                    indeg[t.to.index()] -= 1;
                    if indeg[t.to.index()] == 0 {
                        queue.push_back(t.to.index());
                    }
                }
            }
        }
        if removed != n {
            return Err(ProtocolError::Cyclic { site });
        }
        Ok(())
    }
}

impl fmt::Display for Fsa {
    /// Renders the FSA as a compact transition table, one row per
    /// transition, mirroring the paper's protocol figures.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "FSA ({}):", self.role)?;
        for (i, info) in self.states.iter().enumerate() {
            let marker = if StateId(i as u32) == self.initial {
                ">"
            } else if info.class.is_final() {
                "*"
            } else {
                " "
            };
            writeln!(f, "  {marker} {} [{:?}]", info.name, info.class)?;
        }
        for t in &self.transitions {
            writeln!(
                f,
                "    {} -> {} : {}",
                self.states[t.from.index()].name,
                self.states[t.to.index()].name,
                t.label
            )?;
        }
        Ok(())
    }
}

/// Incremental builder for [`Fsa`].
#[derive(Clone, Debug, Default)]
pub struct FsaBuilder {
    role: String,
    states: Vec<StateInfo>,
    initial: Option<StateId>,
    transitions: Vec<Transition>,
}

impl FsaBuilder {
    /// Start building an FSA for the given role name.
    pub fn new(role: impl Into<String>) -> Self {
        Self { role: role.into(), ..Self::default() }
    }

    /// Add a state; the first `Initial`-classed state added becomes the
    /// initial state (override with [`FsaBuilder::initial`]).
    pub fn state(&mut self, name: impl Into<String>, class: StateClass) -> StateId {
        let id = StateId(self.states.len() as u32);
        if self.initial.is_none() && class == StateClass::Initial {
            self.initial = Some(id);
        }
        self.states.push(StateInfo { name: name.into(), class });
        id
    }

    /// Explicitly set the initial state.
    pub fn initial(&mut self, s: StateId) -> &mut Self {
        self.initial = Some(s);
        self
    }

    /// Add a transition.
    pub fn transition(
        &mut self,
        from: StateId,
        to: StateId,
        consume: Consume,
        emit: Vec<Envelope>,
        vote: Option<Vote>,
        label: impl Into<String>,
    ) -> &mut Self {
        self.transitions.push(Transition { from, to, consume, emit, vote, label: label.into() });
        self
    }

    /// Finish, computing the outgoing-transition index.
    ///
    /// # Panics
    /// Panics if no initial state was declared. Structural validation is
    /// deferred to [`Fsa::validate`] so that invalid protocols can still be
    /// constructed and *analyzed* (e.g. to demonstrate what goes wrong).
    pub fn build(self) -> Fsa {
        let initial = self.initial.expect("FSA needs an initial state");
        let mut outgoing = vec![Vec::new(); self.states.len()];
        for (i, t) in self.transitions.iter().enumerate() {
            if let Some(slot) = outgoing.get_mut(t.from.index()) {
                slot.push(i as u32);
            }
        }
        Fsa {
            role: self.role,
            states: self.states,
            initial,
            transitions: self.transitions,
            outgoing,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_2pc_participant() -> Fsa {
        // q --xact/yes--> w ; q --xact/no--> a ; w --commit--> c ; w --abort--> a
        let coord = SiteId(0);
        let me = SiteId(1);
        let mut b = FsaBuilder::new("slave");
        let q = b.state("q", StateClass::Initial);
        let w = b.state("w", StateClass::Wait);
        let a = b.state("a", StateClass::Aborted);
        let c = b.state("c", StateClass::Committed);
        b.transition(
            q,
            w,
            Consume::one(coord, MsgKind::XACT),
            vec![Envelope::new(coord, MsgKind::YES)],
            Some(Vote::Yes),
            "xact / yes",
        );
        b.transition(
            q,
            a,
            Consume::one(coord, MsgKind::XACT),
            vec![Envelope::new(coord, MsgKind::NO)],
            Some(Vote::No),
            "xact / no",
        );
        b.transition(w, c, Consume::one(coord, MsgKind::COMMIT), vec![], None, "commit /");
        b.transition(w, a, Consume::one(coord, MsgKind::ABORT), vec![], None, "abort /");
        let _ = me;
        b.build()
    }

    #[test]
    fn builder_produces_valid_fsa() {
        let fsa = tiny_2pc_participant();
        assert_eq!(fsa.state_count(), 4);
        fsa.validate(SiteId(1), 2).unwrap();
    }

    #[test]
    fn nondeterminism_is_allowed() {
        let fsa = tiny_2pc_participant();
        let q = fsa.state_by_name("q").unwrap();
        // Two transitions out of q on the same input.
        assert_eq!(fsa.outgoing(q).count(), 2);
    }

    #[test]
    fn final_states_have_no_exits() {
        let fsa = tiny_2pc_participant();
        let c = fsa.state_by_name("c").unwrap();
        let a = fsa.state_by_name("a").unwrap();
        assert_eq!(fsa.outgoing(c).count(), 0);
        assert_eq!(fsa.outgoing(a).count(), 0);
        assert!(fsa.is_commit(c) && fsa.is_abort(a));
    }

    #[test]
    fn cyclic_fsa_rejected() {
        let mut b = FsaBuilder::new("bad");
        let q = b.state("q", StateClass::Initial);
        let w = b.state("w", StateClass::Wait);
        b.transition(q, w, Consume::Spontaneous, vec![], None, "go");
        b.transition(w, q, Consume::Spontaneous, vec![], None, "back");
        let fsa = b.build();
        assert_eq!(fsa.validate(SiteId(0), 1), Err(ProtocolError::Cyclic { site: SiteId(0) }));
    }

    #[test]
    fn self_loop_rejected() {
        let mut b = FsaBuilder::new("bad");
        let q = b.state("q", StateClass::Initial);
        let a = b.state("a", StateClass::Aborted);
        b.transition(q, q, Consume::Spontaneous, vec![], None, "spin");
        b.transition(q, a, Consume::Spontaneous, vec![], None, "abort");
        let fsa = b.build();
        assert_eq!(fsa.validate(SiteId(0), 1), Err(ProtocolError::Cyclic { site: SiteId(0) }));
    }

    #[test]
    fn stranded_state_rejected() {
        let mut b = FsaBuilder::new("bad");
        let q = b.state("q", StateClass::Initial);
        let w = b.state("w", StateClass::Wait); // no exit, not final
        b.transition(q, w, Consume::Spontaneous, vec![], None, "go");
        let fsa = b.build();
        assert_eq!(
            fsa.validate(SiteId(0), 1),
            Err(ProtocolError::StrandedState { site: SiteId(0), state: w })
        );
    }

    #[test]
    fn exit_from_final_rejected() {
        let mut b = FsaBuilder::new("bad");
        let q = b.state("q", StateClass::Initial);
        let c = b.state("c", StateClass::Committed);
        let a = b.state("a", StateClass::Aborted);
        b.transition(q, c, Consume::Spontaneous, vec![], None, "commit");
        b.transition(c, a, Consume::Spontaneous, vec![], None, "undo!");
        let fsa = b.build();
        assert_eq!(
            fsa.validate(SiteId(0), 1),
            Err(ProtocolError::FinalStateHasExit { site: SiteId(0), state: c })
        );
    }

    #[test]
    fn empty_trigger_rejected() {
        let mut b = FsaBuilder::new("bad");
        let q = b.state("q", StateClass::Initial);
        let a = b.state("a", StateClass::Aborted);
        b.transition(q, a, Consume::All(vec![]), vec![], None, "noop");
        let fsa = b.build();
        assert_eq!(
            fsa.validate(SiteId(0), 1),
            Err(ProtocolError::EmptyTrigger { site: SiteId(0), state: q })
        );
    }

    #[test]
    fn bad_site_reference_rejected() {
        let mut b = FsaBuilder::new("bad");
        let q = b.state("q", StateClass::Initial);
        let a = b.state("a", StateClass::Aborted);
        b.transition(q, a, Consume::one(SiteId(9), MsgKind::XACT), vec![], None, "xact from site9");
        let fsa = b.build();
        assert_eq!(
            fsa.validate(SiteId(0), 2),
            Err(ProtocolError::BadSiteRef { site: SiteId(0), referenced: SiteId(9) })
        );
    }

    #[test]
    fn levels_of_leveled_fsa() {
        // A strictly leveled chain q -> w -> c with a same-level abort
        // branch w -> a.
        let mut b = FsaBuilder::new("leveled");
        let q = b.state("q", StateClass::Initial);
        let w = b.state("w", StateClass::Wait);
        let c = b.state("c", StateClass::Committed);
        let a = b.state("a", StateClass::Aborted);
        b.transition(q, w, Consume::Spontaneous, vec![], None, "go");
        b.transition(w, c, Consume::Spontaneous, vec![], None, "commit");
        b.transition(w, a, Consume::Spontaneous, vec![], None, "abort");
        let fsa = b.build();
        let lv = fsa.levels(SiteId(0)).unwrap();
        assert_eq!(lv[q.index()], Some(0));
        assert_eq!(lv[w.index()], Some(1));
        assert_eq!(lv[c.index()], Some(2));
        assert_eq!(lv[a.index()], Some(2));
    }

    #[test]
    fn unleveled_abort_detected() {
        // The slave abort state is reachable at two different depths, so a
        // strict leveling check fails — this is expected, and the
        // synchronicity analysis treats abort states specially.
        let fsa = tiny_2pc_participant();
        let res = fsa.levels(SiteId(1));
        // q->a (depth 1) vs w->a (depth 2): conflict.
        assert!(res.is_err());
    }

    #[test]
    fn max_depth_counts_phases() {
        let fsa = tiny_2pc_participant();
        assert_eq!(fsa.max_depth(), 2);
    }

    #[test]
    fn adjacency_matches_paper_shape() {
        let fsa = tiny_2pc_participant();
        let q = fsa.state_by_name("q").unwrap();
        let w = fsa.state_by_name("w").unwrap();
        let a = fsa.state_by_name("a").unwrap();
        let c = fsa.state_by_name("c").unwrap();
        assert_eq!(fsa.adjacent(w), vec![q, w, a, c]);
        assert_eq!(fsa.adjacent(q), vec![q, w, a]);
        assert_eq!(fsa.adjacent(c), vec![w, c]);
    }

    #[test]
    fn reachable_states_ignores_orphans() {
        let mut b = FsaBuilder::new("orphan");
        let q = b.state("q", StateClass::Initial);
        let a = b.state("a", StateClass::Aborted);
        let _orphan = b.state("z", StateClass::Custom(0));
        b.transition(q, a, Consume::Spontaneous, vec![], None, "abort");
        let fsa = b.build();
        let reach = fsa.reachable_states();
        assert_eq!(reach, vec![true, true, false]);
        // Orphan non-final states do not fail validation (unreachable).
        fsa.validate(SiteId(0), 1).unwrap();
    }
}
