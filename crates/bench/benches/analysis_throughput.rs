//! B5 (analysis face): throughput of the fused, bitset-based analysis —
//! facts folded inside the reachability BFS — against the post-hoc passes,
//! plus the streaming mode's memory proxy (retained node count vs peak
//! resident states).
//!
//! Three contenders per protocol/size:
//! * `fused` / `fused_stream` — `Analysis::build_with`, facts folded during
//!   construction (stream additionally retires node payloads per level);
//! * `posthoc_bitset` — build the graph, then `Analysis::from_graph`
//!   (same bitset accumulator, but a second pass over the node vector);
//! * `posthoc_btreeset` — build the graph, then the pre-fusion baseline:
//!   an O(nodes·n²) re-traversal doing a `BTreeSet::insert` per
//!   (site, state) pair ([`nbc_bench::baseline::legacy_concurrency_pass`]).
//!
//! A pass-only table also times the two post-hoc passes in isolation on a
//! prebuilt graph, where the bitset rework's advantage is not diluted by
//! the shared graph-construction cost.

use std::hint::black_box;
use std::time::Instant;

use nbc_bench::baseline::legacy_concurrency_pass;
use nbc_bench::BenchGroup;
use nbc_core::protocols::{central_2pc, central_3pc};
use nbc_core::{Analysis, ReachGraph, ReachOptions};

fn bench_fused_vs_posthoc() {
    let mut g = BenchGroup::new("analysis_throughput");
    g.sample_size(10);
    for (label, p) in [("central_2pc/7", central_2pc(7)), ("central_3pc/5", central_3pc(5))] {
        g.bench(&format!("{label}/fused"), || Analysis::build(black_box(&p)).unwrap().n_sites());
        g.bench(&format!("{label}/fused_stream"), || {
            Analysis::build_with(black_box(&p), ReachOptions::default().with_streaming(true))
                .unwrap()
                .n_sites()
        });
        g.bench(&format!("{label}/posthoc_bitset"), || {
            let graph = ReachGraph::build(black_box(&p)).unwrap();
            Analysis::from_graph(&p, graph).n_sites()
        });
        g.bench(&format!("{label}/posthoc_btreeset"), || {
            let graph = ReachGraph::build(black_box(&p)).unwrap();
            legacy_concurrency_pass(&p, &graph)
        });
    }
}

/// Pass-only comparison on a prebuilt graph (best of 5): the bitset fold
/// against the legacy BTreeSet pass, with graph construction — the cost
/// the end-to-end group shares across contenders — excluded. Clones for
/// the consuming `from_graph` are made outside the timed region.
fn pass_only_table() {
    println!("\n== analysis_pass_only (post-hoc pass on a prebuilt graph, best of 5) ==");
    for (label, p) in [("central_2pc/7", central_2pc(7)), ("central_3pc/5", central_3pc(5))] {
        let graph = ReachGraph::build(&p).unwrap();
        let nodes = graph.node_count();
        let mut legacy = std::time::Duration::MAX;
        for _ in 0..5 {
            let t = Instant::now();
            black_box(legacy_concurrency_pass(&p, &graph));
            legacy = legacy.min(t.elapsed());
        }
        let mut bitset = std::time::Duration::MAX;
        for _ in 0..5 {
            let g2 = graph.clone();
            let t = Instant::now();
            black_box(Analysis::from_graph(&p, g2).n_sites());
            bitset = bitset.min(t.elapsed());
        }
        println!(
            "{label:<16} nodes {nodes:>8}  btreeset pass {legacy:>9.2?}  \
             bitset pass {bitset:>9.2?}  ({:.1}x)",
            legacy.as_secs_f64() / bitset.as_secs_f64()
        );
    }
}

/// Single-shot throughput and memory-proxy table: nodes/sec of the fused
/// build, and the streaming peak-resident count against the retained node
/// vector — the figure of merit for the extra-sites headroom.
fn throughput_and_memory_table() {
    println!("\n== analysis_memory (retained nodes vs streaming peak resident) ==");
    for (label, p) in [
        ("central_2pc/7", central_2pc(7)),
        ("central_2pc/8", central_2pc(8)),
        ("central_3pc/5", central_3pc(5)),
    ] {
        let t = Instant::now();
        let retained = Analysis::build(&p).unwrap();
        let t_fused = t.elapsed();
        let nodes = retained.graph().unwrap().node_count();

        let t = Instant::now();
        let streamed =
            Analysis::build_with(&p, ReachOptions::default().with_streaming(true)).unwrap();
        let t_stream = t.elapsed();
        let st = streamed.stream_stats().unwrap();

        println!(
            "{label:<16} nodes {nodes:>8}  fused {:>9.2?} ({:>10.0} nodes/s)  \
             stream {:>9.2?}  peak resident {:>7} ({:.1}% of retained)",
            t_fused,
            nodes as f64 / t_fused.as_secs_f64(),
            t_stream,
            st.peak_resident,
            100.0 * st.peak_resident as f64 / nodes as f64,
        );
    }
}

fn main() {
    bench_fused_vs_posthoc();
    pass_only_table();
    throughput_and_memory_table();
}
