//! Buffer-state synthesis: the paper's method for *designing* nonblocking
//! protocols.
//!
//! The fundamental nonblocking theorem provides a way to *check* whether a
//! protocol is nonblocking, but not a construction. The paper's
//! construction is: *blocking protocols are made nonblocking by adding
//! buffer states* — a "prepare to commit" state is inserted before each
//! commit state, turning the final decision into an announced, acknowledged
//! round. [`make_nonblocking`] implements this for instantiated protocols
//! of both paradigms (the canonical single-automaton version lives in
//! [`crate::canonical::insert_buffer_states`]):
//!
//! * **Central site** — the coordinator transition `w → c` (collect votes,
//!   broadcast `commit`) splits into `w → p` (collect votes, broadcast
//!   `prepare`) and `p → c` (collect `ack`s, broadcast `commit`); each
//!   slave transition `w → c` (receive `commit`) splits into `w → p`
//!   (receive `prepare`, send `ack`) and `p → c` (receive `commit`).
//! * **Decentralized** — each peer transition `w → c` (collect all yes
//!   votes) splits into `w → p` (collect all yes votes, broadcast
//!   `prepare`) and `p → c` (collect all `prepare`s).
//!
//! Applied to the catalog 2PC protocols this produces exactly the catalog
//! 3PC protocols; the result always satisfies the theorem, which the tests
//! confirm via the independent checker.

use std::fmt;

use crate::fsa::{Consume, Envelope, Fsa, FsaBuilder, StateClass};
use crate::ids::{MsgKind, SiteId, StateId};
use crate::protocol::{Paradigm, Protocol};
use crate::theorem;

/// Errors from [`make_nonblocking`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SynthesisError {
    /// The synthesis rules are defined for the paper's two paradigms only.
    UnsupportedParadigm,
    /// Transforming the protocol produced something the theorem checker
    /// still rejects (indicates a protocol outside the shape the method
    /// handles — e.g. commit states reachable without a vote collection).
    StillBlocking {
        /// Number of theorem violations remaining after the transform.
        violations: usize,
    },
    /// Analysis failure (e.g. graph bound exceeded).
    Analysis(
        /// The underlying analysis error.
        crate::error::ProtocolError,
    ),
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnsupportedParadigm => {
                write!(
                    f,
                    "buffer-state synthesis supports the central-site and decentralized paradigms"
                )
            }
            Self::StillBlocking { violations } => {
                write!(f, "synthesized protocol still blocking ({violations} violations)")
            }
            Self::Analysis(e) => write!(f, "analysis failed: {e}"),
        }
    }
}

impl std::error::Error for SynthesisError {}

/// Make a blocking protocol nonblocking by inserting buffer states.
///
/// If the protocol already satisfies the fundamental nonblocking theorem it
/// is returned unchanged. The result is re-verified with the theorem
/// checker; see [`SynthesisError::StillBlocking`].
pub fn make_nonblocking(protocol: &Protocol) -> Result<Protocol, SynthesisError> {
    let report = theorem::check(protocol).map_err(SynthesisError::Analysis)?;
    if report.nonblocking() {
        return Ok(protocol.clone());
    }

    let transformed = buffer_once(protocol)?;

    let after = theorem::check(&transformed).map_err(SynthesisError::Analysis)?;
    if !after.nonblocking() {
        return Err(SynthesisError::StillBlocking { violations: after.violations.len() });
    }
    Ok(transformed)
}

/// Apply one buffer-insertion round *unconditionally* — even to an already
/// nonblocking protocol. Used by the k-phase family ([`crate::kpc`]) and
/// the "does a fourth phase buy anything?" ablation.
pub fn buffer_once(protocol: &Protocol) -> Result<Protocol, SynthesisError> {
    let (prepare_kind, ack_kind) = fresh_kinds(protocol);
    match protocol.paradigm {
        Paradigm::CentralSite => Ok(central_transform(protocol, prepare_kind, ack_kind)),
        Paradigm::Decentralized => Ok(decentralized_transform(protocol, prepare_kind)),
        Paradigm::Custom => Err(SynthesisError::UnsupportedParadigm),
    }
}

/// Pick `prepare`/`ack` message kinds not already used by the protocol.
fn fresh_kinds(protocol: &Protocol) -> (MsgKind, MsgKind) {
    let mut max_used = 0u16;
    let mut prepare_free = true;
    let mut ack_free = true;
    let mut note = |k: MsgKind| {
        max_used = max_used.max(k.0);
        if k == MsgKind::PREPARE {
            prepare_free = false;
        }
        if k == MsgKind::ACK {
            ack_free = false;
        }
    };
    for fsa in protocol.fsas() {
        for t in fsa.transitions() {
            match &t.consume {
                Consume::Spontaneous => {}
                Consume::All(v) | Consume::Any(v) | Consume::Quorum { srcs: v, .. } => {
                    for &(_, k) in v {
                        note(k);
                    }
                }
            }
            for e in &t.emit {
                note(e.kind);
            }
        }
    }
    for m in protocol.initial_msgs() {
        note(m.kind);
    }
    if prepare_free && ack_free {
        (MsgKind::PREPARE, MsgKind::ACK)
    } else {
        let base = (max_used + 1).max(MsgKind::FIRST_CUSTOM.0);
        (MsgKind(base), MsgKind(base + 1))
    }
}

/// Rebuild one FSA with every commit-entering transition buffered.
///
/// `on_split` produces, for a given original transition, the pieces of the
/// two replacement transitions:
/// `(enter_emit, exit_consume, exit_emit)` where the enter transition keeps
/// the original consume (and vote tag) but emits `enter_emit`, and the exit
/// transition `p → c` consumes `exit_consume` and emits `exit_emit`.
fn buffer_fsa(
    fsa: &Fsa,
    mut on_split: impl FnMut(&crate::fsa::Transition) -> (Vec<Envelope>, Consume, Vec<Envelope>),
) -> Fsa {
    let mut b = FsaBuilder::new(fsa.role.clone());
    // Copy states verbatim (ids preserved), then append buffers as needed.
    for info in fsa.states() {
        b.state(info.name.clone(), info.class);
    }
    b.initial(fsa.initial());
    // Name new buffers after the ones already present ("p", then "p2"...).
    let mut buffer_count =
        fsa.states().iter().filter(|i| i.class == StateClass::Prepared).count() as u32;
    for t in fsa.transitions() {
        if fsa.is_commit(t.to) && !fsa.is_commit(t.from) {
            let p = b.state(
                if buffer_count == 0 { "p".to_string() } else { format!("p{}", buffer_count + 1) },
                StateClass::Prepared,
            );
            buffer_count += 1;
            let (enter_emit, exit_consume, exit_emit) = on_split(t);
            b.transition(
                t.from,
                p,
                t.consume.clone(),
                enter_emit,
                t.vote,
                format!("{} [buffered: prepare]", t.label),
            );
            b.transition(
                p,
                StateId(t.to.0),
                exit_consume,
                exit_emit,
                None,
                "commit round".to_string(),
            );
        } else {
            b.transition(t.from, t.to, t.consume.clone(), t.emit.clone(), t.vote, t.label.clone());
        }
    }
    b.build()
}

fn central_transform(protocol: &Protocol, prepare: MsgKind, ack: MsgKind) -> Protocol {
    let coord = SiteId(0);
    let slaves: Vec<SiteId> = (1..protocol.n_sites() as u32).map(SiteId).collect();

    let mut fsas = Vec::with_capacity(protocol.n_sites());
    for site in protocol.sites() {
        let fsa = protocol.fsa(site);
        let new_fsa = if site == coord {
            buffer_fsa(fsa, |t| {
                // Coordinator: announce prepare instead of commit, then
                // collect acks and broadcast the original commit emission.
                let enter_emit = slaves.iter().map(|&s| Envelope::new(s, prepare)).collect();
                let exit_consume = Consume::All(slaves.iter().map(|&s| (s, ack)).collect());
                (enter_emit, exit_consume, t.emit.clone())
            })
        } else {
            buffer_fsa(fsa, |t| {
                // Slave: receiving prepare replaces receiving commit; ack
                // it; then wait for the actual commit.
                let enter_emit = vec![Envelope::new(coord, ack)];
                let exit_consume = t.consume.clone();
                // The enter transition must consume `prepare` rather than
                // the original `commit`; rewrite below.
                (enter_emit, exit_consume, vec![])
            })
        };
        fsas.push(new_fsa);
    }

    // Second pass for slaves: the buffered enter transition still consumes
    // `commit`; retarget it to `prepare`.
    for (i, fsa) in fsas.iter_mut().enumerate().skip(1) {
        let rebuilt = retarget_enter_consume(fsa, MsgKind::COMMIT, prepare);
        let _ = i;
        *fsa = rebuilt;
    }

    let mut out = Protocol::new(
        format!("{} + buffer states", protocol.name),
        Paradigm::CentralSite,
        fsas,
        protocol.initial_msgs().to_vec(),
    );
    out.name_msg(prepare, "prepare'");
    out.name_msg(ack, "ack'");
    out
}

/// Rewrite transitions *into Prepared states* so that any consumed message
/// of kind `from_kind` becomes `to_kind`.
fn retarget_enter_consume(fsa: &Fsa, from_kind: MsgKind, to_kind: MsgKind) -> Fsa {
    let mut b = FsaBuilder::new(fsa.role.clone());
    for info in fsa.states() {
        b.state(info.name.clone(), info.class);
    }
    b.initial(fsa.initial());
    for t in fsa.transitions() {
        let into_prepared = fsa.state(t.to).class == StateClass::Prepared;
        let consume = if into_prepared {
            match &t.consume {
                Consume::Spontaneous => Consume::Spontaneous,
                Consume::All(v) => Consume::All(
                    v.iter().map(|&(s, k)| (s, if k == from_kind { to_kind } else { k })).collect(),
                ),
                Consume::Any(v) => Consume::Any(
                    v.iter().map(|&(s, k)| (s, if k == from_kind { to_kind } else { k })).collect(),
                ),
                Consume::Quorum { k: quorum, srcs } => Consume::Quorum {
                    k: *quorum,
                    srcs: srcs
                        .iter()
                        .map(|&(s, k)| (s, if k == from_kind { to_kind } else { k }))
                        .collect(),
                },
            }
        } else {
            t.consume.clone()
        };
        b.transition(t.from, t.to, consume, t.emit.clone(), t.vote, t.label.clone());
    }
    b.build()
}

fn decentralized_transform(protocol: &Protocol, prepare: MsgKind) -> Protocol {
    let everyone: Vec<SiteId> = protocol.sites().collect();
    let fsas = protocol
        .sites()
        .map(|site| {
            buffer_fsa(protocol.fsa(site), |_t| {
                // Peer: after collecting the yes votes, broadcast prepare;
                // commit once prepare has arrived from every peer.
                let enter_emit = everyone.iter().map(|&s| Envelope::new(s, prepare)).collect();
                let exit_consume = Consume::All(everyone.iter().map(|&s| (s, prepare)).collect());
                (enter_emit, exit_consume, vec![])
            })
        })
        .collect();
    let mut out = Protocol::new(
        format!("{} + buffer states", protocol.name),
        Paradigm::Decentralized,
        fsas,
        protocol.initial_msgs().to_vec(),
    );
    out.name_msg(prepare, "prepare'");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Analysis;
    use crate::protocols::{central_2pc, central_3pc, decentralized_2pc, decentralized_3pc};

    #[test]
    fn central_2pc_becomes_nonblocking() {
        for n in 2..=4 {
            let p2 = central_2pc(n);
            let p3 = make_nonblocking(&p2).unwrap();
            let r = theorem::check(&p3).unwrap();
            assert!(r.nonblocking(), "{}: {r}", p3.name);
            assert_eq!(p3.phase_count(), 3);
            p3.validate_strict().unwrap();
        }
    }

    #[test]
    fn decentralized_2pc_becomes_nonblocking() {
        for n in 2..=4 {
            let p2 = decentralized_2pc(n);
            let p3 = make_nonblocking(&p2).unwrap();
            let r = theorem::check(&p3).unwrap();
            assert!(r.nonblocking(), "{}: {r}", p3.name);
            assert_eq!(p3.phase_count(), 3);
            p3.validate_strict().unwrap();
        }
    }

    #[test]
    fn synthesized_central_matches_handwritten_3pc_shape() {
        let synth = make_nonblocking(&central_2pc(3)).unwrap();
        let hand = central_3pc(3);
        for site in synth.sites() {
            assert_eq!(synth.fsa(site).state_count(), hand.fsa(site).state_count(), "{site}");
            assert_eq!(
                synth.fsa(site).transitions().len(),
                hand.fsa(site).transitions().len(),
                "{site}"
            );
        }
    }

    #[test]
    fn synthesized_decentralized_matches_handwritten_3pc_shape() {
        let synth = make_nonblocking(&decentralized_2pc(3)).unwrap();
        let hand = decentralized_3pc(3);
        for site in synth.sites() {
            assert_eq!(synth.fsa(site).state_count(), hand.fsa(site).state_count());
            assert_eq!(synth.fsa(site).transitions().len(), hand.fsa(site).transitions().len());
        }
    }

    #[test]
    fn nonblocking_input_returned_unchanged() {
        let p3 = central_3pc(3);
        let out = make_nonblocking(&p3).unwrap();
        assert_eq!(out.name, p3.name);
        assert_eq!(out.phase_count(), 3);
    }

    #[test]
    fn synthesized_protocols_preserve_both_outcomes() {
        use crate::fsa::StateClass;
        use crate::reach::NodeId;
        let p = make_nonblocking(&central_2pc(3)).unwrap();
        let a = Analysis::build(&p).unwrap();
        let g = a.graph().unwrap();
        let mut commit = false;
        let mut abort = false;
        for id in 0..g.node_count() as NodeId {
            if g.is_final(id) {
                let all_commit = g
                    .node(id)
                    .locals
                    .iter()
                    .enumerate()
                    .all(|(i, &s)| g.class_of(SiteId(i as u32), s) == StateClass::Committed);
                if all_commit {
                    commit = true;
                } else {
                    abort = true;
                }
            }
            assert!(!g.is_inconsistent(id));
            assert!(!g.is_deadlocked(id));
        }
        assert!(commit && abort);
    }

    #[test]
    fn custom_paradigm_rejected() {
        let mut p = central_2pc(2);
        p.paradigm = Paradigm::Custom;
        assert!(matches!(make_nonblocking(&p), Err(SynthesisError::UnsupportedParadigm)));
    }

    #[test]
    fn fresh_kinds_avoid_collisions() {
        // A protocol already using PREPARE must get custom kinds.
        let p3 = central_3pc(3);
        let (prep, ack) = fresh_kinds(&p3);
        assert!(prep.0 >= MsgKind::FIRST_CUSTOM.0);
        assert!(ack.0 > prep.0);
        // 2PC doesn't use them, so the well-known kinds are chosen.
        let (prep, ack) = fresh_kinds(&central_2pc(3));
        assert_eq!((prep, ack), (MsgKind::PREPARE, MsgKind::ACK));
    }
}
