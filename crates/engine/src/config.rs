//! Run configuration: vote plans, crash schedules, termination rules.

use nbc_simnet::{LatencyModel, Time};

/// How far a crashing site got through the state transition it was
/// executing — the paper's non-atomic-transition failure model ("a site may
/// only partially complete a transition before failing", "only part of the
/// messages that should be sent during a transition are actually
/// transmitted").
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TransitionProgress {
    /// Crash before the write-ahead record is durable: the site never left
    /// its previous state.
    BeforeLog,
    /// The transition's progress record is durable and the first `n`
    /// outgoing messages were sent; the rest are lost with the site.
    AfterMsgs(u32),
}

/// When a site crashes.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CrashPoint {
    /// At an absolute simulation time (between transitions).
    AtTime(Time),
    /// While executing its `ordinal`-th state transition (1-based count of
    /// transition attempts at that site), at the given progress point.
    OnTransition {
        /// 1-based transition attempt number at the crashing site.
        ordinal: u32,
        /// Progress through the transition.
        progress: TransitionProgress,
    },
}

/// One scheduled crash (and optional recovery).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CrashSpec {
    /// The site that crashes.
    pub site: usize,
    /// When it crashes.
    pub point: CrashPoint,
    /// If set, the site restarts at this time and runs the recovery
    /// protocol.
    pub recover_at: Option<Time>,
}

/// Which decision rule the termination protocol applies.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TerminationRule {
    /// The paper's backup-coordinator rule, applied *per state class* (the
    /// canonical form in which the paper presents the 3PC decision table:
    /// commit iff the class is committable everywhere and never concurrent
    /// with an abort). Class-based application is what makes the rule
    /// consistent across heterogeneous coordinator/slave automata and
    /// across cascading backup handoffs. For blocking protocols the rule
    /// can yield `Blocked`.
    Skeen,
    /// The paper's rule applied verbatim to the backup's own local state
    /// ("commit iff the concurrency set contains a commit state") with *no*
    /// blocking case. Safe only for nonblocking protocols; running it on
    /// 2PC demonstrates the atomicity violation the theorem predicts —
    /// that demonstration is an experiment, not a recommendation.
    NaiveCs,
    /// Cooperative termination: phase-1 acks carry each operational site's
    /// state class and the decision considers all of them. Equivalent to
    /// `Skeen` for nonblocking protocols; for 2PC it blocks exactly when
    /// every operational site is in its wait state.
    Cooperative,
    /// Quorum-gated class rule (the direction of Skeen's follow-up work,
    /// "A Quorum-Based Commit Protocol", cited by the paper): the backup
    /// applies the class rule only while a strict majority of all sites is
    /// operational in its view; a minority group blocks instead of
    /// deciding. Sacrifices minority-side availability to stay safe even
    /// when a partition masquerades as site failures — see experiment X4.
    QuorumSkeen,
}

/// Configuration of the timeout-based (imperfect) failure detector.
///
/// When set on a [`RunConfig`], the run replaces the paper's perfect
/// failure detector with [`nbc_simnet::Suspicion`]: sites *suspect* peers
/// after `timeout` units of silence, with per-check heartbeat latency
/// sampled uniformly from `jitter` (inclusive). A spec whose worst-case
/// heartbeat latency fits inside the timeout ([`DetectorSpec::is_accurate`])
/// can never falsely suspect, and the engine then degenerates — by
/// construction — to the legacy perfect-detection path, byte for byte.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct DetectorSpec {
    /// Silence timeout: suspect a peer after this long without evidence
    /// of life. Must be positive.
    pub timeout: Time,
    /// Inclusive `(lo, hi)` bounds of the heartbeat-latency distribution.
    pub jitter: (Time, Time),
    /// Seed of the heartbeat-latency stream (determinism).
    pub seed: u64,
}

impl DetectorSpec {
    /// True when the detector can never falsely suspect: every heartbeat
    /// lands within the timeout, so only genuine silence (crash or cut
    /// link) trips a suspicion.
    pub fn is_accurate(&self) -> bool {
        self.jitter.1 <= self.timeout
    }
}

/// A scheduled network partition — a deliberate violation of the paper's
/// "network never fails" assumption, for the `x3` demonstration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionSpec {
    /// When the partition happens.
    pub at: Time,
    /// `groups[i]` = partition group of site `i`.
    pub groups: Vec<usize>,
}

/// Full configuration of one simulated transaction run.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Per-site vote: `votes[i]` is whether site `i` votes yes. (For the
    /// central-site paradigm, `votes[0]` is the coordinator's own vote.)
    pub votes: Vec<bool>,
    /// Crash schedule.
    pub crashes: Vec<CrashSpec>,
    /// Optional network partition (demonstration of assumption violation).
    pub partition: Option<PartitionSpec>,
    /// Termination decision rule.
    pub rule: TerminationRule,
    /// Network latency model.
    pub latency: LatencyModel,
    /// Failure-detection delay.
    pub detect_delay: Time,
    /// Timeout-based failure detection. `None` (and any accurate spec)
    /// uses the paper's perfect detector; an inaccurate spec replaces it
    /// with suspicion timers that can falsely suspect live sites.
    pub detector: Option<DetectorSpec>,
    /// Enable cooperative total-failure recovery (decide once *all* sites
    /// have recovered and none holds a durable decision).
    pub total_failure_recovery: bool,
    /// Safety valve: abort the run after this many network events.
    pub max_events: usize,
    /// Record a human-readable execution trace into the report.
    pub record_trace: bool,
    /// Transaction id stamped on every WAL record of the run. Single-shot
    /// runs use the default (`1`); the pipeline gives each concurrent
    /// round its own id so one site log can carry many interleaved rounds.
    pub txn_id: u64,
    /// Simulation time at which the run begins (client stimuli are
    /// injected at this instant). The pipeline admits rounds mid-
    /// simulation; single-shot runs start at `0`.
    pub start_at: Time,
}

impl RunConfig {
    /// All-yes votes, no crashes, Skeen rule, constant latency 1 and
    /// detection delay 5 — the happy path.
    pub fn happy(n: usize) -> Self {
        Self {
            votes: vec![true; n],
            crashes: Vec::new(),
            partition: None,
            rule: TerminationRule::Skeen,
            latency: LatencyModel::constant(1),
            detect_delay: 5,
            detector: None,
            total_failure_recovery: true,
            max_events: 200_000,
            record_trace: false,
            txn_id: crate::run::TXN,
            start_at: 0,
        }
    }

    /// Happy path with one no-voter.
    pub fn one_no(n: usize, no_voter: usize) -> Self {
        let mut c = Self::happy(n);
        c.votes[no_voter] = false;
        c
    }

    /// Add a crash.
    pub fn with_crash(mut self, spec: CrashSpec) -> Self {
        self.crashes.push(spec);
        self
    }

    /// Set the termination rule.
    pub fn with_rule(mut self, rule: TerminationRule) -> Self {
        self.rule = rule;
        self
    }

    /// Drive failure detection by timeout-based suspicion.
    pub fn with_detector(mut self, spec: DetectorSpec) -> Self {
        self.detector = Some(spec);
        self
    }

    /// Tag the run's WAL records with a transaction id.
    pub fn with_txn_id(mut self, txn_id: u64) -> Self {
        self.txn_id = txn_id;
        self
    }

    /// Start the run at a mid-simulation instant.
    pub fn with_start_at(mut self, at: Time) -> Self {
        self.start_at = at;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn happy_config_shape() {
        let c = RunConfig::happy(4);
        assert_eq!(c.votes, vec![true; 4]);
        assert!(c.crashes.is_empty());
        assert_eq!(c.rule, TerminationRule::Skeen);
    }

    #[test]
    fn builders_compose() {
        let c = RunConfig::one_no(3, 2)
            .with_crash(CrashSpec { site: 0, point: CrashPoint::AtTime(10), recover_at: None })
            .with_rule(TerminationRule::Cooperative);
        assert!(!c.votes[2]);
        assert_eq!(c.crashes.len(), 1);
        assert_eq!(c.rule, TerminationRule::Cooperative);
    }
}
