//! B11: availability and election churn vs detector aggressiveness.
//!
//! Replaces the perfect failure detector with timeout-based suspicion
//! (`DetectorSpec`) and sweeps the silence timeout across 2PC, 3PC
//! (Skeen and quorum termination rules), and Paxos Commit, under a happy
//! path and a mid-broadcast coordinator crash. Heartbeat latency is drawn
//! uniformly from 1..=12, so a timeout of 12 never falsely suspects
//! (the perfect-detector baseline) while a timeout of 1 suspects on
//! almost every check. Each cell aggregates a fixed seed ladder.
//!
//! Reported per cell: how many runs decided everywhere (availability),
//! blocked, truncated (the livelock signature — re-election churn hits
//! the event cap), or went inconsistent (3PC-Skeen's split-brain under
//! false suspicion), plus total and worst-case election rounds.
//!
//! The JSON written to `BENCH_detector.json` is a pure function of the
//! seeds — no wall-clock or throughput fields — so CI re-runs it twice
//! and byte-diffs the output.

use std::fmt::Write as _;

use nbc_core::protocols::{central_2pc, central_3pc};
use nbc_core::{Analysis, Protocol};
use nbc_engine::{
    run_with, CrashPoint, CrashSpec, DetectorSpec, RunConfig, TerminationRule, TransitionProgress,
};
use nbc_paxos::paxos_commit;

/// Inclusive heartbeat-latency bounds: the most lenient timeout in the
/// ladder equals the ceiling, so that column is the accurate baseline.
const JITTER: (u64, u64) = (1, 12);
const TIMEOUTS: [u64; 7] = [1, 2, 3, 4, 6, 8, 12];
const SEEDS: u64 = 24;
/// Low event cap: a termination livelock (suspect, elect, unsuspect,
/// re-elect, forever) shows up as truncation instead of a burned CPU.
const MAX_EVENTS: usize = 4_000;

struct Cell {
    series: &'static str,
    scenario: &'static str,
    timeout: u64,
    runs: u64,
    decided: u64,
    blocked: u64,
    truncated: u64,
    inconsistent: u64,
    elections_total: u64,
    elections_max: u64,
}

impl Cell {
    fn to_json(&self) -> String {
        format!(
            "{{\"series\":\"{}\",\"scenario\":\"{}\",\"timeout\":{},\"runs\":{},\
             \"decided\":{},\"blocked\":{},\"truncated\":{},\"inconsistent\":{},\
             \"elections_total\":{},\"elections_max\":{}}}",
            self.series,
            self.scenario,
            self.timeout,
            self.runs,
            self.decided,
            self.blocked,
            self.truncated,
            self.inconsistent,
            self.elections_total,
            self.elections_max,
        )
    }

    fn print(&self) {
        println!(
            "{:<24} {:<7} timeout {:>2}  decided {:>2}/{:<2}  blocked {:>2}  truncated {:>2}  \
             inconsistent {:>2}  elections {:>4} (max {:>3})",
            self.series,
            self.scenario,
            self.timeout,
            self.decided,
            self.runs,
            self.blocked,
            self.truncated,
            self.inconsistent,
            self.elections_total,
            self.elections_max,
        );
    }
}

fn sweep_cell(
    protocol: &Protocol,
    analysis: &Analysis,
    series: &'static str,
    scenario: &'static str,
    rule: TerminationRule,
    timeout: u64,
    crash: bool,
) -> Cell {
    let mut cell = Cell {
        series,
        scenario,
        timeout,
        runs: 0,
        decided: 0,
        blocked: 0,
        truncated: 0,
        inconsistent: 0,
        elections_total: 0,
        elections_max: 0,
    };
    for seed in 0..SEEDS {
        let mut cfg = RunConfig::happy(protocol.n_sites());
        cfg.rule = rule;
        cfg.max_events = MAX_EVENTS;
        cfg.detector = Some(DetectorSpec { timeout, jitter: JITTER, seed });
        if crash {
            cfg.crashes.push(CrashSpec {
                site: 0,
                point: CrashPoint::OnTransition {
                    ordinal: 2,
                    progress: TransitionProgress::AfterMsgs(1),
                },
                recover_at: None,
            });
        }
        let r = run_with(protocol, analysis, cfg);
        cell.runs += 1;
        if r.all_operational_decided {
            cell.decided += 1;
        }
        if r.any_blocked {
            cell.blocked += 1;
        }
        if r.truncated {
            cell.truncated += 1;
        }
        if !r.consistent {
            cell.inconsistent += 1;
        }
        cell.elections_total += r.elections;
        cell.elections_max = cell.elections_max.max(r.elections);
    }
    cell
}

fn main() {
    let series: Vec<(&'static str, Protocol, TerminationRule)> = vec![
        ("central_2pc/skeen", central_2pc(3), TerminationRule::Skeen),
        ("central_3pc/skeen", central_3pc(3), TerminationRule::Skeen),
        ("central_3pc/quorum", central_3pc(3), TerminationRule::QuorumSkeen),
        ("paxos_commit/skeen", paxos_commit(2, 1), TerminationRule::Skeen),
    ];
    let mut cells = Vec::new();
    println!("== detector_sweep (availability vs suspicion timeout, jitter 1..=12) ==");
    for (label, protocol, rule) in &series {
        let analysis = Analysis::build(protocol).expect("analysis builds");
        for &(scenario, crash) in &[("happy", false), ("crash0", true)] {
            for timeout in TIMEOUTS {
                let cell = sweep_cell(protocol, &analysis, label, scenario, *rule, timeout, crash);
                cell.print();
                cells.push(cell);
            }
        }
    }

    // The most lenient column is accurate by construction; anything other
    // than full availability there is a bench bug, not a finding.
    for cell in cells.iter().filter(|c| c.timeout >= JITTER.1 && c.scenario == "happy") {
        assert_eq!(cell.decided, cell.runs, "{}: accurate detector must decide", cell.series);
        assert_eq!(cell.inconsistent, 0, "{}: accurate detector must stay safe", cell.series);
    }

    let mut out = String::from("{\n  \"bench\": \"detector_sweep\",\n");
    let _ = writeln!(
        out,
        "  \"jitter\": [{}, {}],\n  \"seeds\": {},\n  \"max_events\": {},\n  \"rows\": [",
        JITTER.0, JITTER.1, SEEDS, MAX_EVENTS
    );
    for (i, cell) in cells.iter().enumerate() {
        let sep = if i + 1 == cells.len() { "" } else { "," };
        let _ = writeln!(out, "    {}{sep}", cell.to_json());
    }
    out.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_detector.json");
    std::fs::write(path, out).expect("write BENCH_detector.json");
    println!("\nwrote {path}");
}
