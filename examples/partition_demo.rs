//! What the paper's network assumption buys: 3PC under a partition.
//!
//! Skeen assumes a network that *never fails* and a failure detector that
//! *reliably* reports site crashes. Violate that — cut the coordinator off
//! from its slaves so each side believes the other crashed — and the
//! termination protocol runs on both sides at once. There is a window
//! where the two sides decide differently. This is the famous caveat of
//! 3PC, and this example reproduces it on demand.
//!
//! ```text
//! cargo run --example partition_demo
//! ```

use nonblocking_commit::nbc_core::protocols::central_3pc;
use nonblocking_commit::nbc_core::Analysis;
use nonblocking_commit::nbc_engine::{run_with, PartitionSpec, RunConfig};
use nonblocking_commit::nbc_simnet::LatencyModel;

fn main() {
    let protocol = central_3pc(3);
    let analysis = Analysis::build(&protocol).unwrap();

    println!(
        "Cutting the coordinator (site0) away from its slaves at time t.\n\
         Message latency 2, failure detection delay 2.\n"
    );
    println!("{:<6} {:<18} {:<18} {:<18} outcome", "t", "site0", "site1", "site2");

    let mut splits = Vec::new();
    for at in 0..12u64 {
        let mut cfg = RunConfig::happy(3);
        cfg.latency = LatencyModel::constant(2);
        cfg.detect_delay = 2;
        cfg.partition = Some(PartitionSpec { at, groups: vec![0, 1, 1] });
        let r = run_with(&protocol, &analysis, cfg);
        let verdict = if r.consistent { "consistent" } else { "SPLIT BRAIN" };
        println!(
            "t={at:<4} {:<18} {:<18} {:<18} {verdict}",
            r.outcomes[0].to_string(),
            r.outcomes[1].to_string(),
            r.outcomes[2].to_string(),
        );
        if !r.consistent {
            splits.push(at);
        }
    }

    println!(
        "\nThe split window {splits:?} is exactly the interval where the \
         coordinator has entered its\nprepared state p1 (committable — its \
         concurrency set contains a commit state) while the\nslaves are \
         still waiting in w (whose class decides abort). Each side, told by \
         its failure\ndetector that the other side crashed, applies the \
         backup decision rule — and they\ndisagree. The theorem is not \
         violated: the paper explicitly assumes this cannot happen.\n\
         Partition-tolerant atomic commit needed quorum-based protocols \
         (Skeen's later work)."
    );
    assert!(!splits.is_empty());
}
