//! Greedy counterexample shrinking.
//!
//! The explorer's witness paths carry every scheduler choice of a DFS
//! branch, most of which are irrelevant to the property they witness. The
//! shrinker reduces a path to a **1-minimal** schedule: removing any
//! single remaining step no longer reproduces the property.
//!
//! Candidate schedules are evaluated with *lenient* replay (steps made
//! inapplicable by earlier removals are skipped) followed by a canonical
//! drain to network quiescence, so properties judged at quiescence — a
//! blocked operational site, say — are evaluated on complete executions.
//! The final minimal step list is then *materialized*: replayed once more,
//! recording exactly the steps that applied (including the drain), which
//! yields a strictly replayable schedule — the form the corpus stores and
//! `nbc simulate --schedule` re-executes.

use nbc_core::{Analysis, Protocol};
use nbc_engine::{channel_of, Channel, Runner};

use crate::explore::{plan_config, CHECK_TXN};
use crate::oracle::Oracles;
use crate::schedule::{apply_step, channel_head, Schedule, Step};
use crate::CheckOptions;

/// Upper bound on drain deliveries — far above any real execution; only a
/// livelocked engine would hit it.
const DRAIN_CAP: usize = 10_000;

/// Deliver pending events in canonical (channel-sorted, head-first) order
/// until the network is quiescent, recording the steps taken. Returns
/// `false` if the cap was hit.
pub fn drain(runner: &mut Runner<'_>, record: &mut Vec<Step>) -> bool {
    for _ in 0..DRAIN_CAP {
        let pending = runner.pending_events();
        let Some(first) =
            pending.iter().map(|(seq, ev)| (channel_of(ev), *seq)).min().map(|(ch, _)| ch)
        else {
            return true;
        };
        let step = head_step(runner, first);
        let applied = apply_step(runner, &step).is_ok();
        debug_assert!(applied, "head step of a pending channel must apply");
        record.push(step);
    }
    false
}

/// The step that delivers the head of `ch`.
fn head_step(runner: &Runner<'_>, ch: Channel) -> Step {
    let (_, ev) = channel_head(runner, ch).expect("channel has a head");
    match ev {
        nbc_simnet::NetEvent::Deliver { src, dst, .. } => Step::Deliver { src, dst },
        nbc_simnet::NetEvent::FailureNotice { observer, crashed } => {
            Step::FailNotice { observer, crashed }
        }
        nbc_simnet::NetEvent::RecoveryNotice { observer, recovered } => {
            Step::RecoveryNotice { observer, recovered }
        }
    }
}

/// Shrink `steps` to a 1-minimal list still satisfying `predicate`, then
/// materialize the strictly replayable schedule (applied steps plus the
/// canonical drain).
///
/// The predicate receives the runner after lenient replay and drain, and
/// a flag saying whether some `Recover` step's recovery-oracle check
/// failed during the replay (the one property judged mid-replay rather
/// than on the final state). The initial path must satisfy the predicate;
/// the result always does.
pub fn shrink<F>(
    protocol: &Protocol,
    analysis: &Analysis,
    opts: &CheckOptions,
    votes: &[bool],
    steps: &[Step],
    predicate: F,
) -> Schedule
where
    F: Fn(&Runner<'_>, bool) -> bool,
{
    let oracles = Oracles::new(protocol, analysis, CHECK_TXN);
    let fresh =
        || Runner::new(protocol, analysis, plan_config(protocol.n_sites(), votes, opts.rule));
    let holds = |candidate: &[Step]| {
        let mut runner = fresh();
        let mut recovery_failed = false;
        for step in candidate {
            if let Step::Recover { site } = step {
                if !runner.sites()[*site].is_up() && oracles.check_recovery(&runner, *site).is_err()
                {
                    recovery_failed = true;
                }
            }
            let _ = apply_step(&mut runner, step);
        }
        let mut sink = Vec::new();
        drain(&mut runner, &mut sink) && predicate(&runner, recovery_failed)
    };

    let mut current: Vec<Step> = steps.to_vec();
    debug_assert!(holds(&current), "shrink input must satisfy the predicate");
    // Greedy 1-minimal pass, repeated to fixpoint: removing step i can
    // make an earlier step removable too.
    loop {
        let mut removed_any = false;
        let mut i = 0;
        while i < current.len() {
            let mut candidate = current.clone();
            candidate.remove(i);
            if holds(&candidate) {
                current = candidate;
                removed_any = true;
            } else {
                i += 1;
            }
        }
        if !removed_any {
            break;
        }
    }

    // Materialize: record what actually applies, then the drain, giving a
    // schedule every step of which is strictly replayable.
    let mut runner = fresh();
    let mut materialized = Vec::with_capacity(current.len());
    for step in &current {
        if apply_step(&mut runner, step).is_ok() {
            materialized.push(step.clone());
        }
    }
    drain(&mut runner, &mut materialized);
    Schedule {
        protocol: protocol.name.clone(),
        n: protocol.n_sites(),
        votes: votes.to_vec(),
        rule: crate::rule_name(opts.rule).to_string(),
        steps: materialized,
    }
}
