//! Variable-latency stress: with randomized per-message delays, messages
//! on different links reorder freely (only per-link FIFO holds). The
//! protocols and the termination machinery must stay correct under every
//! interleaving the latency model can produce.

use nbc_core::protocols::{catalog, central_3pc, decentralized_3pc};
use nbc_core::Analysis;
use nbc_engine::{
    enumerate_crash_specs, run_with, sweep, CrashPoint, CrashSpec, RunConfig, TerminationRule,
    TransitionProgress,
};
use nbc_simnet::LatencyModel;

fn jittery(n: usize, seed: u64) -> RunConfig {
    let mut cfg = RunConfig::happy(n);
    cfg.latency = LatencyModel::uniform(1, 20, seed);
    cfg.detect_delay = 7;
    cfg
}

#[test]
fn happy_paths_survive_reordering() {
    for seed in 0..30u64 {
        for p in catalog(3) {
            let a = Analysis::build(&p).unwrap();
            let r = run_with(&p, &a, jittery(3, seed));
            assert!(r.consistent, "{} seed {seed}: {r}", p.name);
            assert_eq!(r.decision(), Some(true), "{} seed {seed}: {r}", p.name);
        }
    }
}

#[test]
fn three_pc_crash_sweeps_survive_reordering() {
    for seed in [1u64, 7, 23] {
        for p in [central_3pc(3), decentralized_3pc(3)] {
            let a = Analysis::build(&p).unwrap();
            let specs = enumerate_crash_specs(&p, None);
            let s = sweep(&p, &a, &jittery(3, seed), &specs);
            assert!(s.all_consistent(), "{} seed {seed}: {:?}", p.name, s.inconsistent_runs);
            assert!(
                s.nonblocking(),
                "{} seed {seed}: blocked={} decided={}/{}",
                p.name,
                s.blocked,
                s.fully_decided,
                s.total
            );
        }
    }
}

#[test]
fn two_pc_cooperative_survives_reordering() {
    for seed in [3u64, 11] {
        for p in catalog(3).into_iter().filter(|p| p.phase_count() == 2) {
            let a = Analysis::build(&p).unwrap();
            let specs = enumerate_crash_specs(&p, None);
            let base = jittery(3, seed).with_rule(TerminationRule::Cooperative);
            let s = sweep(&p, &a, &base, &specs);
            assert!(s.all_consistent(), "{} seed {seed}: {:?}", p.name, s.inconsistent_runs);
        }
    }
}

#[test]
fn recovery_survives_reordering() {
    for seed in 0..10u64 {
        let p = central_3pc(3);
        let a = Analysis::build(&p).unwrap();
        let cfg = jittery(3, seed).with_crash(CrashSpec {
            site: 0,
            point: CrashPoint::OnTransition {
                ordinal: 3,
                progress: TransitionProgress::AfterMsgs(1),
            },
            recover_at: Some(500),
        });
        let r = run_with(&p, &a, cfg);
        assert!(r.consistent, "seed {seed}: {r}");
        assert_eq!(r.decision(), Some(true), "seed {seed}: {r}");
        assert!(r.all_operational_decided, "seed {seed}: {r}");
    }
}

#[test]
fn slow_failure_detection_is_still_safe() {
    // A very slow detector lets the normal protocol race far ahead of the
    // termination machinery; both paths must agree.
    for p in [central_3pc(3), decentralized_3pc(3)] {
        let a = Analysis::build(&p).unwrap();
        let specs = enumerate_crash_specs(&p, None);
        let mut base = RunConfig::happy(3);
        base.detect_delay = 50;
        let s = sweep(&p, &a, &base, &specs);
        assert!(s.all_consistent(), "{}: {:?}", p.name, s.inconsistent_runs);
        assert!(s.nonblocking(), "{}: blocked={}", p.name, s.blocked);
    }
}

#[test]
fn instant_failure_detection_is_still_safe() {
    for p in [central_3pc(3), decentralized_3pc(3)] {
        let a = Analysis::build(&p).unwrap();
        let specs = enumerate_crash_specs(&p, None);
        let mut base = RunConfig::happy(3);
        base.detect_delay = 0;
        let s = sweep(&p, &a, &base, &specs);
        assert!(s.all_consistent(), "{}: {:?}", p.name, s.inconsistent_runs);
        assert!(s.nonblocking(), "{}: blocked={}", p.name, s.blocked);
    }
}

#[test]
fn fast_recovery_never_races_termination_under_jitter() {
    // Regression test for a real bug: a site that crashed and restarted
    // *while the survivors' termination protocol was still in flight*
    // collected inconclusive replies and treated them as "nobody will
    // ever decide", aborting unilaterally — which split the cluster when
    // the backup committed moments later. The fix: only *settled* replies
    // (from sites that decided, blocked, or are themselves recovering)
    // count toward the everyone-undecided rule.
    let p = central_3pc(3);
    let a = Analysis::build(&p).unwrap();
    for seed in 0..400u64 {
        for recover_at in [5u64, 7, 9, 12, 15] {
            let mut cfg = RunConfig::happy(3);
            cfg.latency = LatencyModel::uniform(1, 12, seed);
            cfg.detect_delay = 5;
            cfg.crashes = vec![CrashSpec {
                site: 2,
                point: CrashPoint::OnTransition {
                    ordinal: 2,
                    progress: TransitionProgress::BeforeLog,
                },
                recover_at: Some(recover_at),
            }];
            let r = run_with(&p, &a, cfg);
            assert!(r.consistent, "seed {seed} recover@{recover_at}: {r}");
            assert!(r.all_operational_decided, "seed {seed} recover@{recover_at}: {r}");
        }
    }
}
