//! Regenerate every figure and table of Skeen, "Nonblocking Commit
//! Protocols" (SIGMOD 1981).
//!
//! ```text
//! cargo run -p nbc-bench --bin experiments            # run everything
//! cargo run -p nbc-bench --bin experiments -- e4 b1   # run selected ids
//! cargo run -p nbc-bench --bin experiments -- --list  # list experiments
//! ```

use nbc_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.iter().any(|a| a == "--list" || a == "-l") {
        for e in experiments::all() {
            println!("{:>4}  {}", e.id, e.title);
        }
        return;
    }

    let selected: Vec<experiments::Experiment> = if args.is_empty() {
        experiments::all()
    } else {
        args.iter()
            .map(|id| {
                experiments::by_id(id).unwrap_or_else(|| {
                    eprintln!("unknown experiment id {id:?}; try --list");
                    std::process::exit(2);
                })
            })
            .collect()
    };

    for e in selected {
        println!("{}", "=".repeat(78));
        println!("[{}] {}", e.id.to_uppercase(), e.title);
        println!("{}", "=".repeat(78));
        let started = std::time::Instant::now();
        let report = (e.run)();
        println!("{report}");
        println!("({} finished in {:.2?})\n", e.id, started.elapsed());
    }
}
