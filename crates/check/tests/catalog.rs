//! The five-spec catalog under the model checker at n=3: the four paper
//! protocols plus the linear (chained) 2PC spec. Each check is exhaustive
//! within the default budgets (one crash, all vote plans), and every
//! report must agree with the fundamental nonblocking theorem — that
//! agreement *is* the nonblocking oracle, so `report.ok()` carries it.

use nbc_check::explore::plan_config;
use nbc_check::{replay_strict, run_check, CheckOptions, Oracles};
use nbc_core::protocols::{central_2pc, central_3pc, one_pc};
use nbc_core::{Analysis, Protocol};
use nbc_engine::Runner;

fn linear_2pc() -> Protocol {
    let text =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs/linear-2pc.nbc"))
            .expect("spec file");
    nbc_spec::parse(&text, 3).expect("linear-2pc parses")
}

#[test]
fn central_3pc_passes_all_oracles_exhaustively() {
    let report = run_check(&central_3pc(3), CheckOptions::default()).unwrap();
    assert!(report.ok(), "{}", report.render());
    assert!(report.certified_nonblocking);
    assert!(report.within_resilience);
    assert!(!report.stats.truncated, "must be exhaustive");
    assert!(report.prediction_complete, "every analytic slot witnessed");
    assert!(
        report.blocking_witness.is_none(),
        "a certified-nonblocking protocol must never block within its resilience bound"
    );
}

#[test]
fn blocking_protocols_yield_shrunk_replayable_witnesses() {
    for protocol in [central_2pc(3), one_pc(3), linear_2pc()] {
        let report = run_check(&protocol, CheckOptions::default()).unwrap();
        assert!(report.ok(), "{}", report.render());
        assert!(!report.certified_nonblocking, "{} is blocking", protocol.name);
        assert!(report.prediction_complete, "{}", report.render());
        let witness = report
            .blocking_witness
            .as_ref()
            .unwrap_or_else(|| panic!("{}: blocking protocol must yield a witness", protocol.name));

        // The witness replays strictly on a fresh engine and lands in a
        // quiescent state with a blocked operational site.
        let analysis = Analysis::build(&protocol).unwrap();
        let config = plan_config(3, &witness.votes, CheckOptions::default().rule);
        let mut runner = Runner::new(&protocol, &analysis, config);
        replay_strict(&mut runner, &witness.steps)
            .unwrap_or_else(|e| panic!("{}: replay failed at {e}", protocol.name));
        assert!(runner.net_quiescent(), "{}: witness must end quiescent", protocol.name);
        assert!(
            !Oracles::blocked_sites(&runner).is_empty(),
            "{}: witness must leave a blocked operational site",
            protocol.name
        );

        // 1-minimality: removing any single step breaks the witness.
        for skip in 0..witness.steps.len() {
            let config = plan_config(3, &witness.votes, CheckOptions::default().rule);
            let mut runner = Runner::new(&protocol, &analysis, config);
            let reduced: Vec<_> = witness
                .steps
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != skip)
                .map(|(_, s)| s.clone())
                .collect();
            let still_blocked = replay_strict(&mut runner, &reduced).is_ok()
                && runner.net_quiescent()
                && !Oracles::blocked_sites(&runner).is_empty();
            assert!(
                !still_blocked,
                "{}: witness not 1-minimal, step {skip} removable",
                protocol.name
            );
        }
    }
}

#[test]
fn decentralized_pair_all_yes_plan() {
    // The decentralized protocols explode in debug builds over all eight
    // vote plans; the all-yes plan (where commit and commit-blocking
    // live) keeps this suite fast. CI's release smoke job runs them with
    // the full plan set.
    for (protocol, nonblocking) in [
        (nbc_core::protocols::decentralized_2pc(3), false),
        (nbc_core::protocols::decentralized_3pc(3), true),
    ] {
        let options = CheckOptions { vote_plan: Some(vec![true; 3]), ..CheckOptions::default() };
        let report = run_check(&protocol, options).unwrap();
        assert!(report.ok(), "{}", report.render());
        assert_eq!(report.certified_nonblocking, nonblocking, "{}", protocol.name);
        assert_eq!(report.blocking_witness.is_none(), nonblocking, "{}", protocol.name);
        assert!(!report.stats.truncated);
    }
}

#[test]
fn witness_schedule_round_trips_byte_for_byte() {
    let report = run_check(&central_2pc(3), CheckOptions::default()).unwrap();
    let witness = report.blocking_witness.as_ref().expect("2PC blocks");
    let jsonl = witness.to_jsonl();
    let parsed = nbc_check::Schedule::from_jsonl(&jsonl).expect("own output parses");
    assert_eq!(parsed.to_jsonl(), jsonl, "serialize → parse → serialize is the identity");
}

#[test]
fn reports_are_deterministic_across_runs() {
    let first =
        run_check(&central_3pc(3), CheckOptions { seed: Some(7), ..CheckOptions::default() })
            .unwrap();
    let second =
        run_check(&central_3pc(3), CheckOptions { seed: Some(7), ..CheckOptions::default() })
            .unwrap();
    assert_eq!(first.render(), second.render());
    assert_eq!(first.to_json(), second.to_json());

    // The seed permutes exploration order, never the verdict or stats —
    // and `Some(0)` is a real seed, not a silent "canonical order"
    // sentinel as it once was.
    for seed in [Some(99), Some(0), None] {
        let reseeded =
            run_check(&central_3pc(3), CheckOptions { seed, ..CheckOptions::default() }).unwrap();
        assert!(reseeded.ok());
        assert_eq!(first.stats.distinct_states, reseeded.stats.distinct_states, "seed {seed:?}");
        assert_eq!(first.stats.actions, reseeded.stats.actions, "seed {seed:?}");
    }
}
